/**
 * @file
 * Tests for the 8-bit affine quantization (paper Section VI-F).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "fixedpoint/quantization.h"
#include "util/random.h"

namespace pra {
namespace fixedpoint {
namespace {

TEST(QuantParams, ScaleOfUnitRange)
{
    QuantParams p = QuantParams::fromRange(0.0, 255.0);
    EXPECT_DOUBLE_EQ(p.scale, 1.0);
    EXPECT_EQ(p.zeroPoint, 0);
}

TEST(ChooseQuantParams, UsesMinAndMax)
{
    std::vector<double> values = {0.0, 0.5, 3.0, 1.25};
    QuantParams p = chooseQuantParams(values);
    EXPECT_DOUBLE_EQ(p.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(p.maxValue(), 3.0);
}

TEST(ChooseQuantParams, DegenerateInputGetsPositiveScale)
{
    std::vector<double> values = {2.0, 2.0};
    QuantParams p = chooseQuantParams(values);
    EXPECT_GT(p.scale, 0.0);
    std::vector<double> empty;
    EXPECT_GT(chooseQuantParams(empty).scale, 0.0);
}

TEST(ChooseQuantParams, RangeIsExtendedToCoverZero)
{
    // An all-positive stream (no ReLU zeros observed) must still
    // represent 0.0: code 0 anchors at zero, not at the observed min.
    std::vector<double> values = {2.0, 5.0, 9.0};
    QuantParams p = chooseQuantParams(values);
    EXPECT_EQ(p.zeroPoint, 0);
    EXPECT_DOUBLE_EQ(p.minValue(), 0.0);
    EXPECT_GE(p.maxValue(), 9.0 - maxRoundingError(p));
}

TEST(Quantize, EndpointsMapToExtremeCodes)
{
    QuantParams p = QuantParams::fromRange(0.0, 10.0);
    EXPECT_EQ(quantize(0.0, p), 0);
    EXPECT_EQ(quantize(10.0, p), 255);
}

TEST(Quantize, ClampsOutOfRange)
{
    QuantParams p = QuantParams::fromRange(0.0, 1.0);
    EXPECT_EQ(quantize(-5.0, p), 0);
    EXPECT_EQ(quantize(7.0, p), 255);
}

TEST(Quantize, ReluZeroMapsToCodeZero)
{
    // The paper's zero-skipping semantics require ReLU zeros to be
    // code 0 when the layer minimum is 0.
    QuantParams p = QuantParams::fromRange(0.0, 6.0);
    EXPECT_EQ(p.zeroPoint, 0);
    EXPECT_EQ(quantize(0.0, p), 0);
}

TEST(Quantize, RoundingHalfAway)
{
    QuantParams p = QuantParams::fromRange(0.0, 255.0); // scale == 1
    EXPECT_EQ(quantize(0.4, p), 0);
    EXPECT_EQ(quantize(0.5, p), 1);
    EXPECT_EQ(quantize(1.49, p), 1);
}

TEST(Quantize, ZeroRoundTripsExactly)
{
    // The zero-point nudge: 0.0 must land on an integer code and
    // reconstruct to exactly 0.0 — a fractional zero code would turn
    // every ReLU zero into a small non-zero 8-bit value and corrupt
    // zero-skip counts. Exercise ranges that straddle zero at awkward
    // offsets, where the un-nudged [min, max] mapping fails.
    util::Xoshiro256 rng(0xfeed);
    for (int i = 0; i < 200; i++) {
        double lo = -rng.nextDouble() * 13.7 - 1e-4;
        double hi = rng.nextDouble() * 29.3 + 1e-4;
        QuantParams p = QuantParams::fromRange(lo, hi);
        uint8_t zero_code = quantize(0.0, p);
        EXPECT_EQ(zero_code, p.zeroPoint);
        EXPECT_EQ(dequantize(zero_code, p), 0.0)
            << "range [" << lo << ", " << hi << "]";
    }
    // All-positive and all-negative observed ranges too.
    for (auto [lo, hi] : {std::pair{0.3, 7.0}, std::pair{-9.0, -0.2}}) {
        QuantParams p = QuantParams::fromRange(lo, hi);
        EXPECT_EQ(dequantize(quantize(0.0, p), p), 0.0);
    }
}

TEST(Quantize, ZeroRoundTripsForEveryZooLayer)
{
    // Acceptance check: dequantize(quantize(0.0)) == 0.0 for the
    // quantization params of every zoo layer, derived (as a
    // deployment would) from the layer's synthesized activation
    // stream.
    for (const auto &net :
         dnn::makeAllNetworks(dnn::LayerSelect::All)) {
        dnn::ActivationSynthesizer synth(net, 0x5eed);
        for (size_t i = 0; i < net.layers.size(); i++) {
            if (net.layers[i].kind == dnn::LayerKind::Pool)
                continue; // Pools bridge shapes; no priced stream.
            auto stream = synth.synthesizeFixed16(static_cast<int>(i));
            std::vector<double> values;
            values.reserve(stream.size());
            for (uint16_t v : stream.flat())
                values.push_back(static_cast<double>(v));
            QuantParams p = chooseQuantParams(values);
            EXPECT_EQ(dequantize(quantize(0.0, p), p), 0.0)
                << net.name << " " << net.layers[i].name;
            EXPECT_EQ(p.zeroPoint, 0)
                << net.name << " " << net.layers[i].name;
        }
    }
}

TEST(Dequantize, RoundTripErrorBounded)
{
    util::Xoshiro256 rng(0x4a4a);
    std::vector<double> values;
    for (int i = 0; i < 2000; i++)
        values.push_back(rng.nextDouble() * 12.0 - 2.0);
    QuantParams p = chooseQuantParams(values);
    double bound = maxRoundingError(p) * (1.0 + 1e-9);
    for (double v : values) {
        double rt = dequantize(quantize(v, p), p);
        EXPECT_LE(std::abs(rt - v), bound);
    }
}

TEST(Dequantize, CodesAreMonotonic)
{
    QuantParams p = QuantParams::fromRange(-1.0, 1.0);
    double prev = dequantize(0, p);
    for (int code = 1; code <= 255; code++) {
        double cur = dequantize(static_cast<uint8_t>(code), p);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(QuantizeAll, MatchesElementwise)
{
    std::vector<double> values = {0.0, 0.3, 0.7, 1.0};
    QuantParams p = QuantParams::fromRange(0.0, 1.0);
    auto codes = quantizeAll(values, p);
    ASSERT_EQ(codes.size(), values.size());
    for (size_t i = 0; i < values.size(); i++)
        EXPECT_EQ(codes[i], quantize(values[i], p));
}

/** Property sweep across asymmetric ranges (the paper highlights that
 *  the range "doesn't have to be symmetrical"). */
class QuantRanges
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(QuantRanges, RoundTripWithinHalfStep)
{
    auto [lo, hi] = GetParam();
    QuantParams p = QuantParams::fromRange(lo, hi);
    util::Xoshiro256 rng(17);
    for (int i = 0; i < 500; i++) {
        double v = lo + rng.nextDouble() * (hi - lo);
        double rt = dequantize(quantize(v, p), p);
        EXPECT_LE(std::abs(rt - v), maxRoundingError(p) * (1 + 1e-9));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, QuantRanges,
    ::testing::Values(std::pair{0.0, 1.0}, std::pair{0.0, 37.5},
                      std::pair{-3.0, 9.0}, std::pair{-0.01, 0.02}));

} // namespace
} // namespace fixedpoint
} // namespace pra
