/**
 * @file
 * Tests for the 8-bit affine quantization (paper Section VI-F).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fixedpoint/quantization.h"
#include "util/random.h"

namespace pra {
namespace fixedpoint {
namespace {

TEST(QuantParams, ScaleOfUnitRange)
{
    QuantParams p{0.0, 255.0};
    EXPECT_DOUBLE_EQ(p.scale(), 1.0);
}

TEST(ChooseQuantParams, UsesMinAndMax)
{
    std::vector<double> values = {0.0, 0.5, 3.0, 1.25};
    QuantParams p = chooseQuantParams(values);
    EXPECT_DOUBLE_EQ(p.minValue, 0.0);
    EXPECT_DOUBLE_EQ(p.maxValue, 3.0);
}

TEST(ChooseQuantParams, DegenerateInputGetsPositiveScale)
{
    std::vector<double> values = {2.0, 2.0};
    QuantParams p = chooseQuantParams(values);
    EXPECT_GT(p.scale(), 0.0);
    std::vector<double> empty;
    EXPECT_GT(chooseQuantParams(empty).scale(), 0.0);
}

TEST(Quantize, EndpointsMapToExtremeCodes)
{
    QuantParams p{0.0, 10.0};
    EXPECT_EQ(quantize(0.0, p), 0);
    EXPECT_EQ(quantize(10.0, p), 255);
}

TEST(Quantize, ClampsOutOfRange)
{
    QuantParams p{0.0, 1.0};
    EXPECT_EQ(quantize(-5.0, p), 0);
    EXPECT_EQ(quantize(7.0, p), 255);
}

TEST(Quantize, ReluZeroMapsToCodeZero)
{
    // The paper's zero-skipping semantics require ReLU zeros to be
    // code 0 when the layer minimum is 0.
    QuantParams p{0.0, 6.0};
    EXPECT_EQ(quantize(0.0, p), 0);
}

TEST(Quantize, RoundingHalfAway)
{
    QuantParams p{0.0, 255.0}; // scale == 1
    EXPECT_EQ(quantize(0.4, p), 0);
    EXPECT_EQ(quantize(0.5, p), 1);
    EXPECT_EQ(quantize(1.49, p), 1);
}

TEST(Dequantize, RoundTripErrorBounded)
{
    util::Xoshiro256 rng(0x4a4a);
    std::vector<double> values;
    for (int i = 0; i < 2000; i++)
        values.push_back(rng.nextDouble() * 12.0 - 2.0);
    QuantParams p = chooseQuantParams(values);
    double bound = maxRoundingError(p) * (1.0 + 1e-9);
    for (double v : values) {
        double rt = dequantize(quantize(v, p), p);
        EXPECT_LE(std::abs(rt - v), bound);
    }
}

TEST(Dequantize, CodesAreMonotonic)
{
    QuantParams p{-1.0, 1.0};
    double prev = dequantize(0, p);
    for (int code = 1; code <= 255; code++) {
        double cur = dequantize(static_cast<uint8_t>(code), p);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(QuantizeAll, MatchesElementwise)
{
    std::vector<double> values = {0.0, 0.3, 0.7, 1.0};
    QuantParams p{0.0, 1.0};
    auto codes = quantizeAll(values, p);
    ASSERT_EQ(codes.size(), values.size());
    for (size_t i = 0; i < values.size(); i++)
        EXPECT_EQ(codes[i], quantize(values[i], p));
}

/** Property sweep across asymmetric ranges (the paper highlights that
 *  the range "doesn't have to be symmetrical"). */
class QuantRanges
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(QuantRanges, RoundTripWithinHalfStep)
{
    auto [lo, hi] = GetParam();
    QuantParams p{lo, hi};
    util::Xoshiro256 rng(17);
    for (int i = 0; i < 500; i++) {
        double v = lo + rng.nextDouble() * (hi - lo);
        double rt = dequantize(quantize(v, p), p);
        EXPECT_LE(std::abs(rt - v), maxRoundingError(p) * (1 + 1e-9));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, QuantRanges,
    ::testing::Values(std::pair{0.0, 1.0}, std::pair{0.0, 37.5},
                      std::pair{-3.0, 9.0}, std::pair{-0.01, 0.02}));

} // namespace
} // namespace fixedpoint
} // namespace pra
