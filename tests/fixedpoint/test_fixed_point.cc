/**
 * @file
 * Tests for 16-bit fixed-point bit utilities, including the
 * shift-and-add multiplier property the whole paper builds on.
 */

#include <gtest/gtest.h>

#include "fixedpoint/fixed_point.h"
#include "util/random.h"

namespace pra {
namespace fixedpoint {
namespace {

TEST(EssentialBits, KnownValues)
{
    EXPECT_EQ(essentialBits(0), 0);
    EXPECT_EQ(essentialBits(1), 1);
    EXPECT_EQ(essentialBits(0b101), 2);
    EXPECT_EQ(essentialBits(0xffff), 16);
    EXPECT_EQ(essentialBits(0x8000), 1);
}

TEST(BitPositions, MsbLsb)
{
    EXPECT_EQ(msbPosition(0), -1);
    EXPECT_EQ(lsbPosition(0), -1);
    EXPECT_EQ(msbPosition(1), 0);
    EXPECT_EQ(lsbPosition(1), 0);
    EXPECT_EQ(msbPosition(0b10110), 4);
    EXPECT_EQ(lsbPosition(0b10110), 1);
    EXPECT_EQ(msbPosition(0x8000), 15);
}

TEST(BitPositions, SignificantBits)
{
    EXPECT_EQ(significantBits(0), 0);
    EXPECT_EQ(significantBits(1), 1);
    EXPECT_EQ(significantBits(0xff), 8);
    EXPECT_EQ(significantBits(0x100), 9);
}

TEST(EssentialBitFraction, PaperFigure1Example)
{
    // Figure 1's value 10.101 in an 8-bit format: 3 essential bits of
    // 8 -> 37.5% over "all"; identical over non-zero.
    std::vector<uint16_t> values = {0b0101'0100};
    EXPECT_DOUBLE_EQ(essentialBitFraction(values, 8), 3.0 / 8.0);
    EXPECT_DOUBLE_EQ(essentialBitFractionNonZero(values, 8), 3.0 / 8.0);
}

TEST(EssentialBitFraction, ZerosDiluteAllButNotNz)
{
    std::vector<uint16_t> values = {0, 0, 0b11, 0b1};
    EXPECT_DOUBLE_EQ(essentialBitFraction(values, 16),
                     3.0 / (4.0 * 16.0));
    EXPECT_DOUBLE_EQ(essentialBitFractionNonZero(values, 16),
                     3.0 / (2.0 * 16.0));
}

TEST(EssentialBitFraction, EmptyInputs)
{
    std::vector<uint16_t> empty;
    EXPECT_EQ(essentialBitFraction(empty, 16), 0.0);
    EXPECT_EQ(essentialBitFractionNonZero(empty, 16), 0.0);
    std::vector<uint16_t> zeros = {0, 0};
    EXPECT_EQ(essentialBitFractionNonZero(zeros, 16), 0.0);
}

TEST(ZeroFraction, Basics)
{
    std::vector<uint16_t> values = {0, 1, 0, 2};
    EXPECT_DOUBLE_EQ(zeroFraction(values), 0.5);
    EXPECT_EQ(zeroFraction({}), 0.0);
}

TEST(ShiftAddMultiply, MatchesProductExhaustiveSmall)
{
    for (int s = -64; s <= 64; s += 3) {
        for (uint32_t n = 0; n < 256; n += 7) {
            EXPECT_EQ(shiftAddMultiply(static_cast<int16_t>(s),
                                       static_cast<uint16_t>(n)),
                      static_cast<int64_t>(s) * n);
        }
    }
}

TEST(ShiftAddMultiply, MatchesProductRandomFullRange)
{
    util::Xoshiro256 rng(0xabc);
    for (int i = 0; i < 20000; i++) {
        auto s = static_cast<int16_t>(rng.nextInRange(-32768, 32767));
        auto n = static_cast<uint16_t>(rng.nextBounded(65536));
        EXPECT_EQ(shiftAddMultiply(s, n), static_cast<int64_t>(s) * n);
    }
}

TEST(ShiftAddMultiply, ExtremesAndIdentities)
{
    EXPECT_EQ(shiftAddMultiply(12345, 0), 0);
    EXPECT_EQ(shiftAddMultiply(0, 0xffff), 0);
    EXPECT_EQ(shiftAddMultiply(1, 0xffff), 0xffff);
    EXPECT_EQ(shiftAddMultiply(-1, 0xffff), -0xffff);
    EXPECT_EQ(shiftAddMultiply(-32768, 0xffff),
              static_cast<int64_t>(-32768) * 0xffff);
}

/** Parameterized sweep: popcount equals the number of added terms. */
class EssentialBitWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(EssentialBitWidths, FractionBoundedByOne)
{
    int width = GetParam();
    util::Xoshiro256 rng(width);
    std::vector<uint16_t> values;
    uint16_t mask = static_cast<uint16_t>((1u << width) - 1);
    for (int i = 0; i < 500; i++)
        values.push_back(static_cast<uint16_t>(rng.next()) & mask);
    double f = essentialBitFraction(values, width);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_GE(essentialBitFractionNonZero(values, width), f);
}

INSTANTIATE_TEST_SUITE_P(Widths, EssentialBitWidths,
                         ::testing::Values(1, 4, 8, 12, 16));

} // namespace
} // namespace fixedpoint
} // namespace pra
