/**
 * @file
 * Tests for the oneffset representation (paper Section V-A1).
 */

#include <gtest/gtest.h>

#include "fixedpoint/fixed_point.h"
#include "fixedpoint/oneffset.h"
#include "util/random.h"

namespace pra {
namespace fixedpoint {
namespace {

TEST(Oneffset, PaperExampleFiveAndAHalfEquivalent)
{
    // Section V-A1: n = 0101.1b == (2, 0, -1); with our integer bit
    // numbering 0101'1b = 0b1011 = bits {0, 1, 3}.
    auto list = encodeOneffsets(0b1011);
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].pow, 0);
    EXPECT_EQ(list[1].pow, 1);
    EXPECT_EQ(list[2].pow, 3);
    EXPECT_FALSE(list[0].eon);
    EXPECT_FALSE(list[1].eon);
    EXPECT_TRUE(list[2].eon);
}

TEST(Oneffset, PaperExample101)
{
    // n = 101b is represented as ((0010,0)(0000,1)) in the paper's
    // MSB-first notation; we emit LSB-first: (0, eon=0), (2, eon=1).
    auto list = encodeOneffsets(0b101);
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0].pow, 0);
    EXPECT_EQ(list[1].pow, 2);
    EXPECT_TRUE(list[1].eon);
}

TEST(Oneffset, ZeroNeuronIsSingleNullEntry)
{
    auto list = encodeOneffsets(0);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_FALSE(list[0].valid);
    EXPECT_TRUE(list[0].eon);
    EXPECT_EQ(decodeOneffsets(list), 0);
}

TEST(Oneffset, WorstCaseSixteenEntries)
{
    auto list = encodeOneffsets(0xffff);
    EXPECT_EQ(list.size(), 16u);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(list[i].pow, i);
}

TEST(Oneffset, RoundTripExhaustive)
{
    // Every 16-bit pattern decodes back to itself.
    for (uint32_t v = 0; v <= 0xffff; v++) {
        auto list = encodeOneffsets(static_cast<uint16_t>(v));
        EXPECT_EQ(decodeOneffsets(list), v);
        EXPECT_EQ(static_cast<int>(list.size()),
                  std::max(1, essentialBits(static_cast<uint16_t>(v))));
        EXPECT_TRUE(list.back().eon);
    }
}

TEST(Oneffset, SumOfPowersProperty)
{
    util::Xoshiro256 rng(0x0ff5);
    for (int i = 0; i < 5000; i++) {
        auto n = static_cast<uint16_t>(rng.nextBounded(65536));
        int64_t sum = 0;
        for (const auto &entry : encodeOneffsets(n))
            if (entry.valid)
                sum += int64_t{1} << entry.pow;
        EXPECT_EQ(sum, n);
    }
}

TEST(Oneffset, AscendingOrderProperty)
{
    util::Xoshiro256 rng(0x0ff6);
    for (int i = 0; i < 5000; i++) {
        auto n = static_cast<uint16_t>(rng.nextBounded(65536));
        auto list = encodeOneffsets(n);
        for (size_t k = 1; k < list.size(); k++)
            EXPECT_LT(list[k - 1].pow, list[k].pow);
    }
}

TEST(OneffsetStream, MatchesBatchEncoding)
{
    util::Xoshiro256 rng(0x5717);
    for (int i = 0; i < 2000; i++) {
        auto n = static_cast<uint16_t>(rng.nextBounded(65536));
        auto expected = encodeOneffsets(n);
        OneffsetStream stream(n);
        for (const auto &want : expected) {
            EXPECT_FALSE(stream.exhausted());
            EXPECT_EQ(stream.next(), want);
        }
        EXPECT_TRUE(stream.exhausted());
    }
}

TEST(OneffsetStream, ExhaustedEmitsNullPadding)
{
    OneffsetStream stream(0b1);
    stream.next();
    EXPECT_TRUE(stream.exhausted());
    Oneffset pad = stream.next();
    EXPECT_FALSE(pad.valid);
    EXPECT_TRUE(pad.eon);
}

TEST(OneffsetStream, RemainingCountsDown)
{
    OneffsetStream stream(0b1011);
    EXPECT_EQ(stream.remaining(), 3);
    stream.next();
    EXPECT_EQ(stream.remaining(), 2);
    stream.next();
    stream.next();
    EXPECT_EQ(stream.remaining(), 0);
}

TEST(OneffsetStream, ReloadDiscardsPending)
{
    OneffsetStream stream(0xffff);
    stream.next();
    stream.load(0b10);
    Oneffset entry = stream.next();
    EXPECT_EQ(entry.pow, 1);
    EXPECT_TRUE(entry.eon);
    EXPECT_TRUE(stream.exhausted());
}

TEST(OneffsetStorage, CanExceedSixteenBits)
{
    // Section V-A1: the explicit representation may need more bits
    // than the positional one, which is why it is not a storage
    // format. 4 or more set bits -> 5 bits/entry >= 20 bits.
    EXPECT_EQ(oneffsetStorageBits(0), 5);
    EXPECT_EQ(oneffsetStorageBits(0b1), 5);
    EXPECT_EQ(oneffsetStorageBits(0b1111), 20);
    EXPECT_EQ(oneffsetStorageBits(0xffff), 80);
}

TEST(OneffsetDecode, RejectsMalformedLists)
{
    // eon not on last entry.
    std::vector<Oneffset> bad = {{0, true, true}, {1, true, true}};
    EXPECT_DEATH(decodeOneffsets(bad), "eon");
    // Duplicate power.
    std::vector<Oneffset> dup = {{3, false, true}, {3, true, true}};
    EXPECT_DEATH(decodeOneffsets(dup), "duplicate");
    // Empty list.
    EXPECT_DEATH(decodeOneffsets({}), "empty");
}

} // namespace
} // namespace fixedpoint
} // namespace pra
