/**
 * @file
 * Tests for precision windows and trimming (paper Section V-F).
 */

#include <gtest/gtest.h>

#include "fixedpoint/fixed_point.h"
#include "fixedpoint/precision.h"
#include "util/random.h"

namespace pra {
namespace fixedpoint {
namespace {

TEST(PrecisionWindow, BitsAndMask)
{
    PrecisionWindow w{8, 2};
    EXPECT_EQ(w.bits(), 7);
    EXPECT_EQ(w.mask(), 0b0000'0001'1111'1100);
    EXPECT_TRUE(w.valid());
}

TEST(PrecisionWindow, FullWidthMask)
{
    PrecisionWindow w{15, 0};
    EXPECT_EQ(w.bits(), 16);
    EXPECT_EQ(w.mask(), 0xffff);
}

TEST(PrecisionWindow, SingleBitMask)
{
    PrecisionWindow w{5, 5};
    EXPECT_EQ(w.bits(), 1);
    EXPECT_EQ(w.mask(), 1u << 5);
}

TEST(PrecisionWindow, InvalidWindows)
{
    EXPECT_FALSE((PrecisionWindow{2, 5}).valid());
    EXPECT_FALSE((PrecisionWindow{16, 0}).valid());
    EXPECT_FALSE((PrecisionWindow{5, -1}).valid());
}

TEST(TrimToWindow, RemovesPrefixAndSuffix)
{
    // Figure 1: EoP prefix and suffix bits plus LoE zero bits.
    PrecisionWindow w{6, 2};
    EXPECT_EQ(trimToWindow(0b1111'1111'1111'1111, w), 0b0111'1100);
    EXPECT_EQ(trimToWindow(0b0000'0000'0000'0011, w), 0);
}

TEST(TrimToWindow, NeverIncreasesEssentialBits)
{
    util::Xoshiro256 rng(0x7312);
    PrecisionWindow w{10, 3};
    for (int i = 0; i < 5000; i++) {
        auto v = static_cast<uint16_t>(rng.nextBounded(65536));
        uint16_t t = trimToWindow(v, w);
        EXPECT_LE(essentialBits(t), essentialBits(v));
        EXPECT_LE(t, v);
        // Idempotent.
        EXPECT_EQ(trimToWindow(t, w), t);
    }
}

TEST(ProfileWindow, ZeroToleranceKeepsEveryUsedBit)
{
    std::vector<uint16_t> values = {0b0001'0100, 0b0000'0110};
    PrecisionWindow w = profileWindow(values, 0.0);
    EXPECT_EQ(w.msb, 4);
    EXPECT_EQ(w.lsb, 1);
    EXPECT_EQ(trimLossFraction(values, w), 0.0);
}

TEST(ProfileWindow, AllZeroLayer)
{
    std::vector<uint16_t> values = {0, 0, 0};
    PrecisionWindow w = profileWindow(values);
    EXPECT_TRUE(w.valid());
    EXPECT_EQ(w.bits(), 1);
}

TEST(ProfileWindow, ToleranceShrinksWindow)
{
    // Values with tiny suffix content: a loose tolerance should drop
    // the low bits.
    std::vector<uint16_t> values;
    for (int i = 0; i < 64; i++)
        values.push_back(static_cast<uint16_t>(0x400 | (i & 1)));
    PrecisionWindow strict = profileWindow(values, 0.0);
    PrecisionWindow loose = profileWindow(values, 0.01);
    EXPECT_EQ(strict.lsb, 0);
    EXPECT_GT(loose.lsb, 0);
    EXPECT_LE(loose.bits(), strict.bits());
}

TEST(ProfileWindow, LossStaysWithinTolerance)
{
    util::Xoshiro256 rng(0xbeef);
    for (double tol : {0.0, 0.005, 0.02, 0.1}) {
        std::vector<uint16_t> values;
        for (int i = 0; i < 400; i++)
            values.push_back(
                static_cast<uint16_t>(rng.nextBounded(1u << 12)));
        PrecisionWindow w = profileWindow(values, tol);
        EXPECT_LE(trimLossFraction(values, w), tol + 1e-12);
    }
}

TEST(ProfileWindow, MonotoneInTolerance)
{
    util::Xoshiro256 rng(0xcafe);
    std::vector<uint16_t> values;
    for (int i = 0; i < 300; i++)
        values.push_back(static_cast<uint16_t>(rng.nextBounded(4096)));
    int prev_bits = 17;
    for (double tol : {0.0, 0.01, 0.05, 0.2}) {
        int bits = profileWindow(values, tol).bits();
        EXPECT_LE(bits, prev_bits);
        prev_bits = bits;
    }
}

/** Sweep the paper's Table II precisions as windows. */
class TableIIPrecisions : public ::testing::TestWithParam<int>
{
};

TEST_P(TableIIPrecisions, WindowConstructionIsValid)
{
    int p = GetParam();
    PrecisionWindow w{p - 1 + 2, 2}; // Anchored 2 bits up.
    if (w.msb <= 15) {
        EXPECT_TRUE(w.valid());
        EXPECT_EQ(w.bits(), p);
        EXPECT_EQ(essentialBits(w.mask()), p);
    }
}

INSTANTIATE_TEST_SUITE_P(Precisions, TableIIPrecisions,
                         ::testing::Values(5, 7, 8, 9, 10, 11, 12, 13));

} // namespace
} // namespace fixedpoint
} // namespace pra
