/**
 * @file
 * Tests pinning the area/power model to the paper's Tables III/IV.
 */

#include <gtest/gtest.h>

#include "energy/area_power.h"

namespace pra {
namespace energy {
namespace {

TEST(AreaPower, DadnAnchors)
{
    AreaPower ddn = dadnAreaPower();
    EXPECT_DOUBLE_EQ(ddn.unitArea, 1.55);
    EXPECT_NEAR(ddn.chipArea, 90.0, 0.5);
    EXPECT_DOUBLE_EQ(ddn.chipPower, 18.8);
}

TEST(AreaPower, StripesAnchors)
{
    AreaPower str = stripesAreaPower();
    EXPECT_DOUBLE_EQ(str.unitArea, 3.05);
    EXPECT_NEAR(str.chipArea, 114.0, 0.5);
    EXPECT_DOUBLE_EQ(str.chipPower, 30.2);
}

TEST(AreaPower, PragmaticPalletTableIII)
{
    const double unit[5] = {3.11, 3.16, 3.54, 4.41, 5.75};
    const double chip[5] = {115, 116, 122, 136, 157};
    const double power[5] = {31.4, 34.5, 38.2, 43.8, 51.6};
    for (int l = 0; l <= 4; l++) {
        AreaPower ap = pragmaticPalletAreaPower(l);
        EXPECT_DOUBLE_EQ(ap.unitArea, unit[l]) << l;
        EXPECT_NEAR(ap.chipArea, chip[l], 1.0) << l;
        EXPECT_DOUBLE_EQ(ap.chipPower, power[l]) << l;
    }
}

TEST(AreaPower, ColumnSyncTableIV)
{
    const struct { int ssrs; double unit; double chip; double power; }
        rows[] = {{1, 3.58, 122, 38.8},
                  {4, 3.73, 125, 40.8},
                  {16, 4.33, 134, 49.1}};
    for (const auto &row : rows) {
        AreaPower ap = pragmaticColumnAreaPower(2, row.ssrs);
        EXPECT_DOUBLE_EQ(ap.unitArea, row.unit) << row.ssrs;
        EXPECT_NEAR(ap.chipArea, row.chip, 1.0) << row.ssrs;
        EXPECT_DOUBLE_EQ(ap.chipPower, row.power) << row.ssrs;
    }
}

TEST(AreaPower, RelativeAreasMatchPaperDeltas)
{
    // Table III's delta-area rows: STR 1.97x, PRA-2b 2.29x unit;
    // chip 1.27x and 1.35x.
    AreaPower ddn = dadnAreaPower();
    EXPECT_NEAR(stripesAreaPower().unitArea / ddn.unitArea, 1.97, 0.02);
    AreaPower p2b = pragmaticPalletAreaPower(2);
    EXPECT_NEAR(p2b.unitArea / ddn.unitArea, 2.29, 0.02);
    EXPECT_NEAR(p2b.chipArea / ddn.chipArea, 1.35, 0.02);
    EXPECT_NEAR(p2b.chipPower / ddn.chipPower, 2.03, 0.02);
}

TEST(AreaPower, MemoryAreaConsistentAcrossDesigns)
{
    // chipArea - 16 * unitArea must be the shared memory area.
    for (const AreaPower &ap :
         {dadnAreaPower(), stripesAreaPower(),
          pragmaticPalletAreaPower(0), pragmaticPalletAreaPower(4),
          pragmaticColumnAreaPower(2, 4)}) {
        EXPECT_NEAR(ap.chipArea - 16.0 * ap.unitArea, memoryArea(),
                    0.01)
            << ap.design;
    }
}

TEST(AreaPower, MonotoneInFirstStageBits)
{
    for (int l = 1; l <= 4; l++) {
        EXPECT_GT(pragmaticPalletAreaPower(l).unitArea,
                  pragmaticPalletAreaPower(l - 1).unitArea);
        EXPECT_GT(pragmaticPalletAreaPower(l).chipPower,
                  pragmaticPalletAreaPower(l - 1).chipPower);
    }
}

TEST(AreaPower, SsrAreaFitMatchesTableIV)
{
    // ~0.05 mm^2 per SSR, consistent with the 1R->16R delta.
    EXPECT_NEAR(ssrUnitArea(), 0.05, 0.01);
    // Interpolated 8-SSR point sits between the published 4 and 16.
    AreaPower r8 = pragmaticColumnAreaPower(2, 8);
    EXPECT_GT(r8.unitArea, pragmaticColumnAreaPower(2, 4).unitArea);
    EXPECT_LT(r8.unitArea, pragmaticColumnAreaPower(2, 16).unitArea);
    EXPECT_GT(r8.chipPower, pragmaticColumnAreaPower(2, 4).chipPower);
    EXPECT_LT(r8.chipPower, pragmaticColumnAreaPower(2, 16).chipPower);
}

TEST(AreaPower, ColumnSyncComposesForOtherL)
{
    // Non-2b column configs compose from the pallet base + control +
    // SSRs and stay ordered.
    AreaPower l0 = pragmaticColumnAreaPower(0, 1);
    AreaPower l4 = pragmaticColumnAreaPower(4, 1);
    EXPECT_GT(l4.unitArea, l0.unitArea);
    EXPECT_GT(l0.unitArea, pragmaticPalletAreaPower(0).unitArea);
}

TEST(AreaPower, MemoryPowerShareIsPlausible)
{
    EXPECT_GT(memoryPowerShare(), 0.2);
    EXPECT_LT(memoryPowerShare(), 0.8);
    EXPECT_NEAR(memoryPower(),
                memoryPowerShare() * dadnAreaPower().chipPower, 1e-9);
}

TEST(EnergyEfficiency, PaperFigure11Identities)
{
    // Section VI-D's numbers follow from eff = speedup * P_b / P_n:
    // STR at 1.85x speedup and 30.2 W -> ~1.16x efficiency.
    double str = energyEfficiency(1.85, 18.8, 30.2);
    EXPECT_NEAR(str, 1.16, 0.02);
    // PRA-4b at 2.59x -> ~0.95 (5% LESS efficient).
    double pra4 = energyEfficiency(2.59, 18.8, 51.6);
    EXPECT_NEAR(pra4, 0.95, 0.02);
    // PRA-2b at 2.59x -> ~1.28.
    double pra2 = energyEfficiency(2.59, 18.8, 38.2);
    EXPECT_NEAR(pra2, 1.28, 0.02);
    // PRA-2b-1R at 3.1x -> ~1.48.
    double pra2r = energyEfficiency(3.1, 18.8, 38.8);
    EXPECT_NEAR(pra2r, 1.50, 0.03);
}

TEST(EnergyEfficiency, RejectsBadInput)
{
    EXPECT_DEATH(energyEfficiency(0.0, 1.0, 1.0), "non-positive");
    EXPECT_DEATH(energyEfficiency(1.0, 0.0, 1.0), "non-positive");
}

TEST(AreaPower, BadArgumentsPanics)
{
    EXPECT_DEATH(pragmaticPalletAreaPower(5), "bad L");
    EXPECT_DEATH(pragmaticColumnAreaPower(2, 0), "SSR");
}

} // namespace
} // namespace energy
} // namespace pra
