/**
 * @file
 * Per-access memory energy tests: hand-computed pJ totals from byte
 * counts, the double-charged scratchpad rule, the memoryModeled
 * precondition, and network aggregation.
 */

#include <gtest/gtest.h>

#include "energy/memory_energy.h"
#include "sim/layer_result.h"

using namespace pra;
using namespace pra::energy;

namespace {

TEST(MemoryEnergyTest, HandComputedBreakdown)
{
    // 1000 on-chip bytes, 100 off-chip bytes at the default costs.
    MemoryEnergy e = memoryAccessEnergy(1000.0, 100.0);
    EXPECT_DOUBLE_EQ(e.globalBufferPJ, 1000.0 * 1.2);
    // Every on-chip byte is written into and read out of a
    // scratchpad: charged twice.
    EXPECT_DOUBLE_EQ(e.scratchpadPJ, 1000.0 * 2.0 * 0.12);
    EXPECT_DOUBLE_EQ(e.dramPJ, 100.0 * 20.0);
    EXPECT_DOUBLE_EQ(e.totalPJ(),
                     e.globalBufferPJ + e.scratchpadPJ + e.dramPJ);
}

TEST(MemoryEnergyTest, CustomCostsAndZeroTraffic)
{
    MemoryAccessCosts costs;
    costs.gbPerByte = 2.0;
    costs.spadPerByte = 0.5;
    costs.dramPerByte = 10.0;
    MemoryEnergy e = memoryAccessEnergy(8.0, 4.0, costs);
    EXPECT_DOUBLE_EQ(e.globalBufferPJ, 16.0);
    EXPECT_DOUBLE_EQ(e.scratchpadPJ, 8.0);
    EXPECT_DOUBLE_EQ(e.dramPJ, 40.0);

    EXPECT_DOUBLE_EQ(memoryAccessEnergy(0.0, 0.0).totalPJ(), 0.0);
}

TEST(MemoryEnergyTest, DramDominatesOnSpill)
{
    // The health property the module documents: at the default costs
    // a spilled layer (off-chip ~ on-chip) is DRAM-dominated.
    MemoryEnergy e = memoryAccessEnergy(1.0e6, 1.0e6);
    EXPECT_GT(e.dramPJ, e.globalBufferPJ + e.scratchpadPJ);
}

TEST(MemoryEnergyTest, LayerRequiresLiveMemoryColumns)
{
    sim::LayerResult result;
    result.cycles = 100.0;
    EXPECT_DEATH(layerMemoryEnergy(result), "no memory columns");

    result.memoryModeled = true;
    result.onChipBytes = 1000.0;
    result.offChipBytes = 100.0;
    MemoryEnergy e = layerMemoryEnergy(result);
    EXPECT_DOUBLE_EQ(e.totalPJ(),
                     memoryAccessEnergy(1000.0, 100.0).totalPJ());
}

TEST(MemoryEnergyTest, NetworkSumsLayers)
{
    sim::NetworkResult result;
    for (double scale : {1.0, 2.0, 3.0}) {
        sim::LayerResult layer;
        layer.memoryModeled = true;
        layer.onChipBytes = 1000.0 * scale;
        layer.offChipBytes = 100.0 * scale;
        result.layers.push_back(layer);
    }
    MemoryEnergy total = networkMemoryEnergy(result);
    // Linear in bytes: the sum is 6x the unit layer.
    MemoryEnergy unit = memoryAccessEnergy(1000.0, 100.0);
    EXPECT_DOUBLE_EQ(total.globalBufferPJ, 6.0 * unit.globalBufferPJ);
    EXPECT_DOUBLE_EQ(total.scratchpadPJ, 6.0 * unit.scratchpadPJ);
    EXPECT_DOUBLE_EQ(total.dramPJ, 6.0 * unit.dramPJ);
}

} // namespace
