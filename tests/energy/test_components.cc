/**
 * @file
 * Tests for the bottom-up component area decomposition. These are
 * tolerance checks: the decomposition must track the published
 * per-design ratios, not reproduce synthesis exactly.
 */

#include <gtest/gtest.h>

#include "energy/area_power.h"
#include "energy/components.h"

namespace pra {
namespace energy {
namespace {

TEST(Components, TreeWidthFollowsSectionVD)
{
    EXPECT_EQ(pipTreeWidth(0), 16);
    EXPECT_EQ(pipTreeWidth(1), 17);
    EXPECT_EQ(pipTreeWidth(2), 19);
    EXPECT_EQ(pipTreeWidth(3), 23);
    EXPECT_EQ(pipTreeWidth(4), 31);
}

TEST(Components, PrimitivesArePositive)
{
    EXPECT_GT(multiplier16Area(), 0.0);
    EXPECT_GT(adderTreeArea(16, 16), 0.0);
    EXPECT_GT(stripesSipArea(), 0.0);
    EXPECT_GT(ssrComponentArea(), 0.0);
}

TEST(Components, AdderTreeScalesWithShape)
{
    EXPECT_GT(adderTreeArea(16, 32), adderTreeArea(16, 16));
    EXPECT_GT(adderTreeArea(32, 16), adderTreeArea(16, 16));
}

TEST(Components, PipAreaGrowsWithFirstStage)
{
    for (int l = 1; l <= 4; l++)
        EXPECT_GT(pragmaticPipArea(l), pragmaticPipArea(l - 1));
}

TEST(Components, DadnEstimateNearPublished)
{
    // The overhead constant is normalized against this anchor.
    EXPECT_NEAR(dadnUnitAreaEstimate(), dadnAreaPower().unitArea,
                dadnAreaPower().unitArea * 0.15);
}

TEST(Components, RelativeEstimatesTrackPublishedRatios)
{
    // First-principles decomposition tracks the published unit-area
    // ratios within a generous band (it is an estimate, not
    // synthesis).
    double ddn = dadnUnitAreaEstimate();
    for (int l = 0; l <= 4; l++) {
        double model_ratio = pragmaticUnitAreaEstimate(l) / ddn;
        double paper_ratio = pragmaticPalletAreaPower(l).unitArea /
                             dadnAreaPower().unitArea;
        EXPECT_GT(model_ratio, paper_ratio * 0.55) << l;
        EXPECT_LT(model_ratio, paper_ratio * 1.55) << l;
    }
    double stripes_ratio = stripesUnitAreaEstimate() / ddn;
    double paper_stripes = stripesAreaPower().unitArea /
                           dadnAreaPower().unitArea;
    EXPECT_GT(stripes_ratio, paper_stripes * 0.45);
    EXPECT_LT(stripes_ratio, paper_stripes * 1.55);
}

TEST(Components, SsrEstimateNearTableIvFit)
{
    // One SSR holds 256 x 16-bit synapses: ~0.03-0.08 mm^2 routed.
    double est = ssrComponentArea() / 1e6 * PrimitiveCosts{}.overhead;
    EXPECT_GT(est, 0.02);
    EXPECT_LT(est, 0.09);
}

TEST(Components, CustomCostsPropagate)
{
    PrimitiveCosts cheap;
    cheap.faBit = 5.0;
    EXPECT_LT(multiplier16Area(cheap), multiplier16Area());
    EXPECT_LT(dadnUnitAreaEstimate(cheap), dadnUnitAreaEstimate());
}

TEST(Components, BadArgumentsPanics)
{
    EXPECT_DEATH(pragmaticPipArea(7), "bad L");
    EXPECT_DEATH(adderTreeArea(1, 16), "bad shape");
}

} // namespace
} // namespace energy
} // namespace pra
