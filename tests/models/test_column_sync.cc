/**
 * @file
 * Tests for per-column synchronization with SSRs (paper Section V-E).
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/dadn/dadn.h"
#include "models/pragmatic/column_sync.h"
#include "models/pragmatic/tile.h"
#include "sim/tiling.h"
#include "util/random.h"

namespace pra {
namespace models {
namespace {

dnn::LayerSpec
evenLayer()
{
    dnn::LayerSpec spec;
    spec.name = "even";
    spec.inputX = 18;
    spec.inputY = 18;
    spec.inputChannels = 32;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 256;
    spec.stride = 1;
    spec.pad = 0;
    spec.profiledPrecision = 8;
    return spec;
}

dnn::NeuronTensor
randomInput(const dnn::LayerSpec &layer, uint64_t seed,
            double zero_prob = 0.5, uint32_t bound = 4096)
{
    dnn::NeuronTensor t(layer.inputX, layer.inputY,
                        layer.inputChannels);
    util::Xoshiro256 rng(seed);
    for (auto &v : t.flat())
        v = rng.nextBool(zero_prob)
                ? 0
                : static_cast<uint16_t>(rng.nextBounded(bound));
    return t;
}

ColumnSyncConfig
config(int ssrs, bool nm = false)
{
    ColumnSyncConfig c;
    c.firstStageBits = 2;
    c.ssrCount = ssrs;
    c.modelNmStalls = nm;
    return c;
}

TEST(ColumnSync, UniformInputMatchesPalletSync)
{
    // When every brick costs the same, columns stay in lockstep and
    // per-column sync offers nothing.
    auto layer = evenLayer();
    dnn::NeuronTensor input(layer.inputX, layer.inputY,
                            layer.inputChannels);
    for (auto &v : input.flat())
        v = 0b101;
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto pallet = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    auto column = simulateLayerColumnSync(layer, input, accel,
                                          config(1), sim::SampleSpec{0});
    EXPECT_NEAR(column.cycles, pallet.cycles, pallet.cycles * 0.02);
}

TEST(ColumnSync, NeverSlowerThanPalletSync)
{
    auto layer = evenLayer();
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        auto input = randomInput(layer, seed);
        auto pallet = simulateLayerPalletSync(layer, input, accel,
                                              tile, sim::SampleSpec{0});
        auto column = simulateLayerColumnSync(layer, input, accel,
                                              config(1),
                                              sim::SampleSpec{0});
        // A small slack term covers pipeline fill at the stream head.
        EXPECT_LE(column.cycles, pallet.cycles * 1.02) << seed;
    }
}

TEST(ColumnSync, MonotoneInSsrCount)
{
    auto layer = evenLayer();
    auto input = randomInput(layer, 7);
    sim::AccelConfig accel;
    double prev = 1e18;
    for (int ssrs : {1, 2, 4, 8, 16}) {
        auto result = simulateLayerColumnSync(layer, input, accel,
                                              config(ssrs),
                                              sim::SampleSpec{0});
        EXPECT_LE(result.cycles, prev * 1.0001) << ssrs;
        prev = result.cycles;
    }
    // Ideal (infinite SSRs) is the floor.
    auto ideal = simulateLayerColumnSync(layer, input, accel,
                                         config(0), sim::SampleSpec{0});
    EXPECT_LE(ideal.cycles, prev * 1.0001);
}

TEST(ColumnSync, SixteenSsrsNearIdeal)
{
    // Section VI-C: performance saturates quickly with SSR count.
    auto layer = evenLayer();
    auto input = randomInput(layer, 11);
    sim::AccelConfig accel;
    auto r16 = simulateLayerColumnSync(layer, input, accel, config(16),
                                       sim::SampleSpec{0});
    auto ideal = simulateLayerColumnSync(layer, input, accel, config(0),
                                         sim::SampleSpec{0});
    EXPECT_NEAR(r16.cycles / ideal.cycles, 1.0, 0.05);
}

TEST(ColumnSync, WorstCaseStillMatchesDaDn)
{
    auto layer = evenLayer();
    dnn::NeuronTensor input(layer.inputX, layer.inputY,
                            layer.inputChannels);
    for (auto &v : input.flat())
        v = 0xffff;
    sim::AccelConfig accel;
    auto result = simulateLayerColumnSync(layer, input, accel,
                                          config(1), sim::SampleSpec{0});
    DadnModel dadn(accel);
    // Columns all take 16 cycles per set: identical to DaDN plus the
    // one-cycle SB pipeline fill.
    EXPECT_NEAR(result.cycles, dadn.layerCycles(layer),
                dadn.layerCycles(layer) * 0.01);
}

TEST(ColumnSync, IdealBoundedByBusiestColumn)
{
    auto layer = evenLayer();
    auto input = randomInput(layer, 13);
    sim::AccelConfig accel;
    auto ideal = simulateLayerColumnSync(layer, input, accel, config(0),
                                         sim::SampleSpec{0});
    // The busiest single column is a hard lower bound; with B sets
    // per pallet the total can't beat pallets * sets (1 cycle min).
    sim::LayerTiling tiling(layer, accel);
    EXPECT_GE(ideal.cycles,
              static_cast<double>(tiling.numPallets() *
                                  tiling.numSynapseSets()));
}

TEST(ColumnSync, EngineNames)
{
    auto layer = evenLayer();
    auto input = randomInput(layer, 17);
    sim::AccelConfig accel;
    auto r1 = simulateLayerColumnSync(layer, input, accel, config(1),
                                      sim::SampleSpec{16});
    EXPECT_EQ(r1.engineName, "PRA-perCol");
    auto ideal = simulateLayerColumnSync(layer, input, accel,
                                         config(0), sim::SampleSpec{16});
    EXPECT_EQ(ideal.engineName, "PRA-perCol-ideal");
}

TEST(ColumnSync, NmModelOnlyAddsCycles)
{
    auto net = dnn::makeAlexNet();
    dnn::ActivationSynthesizer synth(net);
    auto input = synth.synthesizeFixed16Trimmed(0);
    const auto &layer = net.layers[0];
    sim::AccelConfig accel;
    auto with = simulateLayerColumnSync(layer, input, accel,
                                        config(1, true),
                                        sim::SampleSpec{32});
    auto without = simulateLayerColumnSync(layer, input, accel,
                                           config(1, false),
                                           sim::SampleSpec{32});
    EXPECT_GE(with.cycles, without.cycles);
}

/** SSR sweep shows diminishing returns, mirroring Figure 10. */
class SsrSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SsrSweep, GainOverOneSsrIsBounded)
{
    int ssrs = GetParam();
    auto layer = evenLayer();
    auto input = randomInput(layer, 23, 0.6, 1u << 12);
    sim::AccelConfig accel;
    auto base = simulateLayerColumnSync(layer, input, accel, config(1),
                                        sim::SampleSpec{0});
    auto more = simulateLayerColumnSync(layer, input, accel,
                                        config(ssrs),
                                        sim::SampleSpec{0});
    double gain = base.cycles / more.cycles;
    EXPECT_GE(gain, 0.999);
    EXPECT_LE(gain, 1.6); // Section VI-C: one SSR is nearly enough.
}

INSTANTIATE_TEST_SUITE_P(Counts, SsrSweep,
                         ::testing::Values(2, 4, 8, 16));

} // namespace
} // namespace models
} // namespace pra
