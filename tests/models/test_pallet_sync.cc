/**
 * @file
 * Tests for the pallet-synchronization engine (paper Section V-A4).
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/dadn/dadn.h"
#include "models/pragmatic/tile.h"
#include "sim/tiling.h"
#include "util/random.h"

namespace pra {
namespace models {
namespace {

dnn::LayerSpec
evenLayer()
{
    // 16x16 windows: exactly 16 pallets, no partial edges.
    dnn::LayerSpec spec;
    spec.name = "even";
    spec.inputX = 18;
    spec.inputY = 18;
    spec.inputChannels = 32;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 256;
    spec.stride = 1;
    spec.pad = 0;
    spec.profiledPrecision = 8;
    return spec;
}

dnn::NeuronTensor
constantInput(const dnn::LayerSpec &layer, uint16_t value)
{
    dnn::NeuronTensor t(layer.inputX, layer.inputY,
                        layer.inputChannels);
    for (auto &v : t.flat())
        v = value;
    return t;
}

TEST(PalletSync, WorstCaseEqualsDaDn)
{
    // All-ones neurons: every brick takes 16 cycles, exactly DaDN's
    // per-pallet cost — the paper's "always match DaDN" guarantee.
    auto layer = evenLayer();
    auto input = constantInput(layer, 0xffff);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto result = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    DadnModel dadn(accel);
    EXPECT_DOUBLE_EQ(result.cycles, dadn.layerCycles(layer));
}

TEST(PalletSync, SingleBitNeuronsGiveSixteenX)
{
    auto layer = evenLayer();
    auto input = constantInput(layer, 0b100);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto result = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    DadnModel dadn(accel);
    EXPECT_DOUBLE_EQ(dadn.layerCycles(layer) / result.cycles, 16.0);
}

TEST(PalletSync, AllZeroInputStillPaysOneCyclePerSet)
{
    auto layer = evenLayer();
    auto input = constantInput(layer, 0);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto result = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    sim::LayerTiling tiling(layer, accel);
    EXPECT_DOUBLE_EQ(result.cycles,
                     static_cast<double>(tiling.numPallets() *
                                         tiling.numSynapseSets()));
}

TEST(PalletSync, NeverSlowerThanDaDnOnRandomData)
{
    auto layer = evenLayer();
    util::Xoshiro256 rng(0xaaaa);
    auto input = constantInput(layer, 0);
    for (auto &v : input.flat())
        v = static_cast<uint16_t>(rng.nextBounded(65536));
    sim::AccelConfig accel;
    DadnModel dadn(accel);
    for (int l = 0; l <= 4; l++) {
        PragmaticTileConfig tile;
        tile.firstStageBits = l;
        tile.modelNmStalls = false;
        auto result = simulateLayerPalletSync(layer, input, accel,
                                              tile, sim::SampleSpec{0});
        EXPECT_LE(result.cycles, dadn.layerCycles(layer) + 1e-9) << l;
    }
}

TEST(PalletSync, MonotoneInFirstStageBits)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    auto input = synth.synthesizeFixed16(1);
    const auto &layer = net.layers[1];
    sim::AccelConfig accel;
    double prev = 1e18;
    for (int l = 0; l <= 4; l++) {
        PragmaticTileConfig tile;
        tile.firstStageBits = l;
        tile.modelNmStalls = false;
        auto result = simulateLayerPalletSync(layer, input, accel,
                                              tile, sim::SampleSpec{0});
        EXPECT_LE(result.cycles, prev) << l;
        prev = result.cycles;
    }
}

TEST(PalletSync, SamplingIsUnbiasedOnUniformData)
{
    auto layer = evenLayer();
    auto input = constantInput(layer, 0b1010);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto full = simulateLayerPalletSync(layer, input, accel, tile,
                                        sim::SampleSpec{0});
    auto sampled = simulateLayerPalletSync(layer, input, accel, tile,
                                           sim::SampleSpec{4});
    EXPECT_DOUBLE_EQ(full.cycles, sampled.cycles);
    EXPECT_GT(sampled.sampleScale, 1.0);
}

TEST(PalletSync, SamplingCloseOnRandomData)
{
    auto layer = evenLayer();
    util::Xoshiro256 rng(0xbbbb);
    auto input = constantInput(layer, 0);
    for (auto &v : input.flat())
        v = rng.nextBool(0.5)
                ? static_cast<uint16_t>(rng.nextBounded(256))
                : 0;
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto full = simulateLayerPalletSync(layer, input, accel, tile,
                                        sim::SampleSpec{0});
    auto sampled = simulateLayerPalletSync(layer, input, accel, tile,
                                           sim::SampleSpec{8});
    EXPECT_NEAR(sampled.cycles / full.cycles, 1.0, 0.1);
}

TEST(PalletSync, NmStallsOnlyAddCycles)
{
    auto net = dnn::makeAlexNet();
    dnn::ActivationSynthesizer synth(net);
    auto input = synth.synthesizeFixed16Trimmed(0);
    const auto &layer = net.layers[0]; // stride 4: visible stalls.
    sim::AccelConfig accel;
    PragmaticTileConfig with;
    PragmaticTileConfig without;
    without.modelNmStalls = false;
    auto stalled = simulateLayerPalletSync(layer, input, accel, with,
                                           sim::SampleSpec{32});
    auto clean = simulateLayerPalletSync(layer, input, accel, without,
                                         sim::SampleSpec{32});
    EXPECT_GE(stalled.cycles, clean.cycles);
    EXPECT_GE(stalled.nmStallCycles, 0.0);
    EXPECT_DOUBLE_EQ(clean.nmStallCycles, 0.0);
}

TEST(PalletSync, EffectualTermsScaleWithFilters)
{
    auto layer = evenLayer();
    auto input = constantInput(layer, 0b11);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    tile.modelNmStalls = false;
    auto result = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    // Every neuron use contributes 2 essential bits x 256 filters.
    double uses = static_cast<double>(layer.windows()) *
                  layer.filterX * layer.filterY * layer.inputChannels;
    EXPECT_DOUBLE_EQ(result.effectualTerms,
                     uses * 2.0 * layer.numFilters);
}

TEST(PalletSync, SbReadsMatchDaDnSchedule)
{
    auto layer = evenLayer();
    auto input = constantInput(layer, 1);
    sim::AccelConfig accel;
    PragmaticTileConfig tile;
    auto result = simulateLayerPalletSync(layer, input, accel, tile,
                                          sim::SampleSpec{0});
    sim::LayerTiling tiling(layer, accel);
    EXPECT_DOUBLE_EQ(result.sbReadSteps,
                     static_cast<double>(tiling.numPallets() *
                                         tiling.numSynapseSets()));
}

} // namespace
} // namespace models
} // namespace pra
