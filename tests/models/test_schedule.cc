/**
 * @file
 * Tests for the 2-stage-shifting brick schedule (paper Section V-D),
 * including a reconstruction of Figure 7b's cycle-by-cycle example.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>
#include <span>
#include <vector>

#include "models/pragmatic/schedule.h"
#include "util/random.h"

namespace pra {
namespace models {
namespace {

TEST(Schedule, EmptyAndZeroBricks)
{
    std::vector<uint16_t> none;
    EXPECT_EQ(brickScheduleCycles(none, 2), 0);
    std::vector<uint16_t> zeros(16, 0);
    EXPECT_EQ(brickScheduleCycles(zeros, 2), 0);
    EXPECT_EQ(brickScheduleTrace(zeros, 2).numCycles(), 0);
}

TEST(Schedule, SingleLaneIsPopcount)
{
    // One neuron: one oneffset per cycle regardless of L (its head is
    // always the minimum).
    for (int l = 0; l <= 4; l++) {
        std::vector<uint16_t> brick = {0b1011'0101};
        EXPECT_EQ(brickScheduleCycles(brick, l), 5) << l;
    }
}

TEST(Schedule, Figure7bExample)
{
    // Figure 7b behaviour with L == 2: cycle 1 processes oneffsets
    // (1, 0) and stalls the lane at 4 (diff 4 >= 2^2); cycle 2's
    // minimum is 4 with first-stage shifts (2, 3, 0); the third
    // neuron finishes alone in cycle 4.
    std::vector<uint16_t> brick = {
        static_cast<uint16_t>((1u << 1) | (1u << 6) | (1u << 8)),
        static_cast<uint16_t>((1u << 0) | (1u << 7)),
        static_cast<uint16_t>((1u << 4) | (1u << 8) | (1u << 12)),
    };
    ScheduleTrace trace = brickScheduleTrace(brick, 2);
    ASSERT_EQ(trace.numCycles(), 4);

    EXPECT_EQ(trace.cycles[0].secondStageShift, 0);
    EXPECT_EQ(trace.cycles[0].firedLanes, 0b011);
    EXPECT_EQ(trace.cycles[0].firstStageShift[0], 1);
    EXPECT_EQ(trace.cycles[0].firstStageShift[1], 0);

    EXPECT_EQ(trace.cycles[1].secondStageShift, 4);
    EXPECT_EQ(trace.cycles[1].firedLanes, 0b111);
    EXPECT_EQ(trace.cycles[1].firstStageShift[0], 2);
    EXPECT_EQ(trace.cycles[1].firstStageShift[1], 3);
    EXPECT_EQ(trace.cycles[1].firstStageShift[2], 0);

    EXPECT_EQ(trace.cycles[2].secondStageShift, 8);
    EXPECT_EQ(trace.cycles[2].firedLanes, 0b101);

    EXPECT_EQ(trace.cycles[3].secondStageShift, 12);
    EXPECT_EQ(trace.cycles[3].firedLanes, 0b100);
}

TEST(Schedule, SingleStageIsMaxPopcount)
{
    util::Xoshiro256 rng(0x1111);
    for (int trial = 0; trial < 2000; trial++) {
        std::vector<uint16_t> brick(16);
        int max_pop = 0;
        for (auto &n : brick) {
            n = static_cast<uint16_t>(rng.nextBounded(65536));
            max_pop = std::max(max_pop, std::popcount(n));
        }
        EXPECT_EQ(brickScheduleCycles(brick, 4), max_pop);
    }
}

TEST(Schedule, ZeroBitFirstStageIsDistinctOffsets)
{
    util::Xoshiro256 rng(0x2222);
    for (int trial = 0; trial < 2000; trial++) {
        std::vector<uint16_t> brick(16);
        uint16_t unified = 0;
        for (auto &n : brick) {
            n = static_cast<uint16_t>(rng.nextBounded(65536));
            unified |= n;
        }
        EXPECT_EQ(brickScheduleCycles(brick, 0), std::popcount(unified));
    }
}

TEST(Schedule, MonotoneInFirstStageWidth)
{
    util::Xoshiro256 rng(0x3333);
    for (int trial = 0; trial < 2000; trial++) {
        std::vector<uint16_t> brick(16);
        for (auto &n : brick)
            n = static_cast<uint16_t>(rng.nextBounded(65536));
        int prev = 17;
        for (int l = 0; l <= 4; l++) {
            int cycles = brickScheduleCycles(brick, l);
            EXPECT_LE(cycles, prev);
            prev = cycles;
        }
    }
}

TEST(Schedule, BoundedBySixteenAndBelowByMaxPopcount)
{
    // Never slower than DaDN's 16 cycles per pallet step
    // (Section V-A3) and never faster than the busiest lane.
    util::Xoshiro256 rng(0x4444);
    for (int trial = 0; trial < 2000; trial++) {
        std::vector<uint16_t> brick(16);
        int max_pop = 0;
        for (auto &n : brick) {
            n = static_cast<uint16_t>(rng.nextBounded(65536));
            max_pop = std::max(max_pop, std::popcount(n));
        }
        for (int l = 0; l <= 4; l++) {
            int cycles = brickScheduleCycles(brick, l);
            EXPECT_LE(cycles, 16);
            EXPECT_GE(cycles, max_pop);
        }
    }
}

TEST(Schedule, WorstCaseAllOnes)
{
    std::vector<uint16_t> brick(16, 0xffff);
    for (int l = 0; l <= 4; l++)
        EXPECT_EQ(brickScheduleCycles(brick, l), 16);
}

TEST(Schedule, TraceConsumesEveryBitExactlyOnce)
{
    util::Xoshiro256 rng(0x5555);
    for (int trial = 0; trial < 300; trial++) {
        std::vector<uint16_t> brick(16);
        for (auto &n : brick)
            n = static_cast<uint16_t>(rng.nextBounded(65536));
        int l = static_cast<int>(rng.nextBounded(5));
        ScheduleTrace trace = brickScheduleTrace(brick, l);
        // Rebuild each lane's value from the trace.
        std::vector<uint16_t> rebuilt(16, 0);
        for (const auto &cycle : trace.cycles) {
            for (int lane = 0; lane < 16; lane++) {
                if (!(cycle.firedLanes >> lane & 1))
                    continue;
                int pos = cycle.secondStageShift +
                          cycle.firstStageShift[lane];
                uint16_t bit = static_cast<uint16_t>(1u << pos);
                EXPECT_EQ(rebuilt[lane] & bit, 0) << "double fire";
                rebuilt[lane] |= bit;
            }
        }
        for (int lane = 0; lane < 16; lane++)
            EXPECT_EQ(rebuilt[lane], brick[lane]);
    }
}

TEST(Schedule, SecondStageShiftsStrictlyIncrease)
{
    util::Xoshiro256 rng(0x6666);
    for (int trial = 0; trial < 300; trial++) {
        std::vector<uint16_t> brick(16);
        for (auto &n : brick)
            n = static_cast<uint16_t>(rng.nextBounded(65536));
        for (int l = 0; l <= 4; l++) {
            ScheduleTrace trace = brickScheduleTrace(brick, l);
            for (size_t c = 1; c < trace.cycles.size(); c++)
                EXPECT_GT(trace.cycles[c].secondStageShift,
                          trace.cycles[c - 1].secondStageShift);
        }
    }
}

TEST(Schedule, FirstStageShiftsWithinReach)
{
    util::Xoshiro256 rng(0x7777);
    for (int trial = 0; trial < 300; trial++) {
        std::vector<uint16_t> brick(16);
        for (auto &n : brick)
            n = static_cast<uint16_t>(rng.nextBounded(65536));
        for (int l = 0; l <= 4; l++) {
            for (const auto &cycle : brickScheduleTrace(brick, l)
                                         .cycles) {
                for (int lane = 0; lane < 16; lane++) {
                    if (cycle.firedLanes >> lane & 1) {
                        EXPECT_LT(cycle.firstStageShift[lane], 1 << l);
                    }
                }
            }
        }
    }
}

TEST(ScheduleRow, MatchesSerialKernelOnRandomRows)
{
    // The batched row kernel is the serial kernel expressed
    // branchlessly: every brick of every random row must agree for
    // every first-stage width, including partial last bricks
    // (channels not a multiple of 16) and single-channel columns.
    util::Xoshiro256 rng(0x8888);
    for (int trial = 0; trial < 200; trial++) {
        int columns = 1 + static_cast<int>(rng.nextBounded(7));
        int channels = 1 + static_cast<int>(rng.nextBounded(40));
        int bricks = (channels + 15) / 16;
        std::vector<uint16_t> row(
            static_cast<size_t>(columns) * channels);
        for (auto &n : row) {
            // Mix dense and sparse columns so orPop == maxPop bricks
            // and genuinely divergent bricks both occur.
            n = rng.nextBool(0.3)
                    ? 0
                    : static_cast<uint16_t>(rng.nextBounded(65536));
        }
        for (int l = 0; l <= 4; l++) {
            std::vector<uint8_t> out(
                static_cast<size_t>(columns) * bricks, 0xcc);
            scheduleCyclesRow(row, columns, channels, l, out);
            for (int x = 0; x < columns; x++) {
                for (int b = 0; b < bricks; b++) {
                    int lanes = std::min(16, channels - b * 16);
                    std::span<const uint16_t> brick(
                        row.data() +
                            static_cast<size_t>(x) * channels +
                            b * 16,
                        static_cast<size_t>(lanes));
                    EXPECT_EQ(out[static_cast<size_t>(x) * bricks + b],
                              brickScheduleCycles(brick, l))
                        << "columns=" << columns
                        << " channels=" << channels << " x=" << x
                        << " brick=" << b << " l=" << l;
                }
            }
        }
    }
}

TEST(ScheduleRow, ZeroAndWorstCaseRows)
{
    std::vector<uint16_t> zeros(3 * 20, 0);
    std::vector<uint8_t> out(3 * 2, 0xcc);
    scheduleCyclesRow(zeros, 3, 20, 2, out);
    for (uint8_t cycles : out)
        EXPECT_EQ(cycles, 0);

    std::vector<uint16_t> ones(2 * 16, 0xffff);
    std::vector<uint8_t> worst(2, 0);
    for (int l = 0; l <= 4; l++) {
        scheduleCyclesRow(ones, 2, 16, l, worst);
        EXPECT_EQ(worst[0], 16) << l;
        EXPECT_EQ(worst[1], 16) << l;
    }
}

TEST(ScheduleRow, RejectsBadArguments)
{
    std::vector<uint16_t> row(32, 1);
    std::vector<uint8_t> out(2);
    EXPECT_DEATH(scheduleCyclesRow(row, 2, 16, 5, out),
                 "first-stage");
    EXPECT_DEATH(scheduleCyclesRow(row, 0, 16, 2, out), "empty row");
    // Row or output extents that disagree with columns x channels.
    EXPECT_DEATH(scheduleCyclesRow(row, 3, 16, 2, out),
                 "row extent");
    std::vector<uint8_t> short_out(1);
    EXPECT_DEATH(scheduleCyclesRow(row, 2, 16, 2, short_out),
                 "output extent");
}

TEST(Schedule, RejectsBadArguments)
{
    std::vector<uint16_t> too_many(17, 1);
    EXPECT_DEATH(brickScheduleCycles(too_many, 2), "16 lanes");
    std::vector<uint16_t> brick(4, 1);
    EXPECT_DEATH(brickScheduleCycles(brick, 5), "first-stage");
    EXPECT_DEATH(brickScheduleCycles(brick, -1), "first-stage");
}

/** Parameterized: schedules shrink as values lose essential bits. */
class ScheduleDensity : public ::testing::TestWithParam<int>
{
};

TEST_P(ScheduleDensity, SparserValuesNeverSlower)
{
    int keep_bits = GetParam();
    util::Xoshiro256 rng(keep_bits * 101);
    uint16_t mask = static_cast<uint16_t>((1u << keep_bits) - 1);
    for (int trial = 0; trial < 500; trial++) {
        std::vector<uint16_t> dense(16);
        std::vector<uint16_t> sparse(16);
        for (int i = 0; i < 16; i++) {
            dense[i] = static_cast<uint16_t>(rng.nextBounded(65536));
            sparse[i] = static_cast<uint16_t>(dense[i] & mask);
        }
        for (int l = 0; l <= 4; l++)
            EXPECT_LE(brickScheduleCycles(sparse, l),
                      brickScheduleCycles(dense, l));
    }
}

INSTANTIATE_TEST_SUITE_P(KeepBits, ScheduleDensity,
                         ::testing::Values(2, 5, 8, 11, 14));

} // namespace
} // namespace models
} // namespace pra
