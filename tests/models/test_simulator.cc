/**
 * @file
 * Tests for the top-level Pragmatic simulation driver.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "models/dadn/dadn.h"
#include "models/pragmatic/simulator.h"

namespace pra {
namespace models {
namespace {

SimOptions
fastOptions()
{
    SimOptions opt;
    opt.sample = sim::SampleSpec{16};
    return opt;
}

TEST(Simulator, ConfigLabels)
{
    PragmaticConfig c;
    c.firstStageBits = 2;
    EXPECT_EQ(c.label(), "PRA-2b");
    c.sync = SyncScheme::PerColumn;
    c.ssrCount = 1;
    EXPECT_EQ(c.label(), "PRA-2b-1R");
    c.ssrCount = 0;
    EXPECT_EQ(c.label(), "PRA-2b-idealR");
    c.representation = Representation::Quant8;
    EXPECT_EQ(c.label(), "PRA-2b-idealR-q8");
    PragmaticConfig raw;
    raw.softwareTrim = false;
    EXPECT_EQ(raw.label(), "PRA-2b-notrim");
}

TEST(Simulator, RunsAllLayersDeterministically)
{
    PragmaticSimulator sim;
    auto net = dnn::makeTinyNetwork();
    PragmaticConfig c;
    auto r1 = sim.run(net, c, fastOptions());
    auto r2 = sim.run(net, c, fastOptions());
    ASSERT_EQ(r1.layers.size(), net.layers.size());
    EXPECT_DOUBLE_EQ(r1.totalCycles(), r2.totalCycles());
    EXPECT_EQ(r1.engineName, "PRA-2b");
}

TEST(Simulator, FasterThanDaDnOnRealisticStreams)
{
    PragmaticSimulator sim;
    DadnModel dadn;
    auto net = dnn::makeTinyNetwork();
    PragmaticConfig c;
    auto pra = sim.run(net, c, fastOptions());
    auto base = dadn.run(net);
    EXPECT_GT(pra.speedupOver(base), 1.0);
}

TEST(Simulator, TrimOnlyHelps)
{
    PragmaticSimulator sim;
    auto net = dnn::makeAlexNet();
    PragmaticConfig trimmed;
    PragmaticConfig raw;
    raw.softwareTrim = false;
    auto opt = fastOptions();
    auto with = sim.run(net, trimmed, opt);
    auto without = sim.run(net, raw, opt);
    EXPECT_LE(with.totalCycles(), without.totalCycles());
}

TEST(Simulator, ColumnSyncBeatsPalletSync)
{
    PragmaticSimulator sim;
    auto net = dnn::makeTinyNetwork();
    PragmaticConfig pallet;
    PragmaticConfig column;
    column.sync = SyncScheme::PerColumn;
    column.ssrCount = 1;
    auto opt = fastOptions();
    auto p = sim.run(net, pallet, opt);
    auto c = sim.run(net, column, opt);
    EXPECT_LE(c.totalCycles(), p.totalCycles() * 1.02);
}

TEST(Simulator, QuantizedRepresentationRuns)
{
    PragmaticSimulator sim;
    auto net = dnn::makeTinyNetwork();
    PragmaticConfig c;
    c.representation = Representation::Quant8;
    auto result = sim.run(net, c, fastOptions());
    EXPECT_GT(result.totalCycles(), 0.0);
    // 8-bit codes: at most 8 essential bits per neuron, so PRA can't
    // be slower than half of DaDN's 16-bit-parallel pace.
    DadnModel dadn;
    EXPECT_GT(result.speedupOver(dadn.run(net)), 1.0);
}

TEST(Simulator, QuantizedPrecisionsAreInByteRange)
{
    auto net = dnn::makeAlexNet();
    dnn::ActivationSynthesizer synth(net);
    auto precisions = quantizedPrecisions(synth);
    ASSERT_EQ(precisions.size(), net.layers.size());
    for (int p : precisions) {
        EXPECT_GE(p, 1);
        EXPECT_LE(p, 8);
    }
    // Image layer codes span the full byte.
    EXPECT_EQ(precisions[0], 8);
}

TEST(Simulator, SeedChangesWorkloadNotShape)
{
    PragmaticSimulator sim;
    auto net = dnn::makeTinyNetwork();
    PragmaticConfig c;
    SimOptions a = fastOptions();
    SimOptions b = fastOptions();
    b.seed = 0xdead;
    auto ra = sim.run(net, c, a);
    auto rb = sim.run(net, c, b);
    // Different streams, but statistically similar cycle counts.
    EXPECT_NEAR(ra.totalCycles() / rb.totalCycles(), 1.0, 0.15);
}

TEST(Simulator, InvalidAccelConfigPanics)
{
    sim::AccelConfig bad;
    bad.tiles = 0;
    EXPECT_DEATH(PragmaticSimulator{bad}, "invalid config");
}

} // namespace
} // namespace models
} // namespace pra
