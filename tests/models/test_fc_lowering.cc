/**
 * @file
 * Cross-checks of the fully-connected lowering: every registered
 * engine must price an FC layer bit-for-bit identically to its
 * hand-built 1x1xI convolutional twin, because the lowering maps FC
 * onto exactly the geometry the conv schedule/term paths consume.
 *
 * The twin layers sit at index 1 behind a shared conv stem so the
 * first-layer rules (image-input synthesis override, CVN's
 * cannot-skip-layer-1) apply identically on both sides; the
 * activation streams of same-named layers at the same index of
 * same-named networks are bit-identical by construction.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/engine_registry.h"
#include "sim/sweep.h"

namespace pra {
namespace models {
namespace {

/** The shared conv stem both networks start with. */
dnn::LayerSpec
stemLayer()
{
    dnn::LayerSpec spec;
    spec.name = "stem";
    spec.inputX = 12;
    spec.inputY = 12;
    spec.inputChannels = 16;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 24;
    spec.stride = 1;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    return spec;
}

/** A network named TwinNet whose second layer is @p second. */
dnn::Network
twinNetwork(dnn::LayerSpec second)
{
    dnn::Network net;
    net.name = "TwinNet";
    net.targets = {0.08, 0.18, 0.31, 0.44, 0.19};
    net.layers = {stemLayer(), std::move(second)};
    EXPECT_TRUE(net.valid());
    return net;
}

dnn::Network
fcNetwork()
{
    return twinNetwork(
        dnn::LayerSpec::fullyConnected("twin", 800, 64, 8));
}

dnn::Network
convTwinNetwork()
{
    dnn::LayerSpec twin;
    twin.name = "twin";
    twin.kind = dnn::LayerKind::Conv;
    twin.inputX = 1;
    twin.inputY = 1;
    twin.inputChannels = 800;
    twin.filterX = 1;
    twin.filterY = 1;
    twin.numFilters = 64;
    twin.stride = 1;
    twin.pad = 0;
    twin.profiledPrecision = 8;
    return twinNetwork(std::move(twin));
}

TEST(FcLowering, EveryEngineKindPricesFcAsItsConvTwin)
{
    const sim::EngineRegistry &registry = builtinEngines();
    dnn::Network fc_net = fcNetwork();
    dnn::Network conv_net = convTwinNetwork();
    dnn::ActivationSynthesizer fc_synth(fc_net, 0x5eed);
    dnn::ActivationSynthesizer conv_synth(conv_net, 0x5eed);

    sim::AccelConfig accel;
    sim::SampleSpec sample{0}; // Exhaustive: both layers are tiny.

    ASSERT_EQ(registry.kinds().size(), 7u);
    for (const auto &kind : registry.kinds()) {
        std::unique_ptr<sim::Engine> engine =
            registry.create(kind, {});
        sim::NetworkResult fc_result =
            engine->runNetwork(fc_net, fc_synth, accel, sample);
        sim::NetworkResult conv_result =
            engine->runNetwork(conv_net, conv_synth, accel, sample);
        ASSERT_EQ(fc_result.layers.size(), 2u) << kind;
        ASSERT_EQ(conv_result.layers.size(), 2u) << kind;
        for (size_t l = 0; l < 2; l++) {
            const auto &a = fc_result.layers[l];
            const auto &b = conv_result.layers[l];
            EXPECT_EQ(a.cycles, b.cycles) << kind << " layer " << l;
            EXPECT_EQ(a.nmStallCycles, b.nmStallCycles)
                << kind << " layer " << l;
            EXPECT_EQ(a.effectualTerms, b.effectualTerms)
                << kind << " layer " << l;
            EXPECT_EQ(a.sbReadSteps, b.sbReadSteps)
                << kind << " layer " << l;
            EXPECT_EQ(a.sampleScale, b.sampleScale)
                << kind << " layer " << l;
        }
    }
}

TEST(FcLowering, PaperGridVariantsPriceFcAsConvTwin)
{
    // Beyond default knobs: the paper's headline design points
    // (PRA-0b..4b, the column-sync SSR variant) must agree too.
    const sim::EngineRegistry &registry = builtinEngines();
    dnn::Network fc_net = fcNetwork();
    dnn::Network conv_net = convTwinNetwork();
    dnn::ActivationSynthesizer fc_synth(fc_net, 0x5eed);
    dnn::ActivationSynthesizer conv_synth(conv_net, 0x5eed);
    sim::AccelConfig accel;
    sim::SampleSpec sample{0};

    for (const auto &sel : paperEngineGrid()) {
        std::unique_ptr<sim::Engine> engine = registry.create(sel);
        sim::NetworkResult fc_result =
            engine->runNetwork(fc_net, fc_synth, accel, sample);
        sim::NetworkResult conv_result =
            engine->runNetwork(conv_net, conv_synth, accel, sample);
        const auto &a = fc_result.layers[1];
        const auto &b = conv_result.layers[1];
        EXPECT_EQ(a.cycles, b.cycles) << engine->name();
        EXPECT_EQ(a.nmStallCycles, b.nmStallCycles) << engine->name();
        EXPECT_EQ(a.effectualTerms, b.effectualTerms)
            << engine->name();
        EXPECT_EQ(a.sbReadSteps, b.sbReadSteps) << engine->name();
    }
}

TEST(FcLowering, FcStreamIsTheLoweredInputColumn)
{
    dnn::Network fc_net = fcNetwork();
    dnn::ActivationSynthesizer synth(fc_net, 0x5eed);
    dnn::NeuronTensor stream = synth.synthesizeFixed16(1);
    EXPECT_EQ(stream.sizeX(), 1);
    EXPECT_EQ(stream.sizeY(), 1);
    EXPECT_EQ(stream.sizeI(), 800);
}

TEST(FcLowering, StreamsAreSelectionInvariant)
{
    // The same logical layer must synthesize the same stream no
    // matter which selection it survived into: streams are seeded by
    // the layer's ordinal in the unfiltered network, not by its
    // index in the filtered list (Tiny fc1 is list index 3 under All
    // — behind the structural pool — but index 0 under Fc; its
    // priced ordinal is 2 either way).
    auto all_net = dnn::makeTinyNetwork(dnn::LayerSelect::All);
    auto fc_net = dnn::makeTinyNetwork(dnn::LayerSelect::Fc);
    ASSERT_EQ(fc_net.layers[0].name, "fc1");
    ASSERT_EQ(all_net.layers[3].name, "fc1");
    EXPECT_EQ(fc_net.layers[0].ordinal, 2);
    EXPECT_EQ(all_net.layers[3].ordinal, 2);

    dnn::ActivationSynthesizer all_synth(all_net, 0x5eed);
    dnn::ActivationSynthesizer fc_synth(fc_net, 0x5eed);
    dnn::NeuronTensor a = all_synth.synthesizeFixed16(3);
    dnn::NeuronTensor b = fc_synth.synthesizeFixed16(0);
    ASSERT_EQ(a.size(), b.size());
    auto lhs = a.flat();
    auto rhs = b.flat();
    for (size_t i = 0; i < rhs.size(); i++)
        ASSERT_EQ(lhs[i], rhs[i]);

    // And therefore identical pricing: PRA-2b on fc1 costs the same
    // whether the conv layers were swept alongside it or not. (The
    // structural pool is skipped by runNetwork, so fc1 is priced row
    // 2 under both selections.)
    std::unique_ptr<sim::Engine> engine =
        builtinEngines().create("pragmatic", {});
    sim::AccelConfig accel;
    sim::SampleSpec sample{0};
    auto all_result =
        engine->runNetwork(all_net, all_synth, accel, sample);
    auto fc_result =
        engine->runNetwork(fc_net, fc_synth, accel, sample);
    EXPECT_EQ(all_result.layers[2].cycles, fc_result.layers[0].cycles);
    EXPECT_EQ(all_result.layers[2].effectualTerms,
              fc_result.layers[0].effectualTerms);
}

TEST(FcLowering, SweepGridMixesKindsDeterministically)
{
    // An FC-bearing network through the full parallel sweep path:
    // thread counts and cache modes must stay bit-identical (the
    // same guarantee the conv sweep makes).
    std::vector<dnn::Network> networks = {fcNetwork()};
    std::vector<sim::EngineSelection> grid;
    for (const auto &kind : builtinEngines().kinds())
        grid.push_back({kind, {}});

    sim::SweepOptions seq;
    seq.threads = 1;
    seq.sample.maxUnits = 2;
    sim::SweepOptions par = seq;
    par.threads = 4;
    par.cache = false;

    auto a = runSweep(networks, grid, builtinEngines(), seq);
    auto b = runSweep(networks, grid, builtinEngines(), par);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].layers.size(), b[i].layers.size());
        for (size_t l = 0; l < a[i].layers.size(); l++) {
            EXPECT_EQ(a[i].layers[l].cycles, b[i].layers[l].cycles);
            EXPECT_EQ(a[i].layers[l].effectualTerms,
                      b[i].layers[l].effectualTerms);
        }
    }
}

} // namespace
} // namespace models
} // namespace pra
