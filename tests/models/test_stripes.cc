/**
 * @file
 * Tests for the Stripes baseline model.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "models/dadn/dadn.h"
#include "models/stripes/stripes.h"
#include "sim/tiling.h"
#include "util/random.h"

namespace pra {
namespace models {
namespace {

TEST(Stripes, SerialMultiplyMatchesProductWithinWindow)
{
    util::Xoshiro256 rng(0x57a1);
    for (int trial = 0; trial < 5000; trial++) {
        int precision = 1 + static_cast<int>(rng.nextBounded(16));
        auto synapse =
            static_cast<int16_t>(rng.nextInRange(-32768, 32767));
        auto neuron = static_cast<uint16_t>(
            rng.nextBounded(1u << precision));
        EXPECT_EQ(StripesModel::serialMultiply(synapse, neuron,
                                               precision),
                  static_cast<int64_t>(synapse) * neuron);
    }
}

TEST(Stripes, SerialMultiplyWithAnchoredWindow)
{
    // A value whose essential bits live in [lsb, lsb+p-1] multiplies
    // exactly when the window is anchored there.
    int lsb = 3;
    int precision = 6;
    uint16_t neuron = static_cast<uint16_t>(0b101101 << lsb);
    EXPECT_EQ(StripesModel::serialMultiply(100, neuron, precision, lsb),
              100LL * neuron);
}

TEST(Stripes, SerialMultiplyTruncatesOutsideWindow)
{
    // Bits above the window are not processed: Stripes depends on the
    // profiled precision being sufficient.
    uint16_t neuron = 0b1000'0001; // bit 7 outside a 4-bit window.
    EXPECT_EQ(StripesModel::serialMultiply(10, neuron, 4, 0), 10);
}

TEST(Stripes, LayerCyclesFormula)
{
    StripesModel stripes;
    auto layer = dnn::makeAlexNet().layers[1]; // p == 8.
    sim::AccelConfig accel;
    sim::LayerTiling tiling(layer, accel);
    double expected = static_cast<double>(tiling.passes()) *
                      static_cast<double>(tiling.numPallets()) *
                      static_cast<double>(tiling.numSynapseSets()) * 8.0;
    EXPECT_DOUBLE_EQ(stripes.layerCycles(layer, 8), expected);
}

TEST(Stripes, IdealSpeedupSixteenOverP)
{
    // For a layer whose window count is a multiple of 16, speedup
    // over DaDN is exactly 16/p (Section I).
    dnn::LayerSpec layer;
    layer.name = "even";
    layer.inputX = 19;
    layer.inputY = 19;
    layer.inputChannels = 32;
    layer.filterX = 4;
    layer.filterY = 4;
    layer.numFilters = 256;
    layer.stride = 1;
    layer.pad = 0;
    layer.profiledPrecision = 8;
    ASSERT_EQ(layer.windows() % 16, 0); // 16x16 windows.
    DadnModel dadn;
    StripesModel stripes;
    EXPECT_DOUBLE_EQ(dadn.layerCycles(layer) /
                         stripes.layerCycles(layer, 8),
                     16.0 / 8.0);
}

TEST(Stripes, PartialPalletsLoseSomeThroughput)
{
    // With windows not divisible by 16 the ceil() costs Stripes a
    // little, exactly as in hardware.
    auto layer = dnn::makeAlexNet().layers[2]; // 13x13 windows.
    DadnModel dadn;
    StripesModel stripes;
    double speedup =
        dadn.layerCycles(layer) / stripes.layerCycles(layer, 8);
    EXPECT_LT(speedup, 2.0);
    EXPECT_GT(speedup, 1.8);
}

TEST(Stripes, RunUsesProfiledPrecisions)
{
    StripesModel stripes;
    auto net = dnn::makeAlexNet();
    auto result = stripes.run(net);
    ASSERT_EQ(result.layers.size(), 5u);
    // conv3 (p == 5) must be relatively faster than conv1 (p == 9).
    StripesModel ref;
    EXPECT_DOUBLE_EQ(result.layers[2].cycles,
                     ref.layerCycles(net.layers[2], 5));
    EXPECT_DOUBLE_EQ(result.layers[0].cycles,
                     ref.layerCycles(net.layers[0], 9));
}

TEST(Stripes, ExplicitPrecisionOverride)
{
    StripesModel stripes;
    auto net = dnn::makeTinyNetwork();
    std::vector<int> eight(net.layers.size(), 8);
    std::vector<int> four(net.layers.size(), 4);
    auto slow = stripes.run(net, eight);
    auto fast = stripes.run(net, four);
    EXPECT_DOUBLE_EQ(slow.totalCycles() / fast.totalCycles(), 2.0);
}

TEST(Stripes, PrecisionListMismatchPanics)
{
    StripesModel stripes;
    auto net = dnn::makeTinyNetwork();
    std::vector<int> wrong(net.layers.size() + 1, 8);
    EXPECT_DEATH(stripes.run(net, wrong), "precision list");
}

TEST(Stripes, PrecisionBoundsChecked)
{
    StripesModel stripes;
    auto layer = dnn::makeTinyNetwork().layers[0];
    EXPECT_DEATH(stripes.layerCycles(layer, 0), "precision");
    EXPECT_DEATH(stripes.layerCycles(layer, 17), "precision");
}

/** Stripes never beats 16/p nor loses to DaDN across precisions. */
class StripesPrecisions : public ::testing::TestWithParam<int>
{
};

TEST_P(StripesPrecisions, SpeedupBounded)
{
    int p = GetParam();
    DadnModel dadn;
    StripesModel stripes;
    for (const auto &layer : dnn::makeVggM().layers) {
        double speedup =
            dadn.layerCycles(layer) / stripes.layerCycles(layer, p);
        EXPECT_LE(speedup, 16.0 / p + 1e-9);
        EXPECT_GE(speedup, 16.0 / p * 0.5); // Pallet rounding bound.
    }
}

INSTANTIATE_TEST_SUITE_P(Precisions, StripesPrecisions,
                         ::testing::Values(1, 4, 8, 12, 16));

} // namespace
} // namespace models
} // namespace pra
