/**
 * @file
 * Validation twins for the Dynamic-Stripes engine.
 *
 * The layer-wide, leading-bit-off configuration must price every
 * layer of the paper grid bit-identically to the Stripes baseline —
 * that identity is what anchors the runtime detector to the profiled
 * precisions. The runtime configurations are cross-checked against a
 * brute-force per-term reference that re-derives every group mask,
 * precision and synchronization time straight from the tiling
 * definitions on a random partial-brick tensor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/dynamic_stripes/dynamic_stripes.h"
#include "models/engines.h"
#include "models/stripes/stripes.h"
#include "sim/engine_registry.h"
#include "sim/tiling.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pra {
namespace models {
namespace {

/** Partial everything: 24 channels (1.5 bricks), 20 windows (1.25
 * pallets), 20 filters — every edge case of the tiling in one layer. */
dnn::LayerSpec
partialLayer()
{
    dnn::LayerSpec spec;
    spec.name = "ds-ref";
    spec.inputX = 9;
    spec.inputY = 7;
    spec.inputChannels = 24;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 20;
    spec.stride = 2;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    return spec;
}

dnn::NeuronTensor
randomInput(const dnn::LayerSpec &layer, uint64_t seed)
{
    dnn::NeuronTensor t(layer.inputX, layer.inputY,
                        layer.inputChannels);
    util::Xoshiro256 rng(seed);
    for (auto &v : t.flat())
        v = static_cast<uint16_t>(rng.nextBounded(65536));
    return t;
}

/** Independent duplicate of the model's Diffy front end. */
dnn::NeuronTensor
diffyReference(const dnn::NeuronTensor &in)
{
    dnn::NeuronTensor out(in.sizeX(), in.sizeY(), in.sizeI());
    for (int y = 0; y < in.sizeY(); y++)
        for (int x = 0; x < in.sizeX(); x++)
            for (int i = 0; i < in.sizeI(); i++)
                out.at(x, y, i) = static_cast<uint16_t>(std::abs(
                    static_cast<int>(in.at(x, y, i)) -
                    (x > 0 ? static_cast<int>(in.at(x - 1, y, i))
                           : 0)));
    return out;
}

/** Bit-by-bit precision of a mask, independent of fixedpoint. */
int
referencePrecision(uint16_t mask, bool leading_bit)
{
    int msb = -1, lsb = -1;
    for (int b = 0; b < 16; b++)
        if (mask & (1u << b)) {
            if (lsb < 0)
                lsb = b;
            msb = b;
        }
    if (msb < 0)
        return 0;
    return leading_bit ? msb + 1 : msb - lsb + 1;
}

struct ReferenceTotals
{
    int64_t cycles = 0;
    int64_t terms = 0;
};

/**
 * Brute-force re-derivation of the DS pallet timing: full per-group
 * finish-time history driven directly by the definition "group g may
 * start set s once the pallet's slowest group finished set s - R".
 */
ReferenceTotals
referenceSimulate(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const DynamicStripesConfig &config)
{
    sim::LayerTiling tiling(layer, accel);
    const int64_t num_sets = tiling.numSynapseSets();
    const int gc = config.groupColumns;
    const int R = config.columnRegisters;
    ReferenceTotals totals;
    for (int64_t pallet = 0; pallet < tiling.numPallets(); pallet++) {
        const int active = tiling.windowsInPallet(pallet);
        const int groups = (active + gc - 1) / gc;
        // finish[g][s]: when group g finishes set s.
        std::vector<std::vector<int64_t>> finish(
            static_cast<size_t>(groups),
            std::vector<int64_t>(static_cast<size_t>(num_sets), 0));
        for (int64_t s = 0; s < num_sets; s++) {
            sim::SynapseSetCoord sc = tiling.setCoord(s);
            int real_lanes = std::min(accel.neuronLanes,
                                      layer.inputChannels - sc.brickI);
            std::vector<int> prec(static_cast<size_t>(groups));
            for (int g = 0; g < groups; g++) {
                int first = g * gc;
                int last = std::min(first + gc, active);
                uint16_t mask = 0;
                for (int c = first; c < last; c++) {
                    sim::WindowCoord w = tiling.windowCoord(
                        tiling.windowIndex(pallet, c));
                    for (uint16_t v :
                         tiling.gatherBrickView(input, w, sc))
                        mask |= v;
                }
                int p = referencePrecision(mask, config.leadingBit);
                prec[static_cast<size_t>(g)] = p;
                totals.terms += static_cast<int64_t>(p) * real_lanes *
                                (last - first);
            }
            if (R == 0) {
                int step = 1;
                for (int p : prec)
                    step = std::max(step, p);
                totals.cycles += step;
            } else {
                int64_t gate = 0;
                if (s >= R)
                    for (int g = 0; g < groups; g++)
                        gate = std::max(
                            gate, finish[static_cast<size_t>(g)]
                                        [static_cast<size_t>(s - R)]);
                for (int g = 0; g < groups; g++) {
                    size_t gi = static_cast<size_t>(g);
                    int64_t prev =
                        s > 0 ? finish[gi][static_cast<size_t>(s - 1)]
                              : 0;
                    finish[gi][static_cast<size_t>(s)] =
                        std::max(prev, gate) +
                        std::max(1, prec[gi]);
                }
            }
        }
        if (R > 0) {
            int64_t done = 0;
            for (int g = 0; g < groups; g++)
                done = std::max(
                    done, finish[static_cast<size_t>(g)]
                                [static_cast<size_t>(num_sets - 1)]);
            totals.cycles += done;
        }
    }
    return totals;
}

TEST(DynamicStripes, MatchesBruteForceReferenceAcrossKnobGrid)
{
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 0xd511a);
    sim::AccelConfig accel;
    sim::LayerTiling tiling(layer, accel);
    for (int gc : {1, 4, 16})
        for (int regs : {0, 1, 2})
            for (bool lb : {false, true})
                for (bool diffy : {false, true}) {
                    DynamicStripesConfig config;
                    config.groupColumns = gc;
                    config.columnRegisters = regs;
                    config.leadingBit = lb;
                    config.diffy = diffy;
                    ReferenceTotals want = referenceSimulate(
                        layer, diffy ? diffyReference(input) : input,
                        accel, config);
                    sim::LayerResult got =
                        simulateLayerDynamicStripes(
                            layer, input, accel, config,
                            sim::SampleSpec{0});
                    SCOPED_TRACE("g=" + std::to_string(gc) +
                                 " r=" + std::to_string(regs) +
                                 " lb=" + std::to_string(lb) +
                                 " diffy=" + std::to_string(diffy));
                    EXPECT_EQ(got.cycles,
                              static_cast<double>(tiling.passes()) *
                                  static_cast<double>(want.cycles));
                    EXPECT_EQ(got.effectualTerms,
                              static_cast<double>(want.terms) *
                                  layer.numFilters);
                    EXPECT_EQ(got.nmStallCycles, 0.0);
                }
}

TEST(DynamicStripes, WorkloadPathBitIdenticalToTensorPath)
{
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 0xd511b);
    sim::AccelConfig accel;
    util::ThreadPool pool(3);
    util::InnerExecutor exec(&pool, 3);
    sim::LayerWorkload workload(input);
    for (int gc : {1, 4, 16})
        for (bool lb : {false, true})
            for (bool diffy : {false, true}) {
                DynamicStripesConfig config;
                config.groupColumns = gc;
                config.columnRegisters = 1;
                config.leadingBit = lb;
                config.diffy = diffy;
                sim::LayerResult a = simulateLayerDynamicStripes(
                    layer, input, accel, config, sim::SampleSpec{0});
                sim::LayerResult b = simulateLayerDynamicStripes(
                    layer, workload, accel, config, sim::SampleSpec{0},
                    exec);
                EXPECT_EQ(a.cycles, b.cycles) << gc;
                EXPECT_EQ(a.effectualTerms, b.effectualTerms) << gc;
                EXPECT_EQ(a.sbReadSteps, b.sbReadSteps) << gc;
            }
}

TEST(DynamicStripes, LayerWideIsBitIdenticalToStripesAcrossPaperGrid)
{
    const sim::EngineRegistry &registry = builtinEngines();
    auto stripes = registry.create("stripes", {});
    auto ds = registry.create("dynamic_stripes",
                              {{"granularity", "layer"}});
    EXPECT_EQ(ds->inputStream(), sim::InputStream::None);
    sim::AccelConfig accel;
    sim::SampleSpec sample{4};
    for (const dnn::Network &net : dnn::makeAllNetworks()) {
        dnn::ActivationSynthesizer synth(net, 0x5eed);
        sim::NetworkResult a =
            stripes->runNetwork(net, synth, accel, sample);
        sim::NetworkResult b = ds->runNetwork(net, synth, accel, sample);
        ASSERT_EQ(a.layers.size(), b.layers.size()) << net.name;
        for (size_t l = 0; l < a.layers.size(); l++) {
            SCOPED_TRACE(net.name + "/" + a.layers[l].layerName);
            EXPECT_EQ(a.layers[l].cycles, b.layers[l].cycles);
            EXPECT_EQ(a.layers[l].effectualTerms,
                      b.layers[l].effectualTerms);
            EXPECT_EQ(a.layers[l].sbReadSteps, b.layers[l].sbReadSteps);
            EXPECT_EQ(a.layers[l].nmStallCycles,
                      b.layers[l].nmStallCycles);
        }
    }
}

TEST(DynamicStripes, LayerWideLeadingBitWidensToSynthesisWindowTop)
{
    // A leading-bit-only layer-wide detector latches the highest bit
    // any value can carry: the top of the synthesis window.
    dnn::Network net = dnn::makeTinyNetwork();
    sim::AccelConfig accel;
    auto ds = builtinEngines().create(
        "dynamic_stripes",
        {{"granularity", "layer"}, {"leading-bit", "1"}});
    for (const dnn::LayerSpec &layer : net.layers) {
        int precision =
            std::min(16, dnn::synthesisAnchor(layer) +
                             layer.profiledPrecision);
        sim::LayerResult want =
            StripesModel(accel).layerResult(layer, precision);
        sim::LayerResult got = ds->simulateLayer(
            layer, dnn::NeuronTensor(), accel, sim::SampleSpec{0});
        EXPECT_EQ(got.cycles, want.cycles) << layer.name;
        EXPECT_EQ(got.effectualTerms, want.effectualTerms)
            << layer.name;
    }
}

TEST(DynamicStripesDeathTest, RejectsDegenerateKnobs)
{
    const sim::EngineRegistry &registry = builtinEngines();
    EXPECT_DEATH(registry.create("dynamic_stripes",
                                 {{"granularity", "0"}}),
                 "granularity");
    EXPECT_DEATH(registry.create("dynamic_stripes",
                                 {{"column-regs", "-1"}}),
                 "column-regs");
    EXPECT_DEATH(registry.create("dynamic_stripes",
                                 {{"granularity", "layer"},
                                  {"diffy", "1"}}),
                 "diffy");
    EXPECT_DEATH(registry.create("dynamic_stripes",
                                 {{"granularity", "layer"},
                                  {"column-regs", "2"}}),
                 "column-regs");
    // Divisibility is a property of the machine: rejected when a
    // layer is priced, not at construction.
    auto engine = registry.create("dynamic_stripes",
                                  {{"granularity", "5"}});
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 1);
    sim::AccelConfig accel;
    EXPECT_DEATH(engine->simulateLayer(layer, input, accel,
                                       sim::SampleSpec{0}),
                 "divisor of windowsPerPallet");
}

} // namespace
} // namespace models
} // namespace pra
