/**
 * @file
 * Tests for the functional PIP datapath: the shift/reduce/accumulate
 * pipeline must compute exact dot products for every first-stage
 * width — the central arithmetic property of the paper.
 */

#include <gtest/gtest.h>

#include "fixedpoint/fixed_point.h"
#include "models/pragmatic/pip.h"
#include "util/random.h"

namespace pra {
namespace models {
namespace {

int64_t
dot(std::span<const int16_t> synapses, std::span<const uint16_t> neurons)
{
    int64_t acc = 0;
    for (size_t i = 0; i < neurons.size(); i++)
        acc += static_cast<int64_t>(synapses[i]) * neurons[i];
    return acc;
}

TEST(Pip, PaperFigure4cExample)
{
    // Section III: n0 = 001b with s0 = 001b and n1 = 010b with
    // s1 = 111b reduce to 1*1 + 2*7 = 15.
    std::vector<int16_t> synapses = {1, 7};
    std::vector<uint16_t> neurons = {0b001, 0b010};
    PragmaticInnerProduct pip(4);
    PipBrickResult r = pip.processBrick(synapses, neurons);
    EXPECT_EQ(r.partialSum, 15);
    EXPECT_EQ(r.cycles, 1); // Both neurons have one essential bit.
}

TEST(Pip, ZeroBrickProducesNothing)
{
    std::vector<int16_t> synapses(16, 123);
    std::vector<uint16_t> neurons(16, 0);
    for (int l = 0; l <= 4; l++) {
        PragmaticInnerProduct pip(l);
        PipBrickResult r = pip.processBrick(synapses, neurons);
        EXPECT_EQ(r.partialSum, 0);
        EXPECT_EQ(r.cycles, 0);
    }
}

TEST(Pip, FirstStageOutputWidths)
{
    EXPECT_EQ(PragmaticInnerProduct(0).firstStageOutputBits(), 16);
    EXPECT_EQ(PragmaticInnerProduct(1).firstStageOutputBits(), 17);
    EXPECT_EQ(PragmaticInnerProduct(2).firstStageOutputBits(), 19);
    EXPECT_EQ(PragmaticInnerProduct(3).firstStageOutputBits(), 23);
    // Single-stage design needs the full 31 bits (Section V-B1).
    EXPECT_EQ(PragmaticInnerProduct(4).firstStageOutputBits(), 31);
}

TEST(Pip, CyclesMatchSchedule)
{
    util::Xoshiro256 rng(0x9a9a);
    for (int trial = 0; trial < 500; trial++) {
        std::vector<int16_t> synapses(16);
        std::vector<uint16_t> neurons(16);
        for (int i = 0; i < 16; i++) {
            synapses[i] =
                static_cast<int16_t>(rng.nextInRange(-32768, 32767));
            neurons[i] = static_cast<uint16_t>(rng.nextBounded(65536));
        }
        int l = static_cast<int>(rng.nextBounded(5));
        PragmaticInnerProduct pip(l);
        PipBrickResult r = pip.processBrick(synapses, neurons);
        EXPECT_EQ(r.cycles, brickScheduleCycles(neurons, l));
    }
}

TEST(Pip, RejectsBadConfiguration)
{
    EXPECT_DEATH(PragmaticInnerProduct(-1), "first-stage");
    EXPECT_DEATH(PragmaticInnerProduct(5), "first-stage");
    PragmaticInnerProduct pip(2);
    std::vector<int16_t> synapses(4, 1);
    std::vector<uint16_t> neurons(3, 1);
    EXPECT_DEATH(pip.processBrick(synapses, neurons), "lane count");
}

/** Exhaustive-ish dot product equivalence per first-stage width. */
class PipWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(PipWidths, DotProductExactOnRandomBricks)
{
    int l = GetParam();
    PragmaticInnerProduct pip(l);
    util::Xoshiro256 rng(0xd07 + l);
    for (int trial = 0; trial < 2000; trial++) {
        std::vector<int16_t> synapses(16);
        std::vector<uint16_t> neurons(16);
        for (int i = 0; i < 16; i++) {
            synapses[i] =
                static_cast<int16_t>(rng.nextInRange(-32768, 32767));
            neurons[i] = static_cast<uint16_t>(rng.nextBounded(65536));
        }
        PipBrickResult r = pip.processBrick(synapses, neurons);
        EXPECT_EQ(r.partialSum, dot(synapses, neurons));
    }
}

TEST_P(PipWidths, DotProductExactOnExtremes)
{
    int l = GetParam();
    PragmaticInnerProduct pip(l);
    // All-max synapses against all-ones neurons: the largest
    // magnitude the datapath must carry.
    std::vector<int16_t> synapses(16, -32768);
    std::vector<uint16_t> neurons(16, 0xffff);
    PipBrickResult r = pip.processBrick(synapses, neurons);
    EXPECT_EQ(r.partialSum, dot(synapses, neurons));
    EXPECT_EQ(r.cycles, 16);
}

TEST_P(PipWidths, PartialLanesSupported)
{
    int l = GetParam();
    PragmaticInnerProduct pip(l);
    util::Xoshiro256 rng(0xfeed + l);
    for (size_t lanes : {1u, 3u, 15u}) {
        std::vector<int16_t> synapses(lanes);
        std::vector<uint16_t> neurons(lanes);
        for (size_t i = 0; i < lanes; i++) {
            synapses[i] =
                static_cast<int16_t>(rng.nextInRange(-1000, 1000));
            neurons[i] = static_cast<uint16_t>(rng.nextBounded(65536));
        }
        EXPECT_EQ(pip.processBrick(synapses, neurons).partialSum,
                  dot(synapses, neurons));
    }
}

INSTANTIATE_TEST_SUITE_P(FirstStage, PipWidths,
                         ::testing::Values(0, 1, 2, 3, 4));

} // namespace
} // namespace models
} // namespace pra
