/**
 * @file
 * Validation of the Laconic engine against a brute-force per-term
 * reference: effectual terms recomputed as a direct quadruple loop
 * over (window, filter, synapse) popcount products, and cycle counts
 * re-derived per (pallet, set) from the raw weight codes, independent
 * of the packed weight-side planes the model consumes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "dnn/weight_synth.h"
#include "models/laconic/laconic.h"
#include "sim/operand_planes.h"
#include "sim/tiling.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pra {
namespace models {
namespace {

dnn::LayerSpec
partialLayer()
{
    dnn::LayerSpec spec;
    spec.name = "laconic-ref";
    spec.inputX = 9;
    spec.inputY = 7;
    spec.inputChannels = 24;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 20;
    spec.stride = 2;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    return spec;
}

dnn::NeuronTensor
randomInput(const dnn::LayerSpec &layer, uint64_t seed)
{
    dnn::NeuronTensor t(layer.inputX, layer.inputY,
                        layer.inputChannels);
    util::Xoshiro256 rng(seed);
    for (auto &v : t.flat())
        v = static_cast<uint16_t>(rng.nextBounded(65536));
    return t;
}

/** The layer's synthetic weight codes, one tensor row per filter. */
std::vector<std::vector<uint16_t>>
materializeCodes(const dnn::LayerSpec &layer)
{
    std::vector<std::vector<uint16_t>> codes(
        static_cast<size_t>(layer.numFilters));
    for (int f = 0; f < layer.numFilters; f++) {
        codes[static_cast<size_t>(f)].resize(
            static_cast<size_t>(layer.synapsesPerFilter()));
        dnn::synthesizeWeightCodes(layer, f,
                                   codes[static_cast<size_t>(f)]);
    }
    return codes;
}

/** Activation at (window, fy, fx, channel); 0 in padding. */
uint16_t
activationAt(const dnn::LayerSpec &layer,
             const dnn::NeuronTensor &input, sim::WindowCoord w,
             int fy, int fx, int c)
{
    int x = w.x * layer.stride - layer.pad + fx;
    int y = w.y * layer.stride - layer.pad + fy;
    if (x < 0 || x >= layer.inputX || y < 0 || y >= layer.inputY)
        return 0;
    return input.at(x, y, c);
}

/** Direct per-term count: sum of actPop x wgtPop over every product. */
int64_t
referenceTerms(const dnn::LayerSpec &layer,
               const dnn::NeuronTensor &input,
               const sim::AccelConfig &accel,
               const std::vector<std::vector<uint16_t>> &codes)
{
    sim::LayerTiling tiling(layer, accel);
    int64_t terms = 0;
    for (int64_t wi = 0; wi < layer.windows(); wi++) {
        sim::WindowCoord w = tiling.windowCoord(wi);
        for (int f = 0; f < layer.numFilters; f++)
            for (int fy = 0; fy < layer.filterY; fy++)
                for (int fx = 0; fx < layer.filterX; fx++)
                    for (int c = 0; c < layer.inputChannels; c++) {
                        int a = std::popcount(activationAt(
                            layer, input, w, fy, fx, c));
                        size_t s = static_cast<size_t>(
                            (fy * layer.filterX + fx) *
                                layer.inputChannels +
                            c);
                        terms +=
                            a * std::popcount(
                                    codes[static_cast<size_t>(f)][s]);
                    }
    }
    return terms;
}

/** Direct cycle count: slowest (act x wgt) pair per (pallet, set). */
int64_t
referenceCycles(const dnn::LayerSpec &layer,
                const dnn::NeuronTensor &input,
                const sim::AccelConfig &accel,
                const std::vector<std::vector<uint16_t>> &codes)
{
    sim::LayerTiling tiling(layer, accel);
    int64_t cycles = 0;
    for (int64_t pallet = 0; pallet < tiling.numPallets(); pallet++) {
        int active = tiling.windowsInPallet(pallet);
        for (int64_t s = 0; s < tiling.numSynapseSets(); s++) {
            sim::SynapseSetCoord sc = tiling.setCoord(s);
            int64_t step = 1;
            for (int col = 0; col < active; col++) {
                sim::WindowCoord w = tiling.windowCoord(
                    tiling.windowIndex(pallet, col));
                int lanes = std::min(accel.neuronLanes,
                                     layer.inputChannels - sc.brickI);
                for (int l = 0; l < lanes; l++) {
                    int c = sc.brickI + l;
                    int a = std::popcount(activationAt(
                        layer, input, w, sc.fy, sc.fx, c));
                    size_t si = static_cast<size_t>(
                        (sc.fy * layer.filterX + sc.fx) *
                            layer.inputChannels +
                        c);
                    int wp_max = 0;
                    for (int f = 0; f < layer.numFilters; f++)
                        wp_max = std::max(
                            wp_max,
                            std::popcount(
                                codes[static_cast<size_t>(f)][si]));
                    step = std::max(step,
                                    static_cast<int64_t>(a) * wp_max);
                }
            }
            cycles += step;
        }
    }
    return static_cast<int64_t>(tiling.passes()) * cycles;
}

TEST(Laconic, MatchesBruteForcePerTermReference)
{
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 0x1ac01);
    sim::AccelConfig accel;
    auto codes = materializeCodes(layer);
    sim::LayerResult got = simulateLayerLaconic(layer, input, accel,
                                                sim::SampleSpec{0});
    EXPECT_EQ(got.effectualTerms,
              static_cast<double>(
                  referenceTerms(layer, input, accel, codes)));
    EXPECT_EQ(got.cycles,
              static_cast<double>(
                  referenceCycles(layer, input, accel, codes)));
    EXPECT_EQ(got.nmStallCycles, 0.0);
}

TEST(Laconic, MultiPassPricesWorstCasePassButExactTerms)
{
    // 300 filters = 2 passes: cycles take the all-filter worst case
    // per pass (the documented upper bound); terms stay exact because
    // the weight-plane popcount sum already covers every filter.
    dnn::LayerSpec layer;
    layer.name = "laconic-passes";
    layer.inputX = 4;
    layer.inputY = 4;
    layer.inputChannels = 16;
    layer.filterX = 1;
    layer.filterY = 1;
    layer.numFilters = 300;
    layer.stride = 1;
    layer.pad = 0;
    layer.profiledPrecision = 8;
    ASSERT_TRUE(layer.valid());
    dnn::NeuronTensor input = randomInput(layer, 0x1ac02);
    sim::AccelConfig accel;
    sim::LayerTiling tiling(layer, accel);
    ASSERT_EQ(tiling.passes(), 2);
    auto codes = materializeCodes(layer);
    sim::LayerResult got = simulateLayerLaconic(layer, input, accel,
                                                sim::SampleSpec{0});
    EXPECT_EQ(got.effectualTerms,
              static_cast<double>(
                  referenceTerms(layer, input, accel, codes)));
    EXPECT_EQ(got.cycles,
              static_cast<double>(
                  referenceCycles(layer, input, accel, codes)));
}

TEST(Laconic, WorkloadPathBitIdenticalToTensorPath)
{
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 0x1ac03);
    sim::AccelConfig accel;
    util::ThreadPool pool(3);
    util::InnerExecutor exec(&pool, 3);
    sim::LayerWorkload workload(input);
    sim::LayerResult a =
        simulateLayerLaconic(layer, input, accel, sim::SampleSpec{0});
    sim::LayerResult b = simulateLayerLaconic(
        layer, workload, accel, sim::SampleSpec{0}, exec);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.effectualTerms, b.effectualTerms);
    EXPECT_EQ(a.sbReadSteps, b.sbReadSteps);
}

TEST(Laconic, PropagatedWeightPlanesAreDeterministicAndDistinct)
{
    dnn::LayerSpec layer = partialLayer();
    dnn::NeuronTensor input = randomInput(layer, 0x1ac04);
    sim::AccelConfig accel;
    auto propagated_builder = [](const dnn::LayerSpec &l) {
        return sim::propagatedWeightPlanes(l, 0x5eed, dnn::kBrickSize);
    };
    sim::LayerWorkload wl_a(input, propagated_builder);
    sim::LayerWorkload wl_b(input, propagated_builder);
    sim::LayerWorkload wl_synth(input);
    util::InnerExecutor serial;
    sim::LayerResult a = simulateLayerLaconic(
        layer, wl_a, accel, sim::SampleSpec{0}, serial);
    sim::LayerResult b = simulateLayerLaconic(
        layer, wl_b, accel, sim::SampleSpec{0}, serial);
    sim::LayerResult synth = simulateLayerLaconic(
        layer, wl_synth, accel, sim::SampleSpec{0}, serial);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.effectualTerms, b.effectualTerms);
    // Requantized reference weights are a different code stream than
    // the synthetic one — the workload key separates the modes.
    EXPECT_NE(a.effectualTerms, synth.effectualTerms);
}

} // namespace
} // namespace models
} // namespace pra
