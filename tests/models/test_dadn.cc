/**
 * @file
 * Tests for the DaDianNao baseline model.
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "dnn/reference.h"
#include "models/dadn/dadn.h"
#include "sim/tiling.h"

namespace pra {
namespace models {
namespace {

TEST(Dadn, LayerCyclesFormula)
{
    DadnModel dadn;
    auto net = dnn::makeAlexNet();
    const auto &conv2 = net.layers[1];
    // cycles = passes * windows * bricksPerWindow.
    double expected = 1.0 * conv2.windows() *
                      static_cast<double>(conv2.bricksPerWindow());
    EXPECT_DOUBLE_EQ(dadn.layerCycles(conv2), expected);
}

TEST(Dadn, MultiPassLayers)
{
    DadnModel dadn;
    auto net = dnn::makeAlexNet();
    const auto &conv3 = net.layers[2]; // 384 filters -> 2 passes.
    double one_pass = static_cast<double>(conv3.windows()) *
                      static_cast<double>(conv3.bricksPerWindow());
    EXPECT_DOUBLE_EQ(dadn.layerCycles(conv3), 2.0 * one_pass);
}

TEST(Dadn, ValueIndependence)
{
    // DaDN's cycles depend only on geometry; run() never touches
    // neuron values.
    DadnModel dadn;
    auto net = dnn::makeTinyNetwork();
    auto r1 = dadn.run(net);
    auto r2 = dadn.run(net);
    ASSERT_EQ(r1.layers.size(), net.layers.size());
    EXPECT_DOUBLE_EQ(r1.totalCycles(), r2.totalCycles());
    EXPECT_GT(r1.totalCycles(), 0.0);
}

TEST(Dadn, NfuBrickDotMatchesPlainDot)
{
    std::vector<uint16_t> neurons = {1, 2, 3, 0, 5, 6, 7, 8,
                                     9, 10, 0, 12, 13, 14, 15, 16};
    std::vector<int16_t> synapses = {-1, 2, -3, 4, -5, 6, -7, 8,
                                     -9, 10, -11, 12, -13, 14, -15, 16};
    int64_t expected = 0;
    for (int i = 0; i < 16; i++)
        expected += static_cast<int64_t>(synapses[i]) * neurons[i];
    EXPECT_EQ(DadnModel::nfuBrickDot(neurons, synapses), expected);
}

TEST(Dadn, NfuHandlesExtremes)
{
    std::vector<uint16_t> neurons(16, 0xffff);
    std::vector<int16_t> synapses(16, -32768);
    int64_t expected = 16LL * -32768 * 0xffff;
    EXPECT_EQ(DadnModel::nfuBrickDot(neurons, synapses), expected);
}

TEST(Dadn, ComputeWindowMatchesReference)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    DadnModel dadn;
    for (size_t li = 0; li < net.layers.size(); li++) {
        const auto &layer = net.layers[li];
        auto input = synth.synthesizeFixed16(static_cast<int>(li));
        auto filters = dnn::synthesizeFilters(layer);
        for (int wy = 0; wy < layer.outY(); wy += 5) {
            for (int wx = 0; wx < layer.outX(); wx += 5) {
                EXPECT_EQ(dadn.computeWindow(layer, input, filters[0],
                                             wx, wy),
                          dnn::referenceWindowDot(layer, input,
                                                  filters[0], wx, wy))
                    << layer.name;
            }
        }
    }
}

TEST(Dadn, RunCoversAllLayers)
{
    DadnModel dadn;
    auto net = dnn::makeVggM();
    auto result = dadn.run(net);
    ASSERT_EQ(result.layers.size(), net.layers.size());
    EXPECT_EQ(result.engineName, "DaDN");
    for (size_t i = 0; i < result.layers.size(); i++) {
        EXPECT_EQ(result.layers[i].layerName, net.layers[i].name);
        EXPECT_GT(result.layers[i].cycles, 0.0);
        // 16 terms per product, effectual or not.
        EXPECT_DOUBLE_EQ(result.layers[i].effectualTerms,
                         16.0 * net.layers[i].products());
    }
}

TEST(Dadn, SmallerMachineIsSlower)
{
    sim::AccelConfig small;
    small.tiles = 4;
    DadnModel big;
    DadnModel little(small);
    auto layer = dnn::makeAlexNet().layers[2];
    EXPECT_GT(little.layerCycles(layer), big.layerCycles(layer));
}

} // namespace
} // namespace models
} // namespace pra
