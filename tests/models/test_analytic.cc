/**
 * @file
 * Tests for the term-count models behind Figures 2 and 3.
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/analytic/term_count.h"

namespace pra {
namespace models {
namespace {

TEST(TermCount, DadnCountsSixteenPerProduct)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    const auto &layer = net.layers[0];
    auto raw = synth.synthesizeFixed16(0);
    auto trimmed = synth.synthesizeFixed16Trimmed(0);
    auto counts = countLayerTerms16(layer, raw, trimmed, true,
                                    sim::SampleSpec{0});
    EXPECT_DOUBLE_EQ(counts.dadn, 16.0 * layer.products());
}

TEST(TermCount, StripesCountsPrecisionPerProduct)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    const auto &layer = net.layers[1]; // p == 7.
    auto raw = synth.synthesizeFixed16(1);
    auto trimmed = synth.synthesizeFixed16Trimmed(1);
    auto counts = countLayerTerms16(layer, raw, trimmed, false,
                                    sim::SampleSpec{0});
    EXPECT_DOUBLE_EQ(counts.stripes,
                     static_cast<double>(layer.profiledPrecision) *
                         layer.products());
}

TEST(TermCount, FirstLayerCvnEqualsDadn)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    const auto &layer = net.layers[0];
    auto raw = synth.synthesizeFixed16(0);
    auto trimmed = synth.synthesizeFixed16Trimmed(0);
    auto first = countLayerTerms16(layer, raw, trimmed, true,
                                   sim::SampleSpec{0});
    EXPECT_DOUBLE_EQ(first.cvn, first.dadn);
    auto later = countLayerTerms16(layer, raw, trimmed, false,
                                   sim::SampleSpec{0});
    EXPECT_DOUBLE_EQ(later.cvn, later.zn);
}

TEST(TermCount, ZeroInputZeroesValueBasedCounts)
{
    auto net = dnn::makeTinyNetwork();
    const auto &layer = net.layers[0];
    dnn::NeuronTensor zeros(layer.inputX, layer.inputY,
                            layer.inputChannels);
    auto counts = countLayerTerms16(layer, zeros, zeros, false,
                                    sim::SampleSpec{0});
    EXPECT_DOUBLE_EQ(counts.zn, 0.0);
    EXPECT_DOUBLE_EQ(counts.praRaw, 0.0);
    EXPECT_DOUBLE_EQ(counts.praTrimmed, 0.0);
    EXPECT_GT(counts.dadn, 0.0);
    EXPECT_GT(counts.stripes, 0.0);
}

TEST(TermCount, OrderingInvariants)
{
    // PRA-red <= PRA-fp16 <= 16/p * stripes ... and everything is
    // bounded by the DaDN baseline.
    for (const auto &net : {dnn::makeAlexNet(), dnn::makeVggM()}) {
        dnn::ActivationSynthesizer synth(net);
        auto rel = countNetworkTerms16(net, synth, sim::SampleSpec{64});
        EXPECT_GT(rel.praRed, 0.0) << net.name;
        EXPECT_LE(rel.praRed, rel.praFp16) << net.name;
        EXPECT_LT(rel.praFp16, rel.stripes) << net.name;
        EXPECT_LT(rel.stripes, 1.0) << net.name;
        EXPECT_LE(rel.zn, rel.cvn) << net.name;
        EXPECT_LT(rel.cvn, 1.0) << net.name;
        // PRA beats pure zero skipping (the paper's headline claim).
        EXPECT_LT(rel.praFp16, rel.zn) << net.name;
    }
}

TEST(TermCount, MatchesPaperFigure2Magnitudes)
{
    // Section II: PRA-fp16 ~10%, PRA-red ~8%, STR ~53%, ZN ~39%
    // on average. Allow generous tolerances: these are shape checks.
    std::vector<dnn::Network> nets = dnn::makeAllNetworks();
    double pra_fp16 = 0.0;
    double pra_red = 0.0;
    double stripes = 0.0;
    for (const auto &net : nets) {
        dnn::ActivationSynthesizer synth(net);
        auto rel = countNetworkTerms16(net, synth, sim::SampleSpec{24});
        pra_fp16 += rel.praFp16;
        pra_red += rel.praRed;
        stripes += rel.stripes;
    }
    pra_fp16 /= nets.size();
    pra_red /= nets.size();
    stripes /= nets.size();
    EXPECT_NEAR(pra_fp16, 0.10, 0.05);
    EXPECT_NEAR(pra_red, 0.08, 0.04);
    EXPECT_NEAR(stripes, 0.53, 0.12);
}

TEST(TermCount, QuantizedOrderingAndMagnitudes)
{
    // Figure 3: zero skipping removes ~30%, PRA up to ~71%.
    auto net = dnn::makeAlexNet();
    dnn::ActivationSynthesizer synth(net);
    auto rel = countNetworkTerms8(net, synth, sim::SampleSpec{48});
    EXPECT_LT(rel.pra, rel.zeroSkip);
    EXPECT_LT(rel.zeroSkip, 1.0);
    EXPECT_GT(rel.pra, 0.1);
    EXPECT_LT(rel.pra, 0.6);
}

TEST(TermCount, SamplingApproximatesFullCount)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    auto full = countNetworkTerms16(net, synth, sim::SampleSpec{0});
    auto sampled = countNetworkTerms16(net, synth, sim::SampleSpec{8});
    EXPECT_NEAR(sampled.praFp16 / full.praFp16, 1.0, 0.15);
    EXPECT_NEAR(sampled.zn / full.zn, 1.0, 0.15);
}

} // namespace
} // namespace models
} // namespace pra
