/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/args.h"

namespace pra {
namespace util {
namespace {

ArgParser
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm)
{
    auto args = parse({"--network=alexnet", "--pallets=64"});
    EXPECT_EQ(args.getString("network"), "alexnet");
    EXPECT_EQ(args.getInt("pallets", 0), 64);
}

TEST(ArgParser, SpaceFormIsPositionalNotValue)
{
    // "--name value" is ambiguous against positionals, so the value
    // stays positional and the flag is boolean.
    auto args = parse({"--network", "vgg19"});
    EXPECT_TRUE(args.has("network"));
    EXPECT_EQ(args.getString("network"), "");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "vgg19");
}

TEST(ArgParser, BareBooleanFlag)
{
    auto args = parse({"--full"});
    EXPECT_TRUE(args.getBool("full"));
    EXPECT_FALSE(args.getBool("absent"));
    EXPECT_TRUE(args.getBool("absent", true));
}

TEST(ArgParser, ExplicitBooleanValues)
{
    EXPECT_TRUE(parse({"--x=true"}).getBool("x"));
    EXPECT_TRUE(parse({"--x=1"}).getBool("x"));
    EXPECT_TRUE(parse({"--x=on"}).getBool("x"));
    EXPECT_FALSE(parse({"--x=false"}).getBool("x"));
    EXPECT_FALSE(parse({"--x=0"}).getBool("x"));
    EXPECT_FALSE(parse({"--x=off"}).getBool("x"));
}

TEST(ArgParserDeathTest, RejectsMalformedBoolean)
{
    auto args = parse({"--cache=of"});
    EXPECT_DEATH(args.getBool("cache", true), "expects a boolean");
}

TEST(ArgParser, Doubles)
{
    auto args = parse({"--scale=2.5"});
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(args.getDouble("missing", 1.5), 1.5);
}

TEST(ArgParser, Positional)
{
    auto args = parse({"alexnet", "--full", "vgg19"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "alexnet");
    EXPECT_EQ(args.positional()[1], "vgg19");
}

TEST(ArgParser, FallbacksWhenAbsent)
{
    auto args = parse({});
    EXPECT_EQ(args.getString("x", "dflt"), "dflt");
    EXPECT_EQ(args.getInt("x", 7), 7);
}

TEST(ArgParser, HasDetectsPresence)
{
    auto args = parse({"--a=1"});
    EXPECT_TRUE(args.has("a"));
    EXPECT_FALSE(args.has("b"));
}

TEST(ArgParser, NegativeNumberValue)
{
    auto args = parse({"--offset=-5"});
    EXPECT_EQ(args.getInt("offset", 0), -5);
}

TEST(ArgParser, CheckUnknownAcceptsKnownFlags)
{
    auto args = parse({"--smoke", "--units=4", "positional"});
    args.checkUnknown({"smoke", "units", "full"});
    SUCCEED(); // Positionals are not flags; known flags pass.
}

TEST(ArgParserDeathTest, CheckUnknownRejectsTypo)
{
    // Regression: "--smke" used to be silently ignored, running the
    // full non-smoke bench in CI.
    auto args = parse({"--smke"});
    EXPECT_DEATH(args.checkUnknown({"smoke", "units"}),
                 "unknown flag --smke.*did you mean --smoke");
}

TEST(ArgParserDeathTest, CheckUnknownRejectsUnrelatedFlag)
{
    auto args = parse({"--frobnicate=1"});
    EXPECT_DEATH(args.checkUnknown({"smoke", "units"}),
                 "unknown flag --frobnicate");
}

} // namespace
} // namespace util
} // namespace pra
