/**
 * @file
 * Tests for saturating uint64 arithmetic (util/saturating.h): the
 * serving layer leans on UINT64_MAX staying a fixed point of every
 * operation (kNeverFills / kNoFault are both that sentinel).
 */

#include "util/saturating.h"

#include <gtest/gtest.h>

namespace pra {
namespace util {
namespace {

constexpr uint64_t kMax = UINT64_C(0xffffffffffffffff);

TEST(SaturatingAdd, PlainSumsAreExact)
{
    EXPECT_EQ(saturatingAdd(0, 0), 0u);
    EXPECT_EQ(saturatingAdd(1, 2), 3u);
    EXPECT_EQ(saturatingAdd(kMax - 1, 1), kMax);
}

TEST(SaturatingAdd, OverflowClampsInsteadOfWrapping)
{
    EXPECT_EQ(saturatingAdd(kMax, 1), kMax);
    EXPECT_EQ(saturatingAdd(kMax, kMax), kMax);
    EXPECT_EQ(saturatingAdd(kMax - 10, 11), kMax);
    // The sentinel is a fixed point: "never" plus anything is never.
    EXPECT_EQ(saturatingAdd(kMax, 0), kMax);
}

TEST(SaturatingMul, ClampsAndKeepsZeroAbsorbing)
{
    EXPECT_EQ(saturatingMul(0, kMax), 0u);
    EXPECT_EQ(saturatingMul(kMax, 0), 0u);
    EXPECT_EQ(saturatingMul(3, 5), 15u);
    EXPECT_EQ(saturatingMul(kMax, 2), kMax);
    EXPECT_EQ(saturatingMul(UINT64_C(1) << 32, UINT64_C(1) << 32),
              kMax);
}

TEST(SaturatingShl, ClampsHighBitsAndWideShifts)
{
    EXPECT_EQ(saturatingShl(0, 1000), 0u);
    EXPECT_EQ(saturatingShl(1, 3), 8u);
    EXPECT_EQ(saturatingShl(1, 63), UINT64_C(1) << 63);
    EXPECT_EQ(saturatingShl(1, 64), kMax);
    EXPECT_EQ(saturatingShl(2, 63), kMax);
    EXPECT_EQ(saturatingShl(kMax, 1), kMax);
}

} // namespace
} // namespace util
} // namespace pra
