/**
 * @file
 * Tests for atomic whole-file writes (util/atomic_file.h): the
 * destination must hold either its old bytes or the complete new
 * bytes, never a torn prefix, and a failed write must not leave the
 * staging temporary behind.
 */

#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace pra {
namespace util {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    return body.str();
}

bool
exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Unique-enough scratch path under the test working directory. */
std::string
scratchPath(const std::string &tag)
{
    return "atomic_file_test_" + tag + ".out";
}

class AtomicFileTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        for (const auto &path : cleanup_) {
            std::remove(path.c_str());
            std::remove(atomicTempPath(path).c_str());
        }
    }

    std::string
    track(const std::string &path)
    {
        cleanup_.push_back(path);
        return path;
    }

    std::vector<std::string> cleanup_;
};

TEST_F(AtomicFileTest, WritesFreshFileAndRemovesTemp)
{
    const std::string path = track(scratchPath("fresh"));
    writeFileAtomic(path, [](std::ostream &out) {
        out << "hello,world\n1,2\n";
    });
    EXPECT_EQ(slurp(path), "hello,world\n1,2\n");
    EXPECT_FALSE(exists(atomicTempPath(path)));
}

TEST_F(AtomicFileTest, ReplacesExistingContentCompletely)
{
    const std::string path = track(scratchPath("replace"));
    writeFileAtomic(path, [](std::ostream &out) {
        out << "a very long first version of the file\n";
    });
    writeFileAtomic(path, [](std::ostream &out) { out << "v2\n"; });
    EXPECT_EQ(slurp(path), "v2\n");
    EXPECT_FALSE(exists(atomicTempPath(path)));
}

TEST_F(AtomicFileTest, ProducerExceptionPreservesOldFile)
{
    const std::string path = track(scratchPath("throw"));
    writeFileAtomic(path, [](std::ostream &out) { out << "good\n"; });
    EXPECT_THROW(
        writeFileAtomic(path,
                        [](std::ostream &out) {
                            out << "torn partial ";
                            throw std::runtime_error("producer died");
                        }),
        std::runtime_error);
    // Old bytes survive untouched and the temp is gone.
    EXPECT_EQ(slurp(path), "good\n");
    EXPECT_FALSE(exists(atomicTempPath(path)));
}

TEST_F(AtomicFileTest, InjectedStreamFailurePreservesOldFile)
{
    // A producer that drives the stream into a failed state (the
    // in-process stand-in for a full disk) must be fatal, leave the
    // destination's old bytes intact, and clean up the temporary.
    const std::string path = track(scratchPath("failbit"));
    writeFileAtomic(path, [](std::ostream &out) { out << "good\n"; });
    EXPECT_DEATH(
        writeFileAtomic(path,
                        [](std::ostream &out) {
                            out << "torn partial ";
                            out.setstate(std::ios::failbit);
                        }),
        "failed while writing");
    EXPECT_EQ(slurp(path), "good\n");
    EXPECT_FALSE(exists(atomicTempPath(path)));
}

TEST_F(AtomicFileTest, UnwritableTargetDirectoryIsFatal)
{
    EXPECT_DEATH(writeFileAtomic("no_such_dir/sub/file.csv",
                                 [](std::ostream &out) { out << "x"; }),
                 "cannot open");
}

} // namespace
} // namespace util
} // namespace pra
