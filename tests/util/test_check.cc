/**
 * @file
 * Death tests for the PRA_CHECK contract layer (util/check.h).
 *
 * PRA_DCHECK_ENABLED is forced on before the include so the
 * debug-only macro is death-testable from the release test build.
 */

#define PRA_DCHECK_ENABLED 1
#include "util/check.h"

#include <string>

#include <gtest/gtest.h>

namespace {

std::string
countingMessage(int *calls)
{
    ++*calls;
    return "expensive message";
}

TEST(PraCheck, TrueConditionPasses)
{
    PRA_CHECK(1 + 1 == 2, "arithmetic works");
    PRA_CHECK(true, std::string("string messages accepted"));
}

TEST(PraCheckDeathTest, FalseConditionPanicsWithMessage)
{
    EXPECT_DEATH(PRA_CHECK(false, "seeded failure"),
                 "panic: seeded failure");
}

TEST(PraCheckDeathTest, StringExpressionMessage)
{
    const std::string what = "dynamic";
    EXPECT_DEATH(PRA_CHECK(false, "prefix: " + what),
                 "panic: prefix: dynamic");
}

TEST(PraCheck, MessageIsLazyOnSuccess)
{
    int calls = 0;
    PRA_CHECK(true, countingMessage(&calls));
    EXPECT_EQ(calls, 0);
}

TEST(PraCheck, ConditionEvaluatedExactlyOnce)
{
    int evals = 0;
    PRA_CHECK(++evals > 0, "side effects run once");
    EXPECT_EQ(evals, 1);
}

TEST(PraCheckEq, EqualValuesPass)
{
    PRA_CHECK_EQ(2 + 2, 4, "sums");
    PRA_CHECK_EQ(std::string("a"), std::string("a"), "strings compare");
}

TEST(PraCheckEqDeathTest, UnequalValuesReportBothSides)
{
    // The failure message carries both expression texts and their
    // streamed values: "msg: lhs_text (lhs) != rhs_text (rhs)".
    EXPECT_DEATH(PRA_CHECK_EQ(2 + 2, 5, "bad math"),
                 R"(panic: bad math: 2 \+ 2 \(4\) != 5 \(5\))");
}

TEST(PraCheckEq, OperandsEvaluatedExactlyOnce)
{
    int lhs_evals = 0;
    int rhs_evals = 0;
    PRA_CHECK_EQ(++lhs_evals, ++rhs_evals, "operands run once");
    EXPECT_EQ(lhs_evals, 1);
    EXPECT_EQ(rhs_evals, 1);
}

TEST(PraDcheckDeathTest, EnabledDcheckPanics)
{
    EXPECT_DEATH(PRA_DCHECK(false, "debug contract"),
                 "panic: debug contract");
}

TEST(PraDcheck, EnabledDcheckPassesWhenTrue)
{
    PRA_DCHECK(true, "cheap enough here");
}

} // namespace
