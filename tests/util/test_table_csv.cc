/**
 * @file
 * Tests for the text-table and CSV writers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace pra {
namespace util {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    // Header then separator then two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("------"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Each line has the same position for the second column.
    auto first_line_end = out.find('\n');
    std::string header = out.substr(0, first_line_end);
    EXPECT_EQ(header.find("value"), std::string("longer").size() + 2);
}

TEST(TextTable, RowCountTracked)
{
    TextTable t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width mismatch");
}

TEST(FormatHelpers, Doubles)
{
    EXPECT_EQ(formatDouble(2.586, 2), "2.59");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatHelpers, Percent)
{
    EXPECT_EQ(formatPercent(0.281), "28.1%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(CsvWriter, PlainRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a", "b"});
    csv.writeRow({"1", "2"});
    EXPECT_EQ(out.str(), "a,b\n1,2\n");
    EXPECT_EQ(csv.rowsWritten(), 1u);
}

TEST(CsvWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WidthEnforcedAfterHeader)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a", "b"});
    EXPECT_DEATH(csv.writeRow({"1"}), "width mismatch");
}

TEST(CsvWriter, HeaderlessFirstRowLocksWidth)
{
    // Regression: width was only enforced when a header was written,
    // so headerless tables could silently emit ragged CSV.
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeRow({"a", "b", "c"});
    csv.writeRow({"1", "2", "3"});
    EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
    EXPECT_DEATH(csv.writeRow({"only", "two"}), "width mismatch");
}

TEST(CsvWriter, HeaderOnlyOnce)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.writeHeader({"a"});
    EXPECT_DEATH(csv.writeHeader({"b"}), "header");
}

} // namespace
} // namespace util
} // namespace pra
