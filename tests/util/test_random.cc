/**
 * @file
 * Tests for the deterministic PRNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"

namespace pra {
namespace util {
namespace {

TEST(Xoshiro256, SameSeedSameStream)
{
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge)
{
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LE(same, 1);
}

TEST(Xoshiro256, ZeroSeedIsValid)
{
    Xoshiro256 rng(0);
    std::set<uint64_t> seen;
    for (int i = 0; i < 100; i++)
        seen.insert(rng.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Xoshiro256, DoublesInUnitInterval)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Xoshiro256, DoublesRoughlyUniform)
{
    Xoshiro256 rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInBound)
{
    Xoshiro256 rng(3);
    for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 1000; i++)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Xoshiro256, BoundedCoversRange)
{
    Xoshiro256 rng(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; i++)
        seen.insert(rng.nextBounded(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256, RangeInclusive)
{
    Xoshiro256 rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; i++) {
        int64_t v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BernoulliProbability)
{
    Xoshiro256 rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        if (rng.nextBool(0.3))
            hits++;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, GaussianMoments)
{
    Xoshiro256 rng(13);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, ExponentialMean)
{
    Xoshiro256 rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += rng.nextExponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

} // namespace
} // namespace util
} // namespace pra
