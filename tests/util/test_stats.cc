/**
 * @file
 * Tests for counters, running stats and histograms.
 */

#include <gtest/gtest.h>

#include "util/stats.h"

namespace pra {
namespace util {
namespace {

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 6.0})
        s.add(v);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
}

TEST(RunningStat, SingleSampleVarianceZero)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, WelfordSurvivesLargeMeanSmallVariance)
{
    // The naive sumSq/n - mean^2 formula cancels catastrophically
    // here: sumSq ~ 3e24 has an ulp around 4e8, so the true spread
    // (variance 200/3) vanishes entirely and the old implementation
    // reported 0. Welford's algorithm keeps full precision.
    RunningStat s;
    s.add(1e12 - 10.0);
    s.add(1e12);
    s.add(1e12 + 10.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_NEAR(s.mean(), 1e12, 1e-3);
    EXPECT_NEAR(s.variance(), 200.0 / 3.0, 1e-6);
    EXPECT_EQ(s.min(), 1e12 - 10.0);
    EXPECT_EQ(s.max(), 1e12 + 10.0);
}

TEST(RunningStat, WelfordMatchesDirectFormulaOnBenignData)
{
    RunningStat s;
    double values[] = {1.5, -2.25, 7.0, 3.5, 0.0, -1.0};
    double sum = 0.0;
    for (double v : values) {
        s.add(v);
        sum += v;
    }
    double mean = sum / 6.0;
    double direct = 0.0;
    for (double v : values)
        direct += (v - mean) * (v - mean);
    direct /= 6.0;
    EXPECT_NEAR(s.variance(), direct, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), sum);
    EXPECT_NEAR(s.mean(), mean, 1e-12);
}

TEST(RunningStat, ResetClearsWelfordState)
{
    RunningStat s;
    s.add(1e12);
    s.add(2e12);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.variance(), 0.0);
    s.add(3.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_NEAR(s.variance(), 1.0, 1e-12);
}

TEST(Histogram, CountsBucketsAndOverflow)
{
    Histogram h(4);
    h.add(0);
    h.add(2, 3);
    h.add(4);
    h.add(9); // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 3u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, MeanIncludesWeights)
{
    Histogram h(10);
    h.add(2, 2);
    h.add(8, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h(10);
    for (uint64_t v = 1; v <= 10; v++)
        h.add(v);
    EXPECT_EQ(h.percentile(0.1), 1u);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 10u);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(4);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(4);
    h.add(1);
    h.add(100);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, UnitLayoutReportsExactBounds)
{
    Histogram h(8);
    EXPECT_FALSE(h.isLogSpaced());
    EXPECT_EQ(h.maxValue(), 8u);
    EXPECT_EQ(h.numBuckets(), 9u);
    for (uint32_t i = 0; i <= 8; i++) {
        EXPECT_EQ(h.bucketLow(i), i);
        EXPECT_EQ(h.bucketHigh(i), i);
    }
}

TEST(Histogram, OverflowPercentileSaturatesLoudly)
{
    // Overflowed samples report as maxValue + 1 — a sentinel outside
    // the histogram's range — rather than a silently wrong in-range
    // value.
    Histogram unit(4);
    unit.add(100);
    EXPECT_EQ(unit.percentile(1.0), 5u);
    unit.add(2);
    EXPECT_EQ(unit.percentile(0.5), 2u);
    EXPECT_EQ(unit.percentile(1.0), 5u);

    Histogram log = Histogram::logSpaced(uint64_t{1} << 10);
    log.add(uint64_t{1} << 12);
    EXPECT_EQ(log.overflow(), 1u);
    EXPECT_EQ(log.percentile(1.0), (uint64_t{1} << 10) + 1);
}

TEST(Histogram, LogSpacedIsExactBelowTwiceTheSubBucketCount)
{
    Histogram h = Histogram::logSpaced(uint64_t{1} << 20, 5);
    EXPECT_TRUE(h.isLogSpaced());
    // Values below 2 * 2^5 = 64 get unit buckets: exact percentiles.
    for (uint64_t v : {0u, 1u, 33u, 63u}) {
        Histogram single = Histogram::logSpaced(uint64_t{1} << 20, 5);
        single.add(v);
        EXPECT_EQ(single.percentile(1.0), v);
    }
}

TEST(Histogram, LogSpacedBucketBoundsAreConservativeAndTight)
{
    // A single sample's percentile is the bucket's upper bound: never
    // below the sample, within 2^-subBits relative error above it.
    const int sub_bits = 5;
    for (uint64_t v :
         {64ull, 100ull, 1000ull, 123456ull, 1ull << 30,
          (1ull << 40) - 1, 1ull << 40}) {
        Histogram h = Histogram::logSpaced(uint64_t{1} << 40, sub_bits);
        h.add(v);
        uint64_t p = h.percentile(1.0);
        EXPECT_GE(p, v);
        EXPECT_LE(p, v + (v >> sub_bits));
    }
}

TEST(Histogram, LogSpacedBucketRangesTileTheDomain)
{
    Histogram h = Histogram::logSpaced(uint64_t{1} << 16, 4);
    // Consecutive buckets abut: high(i) + 1 == low(i + 1), starting
    // from bucket 0 == value 0.
    EXPECT_EQ(h.bucketLow(0), 0u);
    for (uint32_t i = 0; i + 1 < h.numBuckets(); i++) {
        EXPECT_LE(h.bucketLow(i), h.bucketHigh(i)) << i;
        EXPECT_EQ(h.bucketHigh(i) + 1, h.bucketLow(i + 1)) << i;
    }
    EXPECT_GE(h.bucketHigh(h.numBuckets() - 1), h.maxValue());
}

TEST(Histogram, LogSpacedCoversCycleScaleRangesCheaply)
{
    // The whole point: 2^42 cycles of range in a few thousand
    // buckets instead of a 32 TB unit-bucket array.
    Histogram h = Histogram::logSpaced(uint64_t{1} << 42, 6);
    EXPECT_LT(h.numBuckets(), 4096u);
    h.add(1);
    h.add(uint64_t{1} << 41);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_GE(h.percentile(1.0), uint64_t{1} << 41);
}

TEST(Histogram, LogSpacedResetClearsEverything)
{
    Histogram h = Histogram::logSpaced(uint64_t{1} << 20);
    h.add(5);
    h.add(uint64_t{1} << 30); // overflow
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_TRUE(h.isLogSpaced()); // Layout survives reset.
}

TEST(HistogramDeathTest, RejectsUnpayableLayouts)
{
    // A unit-bucket range that large must be a loud error steering
    // the caller to logSpaced, not a multi-GB allocation.
    EXPECT_DEATH(Histogram(uint32_t{1} << 25),
                 "unit-bucket range too large");
    EXPECT_DEATH(Histogram::logSpaced(0), "empty sample range");
    EXPECT_DEATH(Histogram::logSpaced(1024, 9), "sub_bits");
    EXPECT_DEATH(Histogram::logSpaced(1024, -1), "sub_bits");
}

TEST(StatRegistry, CreatesAndFindsStats)
{
    StatRegistry reg;
    reg.counter("cycles").increment(10);
    reg.counter("cycles").increment(5);
    reg.runningStat("speedup").add(2.5);
    EXPECT_EQ(reg.counter("cycles").value(), 15u);
    EXPECT_EQ(reg.runningStat("speedup").count(), 1u);
    EXPECT_EQ(reg.counterNames().size(), 1u);
    EXPECT_EQ(reg.runningStatNames().size(), 1u);
}

TEST(StatRegistry, ReportContainsNames)
{
    StatRegistry reg;
    reg.counter("nm_stalls").increment(3);
    reg.runningStat("brick_cycles").add(4.0);
    std::string report = reg.report();
    EXPECT_NE(report.find("nm_stalls = 3"), std::string::npos);
    EXPECT_NE(report.find("brick_cycles"), std::string::npos);
}

} // namespace
} // namespace util
} // namespace pra
