/**
 * @file
 * Tests for the worker pool used by the sweep driver.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace pra {
namespace util {
namespace {

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // Nothing submitted: must not block.
    SUCCEED();
}

TEST(ThreadPool, SingleThreadClampsToOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; i++)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, JobsWriteDisjointSlots)
{
    // The sweep's usage pattern: jobs write results into their own
    // slot of a caller-owned vector; no job sees another's slot.
    ThreadPool pool(4);
    std::vector<int> slots(64, -1);
    for (size_t i = 0; i < slots.size(); i++)
        pool.submit(
            [&slots, i] { slots[i] = static_cast<int>(i) * 3; });
    pool.wait();
    for (size_t i = 0; i < slots.size(); i++)
        EXPECT_EQ(slots[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; i++)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): destruction must still complete the queue.
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, ThrowingJobDoesNotDeadlockWait)
{
    // Regression: an exception escaping a job used to reach the
    // worker thread (std::terminate) and skip the active_ decrement,
    // deadlocking wait(). Now wait() returns and rethrows the first
    // captured exception.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; i++)
        pool.submit([&ran, i] {
            ran.fetch_add(1);
            if (i == 3)
                throw std::runtime_error("job 3 failed");
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 8); // Remaining jobs still ran.
}

TEST(ThreadPool, WaitClearsErrorAndStaysUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait(); // No stale exception, no deadlock.
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorSwallowsJobExceptions)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("unobserved"); });
    // No wait(): destruction must neither terminate nor throw.
}

TEST(TaskGroup, JoinsOnlyItsOwnJobs)
{
    ThreadPool pool(4);
    std::atomic<int> group_jobs{0};
    TaskGroup group(pool);
    for (int i = 0; i < 32; i++)
        group.run([&group_jobs] { group_jobs.fetch_add(1); });
    group.wait();
    EXPECT_EQ(group_jobs.load(), 32);
    pool.wait();
}

TEST(TaskGroup, NestedFanOutFromPoolJobsDoesNotDeadlock)
{
    // More outer jobs than workers, each fanning out subtasks to the
    // same pool and joining them: only safe because TaskGroup::wait
    // helps execute queued jobs instead of blocking.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int i = 0; i < 8; i++)
        pool.submit([&pool, &total] {
            TaskGroup group(pool);
            for (int j = 0; j < 4; j++)
                group.run([&total] { total.fetch_add(1); });
            group.wait();
        });
    pool.wait();
    EXPECT_EQ(total.load(), 32);
}

TEST(TaskGroup, RethrowsSubtaskException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("subtask failed"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    pool.wait(); // The group captured it; the pool stays clean.
}

TEST(InnerExecutor, SerialByDefault)
{
    InnerExecutor exec;
    EXPECT_EQ(exec.maxTasks(), 1);
    EXPECT_EQ(exec.blockCount(100), 1);
    int calls = 0;
    exec.forEachBlock(1, [&calls](int) { calls++; });
    EXPECT_EQ(calls, 1);
}

TEST(InnerExecutor, BlockRangesPartitionExactly)
{
    for (int64_t n : {1, 5, 7, 64, 1000}) {
        for (int blocks : {1, 2, 3, 8}) {
            if (blocks > n)
                continue;
            int64_t expect_lo = 0;
            for (int b = 0; b < blocks; b++) {
                auto [lo, hi] = InnerExecutor::blockRange(n, blocks, b);
                EXPECT_EQ(lo, expect_lo);
                EXPECT_LE(lo, hi);
                expect_lo = hi;
            }
            EXPECT_EQ(expect_lo, n);
        }
    }
}

TEST(InnerExecutor, ParallelBlocksAllRun)
{
    ThreadPool pool(3);
    InnerExecutor exec(&pool, 3);
    EXPECT_EQ(exec.blockCount(10), 3);
    EXPECT_EQ(exec.blockCount(2), 2);
    std::vector<int> slots(7, 0);
    exec.forEachBlock(7, [&slots](int b) { slots[b] = b + 1; });
    for (int b = 0; b < 7; b++)
        EXPECT_EQ(slots[b], b + 1);
    pool.wait();
}

} // namespace
} // namespace util
} // namespace pra
