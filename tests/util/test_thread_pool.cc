/**
 * @file
 * Tests for the worker pool used by the sweep driver.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/thread_pool.h"

namespace pra {
namespace util {
namespace {

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.wait(); // Nothing submitted: must not block.
    SUCCEED();
}

TEST(ThreadPool, SingleThreadClampsToOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; i++)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, JobsWriteDisjointSlots)
{
    // The sweep's usage pattern: jobs write results into their own
    // slot of a caller-owned vector; no job sees another's slot.
    ThreadPool pool(4);
    std::vector<int> slots(64, -1);
    for (size_t i = 0; i < slots.size(); i++)
        pool.submit(
            [&slots, i] { slots[i] = static_cast<int>(i) * 3; });
    pool.wait();
    for (size_t i = 0; i < slots.size(); i++)
        EXPECT_EQ(slots[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; i++)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): destruction must still complete the queue.
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

} // namespace
} // namespace util
} // namespace pra
