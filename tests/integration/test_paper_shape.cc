/**
 * @file
 * Shape tests against the paper's headline numbers: who wins, by
 * roughly what factor, and where the crossovers fall. Tolerances are
 * deliberately wide — the substrate is synthetic (DESIGN.md §3) and
 * absolute agreement is not the claim.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "energy/area_power.h"
#include "models/dadn/dadn.h"
#include "models/pragmatic/simulator.h"
#include "models/stripes/stripes.h"
#include "sim/layer_result.h"

namespace pra {
namespace models {
namespace {

/** Shared fixture: simulate the representative networks once. */
class PaperShape : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        nets_ = new std::vector<dnn::Network>(
            {dnn::makeAlexNet(), dnn::makeVggM(), dnn::makeVgg19()});
        DadnModel dadn;
        StripesModel stripes;
        PragmaticSimulator prag;
        SimOptions opt;
        opt.sample = sim::SampleSpec{48};

        for (const auto &net : *nets_) {
            baseline_.push_back(dadn.run(net).totalCycles());
            str_.push_back(stripes.run(net).totalCycles());
            PragmaticConfig pallet2b;
            pra2b_.push_back(
                prag.run(net, pallet2b, opt).totalCycles());
            PragmaticConfig raw = pallet2b;
            raw.softwareTrim = false;
            praRaw_.push_back(prag.run(net, raw, opt).totalCycles());
            PragmaticConfig col = pallet2b;
            col.sync = SyncScheme::PerColumn;
            col.ssrCount = 1;
            praCol_.push_back(prag.run(net, col, opt).totalCycles());
            PragmaticConfig ideal = col;
            ideal.ssrCount = 0;
            praIdeal_.push_back(
                prag.run(net, ideal, opt).totalCycles());
        }
    }

    static void
    TearDownTestSuite()
    {
        delete nets_;
        nets_ = nullptr;
    }

    static std::vector<double>
    speedups(const std::vector<double> &cycles)
    {
        std::vector<double> s;
        for (size_t i = 0; i < cycles.size(); i++)
            s.push_back(baseline_[i] / cycles[i]);
        return s;
    }

    static std::vector<dnn::Network> *nets_;
    static std::vector<double> baseline_;
    static std::vector<double> str_;
    static std::vector<double> pra2b_;
    static std::vector<double> praRaw_;
    static std::vector<double> praCol_;
    static std::vector<double> praIdeal_;
};

std::vector<dnn::Network> *PaperShape::nets_ = nullptr;
std::vector<double> PaperShape::baseline_;
std::vector<double> PaperShape::str_;
std::vector<double> PaperShape::pra2b_;
std::vector<double> PaperShape::praRaw_;
std::vector<double> PaperShape::praCol_;
std::vector<double> PaperShape::praIdeal_;

TEST_F(PaperShape, StripesSpeedupNearPaper)
{
    // Paper: 1.85x average (16/p per layer); our three networks span
    // roughly 1.3x (VGG19, p~12) to 2.2x (VGG-M, p~7).
    auto s = speedups(str_);
    EXPECT_NEAR(sim::geometricMean(s), 1.85, 0.40);
    EXPECT_GT(s[1], s[2]); // VGG-M (low p) beats VGG19 (high p).
}

TEST_F(PaperShape, PragmaticPalletBeatsStripes)
{
    // Paper Fig. 9: PRA-2b ~2.59x vs STR 1.85x.
    auto pra = speedups(pra2b_);
    auto str = speedups(str_);
    for (size_t i = 0; i < pra.size(); i++)
        EXPECT_GT(pra[i], str[i]) << (*nets_)[i].name;
    EXPECT_NEAR(sim::geometricMean(pra), 2.59, 0.55);
}

TEST_F(PaperShape, ColumnSyncBoostsOverPallet)
{
    // Paper: 3.1x with one SSR vs 2.59x pallet; ideal 3.45x.
    auto col = speedups(praCol_);
    auto pal = speedups(pra2b_);
    auto ideal = speedups(praIdeal_);
    for (size_t i = 0; i < col.size(); i++) {
        EXPECT_GT(col[i], pal[i]) << (*nets_)[i].name;
        EXPECT_GE(ideal[i] * 1.001, col[i]) << (*nets_)[i].name;
    }
    EXPECT_NEAR(sim::geometricMean(col), 3.1, 0.6);
    EXPECT_NEAR(sim::geometricMean(ideal), 3.45, 0.7);
    // One SSR captures most of the ideal benefit (Section VI-C).
    EXPECT_GT(sim::geometricMean(col) / sim::geometricMean(ideal),
              0.85);
}

TEST_F(PaperShape, SoftwareGuidanceBenefitNearTableV)
{
    // Paper Table V: 19% average benefit (10%..23% per network).
    std::vector<double> benefit;
    for (size_t i = 0; i < praRaw_.size(); i++)
        benefit.push_back(praRaw_[i] / pra2b_[i] - 1.0);
    double avg = 0.0;
    for (double b : benefit) {
        EXPECT_GT(b, 0.02);
        EXPECT_LT(b, 0.40);
        avg += b;
    }
    avg /= benefit.size();
    EXPECT_NEAR(avg, 0.19, 0.11);
}

TEST_F(PaperShape, EfficiencyCrossoversMatchFigure11)
{
    // The decisive crossover of the paper: single-stage PRA (4b) is
    // slightly LESS energy-efficient than DaDN, 2-stage PRA-2b is
    // clearly more, and PRA-2b-1R is best.
    double p_base = energy::dadnAreaPower().chipPower;
    auto pal = speedups(pra2b_);
    auto col = speedups(praCol_);
    double eff4b = energy::energyEfficiency(
        sim::geometricMean(pal), p_base,
        energy::pragmaticPalletAreaPower(4).chipPower);
    double eff2b = energy::energyEfficiency(
        sim::geometricMean(pal), p_base,
        energy::pragmaticPalletAreaPower(2).chipPower);
    double eff2b1r = energy::energyEfficiency(
        sim::geometricMean(col), p_base,
        energy::pragmaticColumnAreaPower(2, 1).chipPower);
    // The crossover is the claim: single-stage PRA sits below
    // break-even, 2-stage above it, column-sync best. Our measured
    // margins are thinner than the paper's (synthetic substrate) but
    // the ordering and the break-even crossing are preserved.
    EXPECT_LT(eff4b, 1.0);
    EXPECT_GT(eff2b, 1.0);
    EXPECT_GT(eff2b1r, eff2b);
}

TEST(PaperShapeQuant, QuantizedBenefitsPersist)
{
    // Paper Section VI-F: benefits persist at 8 bits, nearly 3.5x for
    // PRA-2b-1R.
    auto net = dnn::makeAlexNet();
    DadnModel dadn;
    PragmaticSimulator prag;
    SimOptions opt;
    opt.sample = sim::SampleSpec{32};
    double base = dadn.run(net).totalCycles();

    PragmaticConfig q;
    q.representation = Representation::Quant8;
    double pallet = base / prag.run(net, q, opt).totalCycles();
    q.sync = SyncScheme::PerColumn;
    q.ssrCount = 1;
    double col = base / prag.run(net, q, opt).totalCycles();

    EXPECT_GT(pallet, 1.5);
    EXPECT_GT(col, pallet);
    EXPECT_NEAR(col, 3.5, 1.0);
}

} // namespace
} // namespace models
} // namespace pra
