/**
 * @file
 * Cross-model integration tests: every functional datapath (golden
 * reference, DaDN NFU, Stripes serial units, Pragmatic PIPs) must
 * produce identical convolution outputs on the same workload, and
 * the cycle engines must respect their mutual ordering.
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "dnn/reference.h"
#include "models/dadn/dadn.h"
#include "models/pragmatic/pip.h"
#include "models/pragmatic/simulator.h"
#include "models/stripes/stripes.h"
#include "sim/tiling.h"

namespace pra {
namespace models {
namespace {

/**
 * Compute one output window with Pragmatic PIPs: iterate the synapse
 * sets exactly as a PIP column does and accumulate the per-brick
 * partial sums.
 */
int64_t
pragmaticWindow(const dnn::LayerSpec &layer,
                const dnn::NeuronTensor &input,
                const dnn::FilterTensor &filter, int wx, int wy, int l)
{
    sim::AccelConfig accel;
    sim::LayerTiling tiling(layer, accel);
    PragmaticInnerProduct pip(l);
    int64_t acc = 0;
    for (int64_t s = 0; s < tiling.numSynapseSets(); s++) {
        sim::SynapseSetCoord coord = tiling.setCoord(s);
        auto neurons = tiling.gatherBrick(input, {wx, wy}, coord);
        std::array<int16_t, dnn::kBrickSize> synapses{};
        int lanes = std::min(accel.neuronLanes,
                             layer.inputChannels - coord.brickI);
        for (int lane = 0; lane < lanes; lane++)
            synapses[lane] =
                filter.at(coord.fx, coord.fy, coord.brickI + lane);
        acc += pip.processBrick(synapses, neurons).partialSum;
    }
    return acc;
}

/** Compute one window with Stripes serial-parallel units. */
int64_t
stripesWindow(const dnn::LayerSpec &layer,
              const dnn::NeuronTensor &input,
              const dnn::FilterTensor &filter, int wx, int wy)
{
    sim::AccelConfig accel;
    sim::LayerTiling tiling(layer, accel);
    int64_t acc = 0;
    for (int64_t s = 0; s < tiling.numSynapseSets(); s++) {
        sim::SynapseSetCoord coord = tiling.setCoord(s);
        auto neurons = tiling.gatherBrick(input, {wx, wy}, coord);
        int lanes = std::min(accel.neuronLanes,
                             layer.inputChannels - coord.brickI);
        for (int lane = 0; lane < lanes; lane++) {
            int16_t w =
                filter.at(coord.fx, coord.fy, coord.brickI + lane);
            acc += StripesModel::serialMultiply(w, neurons[lane], 16);
        }
    }
    return acc;
}

class FunctionalEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(FunctionalEquivalence, AllDatapathsAgreeOnTinyNetwork)
{
    int l = GetParam();
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    DadnModel dadn;
    for (size_t li = 0; li < net.layers.size(); li++) {
        const auto &layer = net.layers[li];
        auto input = synth.synthesizeFixed16(static_cast<int>(li));
        auto filters = dnn::synthesizeFilters(layer);
        auto golden = dnn::referenceConvolution(layer, input, filters);
        for (int f = 0; f < layer.numFilters;
             f += layer.numFilters / 3) {
            for (int wy = 0; wy < layer.outY(); wy += 4) {
                for (int wx = 0; wx < layer.outX(); wx += 4) {
                    int64_t want = golden.at(wx, wy, f);
                    EXPECT_EQ(pragmaticWindow(layer, input, filters[f],
                                              wx, wy, l),
                              want)
                        << layer.name << " PIP L=" << l;
                    if (l == 2) { // Value-independent paths run once.
                        EXPECT_EQ(dadn.computeWindow(layer, input,
                                                     filters[f], wx,
                                                     wy),
                                  want);
                        EXPECT_EQ(stripesWindow(layer, input,
                                                filters[f], wx, wy),
                                  want);
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FirstStage, FunctionalEquivalence,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(EndToEnd, TrimmedStreamStillComputesTrimmedConvolution)
{
    // Software trimming changes the values (that is its point); the
    // PIPs must compute the exact convolution of the trimmed stream.
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    const auto &layer = net.layers[1];
    auto trimmed = synth.synthesizeFixed16Trimmed(1);
    auto filters = dnn::synthesizeFilters(layer);
    auto golden = dnn::referenceConvolution(layer, trimmed, filters);
    EXPECT_EQ(pragmaticWindow(layer, trimmed, filters[2], 3, 3, 2),
              golden.at(3, 3, 2));
}

TEST(EndToEnd, QuantizedCodesFlowThroughPips)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    const auto &layer = net.layers[0];
    auto codes = synth.synthesizeQuant8(0);
    auto filters = dnn::synthesizeFilters(layer);
    auto golden = dnn::referenceConvolution(layer, codes, filters);
    for (int l : {0, 2, 4})
        EXPECT_EQ(pragmaticWindow(layer, codes, filters[1], 2, 2, l),
                  golden.at(2, 2, 1));
}

TEST(EndToEnd, CycleCountOrderingAcrossEngines)
{
    // DaDN >= Stripes >= PRA-pallet >= PRA-perCol >= ideal, on the
    // same synthetic workload.
    auto net = dnn::makeTinyNetwork();
    DadnModel dadn;
    StripesModel stripes;
    PragmaticSimulator prag;
    SimOptions opt;
    opt.sample = sim::SampleSpec{0}; // Tiny network: exhaustive.

    double base = dadn.run(net).totalCycles();
    double str = stripes.run(net).totalCycles();

    PragmaticConfig pallet;
    pallet.modelNmStalls = false;
    double pra = prag.run(net, pallet, opt).totalCycles();

    PragmaticConfig column = pallet;
    column.sync = SyncScheme::PerColumn;
    column.ssrCount = 1;
    double col = prag.run(net, column, opt).totalCycles();

    PragmaticConfig ideal = column;
    ideal.ssrCount = 0;
    double ide = prag.run(net, ideal, opt).totalCycles();

    EXPECT_GT(base, str);
    EXPECT_GT(str, pra);
    EXPECT_GE(pra * 1.02, col);
    EXPECT_GE(col * 1.001, ide);
}

} // namespace
} // namespace models
} // namespace pra
