#pragma once

int selfContainedValue();
