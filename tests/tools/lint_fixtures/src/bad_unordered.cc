// Seeded violation: hash-order iteration feeding an output row.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string>
rowsInHashOrder()
{
    std::unordered_map<std::string, int> totals = {{"a", 1}, {"b", 2}};
    std::vector<std::string> rows;
    for (const auto &entry : totals)
        rows.push_back(entry.first);
    return rows;
}
