// Seeded violation: platform randomness instead of util/random.h.
#include <random>

unsigned
entropySeed()
{
    std::random_device device;
    return device();
}
