// Seeded violation: stdout write from library code.
#include <iostream>

void
reportProgress(int layer)
{
    std::cout << "layer " << layer << " done\n";
}
