// Seeded violation: ambient environment read in library code.
#include <cstdlib>

const char *
homeDirectory()
{
    return std::getenv("HOME");
}
