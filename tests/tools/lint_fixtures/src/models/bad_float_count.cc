// Seeded violation: float accumulation of a cycle count in a kernel.
int
scheduleLength(int bricks)
{
    double totalCycles = 0.0;
    for (int i = 0; i < bricks; ++i)
        totalCycles += 1.0;
    return static_cast<int>(totalCycles);
}
