// Every violation below carries a pra-lint suppression and must not
// produce a finding; this file pins the allow() syntax (same line and
// line-above forms) that docs/ARCHITECTURE.md documents.
#include <chrono>
#include <cstdio>
#include <iostream>

void
suppressedSameLine()
{
    auto t0 = std::chrono::steady_clock::now(); // pra-lint: allow(wall-clock) fixture demo
    (void)t0;
}

void
suppressedLineAbove()
{
    // pra-lint: allow(stdout-in-lib) fixture demo of line-above form
    std::cout << "suppressed\n";
}

void
suppressedMultiRule()
{
    // pra-lint: allow(stdout-in-lib,wall-clock) both on one line below
    printf("%ld", std::chrono::steady_clock::now().time_since_epoch().count());
}
