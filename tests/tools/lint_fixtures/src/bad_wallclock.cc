// Seeded violation: wall-clock read inside a priced path.
#include <chrono>

double
elapsedSeconds()
{
    auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
