// Seeded violation: old-style include guard instead of #pragma once.
#ifndef PRA_LINT_FIXTURE_BAD_HEADER_H
#define PRA_LINT_FIXTURE_BAD_HEADER_H

int fixtureValue();

#endif // PRA_LINT_FIXTURE_BAD_HEADER_H
