// Seeded violation: own header is not the first include, so its
// self-containedness is never exercised by this translation unit.
#include <vector>

#include "bad_self.h"

int
selfContainedValue()
{
    return static_cast<int>(std::vector<int>{1, 2, 3}.size());
}
