// Seeded violation: ArgParser without checkUnknown -- typoed flags
// would be silently ignored.
#include "util/args.h"

int
main(int argc, char **argv)
{
    pra::util::ArgParser args(argc, argv);
    return args.has("verbose") ? 1 : 0;
}
