#!/usr/bin/env python3
"""Byte-compare a tool's stdout against a committed golden file.

Usage: check_golden_csv.py GOLDEN_FILE BINARY [ARG...]

Runs BINARY with the given arguments and fails loudly (with a unified
diff) unless its stdout is byte-identical to GOLDEN_FILE. CTest uses
this to pin tool-level CSV output — e.g. the pra_serve smoke report —
the same way CI's byte-compare jobs do, so `ctest` alone reproduces
the golden verdict locally.
"""

import difflib
import subprocess
import sys


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    golden_path, binary = argv[1], argv[2]
    with open(golden_path, "rb") as f:
        golden = f.read()
    proc = subprocess.run([binary] + argv[3:], stdout=subprocess.PIPE)
    if proc.returncode != 0:
        sys.stderr.write(
            "FAIL: %s exited with %d\n" % (binary, proc.returncode))
        return 1
    if proc.stdout == golden:
        return 0
    sys.stderr.write("FAIL: output differs from %s\n" % golden_path)
    diff = difflib.unified_diff(
        golden.decode(errors="replace").splitlines(keepends=True),
        proc.stdout.decode(errors="replace").splitlines(keepends=True),
        fromfile=golden_path,
        tofile="actual",
    )
    sys.stderr.writelines(diff)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
