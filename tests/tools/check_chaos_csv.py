#!/usr/bin/env python3
"""Sanity-check a faulted (chaos) pra_serve CSV.

Usage: check_chaos_csv.py CHAOS_CSV

CI's serving-smoke job runs a pinned saturating fault scenario and
pipes the CSV here. Every data row must actually be degraded:

  * availability < 1        (instances really failed)
  * shed_requests > 0       (the bounded queue shed load)
  * images_per_s <= offered_per_s  (goodput never exceeds offer)
  * completed < requests    (some work was shed or failed for good)

and across the whole sweep retries > 0 and killed_batches > 0 (a
fail-stop killed an in-flight batch and its requests came back).
Columns are located by header name so the check survives column
insertions.
"""

import csv
import sys

REQUIRED = [
    "offered_per_s", "requests", "images_per_s", "completed",
    "retries", "permanent_failures", "shed_requests",
    "killed_batches", "availability",
]


def main(argv):
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(argv[1], newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.stderr.write("FAIL: %s has no data rows\n" % argv[1])
        return 1
    missing = [c for c in REQUIRED if c not in rows[0]]
    if missing:
        sys.stderr.write(
            "FAIL: missing degraded columns: %s\n" % ", ".join(missing))
        return 1

    failures = []
    total_retries = 0
    total_killed = 0
    for i, row in enumerate(rows, start=2):  # line 1 is the header

        def bad(msg):
            failures.append("line %d (%s/%s): %s" % (
                i, row["network"], row["engine"], msg))

        availability = float(row["availability"])
        if not availability < 1.0:
            bad("availability %s is not < 1" % row["availability"])
        if int(row["shed_requests"]) <= 0:
            bad("no shed requests despite the queue cap")
        if float(row["images_per_s"]) > float(row["offered_per_s"]):
            bad("goodput %s exceeds offered %s" % (
                row["images_per_s"], row["offered_per_s"]))
        if int(row["completed"]) >= int(row["requests"]):
            bad("completed %s not below requests %s" % (
                row["completed"], row["requests"]))
        total_retries += int(row["retries"])
        total_killed += int(row["killed_batches"])

    if total_retries <= 0:
        failures.append("sweep-wide: no retries at all")
    if total_killed <= 0:
        failures.append("sweep-wide: no in-flight batch was killed")

    if failures:
        sys.stderr.write("FAIL: chaos CSV is not degraded enough:\n")
        for msg in failures:
            sys.stderr.write("  %s\n" % msg)
        return 1
    print("chaos OK: %d rows, %d retries, %d killed batches" % (
        len(rows), total_retries, total_killed))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
