/**
 * @file
 * Memory-hierarchy model tests: hand-computed traffic for conv and
 * FC layers, the double-buffer stall rule, --memory=ideal
 * equivalence with compute-only runs, sweep determinism with memory
 * modeling on, and loud rejection of unknown presets and degenerate
 * configurations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/memory/memory_config.h"
#include "sim/memory/memory_model.h"
#include "sim/sweep.h"

using namespace pra;
using namespace pra::sim;

namespace {

/** 4x4x16 input, 3x3x16 filters, 32 of them: one pallet, one pass. */
dnn::LayerSpec
smallConv()
{
    dnn::LayerSpec layer;
    layer.name = "conv_small";
    layer.inputX = 4;
    layer.inputY = 4;
    layer.inputChannels = 16;
    layer.filterX = 3;
    layer.filterY = 3;
    layer.numFilters = 32;
    EXPECT_TRUE(layer.valid());
    return layer;
}

SweepOptions
memorySweepOptions(const std::string &preset)
{
    SweepOptions options;
    options.threads = 1;
    options.accel.memory = parseMemoryPreset(preset);
    return options;
}

std::string
sweepCsv(const std::vector<NetworkResult> &results, bool per_layer)
{
    std::ostringstream out;
    writeSweepCsv(out, results, per_layer);
    return out.str();
}

std::vector<EngineSelection>
allEngines()
{
    std::vector<EngineSelection> engines;
    for (const auto &kind : models::builtinEngines().kinds())
        engines.push_back({kind, {}});
    return engines;
}

TEST(MemoryConfigTest, PresetsParseAndValidate)
{
    for (const auto &name : memoryPresetNames()) {
        MemoryConfig config = parseMemoryPreset(name);
        EXPECT_TRUE(config.valid()) << name;
        EXPECT_EQ(config.preset, name);
        EXPECT_FALSE(memoryPresetHelp(name).empty());
    }
    EXPECT_FALSE(parseMemoryPreset("off").enabled);
    EXPECT_TRUE(parseMemoryPreset("ideal").ideal);
    MemoryConfig dadn = parseMemoryPreset("dadn");
    EXPECT_TRUE(dadn.enabled);
    EXPECT_FALSE(dadn.ideal);
    EXPECT_DOUBLE_EQ(dadn.gbBytesPerCycle(), 16 * 32.0);
}

TEST(MemoryConfigTest, UnknownPresetRejectedLoudly)
{
    EXPECT_DEATH(parseMemoryPreset("nope"), "unknown memory preset");
    EXPECT_DEATH(parseMemoryPreset(""), "unknown memory preset");
}

TEST(MemoryConfigTest, DegenerateCapacitiesInvalid)
{
    MemoryConfig config = parseMemoryPreset("dadn");
    config.gbCapacityBytes = 0.0;
    EXPECT_FALSE(config.valid());

    config = parseMemoryPreset("dadn");
    config.dramBytesPerCycle = 0.0;
    EXPECT_FALSE(config.valid());

    config = parseMemoryPreset("dadn");
    config.gbBanks = 0;
    EXPECT_FALSE(config.valid());

    config = parseMemoryPreset("dadn");
    config.weightSpadBytes = -1.0;
    EXPECT_FALSE(config.valid());

    // An AccelConfig carrying a degenerate memory config is itself
    // invalid, so engines reject it before simulating anything.
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    accel.memory.inputSpadBytes = 0.0;
    EXPECT_FALSE(accel.valid());
}

TEST(MemoryModelTest, DegenerateConfigRejectedByTraffic)
{
    AccelConfig accel;
    MemoryConfig broken = parseMemoryPreset("dadn");
    broken.gbCapacityBytes = 0.0;
    EXPECT_DEATH(layerTraffic(smallConv(), accel, broken),
                 "disabled or invalid");
    EXPECT_DEATH(layerTraffic(smallConv(), accel, MemoryConfig{}),
                 "disabled or invalid");
}

TEST(MemoryModelTest, SmallConvTrafficHandComputed)
{
    AccelConfig accel; // 16 tiles x 16 filters: one pass, one pallet.
    dnn::LayerSpec layer = smallConv();
    LayerTraffic t =
        layerTraffic(layer, accel, parseMemoryPreset("dadn"));

    // 4*4*16 input words, 32*3*3*16 synapse words, 2*2*32 output
    // words, two bytes each.
    EXPECT_DOUBLE_EQ(t.ifmapBytes, 512.0);
    EXPECT_DOUBLE_EQ(t.filterBytes, 9216.0);
    EXPECT_DOUBLE_EQ(t.ofmapBytes, 256.0);
    EXPECT_DOUBLE_EQ(t.tileSteps, 1.0);

    // One pass, resident weights (16 * 144 * 2 = 4608 B slice):
    // every tensor crosses each boundary once.
    EXPECT_TRUE(t.weightsResident);
    EXPECT_TRUE(t.fitsGlobalBuffer);
    EXPECT_DOUBLE_EQ(t.onChipBytes, 512.0 + 9216.0 + 256.0);
    EXPECT_DOUBLE_EQ(t.offChipBytes, 512.0 + 9216.0 + 256.0);
}

TEST(MemoryModelTest, FcTrafficHandComputed)
{
    AccelConfig accel;
    dnn::LayerSpec layer = dnn::LayerSpec::fullyConnected("fc", 256, 64);
    LayerTraffic t =
        layerTraffic(layer, accel, parseMemoryPreset("dadn"));

    // 256 input words, 64*256 synapse words, 64 output words; the
    // lowered FC has one window -> one pallet, and 64 filters -> one
    // pass.
    EXPECT_DOUBLE_EQ(t.ifmapBytes, 512.0);
    EXPECT_DOUBLE_EQ(t.filterBytes, 32768.0);
    EXPECT_DOUBLE_EQ(t.ofmapBytes, 128.0);
    EXPECT_DOUBLE_EQ(t.tileSteps, 1.0);
    EXPECT_DOUBLE_EQ(t.onChipBytes, 512.0 + 32768.0 + 128.0);
    EXPECT_DOUBLE_EQ(t.offChipBytes, 512.0 + 32768.0 + 128.0);
}

TEST(MemoryModelTest, MultiPassRereadsIfmap)
{
    AccelConfig accel;
    dnn::LayerSpec layer = smallConv();
    layer.numFilters = 512; // 2 passes of 256 filters.
    LayerTraffic t =
        layerTraffic(layer, accel, parseMemoryPreset("dadn"));

    EXPECT_DOUBLE_EQ(t.tileSteps, 2.0);
    // The ifmap streams once per pass on-chip; filters and ofmap are
    // split across the passes, so their totals are unchanged.
    EXPECT_DOUBLE_EQ(t.onChipBytes,
                     2.0 * 512.0 + t.filterBytes + t.ofmapBytes);
    // Working set still fits the 4 MiB buffer: off-chip stays
    // compulsory-only.
    EXPECT_TRUE(t.fitsGlobalBuffer);
    EXPECT_DOUBLE_EQ(t.offChipBytes,
                     512.0 + t.filterBytes + t.ofmapBytes);
}

TEST(MemoryModelTest, OversizedFilterSliceStreamsPerPallet)
{
    AccelConfig accel;
    // VGG-class layer: 3*3*512-word filters. Per-tile slice =
    // 16 * 4608 * 2 = 147456 B > the edge preset's 64 KiB weight
    // scratchpad, so filters re-stream from the GB per pallet.
    dnn::LayerSpec layer;
    layer.name = "conv_wide";
    layer.inputX = 8;
    layer.inputY = 8;
    layer.inputChannels = 512;
    layer.filterX = 3;
    layer.filterY = 3;
    layer.numFilters = 64;
    layer.pad = 1;
    ASSERT_TRUE(layer.valid());

    MemoryConfig edge = parseMemoryPreset("edge");
    LayerTraffic t = layerTraffic(layer, accel, edge);
    EXPECT_FALSE(t.weightsResident);
    double pallets = 4.0; // 64 windows / 16 per pallet.
    EXPECT_DOUBLE_EQ(t.onChipBytes,
                     t.ifmapBytes + t.filterBytes * pallets +
                         t.ofmapBytes);

    // The same slice is resident under dadn's 128 KiB scratchpad...
    LayerTraffic dadn =
        layerTraffic(layer, accel, parseMemoryPreset("dadn"));
    EXPECT_FALSE(dadn.weightsResident); // 147456 B > 128 KiB too.
    // ...but always resident under ideal (infinite capacity).
    LayerTraffic ideal =
        layerTraffic(layer, accel, parseMemoryPreset("ideal"));
    EXPECT_TRUE(ideal.weightsResident);
    EXPECT_TRUE(ideal.fitsGlobalBuffer);
}

TEST(MemoryModelTest, GlobalBufferSpillRefetchesIfmapPerPass)
{
    AccelConfig accel;
    // An fc6-shaped tail: 9216 inputs, 4096 outputs -> 16 passes,
    // 75.5 MB of weights, far beyond any preset's global buffer.
    dnn::LayerSpec layer =
        dnn::LayerSpec::fullyConnected("fc6", 9216, 4096);
    LayerTraffic t =
        layerTraffic(layer, accel, parseMemoryPreset("dadn"));

    EXPECT_FALSE(t.fitsGlobalBuffer);
    EXPECT_DOUBLE_EQ(t.tileSteps, 16.0);
    // Off-chip: the ifmap re-crosses the channel on every pass;
    // each filter byte is consumed by exactly one pass.
    EXPECT_DOUBLE_EQ(t.offChipBytes,
                     16.0 * t.ifmapBytes + t.filterBytes +
                         t.ofmapBytes);
}

TEST(MemoryModelTest, StallRuleColdFillPlusSteadyState)
{
    MemoryConfig memory = parseMemoryPreset("dadn");
    LayerTraffic t;
    t.onChipBytes = 512.0 * 100.0;  // 100 GB cycles at 512 B/cyc.
    t.offChipBytes = 32.0 * 400.0;  // 400 DRAM cycles at 32 B/cyc.
    t.tileSteps = 8.0;

    // Fetch time F = max(100, 400) = 400.
    // Compute-bound (C >= F): only the cold fill F/steps remains.
    EXPECT_DOUBLE_EQ(memoryStallCycles(t, 1000.0, memory), 50.0);
    // Bandwidth-bound: F/steps + (steps-1)/steps * (F - C).
    EXPECT_DOUBLE_EQ(memoryStallCycles(t, 80.0, memory),
                     50.0 + 7.0 / 8.0 * 320.0);
    // Ideal: zero, not merely small.
    EXPECT_DOUBLE_EQ(
        memoryStallCycles(t, 80.0, parseMemoryPreset("ideal")), 0.0);
}

TEST(MemoryModelTest, ApplyFillsResultColumns)
{
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    dnn::LayerSpec layer = smallConv();

    LayerResult result;
    result.layerName = layer.name;
    result.cycles = 1000.0;
    applyMemoryModel(layer, accel, result);

    EXPECT_TRUE(result.memoryModeled);
    EXPECT_GT(result.onChipBytes, 0.0);
    EXPECT_GT(result.offChipBytes, 0.0);
    EXPECT_GT(result.memStallCycles, 0.0);
    EXPECT_DOUBLE_EQ(result.systemCycles(),
                     result.cycles + result.memStallCycles);

    // Memory off: a no-op, every column stays zero.
    LayerResult untouched;
    untouched.cycles = 1000.0;
    applyMemoryModel(layer, AccelConfig{}, untouched);
    EXPECT_FALSE(untouched.memoryModeled);
    EXPECT_DOUBLE_EQ(untouched.systemCycles(), 1000.0);
}

TEST(MemorySweepTest, IdealMatchesComputeOnlyExactly)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto engines = allEngines();
    const auto &registry = models::builtinEngines();

    auto off = runSweep(networks, engines, registry,
                        memorySweepOptions("off"));
    auto ideal = runSweep(networks, engines, registry,
                          memorySweepOptions("ideal"));
    ASSERT_EQ(off.size(), ideal.size());
    for (size_t i = 0; i < off.size(); i++) {
        ASSERT_EQ(off[i].layers.size(), ideal[i].layers.size());
        EXPECT_FALSE(off[i].memoryModeled());
        EXPECT_TRUE(ideal[i].memoryModeled());
        for (size_t l = 0; l < off[i].layers.size(); l++) {
            const auto &o = off[i].layers[l];
            const auto &m = ideal[i].layers[l];
            // Compute columns are bit-identical; stalls are exactly
            // zero; traffic is still counted.
            EXPECT_EQ(o.cycles, m.cycles);
            EXPECT_EQ(o.nmStallCycles, m.nmStallCycles);
            EXPECT_EQ(o.effectualTerms, m.effectualTerms);
            EXPECT_EQ(o.sbReadSteps, m.sbReadSteps);
            EXPECT_DOUBLE_EQ(m.memStallCycles, 0.0);
            EXPECT_FALSE(m.bandwidthBound);
            EXPECT_GT(m.onChipBytes, 0.0);
            EXPECT_GT(m.offChipBytes, 0.0);
            EXPECT_EQ(m.systemCycles(), o.cycles);
        }
    }
}

TEST(MemorySweepTest, DeterministicAcrossThreadsCacheAndInner)
{
    std::vector<dnn::Network> networks = {
        dnn::makeTinyNetwork(dnn::LayerSelect::All)};
    auto engines = allEngines();
    const auto &registry = models::builtinEngines();

    SweepOptions base = memorySweepOptions("dadn");
    auto reference = runSweep(networks, engines, registry, base);
    std::string golden = sweepCsv(reference, /*per_layer=*/true);
    EXPECT_NE(golden.find("on_chip_bytes"), std::string::npos);

    SweepOptions threaded = base;
    threaded.threads = 4;
    SweepOptions inner = base;
    inner.threads = 4;
    inner.innerThreads = 3;
    SweepOptions uncached = base;
    uncached.threads = 4;
    uncached.cache = false;
    for (const SweepOptions &options : {threaded, inner, uncached}) {
        auto results = runSweep(networks, engines, registry, options);
        EXPECT_EQ(sweepCsv(results, /*per_layer=*/true), golden);
    }
}

TEST(MemorySweepTest, CsvColumnsGatedOnMemoryModeling)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> engines = {{"dadn", {}}};
    const auto &registry = models::builtinEngines();

    auto off = runSweep(networks, engines, registry,
                        memorySweepOptions("off"));
    std::string off_csv = sweepCsv(off, /*per_layer=*/false);
    EXPECT_EQ(off_csv.find("on_chip_bytes"), std::string::npos);
    EXPECT_EQ(off_csv.find("system_cycles"), std::string::npos);

    auto with = runSweep(networks, engines, registry,
                         memorySweepOptions("edge"));
    std::string mem_csv = sweepCsv(with, /*per_layer=*/false);
    for (const char *column :
         {"on_chip_bytes", "off_chip_bytes", "mem_stall_cycles",
          "system_cycles", "bw_bound"})
        EXPECT_NE(mem_csv.find(column), std::string::npos) << column;
}

TEST(MemorySweepTest, SpeedupUsesSystemCycles)
{
    NetworkResult base;
    base.layers.push_back({});
    base.layers.back().cycles = 1000.0;
    NetworkResult faster;
    faster.layers.push_back({});
    faster.layers.back().cycles = 250.0;

    // Compute-only: 4x.
    EXPECT_DOUBLE_EQ(faster.speedupOver(base), 4.0);

    // Memory stalls erode the system speedup (the compute advantage
    // cannot hide a fixed fetch time).
    base.layers.back().memStallCycles = 200.0;
    faster.layers.back().memStallCycles = 350.0;
    EXPECT_DOUBLE_EQ(faster.speedupOver(base), 1200.0 / 600.0);
}

} // namespace
