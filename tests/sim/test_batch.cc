/**
 * @file
 * Tests for the batch dimension: per-image activation streams,
 * Engine::runBatch accumulation, batch-aware memory traffic, the
 * batch columns of the sweep CSV, and grid sharding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/memory/memory_model.h"
#include "sim/sweep.h"
#include "sim/workload_cache.h"

namespace pra {
namespace sim {
namespace {

std::vector<EngineSelection>
allKindsGrid()
{
    std::vector<EngineSelection> grid;
    for (const auto &kind : models::builtinEngines().kinds())
        grid.push_back({kind, {}});
    return grid;
}

SweepOptions
tinyOptions(int threads)
{
    SweepOptions options;
    options.threads = threads;
    options.sample.maxUnits = 2;
    return options;
}

void
expectSameResults(const std::vector<NetworkResult> &expected,
                  const std::vector<NetworkResult> &actual,
                  const std::string &what)
{
    ASSERT_EQ(expected.size(), actual.size()) << what;
    for (size_t i = 0; i < expected.size(); i++) {
        EXPECT_EQ(expected[i].networkName, actual[i].networkName)
            << what;
        EXPECT_EQ(expected[i].engineName, actual[i].engineName)
            << what;
        ASSERT_EQ(expected[i].layers.size(), actual[i].layers.size())
            << what;
        for (size_t l = 0; l < expected[i].layers.size(); l++) {
            const auto &a = expected[i].layers[l];
            const auto &b = actual[i].layers[l];
            EXPECT_EQ(a.cycles, b.cycles) << what;
            EXPECT_EQ(a.effectualTerms, b.effectualTerms) << what;
            EXPECT_EQ(a.nmStallCycles, b.nmStallCycles) << what;
            EXPECT_EQ(a.sbReadSteps, b.sbReadSteps) << what;
            EXPECT_EQ(a.batchImages, b.batchImages) << what;
            EXPECT_EQ(a.offChipBytes, b.offChipBytes) << what;
        }
    }
}

TEST(ImageStreamSalt, ImageZeroIsTheHistoricalStream)
{
    // Salt 0 for image 0 is what keeps every committed golden
    // byte-identical: the single-image seed path is unchanged.
    static_assert(dnn::imageStreamSalt(0) == 0);
    static_assert(dnn::imageStreamSalt(1) != 0);
    static_assert(dnn::imageStreamSalt(1) != dnn::imageStreamSalt(2));
}

TEST(ImageStreamSalt, ImagesSynthesizeDistinctDeterministicStreams)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    auto image0 = synth.synthesizeFixed16(0);
    auto image0_explicit = synth.synthesizeFixed16(0, 0);
    auto image1 = synth.synthesizeFixed16(0, 1);
    auto image1_again = synth.synthesizeFixed16(0, 1);

    ASSERT_EQ(image0.size(), image1.size());
    EXPECT_TRUE(std::equal(image0.flat().begin(), image0.flat().end(),
                           image0_explicit.flat().begin()));
    EXPECT_TRUE(std::equal(image1.flat().begin(), image1.flat().end(),
                           image1_again.flat().begin()));
    EXPECT_FALSE(std::equal(image0.flat().begin(), image0.flat().end(),
                            image1.flat().begin()));
}

TEST(WorkloadSource, WithImageRebindsAndKeepsIdentity)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    EXPECT_EQ(source.image(), 0);
    WorkloadSource other = source.withImage(3);
    EXPECT_EQ(other.image(), 3);
    EXPECT_EQ(source.image(), 0); // The original is untouched.
    EXPECT_EQ(other.withImage(0).image(), 0);
}

TEST(RunBatch, BatchOfOneMatchesRunNetwork)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    AccelConfig accel;
    SampleSpec sample{2};
    util::InnerExecutor exec;
    for (const auto &sel : allKindsGrid()) {
        auto engine = models::builtinEngines().create(sel);
        NetworkResult single =
            engine->runNetwork(net, source, accel, sample, exec);
        NetworkResult batch =
            engine->runBatch(net, source, accel, sample, exec, 1);
        ASSERT_EQ(single.layers.size(), batch.layers.size())
            << sel.kind;
        EXPECT_EQ(batch.batchImages(), 1) << sel.kind;
        for (size_t l = 0; l < single.layers.size(); l++) {
            EXPECT_EQ(single.layers[l].cycles, batch.layers[l].cycles)
                << sel.kind;
            EXPECT_EQ(single.layers[l].effectualTerms,
                      batch.layers[l].effectualTerms)
                << sel.kind;
        }
    }
}

TEST(RunBatch, AccumulatesPerImageRunsForEveryEngineKind)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    AccelConfig accel;
    SampleSpec sample{2};
    util::InnerExecutor exec;
    const int batch = 3;
    for (const auto &sel : allKindsGrid()) {
        auto engine = models::builtinEngines().create(sel);
        NetworkResult total =
            engine->runBatch(net, source, accel, sample, exec, batch);
        EXPECT_EQ(total.batchImages(), batch) << sel.kind;

        NetworkResult manual = engine->runNetwork(
            net, source.withImage(0), accel, sample, exec);
        for (int b = 1; b < batch; b++)
            accumulateBatchImage(
                manual, engine->runNetwork(net, source.withImage(b),
                                           accel, sample, exec));
        ASSERT_EQ(total.layers.size(), manual.layers.size())
            << sel.kind;
        for (size_t l = 0; l < total.layers.size(); l++) {
            EXPECT_EQ(total.layers[l].cycles, manual.layers[l].cycles)
                << sel.kind;
            EXPECT_EQ(total.layers[l].effectualTerms,
                      manual.layers[l].effectualTerms)
                << sel.kind;
            EXPECT_EQ(total.layers[l].nmStallCycles,
                      manual.layers[l].nmStallCycles)
                << sel.kind;
            EXPECT_EQ(total.layers[l].sbReadSteps,
                      manual.layers[l].sbReadSteps)
                << sel.kind;
            EXPECT_DOUBLE_EQ(
                total.layers[l].cyclesPerImage(),
                total.layers[l].cycles / static_cast<double>(batch))
                << sel.kind;
        }
    }
}

TEST(RunBatch, LaterImagesPriceDifferentStreams)
{
    // Value-dependent engines must see a genuinely different stream
    // per image; value-independent DaDN must not care.
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    AccelConfig accel;
    SampleSpec sample{2};
    util::InnerExecutor exec;

    auto pra = models::builtinEngines().create("pragmatic",
                                               {{"bits", "2"}});
    NetworkResult pra0 = pra->runNetwork(net, source.withImage(0),
                                         accel, sample, exec);
    NetworkResult pra1 = pra->runNetwork(net, source.withImage(1),
                                         accel, sample, exec);
    double terms0 = 0.0, terms1 = 0.0;
    for (const auto &layer : pra0.layers)
        terms0 += layer.effectualTerms;
    for (const auto &layer : pra1.layers)
        terms1 += layer.effectualTerms;
    EXPECT_NE(terms0, terms1);

    auto dadn = models::builtinEngines().create("dadn");
    NetworkResult dadn0 = dadn->runNetwork(net, source.withImage(0),
                                           accel, sample, exec);
    NetworkResult dadn1 = dadn->runNetwork(net, source.withImage(1),
                                           accel, sample, exec);
    EXPECT_EQ(dadn0.totalCycles(), dadn1.totalCycles());
}

TEST(BatchTraffic, BatchOneReproducesHistoricalTrafficExactly)
{
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    auto net = dnn::makeVgg19(dnn::LayerSelect::All);
    for (const auto &layer : net.layers) {
        if (!layer.priced())
            continue;
        LayerTraffic historical =
            layerTraffic(layer, accel, accel.memory);
        LayerTraffic batch1 =
            layerTraffic(layer, accel, accel.memory, 1);
        EXPECT_EQ(historical.offChipBytes, batch1.offChipBytes)
            << layer.name;
        EXPECT_EQ(historical.onChipBytes, batch1.onChipBytes)
            << layer.name;
        EXPECT_EQ(historical.tileSteps, batch1.tileSteps)
            << layer.name;
    }
}

TEST(BatchTraffic, FcFilterBytesAmortizeAcrossTheBatch)
{
    // The paper-facing claim: a batch of 8 images streams the FC
    // filters from DRAM once, not 8 times, so the off-chip bytes of
    // the VGG-19 FC tail are *strictly* below 8x the single-image
    // run. Ifmap/ofmap traffic still scales with the batch.
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    auto net = dnn::makeVgg19(dnn::LayerSelect::Fc);
    ASSERT_FALSE(net.layers.empty());
    for (const auto &layer : net.layers) {
        LayerTraffic one = layerTraffic(layer, accel, accel.memory, 1);
        LayerTraffic eight =
            layerTraffic(layer, accel, accel.memory, 8);
        EXPECT_LT(eight.offChipBytes, 8.0 * one.offChipBytes)
            << layer.name;
        EXPECT_EQ(eight.filterBytes, one.filterBytes) << layer.name;
        EXPECT_EQ(eight.ifmapBytes, 8.0 * one.ifmapBytes)
            << layer.name;
        EXPECT_EQ(eight.ofmapBytes, 8.0 * one.ofmapBytes)
            << layer.name;
    }
}

TEST(BatchTraffic, SweepMemoryColumnsUseTheStampedBatch)
{
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    auto net = dnn::makeTinyNetwork();
    std::vector<dnn::Network> networks = {net};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    SweepOptions options = tinyOptions(1);
    options.accel = accel;
    options.batch = 8;
    auto results = runSweep(networks, grid, models::builtinEngines(),
                            options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].batchImages(), 8);
    double expected = 0.0;
    for (const auto &layer : net.layers)
        expected +=
            layerTraffic(layer, accel, accel.memory, 8).offChipBytes;
    EXPECT_DOUBLE_EQ(results[0].totalOffChipBytes(), expected);
}

TEST(BatchCsv, BatchColumnsOnlyAppearWhenBatched)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};

    // Explicit batch=1 is byte-identical to the defaulted options:
    // the historical column set, no batch columns.
    SweepOptions implicit = tinyOptions(1);
    SweepOptions explicit1 = tinyOptions(1);
    explicit1.batch = 1;
    std::ostringstream implicit_csv, explicit_csv;
    writeSweepCsv(implicit_csv,
                  runSweep(networks, grid, models::builtinEngines(),
                           implicit));
    writeSweepCsv(explicit_csv,
                  runSweep(networks, grid, models::builtinEngines(),
                           explicit1));
    EXPECT_EQ(implicit_csv.str(), explicit_csv.str());
    EXPECT_EQ(implicit_csv.str().find(",batch,"), std::string::npos);

    SweepOptions batched = tinyOptions(1);
    batched.batch = 2;
    std::ostringstream batched_csv;
    writeSweepCsv(batched_csv,
                  runSweep(networks, grid, models::builtinEngines(),
                           batched));
    std::istringstream lines(batched_csv.str());
    std::string header, row;
    std::getline(lines, header);
    std::getline(lines, row);
    EXPECT_NE(header.find(",batch,cycles_per_image"),
              std::string::npos);
    EXPECT_NE(row.find(",2,"), std::string::npos);
}

TEST(Shard, SlicesConcatenateToTheFullSweep)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork(),
                                          dnn::makeAlexNet()};
    auto grid = allKindsGrid();
    auto full = runSweep(networks, grid, models::builtinEngines(),
                         tinyOptions(1));

    for (int shards : {2, 3, 5}) {
        std::vector<NetworkResult> concat;
        for (int i = 0; i < shards; i++) {
            SweepOptions options = tinyOptions(1);
            options.shardIndex = i;
            options.shardCount = shards;
            auto slice = runSweep(networks, grid,
                                  models::builtinEngines(), options);
            concat.insert(concat.end(), slice.begin(), slice.end());
        }
        expectSameResults(full, concat,
                          "shards=" + std::to_string(shards));
    }
}

TEST(Shard, CsvBodiesConcatenateByteIdentically)
{
    // The tool-level contract the CI shard job pins: shard 0's CSV
    // plus the headerless bodies of shards 1..N-1 is byte-identical
    // to the unsharded dump.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto grid = allKindsGrid();
    std::ostringstream full;
    writeSweepCsv(full, runSweep(networks, grid,
                                 models::builtinEngines(),
                                 tinyOptions(1)));
    std::string stitched;
    const int shards = 3;
    for (int i = 0; i < shards; i++) {
        SweepOptions options = tinyOptions(1);
        options.shardIndex = i;
        options.shardCount = shards;
        std::ostringstream csv;
        writeSweepCsv(csv, runSweep(networks, grid,
                                    models::builtinEngines(),
                                    options));
        std::string text = csv.str();
        if (i == 0)
            stitched += text;
        else
            stitched += text.substr(text.find('\n') + 1);
    }
    EXPECT_EQ(full.str(), stitched);
}

TEST(Shard, MoreShardsThanCellsYieldsEmptySlices)
{
    // A 1x2 grid split 5 ways: three shards are empty, and the
    // concatenation still reproduces the full sweep.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}},
                                         {"stripes", {}}};
    auto full = runSweep(networks, grid, models::builtinEngines(),
                         tinyOptions(1));
    std::vector<NetworkResult> concat;
    size_t empty_slices = 0;
    for (int i = 0; i < 5; i++) {
        SweepOptions options = tinyOptions(1);
        options.shardIndex = i;
        options.shardCount = 5;
        auto slice = runSweep(networks, grid,
                              models::builtinEngines(), options);
        if (slice.empty())
            empty_slices++;
        concat.insert(concat.end(), slice.begin(), slice.end());
    }
    EXPECT_EQ(empty_slices, 3u);
    expectSameResults(full, concat, "shards=5 cells=2");
}

TEST(BatchDeathTest, RejectsDegenerateBatchAndShard)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    SweepOptions bad_batch = tinyOptions(1);
    bad_batch.batch = 0;
    EXPECT_DEATH(runSweep(networks, grid, models::builtinEngines(),
                          bad_batch),
                 "batch");
    SweepOptions bad_shard = tinyOptions(1);
    bad_shard.shardIndex = 2;
    bad_shard.shardCount = 2;
    EXPECT_DEATH(runSweep(networks, grid, models::builtinEngines(),
                          bad_shard),
                 "shard");

    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    EXPECT_DEATH(source.withImage(-1), "non-negative");
    auto engine = models::builtinEngines().create("dadn");
    EXPECT_DEATH(engine->runBatch(net, source, AccelConfig{},
                                  SampleSpec{2},
                                  util::InnerExecutor(), 0),
                 "batch");
}

} // namespace
} // namespace sim
} // namespace pra
