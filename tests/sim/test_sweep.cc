/**
 * @file
 * Tests for the engine registry and the parallel sweep driver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/analytic/term_count.h"
#include "models/dadn/dadn.h"
#include "models/engines.h"
#include "models/pragmatic/simulator.h"
#include "models/stripes/stripes.h"
#include "sim/sweep.h"

namespace pra {
namespace sim {
namespace {

SweepOptions
tinyOptions(int threads)
{
    SweepOptions options;
    options.threads = threads;
    options.sample.maxUnits = 2;
    return options;
}

void
expectSameResults(const std::vector<NetworkResult> &expected,
                  const std::vector<NetworkResult> &actual,
                  const std::string &what)
{
    ASSERT_EQ(expected.size(), actual.size()) << what;
    for (size_t i = 0; i < expected.size(); i++) {
        EXPECT_EQ(expected[i].networkName, actual[i].networkName)
            << what;
        EXPECT_EQ(expected[i].engineName, actual[i].engineName)
            << what;
        ASSERT_EQ(expected[i].layers.size(), actual[i].layers.size())
            << what;
        for (size_t l = 0; l < expected[i].layers.size(); l++) {
            const auto &a = expected[i].layers[l];
            const auto &b = actual[i].layers[l];
            EXPECT_EQ(a.cycles, b.cycles) << what;
            EXPECT_EQ(a.effectualTerms, b.effectualTerms) << what;
            EXPECT_EQ(a.nmStallCycles, b.nmStallCycles) << what;
            EXPECT_EQ(a.sbReadSteps, b.sbReadSteps) << what;
            EXPECT_EQ(a.sampleScale, b.sampleScale) << what;
        }
    }
}

std::vector<EngineSelection>
allKindsGrid()
{
    // The frozen historical five-kind "--engines=all" expansion (the
    // committed smoke goldens pin it), not every registered kind.
    return models::coreEngineGrid();
}

TEST(EngineRegistry, ExposesAllRegisteredEngines)
{
    const auto &registry = models::builtinEngines();
    EXPECT_EQ(registry.size(), 7u);
    for (const char *kind :
         {"dadn", "stripes", "dynamic_stripes", "pragmatic",
          "pragmatic-col", "laconic", "terms"}) {
        EXPECT_TRUE(registry.has(kind)) << kind;
        auto engine = registry.create(kind);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->kind(), kind);
        EXPECT_FALSE(engine->name().empty());
    }
}

TEST(EngineRegistry, KnobsSelectVariants)
{
    const auto &registry = models::builtinEngines();
    EXPECT_EQ(registry.create("pragmatic", {{"bits", "4"}})->name(),
              "PRA-4b");
    EXPECT_EQ(registry
                  .create("pragmatic-col",
                          {{"bits", "2"}, {"ssr", "1"}})
                  ->name(),
              "PRA-2b-1R");
    EXPECT_EQ(registry.create("terms", {{"series", "zn"}})->name(),
              "terms-zn");
    EXPECT_EQ(registry.create("stripes", {{"precision", "8"}})->name(),
              "Stripes-p8");
}

TEST(EngineRegistry, ParseEngineSpec)
{
    EngineSelection sel =
        parseEngineSpec("pragmatic-col:bits=2:ssr=4");
    EXPECT_EQ(sel.kind, "pragmatic-col");
    ASSERT_EQ(sel.knobs.size(), 2u);
    EXPECT_EQ(sel.knobs.at("bits"), "2");
    EXPECT_EQ(sel.knobs.at("ssr"), "4");

    EngineSelection bare = parseEngineSpec("dadn");
    EXPECT_EQ(bare.kind, "dadn");
    EXPECT_TRUE(bare.knobs.empty());
}

TEST(EngineRegistryDeathTest, RejectsUnknownKindAndKnob)
{
    const auto &registry = models::builtinEngines();
    EXPECT_DEATH(registry.create("warp-drive"), "unknown engine");
    EXPECT_DEATH(registry.create("dadn", {{"bogus", "1"}}),
                 "unknown knob");
}

TEST(EngineAdapters, DadnMatchesModel)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    AccelConfig accel;
    auto engine = models::builtinEngines().create("dadn");
    NetworkResult via_engine =
        engine->runNetwork(net, synth, accel, SampleSpec{0});
    NetworkResult direct = models::DadnModel(accel).run(net);
    ASSERT_EQ(via_engine.layers.size(), direct.layers.size());
    EXPECT_EQ(via_engine.totalCycles(), direct.totalCycles());
    EXPECT_EQ(via_engine.engineName, direct.engineName);
}

TEST(EngineAdapters, StripesMatchesModel)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    AccelConfig accel;
    auto engine = models::builtinEngines().create("stripes");
    NetworkResult via_engine =
        engine->runNetwork(net, synth, accel, SampleSpec{0});
    NetworkResult direct = models::StripesModel(accel).run(net);
    EXPECT_EQ(via_engine.totalCycles(), direct.totalCycles());
}

TEST(EngineAdapters, PragmaticMatchesSimulator)
{
    auto net = dnn::makeTinyNetwork();
    models::SimOptions sim_opt;
    sim_opt.sample.maxUnits = 2;
    dnn::ActivationSynthesizer synth(net, sim_opt.seed);
    AccelConfig accel;

    for (const EngineSelection &sel :
         {EngineSelection{"pragmatic", {{"bits", "2"}}},
          EngineSelection{"pragmatic-col",
                          {{"bits", "2"}, {"ssr", "1"}}}}) {
        auto engine = models::builtinEngines().create(sel);
        NetworkResult via_engine = engine->runNetwork(
            net, synth, accel, sim_opt.sample);

        models::PragmaticConfig config;
        config.firstStageBits = 2;
        if (sel.kind == "pragmatic-col") {
            config.sync = models::SyncScheme::PerColumn;
            config.ssrCount = 1;
        }
        NetworkResult direct = models::PragmaticSimulator(accel).run(
            net, config, sim_opt);
        EXPECT_EQ(via_engine.totalCycles(), direct.totalCycles())
            << sel.kind;
        EXPECT_EQ(via_engine.totalStalls(), direct.totalStalls())
            << sel.kind;
        EXPECT_EQ(via_engine.engineName, direct.engineName);
    }
}

TEST(EngineAdapters, TermsTrimmingMatchesSynthesizer)
{
    // The terms engine re-derives the trimmed stream from the raw
    // one; its pra-red counts must agree with counts taken on the
    // synthesizer's own trimmed stream (same mask, same anchor).
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    SampleSpec sample{4};
    auto engine = models::builtinEngines().create(
        "terms", {{"series", "pra-red"}});
    NetworkResult via_engine =
        engine->runNetwork(net, synth, AccelConfig{}, sample);

    double expected = 0.0;
    for (size_t i = 0; i < net.layers.size(); i++) {
        auto counts = models::countLayerTerms16(
            net.layers[i],
            synth.synthesizeFixed16(static_cast<int>(i)),
            synth.synthesizeFixed16Trimmed(static_cast<int>(i)),
            i == 0, sample);
        expected += counts.praTrimmed;
    }
    EXPECT_DOUBLE_EQ(via_engine.totalCycles(), expected);
}

TEST(Sweep, ParallelBitIdenticalToSequential)
{
    // Two zoo networks, every engine kind: a 4-thread sweep must be
    // bit-identical to the single-threaded one, field by field.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork(),
                                          dnn::makeAlexNet()};
    auto grid = allKindsGrid();
    auto seq = runSweep(networks, grid, models::builtinEngines(),
                        tinyOptions(1));
    auto par = runSweep(networks, grid, models::builtinEngines(),
                        tinyOptions(4));
    expectSameResults(seq, par, "threads=4");
}

TEST(Sweep, CacheOnAndOffBitIdentical)
{
    // The workload cache only shares synthesis; results must be
    // byte-identical with it on or off, sequential and parallel.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto grid = allKindsGrid();
    SweepOptions cached = tinyOptions(1);
    ASSERT_TRUE(cached.cache); // Shared workloads are the default.
    SweepOptions uncached = tinyOptions(1);
    uncached.cache = false;
    auto with = runSweep(networks, grid, models::builtinEngines(),
                         cached);
    auto without = runSweep(networks, grid, models::builtinEngines(),
                            uncached);
    expectSameResults(with, without, "cache=off");

    SweepOptions uncached_par = tinyOptions(4);
    uncached_par.cache = false;
    auto without_par = runSweep(networks, grid,
                                models::builtinEngines(), uncached_par);
    expectSameResults(with, without_par, "cache=off threads=4");
}

TEST(Sweep, CyclePlanesOffByteIdenticalCsv)
{
    // The schedule-cycle planes are an exact memoization: with them
    // force-disabled every intermediate-L brick falls back to the
    // bounds short-circuit + serial schedule, and the emitted CSV
    // must stay byte-identical. Cover both Pragmatic engines at every
    // width the planes memoize, plus the L=0/4 edges they do not.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid;
    for (int l = 0; l <= 4; l++) {
        grid.push_back({"pragmatic", {{"bits", std::to_string(l)}}});
        grid.push_back(
            {"pragmatic-col", {{"bits", std::to_string(l)}}});
    }
    ASSERT_TRUE(cyclePlanesEnabled()); // Planes are the default.
    auto with = runSweep(networks, grid, models::builtinEngines(),
                         tinyOptions(1));
    setCyclePlanesEnabled(false);
    auto without = runSweep(networks, grid, models::builtinEngines(),
                            tinyOptions(1));
    setCyclePlanesEnabled(true);
    expectSameResults(with, without, "planes=off");

    std::ostringstream with_csv;
    writeSweepCsv(with_csv, with, /*per_layer=*/true);
    std::ostringstream without_csv;
    writeSweepCsv(without_csv, without, /*per_layer=*/true);
    EXPECT_EQ(with_csv.str(), without_csv.str());
}

TEST(Sweep, PropagatedModeDeterministicAcrossThreadsAndCache)
{
    // Propagated-mode invariants: the forward-pass workloads must be
    // bit-identical whether the chain is built once in the shared
    // cache, rebuilt per cell with the cache off, or raced by four
    // workers. The network must be the full pipeline (pools + fc).
    std::vector<dnn::Network> networks = {
        dnn::makeTinyNetwork(dnn::LayerSelect::All)};
    auto grid = allKindsGrid();
    SweepOptions base = tinyOptions(1);
    base.activations = ActivationMode::Propagated;
    auto seq = runSweep(networks, grid, models::builtinEngines(),
                        base);

    SweepOptions par = base;
    par.threads = 4;
    expectSameResults(seq,
                      runSweep(networks, grid,
                               models::builtinEngines(), par),
                      "propagated threads=4");

    SweepOptions uncached = base;
    uncached.cache = false;
    expectSameResults(seq,
                      runSweep(networks, grid,
                               models::builtinEngines(), uncached),
                      "propagated cache=off");

    SweepOptions inner = par;
    inner.innerThreads = 4;
    expectSameResults(seq,
                      runSweep(networks, grid,
                               models::builtinEngines(), inner),
                      "propagated inner-threads=4");
}

TEST(Sweep, PropagatedModeDiffersFromSyntheticDownstream)
{
    // The two modes share only the image input: layer 0 results
    // agree for value-dependent engines, downstream layers see
    // different (correlated) streams. DaDN is value-independent and
    // must agree everywhere.
    std::vector<dnn::Network> networks = {
        dnn::makeTinyNetwork(dnn::LayerSelect::All)};
    std::vector<EngineSelection> grid = {
        {"dadn", {}},
        {"pragmatic", {{"bits", "2"}, {"trim", "0"}}},
    };
    SweepOptions synthetic = tinyOptions(1);
    SweepOptions propagated = tinyOptions(1);
    propagated.activations = ActivationMode::Propagated;
    auto s = runSweep(networks, grid, models::builtinEngines(),
                      synthetic);
    auto p = runSweep(networks, grid, models::builtinEngines(),
                      propagated);
    // DaDN: identical rows (geometry only).
    ASSERT_EQ(s[0].layers.size(), p[0].layers.size());
    for (size_t l = 0; l < s[0].layers.size(); l++)
        EXPECT_EQ(s[0].layers[l].cycles, p[0].layers[l].cycles);
    // PRA (untrimmed raw stream): layer 0 is the shared image.
    EXPECT_EQ(s[1].layers[0].cycles, p[1].layers[0].cycles);
    EXPECT_EQ(s[1].layers[0].effectualTerms,
              p[1].layers[0].effectualTerms);
    // Downstream, the propagated stream is the real conv1 output —
    // not the independently synthesized conv2 stream.
    EXPECT_NE(s[1].layers[1].effectualTerms,
              p[1].layers[1].effectualTerms);
}

TEST(Sweep, InvariantAcrossInnerThreadCounts)
{
    // Pallet-block splitting inside a cell must not change a bit:
    // compare the serial sweep against small grids (fewer cells than
    // workers, so the automatic policy actually splits) and against
    // forced inner-thread counts.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {
        {"pragmatic", {{"bits", "2"}}},
        {"pragmatic-col", {{"bits", "2"}, {"ssr", "1"}}}};
    SweepOptions serial = tinyOptions(1);
    serial.innerThreads = 1;
    auto base = runSweep(networks, grid, models::builtinEngines(),
                         serial);
    for (int inner : {0, 2, 5}) {
        SweepOptions split = tinyOptions(4);
        split.innerThreads = inner;
        auto result = runSweep(networks, grid,
                               models::builtinEngines(), split);
        expectSameResults(base, result,
                          "inner=" + std::to_string(inner));
    }
}

TEST(Sweep, CsvDeterministicallyOrdered)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {
        {"stripes", {}}, {"dadn", {}}, {"pragmatic", {{"bits", "2"}}}};

    auto seq = runSweep(networks, grid, models::builtinEngines(),
                        tinyOptions(1));
    auto par = runSweep(networks, grid, models::builtinEngines(),
                        tinyOptions(4));
    std::ostringstream csv_seq, csv_par;
    writeSweepCsv(csv_seq, seq);
    writeSweepCsv(csv_par, par);
    // Byte-identical dumps regardless of completion order...
    EXPECT_EQ(csv_seq.str(), csv_par.str());

    // ...and rows follow grid order, not alphabetical or completion
    // order: stripes, dadn, pragmatic.
    std::istringstream lines(csv_seq.str());
    std::string header, row1, row2, row3;
    std::getline(lines, header);
    std::getline(lines, row1);
    std::getline(lines, row2);
    std::getline(lines, row3);
    EXPECT_EQ(header.rfind("network,engine,cycles", 0), 0u);
    EXPECT_EQ(row1.rfind("Tiny,Stripes,", 0), 0u);
    EXPECT_EQ(row2.rfind("Tiny,DaDN,", 0), 0u);
    EXPECT_EQ(row3.rfind("Tiny,PRA-2b,", 0), 0u);
}

TEST(Sweep, FindResult)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}},
                                         {"stripes", {}}};
    auto results = runSweep(networks, grid, models::builtinEngines(),
                            tinyOptions(1));
    EXPECT_EQ(findResult(results, "Tiny", "Stripes").engineName,
              "Stripes");
    EXPECT_GT(findResult(results, "Tiny", "DaDN").totalCycles(), 0.0);
}

TEST(Sweep, DefaultConvSmokeCsvIsPinnedToSeedOutput)
{
    // Byte-identical pin of `pra_sweep --smoke --engines=all
    // --threads=1` (tiny network, default conv layer selection,
    // units=4, seed 0x5eed), captured before FC support landed. Any
    // change to these bytes is a regression of the "default output
    // never moves" guarantee — tests/golden/pra_sweep_smoke.csv and
    // the CI byte-compare job pin the same contract at tool level.
    const std::string golden =
        "network,engine,cycles,nm_stall_cycles,effectual_terms,"
        "sb_read_steps\n"
        "Tiny,DaDN,3096,0,15040512,3096\n"
        "Tiny,PRA-2b,1416.25,29.75,1674794,207\n"
        "Tiny,PRA-2b-1R,1120.5,132.125,1674794,207\n"
        "Tiny,Stripes,1530,0,6829056,193.5\n"
        "Tiny,terms-pra-red,1265568,0,1265568,0\n";

    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    SweepOptions options;
    options.threads = 1;
    options.sample.maxUnits = 4;
    auto results = runSweep(networks, allKindsGrid(),
                            models::builtinEngines(), options);
    std::ostringstream csv;
    writeSweepCsv(csv, results);
    EXPECT_EQ(csv.str(), golden);
}

TEST(Sweep, PaperGridCoversHeadlineDesigns)
{
    auto grid = models::paperEngineGrid();
    // DaDN + Stripes + PRA-0b..4b + PRA-2b-1R.
    EXPECT_EQ(grid.size(), 8u);
    const auto &registry = models::builtinEngines();
    std::vector<std::string> names;
    for (const auto &sel : grid)
        names.push_back(registry.create(sel)->name());
    EXPECT_EQ(names.front(), "DaDN");
    EXPECT_EQ(names.back(), "PRA-2b-1R");
}

} // namespace
} // namespace sim
} // namespace pra
