/**
 * @file
 * Tests for the shared workload cache: plane math against brute
 * force, cache hit/sharing semantics, and engine-level equivalence of
 * cached vs uncached workload views.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <memory>
#include <span>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "models/pragmatic/schedule.h"
#include "sim/workload_cache.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pra {
namespace sim {
namespace {

/** Every stream an engine can request. */
const InputStream kStreams[] = {InputStream::Fixed16Raw,
                                InputStream::Fixed16Trimmed,
                                InputStream::Quant8};

TEST(BrickPlanes, MatchBruteForcePerBrick)
{
    auto net = dnn::makeAlexNet();
    dnn::ActivationSynthesizer synth(net);
    // Layer 2 of AlexNet has a channel count that is a multiple of
    // 16; the Tiny network below covers the partial-brick case.
    LayerWorkload workload(synth.synthesizeFixed16(2));
    const dnn::NeuronTensor &tensor = workload.tensor();
    const BrickPlanes &planes = workload.brickPlanes();

    ASSERT_EQ(planes.sizeX, tensor.sizeX());
    ASSERT_EQ(planes.sizeY, tensor.sizeY());
    ASSERT_EQ(planes.bricksPerColumn,
              (tensor.sizeI() + dnn::kBrickSize - 1) / dnn::kBrickSize);

    for (int y = 0; y < tensor.sizeY(); y += 7) {
        for (int x = 0; x < tensor.sizeX(); x += 5) {
            for (int b = 0; b < planes.bricksPerColumn; b++) {
                int32_t pop = 0;
                int max_pop = 0;
                int non_zero = 0;
                uint16_t any = 0;
                int lanes = std::min(dnn::kBrickSize,
                                     tensor.sizeI() -
                                         b * dnn::kBrickSize);
                for (int i = 0; i < lanes; i++) {
                    uint16_t v =
                        tensor.at(x, y, b * dnn::kBrickSize + i);
                    pop += std::popcount(v);
                    max_pop = std::max(max_pop,
                                       std::popcount(v));
                    any |= v;
                    non_zero += v != 0;
                }
                size_t idx = planes.index(x, y, b);
                EXPECT_EQ(planes.pop[idx], pop);
                EXPECT_EQ(planes.maxPop[idx], max_pop);
                EXPECT_EQ(planes.orPop[idx], std::popcount(any));
                EXPECT_EQ(planes.nonZero[idx], non_zero);
            }
        }
    }
}

TEST(BrickPlanes, ScheduleIdentitiesHold)
{
    // The plane shortcuts rely on cycles(L=0) == orPop and
    // cycles(L=4) == maxPop; check them against the real schedule on
    // a real stream, brick by brick.
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    LayerWorkload workload(synth.synthesizeFixed16(1));
    const dnn::NeuronTensor &tensor = workload.tensor();
    const BrickPlanes &planes = workload.brickPlanes();

    for (int y = 0; y < tensor.sizeY(); y++) {
        for (int x = 0; x < tensor.sizeX(); x++) {
            for (int b = 0; b < planes.bricksPerColumn; b++) {
                int lanes = std::min(dnn::kBrickSize,
                                     tensor.sizeI() -
                                         b * dnn::kBrickSize);
                std::span<const uint16_t> brick(
                    &tensor.at(x, y, b * dnn::kBrickSize), lanes);
                size_t idx = planes.index(x, y, b);
                EXPECT_EQ(models::brickScheduleCycles(brick, 0),
                          planes.orPop[idx]);
                EXPECT_EQ(models::brickScheduleCycles(brick, 4),
                          planes.maxPop[idx]);
                if (planes.orPop[idx] == planes.maxPop[idx]) {
                    for (int l = 1; l <= 3; l++)
                        EXPECT_EQ(
                            models::brickScheduleCycles(brick, l),
                            planes.maxPop[idx]);
                }
            }
        }
    }
}

TEST(BrickPlanes, CyclePlanesMatchSerialScheduleEverywhere)
{
    // The memoized cycle planes must hold the exact serial schedule
    // length of every brick for every first-stage width they serve
    // (L in 1..3), and the packed planes already pin L=0 (orPop) and
    // L=4 (maxPop). Real streams of both shapes: AlexNet conv3's
    // 256-channel multiple-of-16 bricks and Tiny's 8-channel partial
    // bricks.
    for (bool partial : {false, true}) {
        auto net = partial ? dnn::makeTinyNetwork()
                           : dnn::makeAlexNet();
        dnn::ActivationSynthesizer synth(net);
        LayerWorkload workload(
            synth.synthesizeFixed16(partial ? 0 : 2));
        const dnn::NeuronTensor &tensor = workload.tensor();
        const BrickPlanes &planes = workload.brickPlanes();
        int step = partial ? 1 : 5; // Sample the big stream.
        for (int l = 1; l <= 3; l++) {
            std::span<const uint8_t> plane = workload.cyclePlane(l);
            ASSERT_EQ(plane.size(), planes.pop.size());
            for (int y = 0; y < tensor.sizeY(); y += step) {
                for (int x = 0; x < tensor.sizeX(); x += step) {
                    for (int b = 0; b < planes.bricksPerColumn; b++) {
                        int lanes =
                            std::min(dnn::kBrickSize,
                                     tensor.sizeI() -
                                         b * dnn::kBrickSize);
                        std::span<const uint16_t> brick(
                            &tensor.at(x, y, b * dnn::kBrickSize),
                            static_cast<size_t>(lanes));
                        EXPECT_EQ(
                            plane[planes.index(x, y, b)],
                            models::brickScheduleCycles(brick, l))
                            << "x=" << x << " y=" << y << " b=" << b
                            << " l=" << l;
                    }
                }
            }
        }
    }
}

TEST(BrickPlanes, CyclePlanesOnRandomBricks)
{
    // Property test on synthetic random tensors: partial last brick
    // (channels == 24), all-zero columns, dense columns. Every L in
    // 0..4 resolves exactly — 0/4 through the packed-plane
    // identities, 1..3 through the memoized plane.
    util::Xoshiro256 rng(0x9a9a);
    dnn::NeuronTensor tensor(5, 4, 24);
    for (auto &v : tensor.flat())
        v = rng.nextBool(0.4)
                ? 0
                : static_cast<uint16_t>(rng.nextBounded(65536));
    LayerWorkload workload{dnn::NeuronTensor(tensor)};
    const BrickPlanes &planes = workload.brickPlanes();
    for (int y = 0; y < tensor.sizeY(); y++) {
        for (int x = 0; x < tensor.sizeX(); x++) {
            for (int b = 0; b < planes.bricksPerColumn; b++) {
                int lanes = std::min(dnn::kBrickSize,
                                     tensor.sizeI() -
                                         b * dnn::kBrickSize);
                std::span<const uint16_t> brick(
                    &tensor.at(x, y, b * dnn::kBrickSize),
                    static_cast<size_t>(lanes));
                size_t idx = planes.index(x, y, b);
                for (int l = 0; l <= 4; l++) {
                    int expected =
                        models::brickScheduleCycles(brick, l);
                    int got;
                    if (l == 0)
                        got = planes.orPop[idx];
                    else if (l == 4)
                        got = planes.maxPop[idx];
                    else
                        got = workload.cyclePlane(l)[idx];
                    EXPECT_EQ(got, expected)
                        << "x=" << x << " y=" << y << " b=" << b
                        << " l=" << l;
                }
            }
        }
    }
}

TEST(BrickPlanesDeathTest, CyclePlaneRejectsNonMemoizedWidths)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    LayerWorkload workload(synth.synthesizeFixed16(0));
    // L=0 and L=4 live in the packed planes, not the cycle planes.
    EXPECT_DEATH(workload.cyclePlane(0), "intermediate");
    EXPECT_DEATH(workload.cyclePlane(4), "intermediate");
    LayerWorkload empty{dnn::NeuronTensor()};
    EXPECT_DEATH(empty.cyclePlane(2), "empty workload");
}

TEST(WorkloadCache, CyclePlanesToggleRoundTrips)
{
    // The global switch only routes the lookup; it must read back
    // and leave results unchanged (the sweep suite asserts CSV
    // byte-identity; here just the toggle mechanics).
    ASSERT_TRUE(cyclePlanesEnabled()); // Default: on.
    setCyclePlanesEnabled(false);
    EXPECT_FALSE(cyclePlanesEnabled());
    setCyclePlanesEnabled(true);
    EXPECT_TRUE(cyclePlanesEnabled());
}

TEST(WorkloadCache, SharesOneWorkloadPerKey)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadCache cache;
    auto first =
        cache.layer(synth, 0, InputStream::Fixed16Trimmed);
    auto second =
        cache.layer(synth, 0, InputStream::Fixed16Trimmed);
    EXPECT_EQ(first.get(), second.get()); // Same object, not a copy.
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);

    // A different stream, layer, or seed is a different workload.
    auto raw = cache.layer(synth, 0, InputStream::Fixed16Raw);
    EXPECT_NE(first.get(), raw.get());
    auto other_layer =
        cache.layer(synth, 1, InputStream::Fixed16Trimmed);
    EXPECT_NE(first.get(), other_layer.get());
    EXPECT_EQ(cache.misses(), 3);
}

TEST(WorkloadCache, DistinguishesLayerSelectionsOfSameNetwork)
{
    // Two selections of one network share the name "Tiny" but not a
    // layer list: the cache keys carry the layer fingerprint, so
    // neither the synthesizer nor any layer workload may be shared
    // (layer 0 is conv1's 12x12x8 stream in one and fc1's 1x1x3200
    // column in the other).
    auto all_net = dnn::makeTinyNetwork(dnn::LayerSelect::All);
    auto fc_net = dnn::makeTinyNetwork(dnn::LayerSelect::Fc);
    ASSERT_EQ(all_net.name, fc_net.name);
    EXPECT_NE(all_net.workloadFingerprint(),
              fc_net.workloadFingerprint());

    WorkloadCache cache;
    auto all_synth = cache.synthesizer(all_net, 0x5eed);
    auto fc_synth = cache.synthesizer(fc_net, 0x5eed);
    EXPECT_NE(all_synth.get(), fc_synth.get());

    auto all_l0 =
        cache.layer(*all_synth, 0, InputStream::Fixed16Trimmed);
    auto fc_l0 =
        cache.layer(*fc_synth, 0, InputStream::Fixed16Trimmed);
    EXPECT_NE(all_l0.get(), fc_l0.get());
    EXPECT_EQ(all_l0->tensor().sizeI(), 8);
    EXPECT_EQ(fc_l0->tensor().sizeI(), 800);
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_EQ(cache.hits(), 0);
}

TEST(WorkloadCache, CachedEqualsFreshSynthesis)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadCache cache;
    for (InputStream stream : kStreams) {
        for (size_t i = 0; i < net.layers.size(); i++) {
            auto cached =
                cache.layer(synth, static_cast<int>(i), stream);
            dnn::NeuronTensor fresh =
                synthesizeStream(synth, static_cast<int>(i), stream);
            ASSERT_EQ(cached->tensor().size(), fresh.size());
            auto lhs = cached->tensor().flat();
            auto rhs = fresh.flat();
            for (size_t k = 0; k < rhs.size(); k++)
                ASSERT_EQ(lhs[k], rhs[k]);
        }
    }
}

TEST(WorkloadCache, ChainIsBuiltOnceAndShared)
{
    auto net = dnn::makeTinyNetwork(dnn::LayerSelect::All);
    dnn::ActivationSynthesizer synth(net, 0x5eed);
    WorkloadCache cache;
    auto first = cache.chain(synth);
    auto again = cache.chain(synth);
    EXPECT_EQ(first.get(), again.get()); // One forward pass, shared.
    // Another seed is another chain.
    dnn::ActivationSynthesizer other(net, 0xbeef);
    EXPECT_NE(cache.chain(other).get(), first.get());
}

TEST(WorkloadCache, PropagatedWorkloadsAreModeKeyed)
{
    // The synthetic and propagated views of the same (layer, stream)
    // must never alias: conv2's synthetic stream is independent
    // noise, its propagated stream is conv1's actual output.
    auto net = dnn::makeTinyNetwork(dnn::LayerSelect::All);
    dnn::ActivationSynthesizer synth(net, 0x5eed);
    WorkloadCache cache;
    auto synthetic = cache.layer(synth, 1, InputStream::Fixed16Raw,
                                 ActivationMode::Synthetic);
    auto propagated = cache.layer(synth, 1, InputStream::Fixed16Raw,
                                  ActivationMode::Propagated);
    EXPECT_NE(synthetic.get(), propagated.get());
    EXPECT_EQ(cache.misses(), 2); // Two distinct entries.
    bool differ = false;
    auto lhs = synthetic->tensor().flat();
    auto rhs = propagated->tensor().flat();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (size_t k = 0; k < rhs.size(); k++)
        differ |= lhs[k] != rhs[k];
    EXPECT_TRUE(differ);

    // Layer 0 is the shared image: same bits under either mode
    // (still separate cache entries).
    auto s0 = cache.layer(synth, 0, InputStream::Fixed16Raw,
                          ActivationMode::Synthetic);
    auto p0 = cache.layer(synth, 0, InputStream::Fixed16Raw,
                          ActivationMode::Propagated);
    auto l0 = s0->tensor().flat();
    auto r0 = p0->tensor().flat();
    ASSERT_EQ(l0.size(), r0.size());
    for (size_t k = 0; k < r0.size(); k++)
        ASSERT_EQ(l0[k], r0[k]);
}

TEST(WorkloadCache, PropagatedCachedEqualsUncachedSource)
{
    auto net = dnn::makeTinyNetwork(dnn::LayerSelect::All);
    dnn::ActivationSynthesizer synth(net, 0x5eed);
    WorkloadCache cache;
    WorkloadSource cached(synth, cache, ActivationMode::Propagated);
    WorkloadSource uncached(synth, ActivationMode::Propagated);
    for (InputStream stream : kStreams) {
        for (size_t i = 0; i < net.layers.size(); i++) {
            if (!net.layers[i].priced())
                continue;
            auto a = cached.layer(static_cast<int>(i), stream);
            auto b = uncached.layer(static_cast<int>(i), stream);
            ASSERT_EQ(a->tensor().size(), b->tensor().size());
            auto lhs = a->tensor().flat();
            auto rhs = b->tensor().flat();
            for (size_t k = 0; k < rhs.size(); k++)
                ASSERT_EQ(lhs[k], rhs[k]);
        }
    }
    // The uncached source memoized one local chain rather than
    // re-propagating per request.
    EXPECT_EQ(uncached.chain().get(), uncached.chain().get());
}

TEST(WorkloadCache, NoneStreamIsSharedEmptyView)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadCache cache;
    auto none = cache.layer(synth, 0, InputStream::None);
    ASSERT_NE(none, nullptr);
    EXPECT_TRUE(none->tensor().empty());
    EXPECT_EQ(cache.misses(), 0); // Not a synthesis, not a miss.

    WorkloadSource uncached(synth);
    EXPECT_EQ(uncached.layer(0, InputStream::None).get(), none.get());
}

TEST(WorkloadCache, ConcurrentRequestersShareOneBuild)
{
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadCache cache;
    std::vector<std::shared_ptr<const LayerWorkload>> views(16);
    {
        util::ThreadPool pool(4);
        for (size_t t = 0; t < views.size(); t++)
            pool.submit([&cache, &synth, &views, t] {
                views[t] = cache.layer(
                    synth, 0, InputStream::Fixed16Trimmed);
            });
        pool.wait();
    }
    for (const auto &view : views)
        EXPECT_EQ(view.get(), views[0].get());
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 15);
}

TEST(WorkloadCache, EngineResultsIdenticalCachedVsUncached)
{
    // Every engine kind must produce bit-identical LayerResults from
    // cached views, uncached views, and the legacy synthesizer path.
    auto net = dnn::makeTinyNetwork();
    AccelConfig accel;
    SampleSpec sample{4};
    WorkloadCache cache;
    for (const auto &kind : models::builtinEngines().kinds()) {
        auto engine = models::builtinEngines().create(kind);
        dnn::ActivationSynthesizer synth(net);
        auto shared_synth = cache.synthesizer(net, synth.seed());

        NetworkResult legacy =
            engine->runNetwork(net, synth, accel, sample);
        NetworkResult uncached = engine->runNetwork(
            net, WorkloadSource(synth), accel, sample,
            util::InnerExecutor());
        NetworkResult cached = engine->runNetwork(
            net, WorkloadSource(*shared_synth, cache), accel, sample,
            util::InnerExecutor());

        for (const NetworkResult *other : {&uncached, &cached}) {
            ASSERT_EQ(legacy.layers.size(), other->layers.size())
                << kind;
            for (size_t l = 0; l < legacy.layers.size(); l++) {
                const auto &a = legacy.layers[l];
                const auto &b = other->layers[l];
                EXPECT_EQ(a.cycles, b.cycles) << kind;
                EXPECT_EQ(a.effectualTerms, b.effectualTerms) << kind;
                EXPECT_EQ(a.nmStallCycles, b.nmStallCycles) << kind;
                EXPECT_EQ(a.sbReadSteps, b.sbReadSteps) << kind;
            }
        }
    }
}

TEST(WorkloadCache, PalletSyncInvariantAcrossBlockCounts)
{
    // Pallet-block splitting must be exact: any inner task count
    // yields the serial result bit for bit.
    auto net = dnn::makeTinyNetwork();
    AccelConfig accel;
    SampleSpec sample{0}; // Exhaustive: every pallet.
    auto engine = models::builtinEngines().create(
        "pragmatic", {{"bits", "2"}});
    dnn::ActivationSynthesizer synth(net);

    NetworkResult serial = engine->runNetwork(
        net, WorkloadSource(synth), accel, sample,
        util::InnerExecutor());
    util::ThreadPool pool(4);
    for (int tasks : {2, 3, 8}) {
        NetworkResult split = engine->runNetwork(
            net, WorkloadSource(synth), accel, sample,
            util::InnerExecutor(&pool, tasks));
        ASSERT_EQ(serial.layers.size(), split.layers.size());
        for (size_t l = 0; l < serial.layers.size(); l++) {
            EXPECT_EQ(serial.layers[l].cycles,
                      split.layers[l].cycles)
                << tasks;
            EXPECT_EQ(serial.layers[l].effectualTerms,
                      split.layers[l].effectualTerms)
                << tasks;
            EXPECT_EQ(serial.layers[l].nmStallCycles,
                      split.layers[l].nmStallCycles)
                << tasks;
        }
    }
}

} // namespace
} // namespace sim
} // namespace pra
