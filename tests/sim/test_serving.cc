/**
 * @file
 * Tests for the serving subsystem: counter-based arrivals, the
 * max-batch + timeout dispatch rule, the incremental batch cost
 * curve, the fleet event loop, and the determinism of the serving
 * sweep's CSV across threads and cache modes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/memory/memory_config.h"
#include "sim/memory/memory_model.h"
#include "sim/serving/serving_sim.h"

namespace pra {
namespace sim {
namespace {

std::vector<EngineSelection>
allKindsGrid()
{
    std::vector<EngineSelection> grid;
    for (const auto &kind : models::builtinEngines().kinds())
        grid.push_back({kind, {}});
    return grid;
}

TEST(Arrival, GapIsAPureFunctionOfSeedAndIndex)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 1234.5;
    for (int i : {0, 1, 7, 4096})
        EXPECT_EQ(arrivalGap(spec, i), arrivalGap(spec, i)) << i;

    ArrivalSpec reseeded = spec;
    reseeded.seed = spec.seed + 1;
    bool any_differs = false;
    for (int i = 0; i < 16; i++)
        any_differs |= arrivalGap(spec, i) != arrivalGap(reseeded, i);
    EXPECT_TRUE(any_differs);
}

TEST(Arrival, UniformIsAFixedRoundedGap)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Uniform;
    spec.meanGapCycles = 250.5;
    auto arrivals = generateArrivals(spec, 4);
    ASSERT_EQ(arrivals.size(), 4u);
    // llround(250.5) = 251, evenly spaced from the first request.
    EXPECT_EQ(arrivals[0], 251u);
    EXPECT_EQ(arrivals[1], 502u);
    EXPECT_EQ(arrivals[2], 753u);
    EXPECT_EQ(arrivals[3], 1004u);
}

TEST(Arrival, TracePrefixIsStable)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 777.0;
    auto short_trace = generateArrivals(spec, 8);
    auto long_trace = generateArrivals(spec, 64);
    for (size_t i = 0; i < short_trace.size(); i++)
        EXPECT_EQ(short_trace[i], long_trace[i]) << i;
}

TEST(Arrival, PoissonGapsAverageNearTheMean)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 1000.0;
    double sum = 0.0;
    const int n = 4096;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(arrivalGap(spec, i));
    double mean = sum / n;
    EXPECT_GT(mean, 900.0);
    EXPECT_LT(mean, 1100.0);
}

TEST(Arrival, GapsNeverAliasToZero)
{
    // Exponential draws near zero round up to one full cycle, so the
    // trace stays strictly increasing.
    ArrivalSpec spec;
    spec.meanGapCycles = 1.0;
    auto arrivals = generateArrivals(spec, 256);
    for (size_t i = 1; i < arrivals.size(); i++)
        EXPECT_LT(arrivals[i - 1], arrivals[i]);
}

TEST(ArrivalDeathTest, RejectsDegenerateSpecs)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 0.5;
    EXPECT_DEATH(arrivalGap(spec, 0), "mean gap");
    ArrivalSpec ok;
    EXPECT_DEATH(arrivalGap(ok, -1), "negative");
    EXPECT_DEATH(generateArrivals(ok, 0), "at least one");
    EXPECT_DEATH(parseArrivalKind("bursty"), "uniform or poisson");
}

TEST(Batching, TimeoutZeroDispatchesGreedily)
{
    BatchingPolicy greedy{8, 0};
    EXPECT_EQ(dispatchCycle(greedy, 0, 1000, 2000), 1000u);
    EXPECT_EQ(dispatchCycle(greedy, 5000, 1000, 2000), 5000u);
}

TEST(Batching, FillWinsWhenItBeatsTheTimeout)
{
    BatchingPolicy policy{8, 10000};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, 2000), 2000u);
}

TEST(Batching, TimeoutCapsTheHeadOfLineWait)
{
    BatchingPolicy policy{8, 500};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, 2000), 1500u);
}

TEST(Batching, NeverFillingBatchWaitsOnlyForTheTimeout)
{
    BatchingPolicy policy{8, 500};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, kNeverFills), 1500u);
}

TEST(Batching, SaturatedDeadlineFallsBackToTheHead)
{
    // A huge timeout saturates instead of wrapping; with no filling
    // request either, the dispatch goes out at the head's arrival.
    BatchingPolicy policy{8, kNeverFills};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, kNeverFills), 1000u);
    BatchingPolicy small{8, 100};
    EXPECT_EQ(dispatchCycle(small, 0, kNeverFills - 10, kNeverFills),
              kNeverFills - 10);
}

TEST(BatchingDeathTest, RejectsBadPolicyAndOrdering)
{
    BatchingPolicy bad{0, 0};
    EXPECT_DEATH(dispatchCycle(bad, 0, 0, 0), "maxBatch");
    BatchingPolicy ok{2, 0};
    EXPECT_DEATH(dispatchCycle(ok, 0, 1000, 999), "fill precedes");
}

TEST(CostCurve, PrefixesMatchStandaloneRunBatch)
{
    // The incremental construction must reproduce a standalone
    // runBatch(b) + memory model bit for bit at every prefix.
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    SampleSpec sample{2};
    util::InnerExecutor exec;
    const int max_batch = 3;
    for (const char *kind : {"dadn", "pragmatic"}) {
        auto engine = models::builtinEngines().create(kind);
        BatchCostCurve curve = buildBatchCostCurve(
            net, *engine, source, accel, sample, exec, max_batch);
        ASSERT_EQ(curve.batchSystemCycles.size(),
                  static_cast<size_t>(max_batch));
        for (int b = 1; b <= max_batch; b++) {
            NetworkResult batch = engine->runBatch(
                net, source, accel, sample, exec, b);
            applyMemoryModel(net, accel, batch);
            EXPECT_EQ(curve.batchSystemCycles[b - 1],
                      batch.totalSystemCycles())
                << kind << " b=" << b;
        }
        for (size_t i = 1; i < curve.batchSystemCycles.size(); i++)
            EXPECT_GE(curve.batchSystemCycles[i],
                      curve.batchSystemCycles[i - 1])
                << kind;
    }
}

BatchCostCurve
syntheticCurve(std::vector<double> cycles)
{
    BatchCostCurve curve;
    curve.networkName = "Synthetic";
    curve.engineName = "Fixed";
    curve.batchSystemCycles = std::move(cycles);
    return curve;
}

ServingConfig
uniformConfig(double gap, int requests, int max_batch,
              uint64_t timeout)
{
    ServingConfig config;
    config.arrival.kind = ArrivalKind::Uniform;
    config.arrival.meanGapCycles = gap;
    config.requests = requests;
    config.policy.maxBatch = max_batch;
    config.policy.timeoutCycles = timeout;
    return config;
}

TEST(ServingSim, GreedyUniformTraceIsHandCheckable)
{
    // Uniform arrivals at 1000, 2000, 3000, 4000; one instance,
    // batch cost 100/150 cycles, greedy dispatch: each request goes
    // out alone at its arrival and finishes 100 cycles later.
    ServingReport r = simulateServing(
        syntheticCurve({100.0, 150.0}), uniformConfig(1000.0, 4, 2, 0));
    EXPECT_EQ(r.dispatches, 4);
    EXPECT_DOUBLE_EQ(r.meanBatch, 1.0);
    EXPECT_EQ(r.makespanCycles, 4100u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 100.0);
    EXPECT_DOUBLE_EQ(r.utilization, 400.0 / 4100.0);
    EXPECT_DOUBLE_EQ(r.imagesPerSecond, 4.0 * 1e9 / 4100.0);
}

TEST(ServingSim, TimeoutHoldsTheHeadToFillBatches)
{
    // Same trace with a 1000-cycle timeout: request 0 waits for
    // request 1 (deadline and fill coincide at 2000), so the fleet
    // runs two batches of two. Latencies are {1150, 150} per batch;
    // the log-spaced histogram reports conservative bucket bounds.
    ServingReport r = simulateServing(
        syntheticCurve({100.0, 150.0}),
        uniformConfig(1000.0, 4, 2, 1000));
    EXPECT_EQ(r.dispatches, 2);
    EXPECT_DOUBLE_EQ(r.meanBatch, 2.0);
    EXPECT_EQ(r.makespanCycles, 4150u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 650.0);
    EXPECT_DOUBLE_EQ(r.utilization, 300.0 / 4150.0);
    // 150 lands in the two-wide bucket [150, 151]; 1150 in the
    // sixteen-wide bucket [1136, 1151].
    EXPECT_EQ(r.p50Cycles, 151u);
    EXPECT_EQ(r.p95Cycles, 1151u);
    EXPECT_EQ(r.p99Cycles, 1151u);
}

TEST(ServingSim, FleetSharesLoadAcrossInstances)
{
    // Cost 3000 > gap 1000 saturates one instance; two instances
    // alternate (earliest-free, lowest id on ties) and every request
    // still dispatches alone with maxBatch = 1.
    ServingConfig config = uniformConfig(1000.0, 4, 1, 0);
    config.instances = 2;
    ServingReport r =
        simulateServing(syntheticCurve({3000.0}), config);
    EXPECT_EQ(r.dispatches, 4);
    EXPECT_EQ(r.makespanCycles, 8000u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles,
                     (3000.0 + 3000.0 + 4000.0 + 4000.0) / 4.0);
    EXPECT_DOUBLE_EQ(r.utilization, 12000.0 / (2.0 * 8000.0));
}

TEST(ServingSim, SubCycleCostsChargeAtLeastOneCycle)
{
    ServingReport r = simulateServing(syntheticCurve({0.2}),
                                      uniformConfig(10.0, 2, 1, 0));
    EXPECT_EQ(r.dispatches, 2);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_EQ(r.makespanCycles, 21u);
}

TEST(ServingSimDeathTest, RejectsDegenerateConfigs)
{
    BatchCostCurve curve = syntheticCurve({100.0});
    ServingConfig config = uniformConfig(1000.0, 4, 2, 0);
    EXPECT_DEATH(simulateServing(curve, config), "maxBatch");
    ServingConfig no_instances = uniformConfig(1000.0, 4, 1, 0);
    no_instances.instances = 0;
    EXPECT_DEATH(simulateServing(curve, no_instances), "instance");
    ServingConfig no_requests = uniformConfig(1000.0, 1, 1, 0);
    no_requests.requests = 0;
    EXPECT_DEATH(simulateServing(curve, no_requests), "request");
}

ServingSweepOptions
smokeOptions(int threads)
{
    ServingSweepOptions options;
    options.threads = threads;
    options.sample.maxUnits = 2;
    options.offeredPerSecond = {1e4, 1e7};
    options.serving.requests = 32;
    options.serving.policy.maxBatch = 4;
    options.serving.policy.timeoutCycles = 1000000;
    options.serving.arrival.seed = options.seed;
    return options;
}

TEST(ServingSweep, CsvByteIdenticalAcrossThreadsAndCache)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto grid = allKindsGrid();
    auto serial = runServingSweep(networks, grid,
                                  models::builtinEngines(),
                                  smokeOptions(1));
    std::ostringstream serial_csv;
    writeServingCsv(serial_csv, serial);

    auto parallel = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    smokeOptions(4));
    std::ostringstream parallel_csv;
    writeServingCsv(parallel_csv, parallel);
    EXPECT_EQ(serial_csv.str(), parallel_csv.str());

    ServingSweepOptions uncached = smokeOptions(4);
    uncached.cache = false;
    auto no_cache = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    uncached);
    std::ostringstream no_cache_csv;
    writeServingCsv(no_cache_csv, no_cache);
    EXPECT_EQ(serial_csv.str(), no_cache_csv.str());
}

TEST(ServingSweep, ReportsFollowGridThenRateOrder)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"stripes", {}},
                                         {"dadn", {}}};
    auto reports = runServingSweep(networks, grid,
                                   models::builtinEngines(),
                                   smokeOptions(1));
    ASSERT_EQ(reports.size(), 4u);
    EXPECT_EQ(reports[0].engineName, "Stripes");
    EXPECT_DOUBLE_EQ(reports[0].offeredPerSecond, 1e4);
    EXPECT_EQ(reports[1].engineName, "Stripes");
    EXPECT_DOUBLE_EQ(reports[1].offeredPerSecond, 1e7);
    EXPECT_EQ(reports[2].engineName, "DaDN");
    EXPECT_EQ(reports[3].engineName, "DaDN");

    std::ostringstream csv;
    writeServingCsv(csv, reports);
    std::istringstream lines(csv.str());
    std::string header, row;
    std::getline(lines, header);
    EXPECT_EQ(header.rfind("network,engine,arrival,offered_per_s", 0),
              0u);
    std::getline(lines, row);
    EXPECT_EQ(row.rfind("Tiny,Stripes,poisson,10000,", 0), 0u);
}

TEST(ServingSweep, SaturationFillsBatchesAndStarvationDoesNot)
{
    // At an offered load far above capacity every dispatch fills the
    // batch cap; far below it (with a finite timeout) the dispatcher
    // times out and sends singletons.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    ServingSweepOptions options = smokeOptions(1);
    options.offeredPerSecond = {1.0, 1e9};
    options.serving.policy.timeoutCycles = 10;
    auto reports = runServingSweep(networks, grid,
                                   models::builtinEngines(), options);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_DOUBLE_EQ(reports[0].meanBatch, 1.0);
    EXPECT_DOUBLE_EQ(reports[1].meanBatch, 4.0);
    EXPECT_GT(reports[1].utilization, reports[0].utilization);
}

TEST(ServingSweepDeathTest, RejectsOutOfRangeRates)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    ServingSweepOptions zero_rate = smokeOptions(1);
    zero_rate.offeredPerSecond = {0.0};
    EXPECT_DEATH(runServingSweep(networks, grid,
                                 models::builtinEngines(), zero_rate),
                 "offered rate");
    ServingSweepOptions no_rates = smokeOptions(1);
    no_rates.offeredPerSecond.clear();
    EXPECT_DEATH(runServingSweep(networks, grid,
                                 models::builtinEngines(), no_rates),
                 "no offered rates");
}

} // namespace
} // namespace sim
} // namespace pra
