/**
 * @file
 * Tests for the serving subsystem: counter-based arrivals, the
 * max-batch + timeout dispatch rule, the incremental batch cost
 * curve, the fleet event loop, and the determinism of the serving
 * sweep's CSV across threads and cache modes.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/memory/memory_config.h"
#include "sim/memory/memory_model.h"
#include "sim/serving/serving_sim.h"

namespace pra {
namespace sim {
namespace {

std::vector<EngineSelection>
allKindsGrid()
{
    std::vector<EngineSelection> grid;
    for (const auto &kind : models::builtinEngines().kinds())
        grid.push_back({kind, {}});
    return grid;
}

TEST(Arrival, GapIsAPureFunctionOfSeedAndIndex)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 1234.5;
    for (int i : {0, 1, 7, 4096})
        EXPECT_EQ(arrivalGap(spec, i), arrivalGap(spec, i)) << i;

    ArrivalSpec reseeded = spec;
    reseeded.seed = spec.seed + 1;
    bool any_differs = false;
    for (int i = 0; i < 16; i++)
        any_differs |= arrivalGap(spec, i) != arrivalGap(reseeded, i);
    EXPECT_TRUE(any_differs);
}

TEST(Arrival, UniformIsAFixedRoundedGap)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Uniform;
    spec.meanGapCycles = 250.5;
    auto arrivals = generateArrivals(spec, 4);
    ASSERT_EQ(arrivals.size(), 4u);
    // llround(250.5) = 251, evenly spaced from the first request.
    EXPECT_EQ(arrivals[0], 251u);
    EXPECT_EQ(arrivals[1], 502u);
    EXPECT_EQ(arrivals[2], 753u);
    EXPECT_EQ(arrivals[3], 1004u);
}

TEST(Arrival, TracePrefixIsStable)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 777.0;
    auto short_trace = generateArrivals(spec, 8);
    auto long_trace = generateArrivals(spec, 64);
    for (size_t i = 0; i < short_trace.size(); i++)
        EXPECT_EQ(short_trace[i], long_trace[i]) << i;
}

TEST(Arrival, PoissonGapsAverageNearTheMean)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 1000.0;
    double sum = 0.0;
    const int n = 4096;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(arrivalGap(spec, i));
    double mean = sum / n;
    EXPECT_GT(mean, 900.0);
    EXPECT_LT(mean, 1100.0);
}

TEST(Arrival, GapsNeverAliasToZero)
{
    // Exponential draws near zero round up to one full cycle, so the
    // trace stays strictly increasing.
    ArrivalSpec spec;
    spec.meanGapCycles = 1.0;
    auto arrivals = generateArrivals(spec, 256);
    for (size_t i = 1; i < arrivals.size(); i++)
        EXPECT_LT(arrivals[i - 1], arrivals[i]);
}

TEST(ArrivalDeathTest, RejectsDegenerateSpecs)
{
    ArrivalSpec spec;
    spec.meanGapCycles = 0.5;
    EXPECT_DEATH(arrivalGap(spec, 0), "mean gap");
    ArrivalSpec ok;
    EXPECT_DEATH(arrivalGap(ok, -1), "negative");
    EXPECT_DEATH(generateArrivals(ok, 0), "at least one");
    EXPECT_DEATH(parseArrivalKind("bursty"), "uniform or poisson");
}

TEST(Batching, TimeoutZeroDispatchesGreedily)
{
    BatchingPolicy greedy{8, 0};
    EXPECT_EQ(dispatchCycle(greedy, 0, 1000, 2000), 1000u);
    EXPECT_EQ(dispatchCycle(greedy, 5000, 1000, 2000), 5000u);
}

TEST(Batching, FillWinsWhenItBeatsTheTimeout)
{
    BatchingPolicy policy{8, 10000};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, 2000), 2000u);
}

TEST(Batching, TimeoutCapsTheHeadOfLineWait)
{
    BatchingPolicy policy{8, 500};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, 2000), 1500u);
}

TEST(Batching, NeverFillingBatchWaitsOnlyForTheTimeout)
{
    BatchingPolicy policy{8, 500};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, kNeverFills), 1500u);
}

TEST(Batching, SaturatedDeadlineFallsBackToTheHead)
{
    // A huge timeout saturates instead of wrapping; with no filling
    // request either, the dispatch goes out at the head's arrival.
    BatchingPolicy policy{8, kNeverFills};
    EXPECT_EQ(dispatchCycle(policy, 0, 1000, kNeverFills), 1000u);
    BatchingPolicy small{8, 100};
    EXPECT_EQ(dispatchCycle(small, 0, kNeverFills - 10, kNeverFills),
              kNeverFills - 10);
}

TEST(Batching, DeadlineSaturationBoundaryIsExact)
{
    // head + timeout == UINT64_MAX is exactly the "never" sentinel
    // (deadline falls back to the head); one cycle short of it is a
    // real finite deadline; one cycle past it must clamp rather than
    // wrap around to a tiny deadline that dispatches immediately.
    BatchingPolicy policy{8, 100};
    EXPECT_EQ(dispatchCycle(policy, 0, kNeverFills - 101, kNeverFills),
              kNeverFills - 1);
    EXPECT_EQ(dispatchCycle(policy, 0, kNeverFills - 100, kNeverFills),
              kNeverFills - 100);
    EXPECT_EQ(dispatchCycle(policy, 0, kNeverFills - 50, kNeverFills),
              kNeverFills - 50);
}

TEST(BatchingDeathTest, RejectsBadPolicyAndOrdering)
{
    BatchingPolicy bad{0, 0};
    EXPECT_DEATH(dispatchCycle(bad, 0, 0, 0), "maxBatch");
    BatchingPolicy ok{2, 0};
    EXPECT_DEATH(dispatchCycle(ok, 0, 1000, 999), "fill precedes");
}

TEST(CostCurve, PrefixesMatchStandaloneRunBatch)
{
    // The incremental construction must reproduce a standalone
    // runBatch(b) + memory model bit for bit at every prefix.
    auto net = dnn::makeTinyNetwork();
    dnn::ActivationSynthesizer synth(net);
    WorkloadSource source(synth);
    AccelConfig accel;
    accel.memory = parseMemoryPreset("dadn");
    SampleSpec sample{2};
    util::InnerExecutor exec;
    const int max_batch = 3;
    for (const char *kind : {"dadn", "pragmatic"}) {
        auto engine = models::builtinEngines().create(kind);
        BatchCostCurve curve = buildBatchCostCurve(
            net, *engine, source, accel, sample, exec, max_batch);
        ASSERT_EQ(curve.batchSystemCycles.size(),
                  static_cast<size_t>(max_batch));
        for (int b = 1; b <= max_batch; b++) {
            NetworkResult batch = engine->runBatch(
                net, source, accel, sample, exec, b);
            applyMemoryModel(net, accel, batch);
            EXPECT_EQ(curve.batchSystemCycles[b - 1],
                      batch.totalSystemCycles())
                << kind << " b=" << b;
        }
        for (size_t i = 1; i < curve.batchSystemCycles.size(); i++)
            EXPECT_GE(curve.batchSystemCycles[i],
                      curve.batchSystemCycles[i - 1])
                << kind;
    }
}

BatchCostCurve
syntheticCurve(std::vector<double> cycles)
{
    BatchCostCurve curve;
    curve.networkName = "Synthetic";
    curve.engineName = "Fixed";
    curve.batchSystemCycles = std::move(cycles);
    return curve;
}

ServingConfig
uniformConfig(double gap, int requests, int max_batch,
              uint64_t timeout)
{
    ServingConfig config;
    config.arrival.kind = ArrivalKind::Uniform;
    config.arrival.meanGapCycles = gap;
    config.requests = requests;
    config.policy.maxBatch = max_batch;
    config.policy.timeoutCycles = timeout;
    return config;
}

TEST(ServingSim, GreedyUniformTraceIsHandCheckable)
{
    // Uniform arrivals at 1000, 2000, 3000, 4000; one instance,
    // batch cost 100/150 cycles, greedy dispatch: each request goes
    // out alone at its arrival and finishes 100 cycles later.
    ServingReport r = simulateServing(
        syntheticCurve({100.0, 150.0}), uniformConfig(1000.0, 4, 2, 0));
    EXPECT_EQ(r.dispatches, 4);
    EXPECT_DOUBLE_EQ(r.meanBatch, 1.0);
    EXPECT_EQ(r.makespanCycles, 4100u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 100.0);
    EXPECT_DOUBLE_EQ(r.utilization, 400.0 / 4100.0);
    EXPECT_DOUBLE_EQ(r.imagesPerSecond, 4.0 * 1e9 / 4100.0);
}

TEST(ServingSim, TimeoutHoldsTheHeadToFillBatches)
{
    // Same trace with a 1000-cycle timeout: request 0 waits for
    // request 1 (deadline and fill coincide at 2000), so the fleet
    // runs two batches of two. Latencies are {1150, 150} per batch;
    // the log-spaced histogram reports conservative bucket bounds.
    ServingReport r = simulateServing(
        syntheticCurve({100.0, 150.0}),
        uniformConfig(1000.0, 4, 2, 1000));
    EXPECT_EQ(r.dispatches, 2);
    EXPECT_DOUBLE_EQ(r.meanBatch, 2.0);
    EXPECT_EQ(r.makespanCycles, 4150u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 650.0);
    EXPECT_DOUBLE_EQ(r.utilization, 300.0 / 4150.0);
    // 150 lands in the two-wide bucket [150, 151]; 1150 in the
    // sixteen-wide bucket [1136, 1151].
    EXPECT_EQ(r.p50Cycles, 151u);
    EXPECT_EQ(r.p95Cycles, 1151u);
    EXPECT_EQ(r.p99Cycles, 1151u);
}

TEST(ServingSim, FleetSharesLoadAcrossInstances)
{
    // Cost 3000 > gap 1000 saturates one instance; two instances
    // alternate (earliest-free, lowest id on ties) and every request
    // still dispatches alone with maxBatch = 1.
    ServingConfig config = uniformConfig(1000.0, 4, 1, 0);
    config.instances = 2;
    ServingReport r =
        simulateServing(syntheticCurve({3000.0}), config);
    EXPECT_EQ(r.dispatches, 4);
    EXPECT_EQ(r.makespanCycles, 8000u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles,
                     (3000.0 + 3000.0 + 4000.0 + 4000.0) / 4.0);
    EXPECT_DOUBLE_EQ(r.utilization, 12000.0 / (2.0 * 8000.0));
}

TEST(ServingSim, SubCycleCostsChargeAtLeastOneCycle)
{
    ServingReport r = simulateServing(syntheticCurve({0.2}),
                                      uniformConfig(10.0, 2, 1, 0));
    EXPECT_EQ(r.dispatches, 2);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_EQ(r.makespanCycles, 21u);
}

TEST(ServingSimDeathTest, RejectsDegenerateConfigs)
{
    BatchCostCurve curve = syntheticCurve({100.0});
    ServingConfig config = uniformConfig(1000.0, 4, 2, 0);
    EXPECT_DEATH(simulateServing(curve, config), "maxBatch");
    ServingConfig no_instances = uniformConfig(1000.0, 4, 1, 0);
    no_instances.instances = 0;
    EXPECT_DEATH(simulateServing(curve, no_instances), "instance");
    ServingConfig no_requests = uniformConfig(1000.0, 1, 1, 0);
    no_requests.requests = 0;
    EXPECT_DEATH(simulateServing(curve, no_requests), "request");
}

ServingSweepOptions
smokeOptions(int threads)
{
    ServingSweepOptions options;
    options.threads = threads;
    options.sample.maxUnits = 2;
    options.offeredPerSecond = {1e4, 1e7};
    options.serving.requests = 32;
    options.serving.policy.maxBatch = 4;
    options.serving.policy.timeoutCycles = 1000000;
    options.serving.arrival.seed = options.seed;
    return options;
}

TEST(ServingSweep, CsvByteIdenticalAcrossThreadsAndCache)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto grid = allKindsGrid();
    auto serial = runServingSweep(networks, grid,
                                  models::builtinEngines(),
                                  smokeOptions(1));
    std::ostringstream serial_csv;
    writeServingCsv(serial_csv, serial);

    auto parallel = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    smokeOptions(4));
    std::ostringstream parallel_csv;
    writeServingCsv(parallel_csv, parallel);
    EXPECT_EQ(serial_csv.str(), parallel_csv.str());

    ServingSweepOptions uncached = smokeOptions(4);
    uncached.cache = false;
    auto no_cache = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    uncached);
    std::ostringstream no_cache_csv;
    writeServingCsv(no_cache_csv, no_cache);
    EXPECT_EQ(serial_csv.str(), no_cache_csv.str());
}

TEST(ServingSweep, ReportsFollowGridThenRateOrder)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"stripes", {}},
                                         {"dadn", {}}};
    auto reports = runServingSweep(networks, grid,
                                   models::builtinEngines(),
                                   smokeOptions(1));
    ASSERT_EQ(reports.size(), 4u);
    EXPECT_EQ(reports[0].engineName, "Stripes");
    EXPECT_DOUBLE_EQ(reports[0].offeredPerSecond, 1e4);
    EXPECT_EQ(reports[1].engineName, "Stripes");
    EXPECT_DOUBLE_EQ(reports[1].offeredPerSecond, 1e7);
    EXPECT_EQ(reports[2].engineName, "DaDN");
    EXPECT_EQ(reports[3].engineName, "DaDN");

    std::ostringstream csv;
    writeServingCsv(csv, reports);
    std::istringstream lines(csv.str());
    std::string header, row;
    std::getline(lines, header);
    EXPECT_EQ(header.rfind("network,engine,arrival,offered_per_s", 0),
              0u);
    std::getline(lines, row);
    EXPECT_EQ(row.rfind("Tiny,Stripes,poisson,10000,", 0), 0u);
}

TEST(ServingSweep, SaturationFillsBatchesAndStarvationDoesNot)
{
    // At an offered load far above capacity every dispatch fills the
    // batch cap; far below it (with a finite timeout) the dispatcher
    // times out and sends singletons.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    ServingSweepOptions options = smokeOptions(1);
    options.offeredPerSecond = {1.0, 1e9};
    options.serving.policy.timeoutCycles = 10;
    auto reports = runServingSweep(networks, grid,
                                   models::builtinEngines(), options);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_DOUBLE_EQ(reports[0].meanBatch, 1.0);
    EXPECT_DOUBLE_EQ(reports[1].meanBatch, 4.0);
    EXPECT_GT(reports[1].utilization, reports[0].utilization);
}

TEST(ServingSim, DegradedLoopMatchesIdealLoopWithFaultsOff)
{
    // The event-driven degraded loop must reproduce the historical
    // perfect-fleet loop field for field (exact doubles included)
    // whenever the fault layer is off — this is what keeps the
    // committed serving goldens byte-identical by construction.
    BatchCostCurve curve =
        syntheticCurve({7000.0, 13000.0, 18000.0, 22000.0});
    for (int instances : {1, 3}) {
        for (int max_batch : {1, 4}) {
            for (uint64_t timeout : {uint64_t{0}, uint64_t{100000}}) {
                for (double gap : {500.0, 20000.0}) {
                    ServingConfig config;
                    config.arrival.meanGapCycles = gap;
                    config.requests = 64;
                    config.instances = instances;
                    config.policy.maxBatch = max_batch;
                    config.policy.timeoutCycles = timeout;
                    ASSERT_FALSE(servingDegradedEnabled(config));
                    ServingReport ideal =
                        simulateServing(curve, config);
                    ServingReport degraded =
                        simulateServingDegraded(curve, config);
                    SCOPED_TRACE(std::to_string(instances) + "x" +
                                 std::to_string(max_batch) + " t" +
                                 std::to_string(timeout) + " g" +
                                 std::to_string(gap));
                    EXPECT_EQ(degraded.dispatches, ideal.dispatches);
                    EXPECT_EQ(degraded.meanBatch, ideal.meanBatch);
                    EXPECT_EQ(degraded.p50Cycles, ideal.p50Cycles);
                    EXPECT_EQ(degraded.p95Cycles, ideal.p95Cycles);
                    EXPECT_EQ(degraded.p99Cycles, ideal.p99Cycles);
                    EXPECT_EQ(degraded.meanLatencyCycles,
                              ideal.meanLatencyCycles);
                    EXPECT_EQ(degraded.imagesPerSecond,
                              ideal.imagesPerSecond);
                    EXPECT_EQ(degraded.utilization,
                              ideal.utilization);
                    EXPECT_EQ(degraded.makespanCycles,
                              ideal.makespanCycles);
                    EXPECT_EQ(degraded.completed, ideal.completed);
                    EXPECT_EQ(degraded.retries, 0);
                    EXPECT_EQ(degraded.shedRequests, 0);
                    EXPECT_DOUBLE_EQ(degraded.availability, 1.0);
                }
            }
        }
    }
}

ServingConfig
faultedConfig(double gap, int requests, uint64_t mtbf, uint64_t mttr)
{
    ServingConfig config = uniformConfig(gap, requests, 1, 0);
    config.faults.mtbfCycles = mtbf;
    config.faults.mttrCycles = mttr;
    config.faults.kind = FaultKind::Fixed;
    config.retry.backoffBaseCycles = 0;
    return config;
}

TEST(ServingFaults, FixedFaultKillsBatchAndRetrySucceeds)
{
    // Arrivals at 1000/2000, cost 100, greedy batch-1 dispatch; the
    // instance fail-stops at exactly 1050 (mid-batch) and repairs at
    // 1150. Request 0's first attempt dies, its zero-backoff retry
    // launches at the repair and completes at 1250 (latency 250);
    // request 1 runs cleanly (latency 100).
    ServingReport r = simulateServing(
        syntheticCurve({100.0}), faultedConfig(1000.0, 2, 1050, 100));
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.dispatches, 3);
    EXPECT_EQ(r.killedBatches, 1);
    EXPECT_EQ(r.retries, 1);
    EXPECT_EQ(r.instanceFailures, 1);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.permanentFailures, 0);
    EXPECT_EQ(r.shedRequests, 0);
    EXPECT_EQ(r.makespanCycles, 2100u);
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 175.0);
    // Interrupted work counts as busy up to the kill: 50 cycles of
    // the doomed attempt plus two clean 100-cycle batches.
    EXPECT_DOUBLE_EQ(r.utilization, 250.0 / 2100.0);
    // Up over [0, 1050) and [1150, 2100).
    EXPECT_DOUBLE_EQ(r.availability, 2000.0 / 2100.0);
    // Latency 250 of the killed-and-retried request, conservative
    // log-bucket bound 251.
    EXPECT_EQ(r.p99FaultedCycles, 251u);
    EXPECT_DOUBLE_EQ(r.imagesPerSecond, 2.0 * 1e9 / 2100.0);
}

TEST(ServingFaults, RetryBudgetExhaustionIsAPermanentFailure)
{
    // The instance fails at 50/110/170 (up 50, repair 10) and the
    // single request's attempts launch at 10/60/120 — each killed
    // mid-flight. After maxRetries = 2 requeues the third kill is a
    // permanent failure.
    ServingConfig config = faultedConfig(10.0, 1, 50, 10);
    config.retry.maxRetries = 2;
    ServingReport r =
        simulateServing(syntheticCurve({100.0}), config);
    EXPECT_EQ(r.dispatches, 3);
    EXPECT_EQ(r.killedBatches, 3);
    EXPECT_EQ(r.retries, 2);
    EXPECT_EQ(r.instanceFailures, 3);
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.permanentFailures, 1);
    EXPECT_EQ(r.makespanCycles, 170u);
    EXPECT_DOUBLE_EQ(r.imagesPerSecond, 0.0);
    // Killed attempts ran [10,50), [60,110), [120,170).
    EXPECT_DOUBLE_EQ(r.utilization, 140.0 / 170.0);
    // Up over [0,50), [60,110), [120,170).
    EXPECT_DOUBLE_EQ(r.availability, 150.0 / 170.0);
}

TEST(ServingDegrade, QueueCapShedsArrivalsAtTheBound)
{
    // Arrivals at 100..400, cost 1000, batch-1 greedy, queue bound 1:
    // request 0 dispatches at once, request 1 queues, requests 2 and
    // 3 find the queue full and shed.
    ServingConfig config = uniformConfig(100.0, 4, 1, 0);
    config.queueCap = 1;
    ServingReport r =
        simulateServing(syntheticCurve({1000.0}), config);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.dispatches, 2);
    EXPECT_EQ(r.completed, 2);
    EXPECT_EQ(r.shedRequests, 2);
    EXPECT_EQ(r.retries, 0);
    EXPECT_EQ(r.permanentFailures, 0);
    EXPECT_EQ(r.makespanCycles, 2100u);
    // Latencies 1000 (request 0) and 1900 (request 1).
    EXPECT_DOUBLE_EQ(r.meanLatencyCycles, 1450.0);
    EXPECT_DOUBLE_EQ(r.utilization, 2000.0 / 2100.0);
    EXPECT_DOUBLE_EQ(r.availability, 1.0);
    // Goodput counts only completions.
    EXPECT_DOUBLE_EQ(r.imagesPerSecond, 2.0 * 1e9 / 2100.0);
}

TEST(ServingDegrade, WatermarkHalvesBatchesAndGoesGreedy)
{
    // Six arrivals 10..60 at gap 10, flat cost 100 for batches 1..4,
    // timeout 10000. Un-degraded the dispatcher would hold for full
    // batches of 4; with the watermark at queue occupancy 2 it flips
    // to greedy half batches, so the fleet runs three batches of two
    // back to back.
    ServingConfig config = uniformConfig(10.0, 6, 4, 10000);
    config.degradeWatermark = 2;
    ServingReport r = simulateServing(
        syntheticCurve({100.0, 100.0, 100.0, 100.0}), config);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.dispatches, 3);
    EXPECT_EQ(r.degradedDispatches, 3);
    EXPECT_DOUBLE_EQ(r.meanBatch, 2.0);
    EXPECT_EQ(r.completed, 6);
    EXPECT_EQ(r.shedRequests, 0);
    EXPECT_EQ(r.makespanCycles, 320u);
}

TEST(ServingCsv, DegradedColumnsAppearOnlyWhenConfigured)
{
    BatchCostCurve curve = syntheticCurve({100.0});
    ServingConfig plain = uniformConfig(1000.0, 2, 1, 0);

    std::ostringstream plain_csv;
    writeServingCsv(plain_csv, {simulateServing(curve, plain)});
    EXPECT_EQ(plain_csv.str().find("mtbf_cycles"), std::string::npos);

    // The degraded event loop with the fault layer off still reports
    // the historical CSV shape (degraded is about configuration, not
    // code path) — this is the fault-free identity the goldens need.
    std::ostringstream ideal_loop_csv;
    writeServingCsv(ideal_loop_csv,
                    {simulateServingDegraded(curve, plain)});
    EXPECT_EQ(plain_csv.str(), ideal_loop_csv.str());

    ServingConfig capped = plain;
    capped.queueCap = 16;
    std::ostringstream degraded_csv;
    writeServingCsv(degraded_csv, {simulateServing(curve, capped)});
    const std::string out = degraded_csv.str();
    EXPECT_NE(out.find("mtbf_cycles"), std::string::npos);
    EXPECT_NE(out.find("availability"), std::string::npos);
    EXPECT_NE(out.find("p99_faulted_cycles"), std::string::npos);
    // One degraded report flips the whole dump (a CSV has one
    // header), so mixed report sets stay rectangular.
    std::ostringstream mixed_csv;
    writeServingCsv(mixed_csv, {simulateServing(curve, plain),
                                simulateServing(curve, capped)});
    EXPECT_NE(mixed_csv.str().find("mtbf_cycles"), std::string::npos);
}

TEST(ServingSweep, FaultedCsvByteIdenticalAcrossThreadsAndCache)
{
    // Fault schedules are counter-based pure functions, so a faulted
    // sweep must stay byte-identical across worker counts and cache
    // modes just like the fault-free one.
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    auto grid = allKindsGrid();
    auto fault = [](ServingSweepOptions options) {
        options.serving.faults.mtbfCycles = 2000000;
        options.serving.faults.mttrCycles = 500000;
        options.serving.queueCap = 8;
        options.serving.instances = 2;
        return options;
    };
    auto serial = runServingSweep(networks, grid,
                                  models::builtinEngines(),
                                  fault(smokeOptions(1)));
    std::ostringstream serial_csv;
    writeServingCsv(serial_csv, serial);
    EXPECT_NE(serial_csv.str().find("mtbf_cycles"),
              std::string::npos);

    auto parallel = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    fault(smokeOptions(4)));
    std::ostringstream parallel_csv;
    writeServingCsv(parallel_csv, parallel);
    EXPECT_EQ(serial_csv.str(), parallel_csv.str());

    ServingSweepOptions uncached = fault(smokeOptions(4));
    uncached.cache = false;
    auto no_cache = runServingSweep(networks, grid,
                                    models::builtinEngines(),
                                    uncached);
    std::ostringstream no_cache_csv;
    writeServingCsv(no_cache_csv, no_cache);
    EXPECT_EQ(serial_csv.str(), no_cache_csv.str());
}

TEST(ServingFaultsDeathTest, RejectsDegenerateDegradedConfigs)
{
    BatchCostCurve curve = syntheticCurve({100.0});
    ServingConfig faulted = uniformConfig(1000.0, 2, 1, 0);
    faulted.faults.mtbfCycles = 1000;
    faulted.faults.mttrCycles = 0;
    EXPECT_DEATH(simulateServing(curve, faulted), "repair time");
    ServingConfig bad_cap = uniformConfig(1000.0, 2, 1, 0);
    bad_cap.queueCap = -1;
    EXPECT_DEATH(simulateServing(curve, bad_cap), "queue cap");
    ServingConfig bad_mark = uniformConfig(1000.0, 2, 1, 0);
    bad_mark.degradeWatermark = -2;
    EXPECT_DEATH(simulateServing(curve, bad_mark), "watermark");
    ServingConfig bad_retry = uniformConfig(1000.0, 2, 1, 0);
    bad_retry.retry.maxRetries = -1;
    EXPECT_DEATH(simulateServing(curve, bad_retry), "retry limit");
}

TEST(ServingSweepDeathTest, RejectsOutOfRangeRates)
{
    std::vector<dnn::Network> networks = {dnn::makeTinyNetwork()};
    std::vector<EngineSelection> grid = {{"dadn", {}}};
    ServingSweepOptions zero_rate = smokeOptions(1);
    zero_rate.offeredPerSecond = {0.0};
    EXPECT_DEATH(runServingSweep(networks, grid,
                                 models::builtinEngines(), zero_rate),
                 "offered rate");
    ServingSweepOptions no_rates = smokeOptions(1);
    no_rates.offeredPerSecond.clear();
    EXPECT_DEATH(runServingSweep(networks, grid,
                                 models::builtinEngines(), no_rates),
                 "no offered rates");
}

} // namespace
} // namespace sim
} // namespace pra
