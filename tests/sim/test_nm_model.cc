/**
 * @file
 * Tests for the Neuron Memory access model (paper Section V-A4).
 */

#include <gtest/gtest.h>

#include "sim/nm_model.h"

namespace pra {
namespace sim {
namespace {

dnn::LayerSpec
strideLayer(int stride)
{
    dnn::LayerSpec spec;
    spec.name = "s";
    spec.inputX = 64;
    spec.inputY = 64;
    spec.inputChannels = 32;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 64;
    spec.stride = stride;
    spec.pad = 0;
    spec.profiledPrecision = 8;
    return spec;
}

TEST(NmModel, UnitStrideFitsTwoRows)
{
    // "With unit stride the 256 neurons would be typically all stored
    // in the same NM row or at most over two adjacent NM rows."
    AccelConfig accel;
    LayerTiling tiling(strideLayer(1), accel);
    for (int64_t p = 0; p < std::min<int64_t>(8, tiling.numPallets());
         p++) {
        for (int64_t s = 0; s < tiling.numSynapseSets(); s += 3)
            EXPECT_LE(nmFetchCycles(tiling, p, s), 2);
    }
}

TEST(NmModel, LargerStrideSpreadsRows)
{
    AccelConfig accel;
    LayerTiling tiling1(strideLayer(1), accel);
    LayerTiling tiling4(strideLayer(4), accel);
    int max1 = 0;
    int max4 = 0;
    for (int64_t s = 0; s < 9; s++) {
        max1 = std::max(max1, nmFetchCycles(tiling1, 0, s));
        max4 = std::max(max4, nmFetchCycles(tiling4, 0, s));
    }
    EXPECT_GT(max4, max1);
}

TEST(NmModel, PaddingOnlyStepCostsOneCycle)
{
    AccelConfig accel;
    dnn::LayerSpec spec = strideLayer(1);
    spec.pad = 2;
    LayerTiling tiling(spec, accel);
    // First pallet, set (fy=0,fx=0): windows 0..15 read row -2 ->
    // mostly padding; cost is clamped at >= 1.
    EXPECT_GE(nmFetchCycles(tiling, 0, 0), 1);
}

TEST(NmModel, OverlapHidesFetchBehindProcessing)
{
    NmOverlapTracker tracker;
    EXPECT_EQ(tracker.step(10, 2), 0); // Fully hidden.
    EXPECT_EQ(tracker.step(1, 4), 3);  // 3 cycles exposed.
    EXPECT_EQ(tracker.totalStalls(), 3);
    EXPECT_EQ(tracker.step(4, 4), 0);
    EXPECT_EQ(tracker.totalStalls(), 3);
}

TEST(NmModel, NegativeCyclesPanics)
{
    NmOverlapTracker tracker;
    EXPECT_DEATH(tracker.step(-1, 0), "negative");
}

/** Row spread grows roughly linearly with stride. */
class StrideRows : public ::testing::TestWithParam<int>
{
};

TEST_P(StrideRows, BoundedByStridePlusOne)
{
    int stride = GetParam();
    AccelConfig accel;
    LayerTiling tiling(strideLayer(stride), accel);
    for (int64_t s = 0; s < tiling.numSynapseSets(); s += 2) {
        int cycles = nmFetchCycles(tiling, 1, s);
        // 16 bricks spaced `stride` bricks apart cover at most
        // stride + 1 rows of 16 bricks each.
        EXPECT_LE(cycles, stride + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideRows,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace sim
} // namespace pra
