/**
 * @file
 * Tests for deterministic pallet sampling.
 */

#include <gtest/gtest.h>

#include "sim/sampling.h"

namespace pra {
namespace sim {
namespace {

TEST(Sampling, DisabledTakesEverything)
{
    SamplePlan plan = planSample(10, SampleSpec{0});
    ASSERT_EQ(plan.indices.size(), 10u);
    EXPECT_DOUBLE_EQ(plan.scale, 1.0);
    for (int64_t i = 0; i < 10; i++)
        EXPECT_EQ(plan.indices[i], i);
}

TEST(Sampling, SmallTotalsUnsampled)
{
    SamplePlan plan = planSample(5, SampleSpec{16});
    EXPECT_EQ(plan.indices.size(), 5u);
    EXPECT_DOUBLE_EQ(plan.scale, 1.0);
}

TEST(Sampling, CapsAndScales)
{
    SamplePlan plan = planSample(100, SampleSpec{10});
    ASSERT_EQ(plan.indices.size(), 10u);
    EXPECT_DOUBLE_EQ(plan.scale, 10.0);
    EXPECT_EQ(plan.indices.front(), 0);
}

TEST(Sampling, IndicesStrictlyIncreasingInRange)
{
    SamplePlan plan = planSample(1000, SampleSpec{37});
    for (size_t k = 1; k < plan.indices.size(); k++)
        EXPECT_GT(plan.indices[k], plan.indices[k - 1]);
    EXPECT_LT(plan.indices.back(), 1000);
}

TEST(Sampling, CoversWholeRange)
{
    SamplePlan plan = planSample(1000, SampleSpec{10});
    // Last sample comes from the final tenth.
    EXPECT_GE(plan.indices.back(), 900);
}

TEST(Sampling, EmptyTotal)
{
    SamplePlan plan = planSample(0, SampleSpec{8});
    EXPECT_TRUE(plan.indices.empty());
}

TEST(Sampling, Deterministic)
{
    SamplePlan a = planSample(12345, SampleSpec{100});
    SamplePlan b = planSample(12345, SampleSpec{100});
    EXPECT_EQ(a.indices, b.indices);
}

TEST(Sampling, ScaleTimesCountEqualsTotal)
{
    for (int64_t total : {64, 100, 999, 4096}) {
        SamplePlan plan = planSample(total, SampleSpec{32});
        EXPECT_NEAR(plan.scale * plan.indices.size(),
                    static_cast<double>(total), 1e-9);
    }
}

} // namespace
} // namespace sim
} // namespace pra
