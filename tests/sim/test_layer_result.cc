/**
 * @file
 * Tests for result aggregation and speedup math.
 */

#include <gtest/gtest.h>

#include "sim/layer_result.h"

namespace pra {
namespace sim {
namespace {

NetworkResult
makeResult(std::initializer_list<double> cycles)
{
    NetworkResult r;
    r.networkName = "net";
    r.engineName = "engine";
    for (double c : cycles) {
        LayerResult lr;
        lr.cycles = c;
        r.layers.push_back(lr);
    }
    return r;
}

TEST(LayerResult, TotalsSumLayers)
{
    NetworkResult r = makeResult({100.0, 200.0, 50.0});
    EXPECT_DOUBLE_EQ(r.totalCycles(), 350.0);
}

TEST(LayerResult, StallsSum)
{
    NetworkResult r = makeResult({10.0, 10.0});
    r.layers[0].nmStallCycles = 3.0;
    r.layers[1].nmStallCycles = 4.0;
    EXPECT_DOUBLE_EQ(r.totalStalls(), 7.0);
}

TEST(LayerResult, SpeedupOverBaseline)
{
    NetworkResult base = makeResult({1000.0});
    NetworkResult fast = makeResult({400.0});
    EXPECT_DOUBLE_EQ(fast.speedupOver(base), 2.5);
    EXPECT_DOUBLE_EQ(base.speedupOver(fast), 0.4);
}

TEST(LayerResult, SpeedupPanicsOnZeroCycles)
{
    NetworkResult base = makeResult({1000.0});
    NetworkResult empty = makeResult({});
    EXPECT_DEATH(empty.speedupOver(base), "zero cycle");
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geometricMean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, BelowArithmeticMean)
{
    std::vector<double> values = {1.0, 2.0, 3.0, 10.0};
    double geo = geometricMean(values);
    double arith = (1.0 + 2.0 + 3.0 + 10.0) / 4.0;
    EXPECT_LT(geo, arith);
}

TEST(GeometricMean, RejectsBadInput)
{
    EXPECT_DEATH(geometricMean({}), "empty");
    EXPECT_DEATH(geometricMean({1.0, 0.0}), "non-positive");
}

} // namespace
} // namespace sim
} // namespace pra
