/**
 * @file
 * Tests for window/pallet/synapse-set tiling.
 */

#include <gtest/gtest.h>

#include <set>

#include "dnn/model_zoo.h"
#include "sim/tiling.h"

namespace pra {
namespace sim {
namespace {

dnn::LayerSpec
layer13x13()
{
    dnn::LayerSpec spec;
    spec.name = "l";
    spec.inputX = 13;
    spec.inputY = 13;
    spec.inputChannels = 48;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 384;
    spec.stride = 1;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    return spec;
}

TEST(Tiling, PalletAndSetCounts)
{
    AccelConfig accel;
    LayerTiling tiling(layer13x13(), accel);
    // 13*13 = 169 windows -> ceil(169/16) = 11 pallets.
    EXPECT_EQ(tiling.numPallets(), 11);
    // 3*3 filter positions x 3 channel bricks.
    EXPECT_EQ(tiling.numSynapseSets(), 9 * 3);
    // 384 filters -> 2 passes of 256.
    EXPECT_EQ(tiling.passes(), 2);
}

TEST(Tiling, WindowCoordRowMajor)
{
    AccelConfig accel;
    LayerTiling tiling(layer13x13(), accel);
    EXPECT_EQ(tiling.windowCoord(0).x, 0);
    EXPECT_EQ(tiling.windowCoord(0).y, 0);
    EXPECT_EQ(tiling.windowCoord(12).x, 12);
    EXPECT_EQ(tiling.windowCoord(13).x, 0);
    EXPECT_EQ(tiling.windowCoord(13).y, 1);
}

TEST(Tiling, EveryWindowInExactlyOnePallet)
{
    AccelConfig accel;
    LayerTiling tiling(layer13x13(), accel);
    std::set<int64_t> seen;
    for (int64_t p = 0; p < tiling.numPallets(); p++) {
        for (int c = 0; c < accel.windowsPerPallet; c++) {
            int64_t w = tiling.windowIndex(p, c);
            if (w >= 0) {
                EXPECT_TRUE(seen.insert(w).second) << w;
            }
        }
    }
    EXPECT_EQ(static_cast<int64_t>(seen.size()),
              layer13x13().windows());
}

TEST(Tiling, PartialLastPallet)
{
    AccelConfig accel;
    LayerTiling tiling(layer13x13(), accel);
    EXPECT_EQ(tiling.windowsInPallet(0), 16);
    // 169 = 10*16 + 9.
    EXPECT_EQ(tiling.windowsInPallet(10), 9);
    EXPECT_EQ(tiling.windowIndex(10, 9), -1);
    EXPECT_EQ(tiling.windowIndex(10, 8), 168);
}

TEST(Tiling, SetCoordOrderAndCoverage)
{
    AccelConfig accel;
    LayerTiling tiling(layer13x13(), accel);
    std::set<std::tuple<int, int, int>> seen;
    for (int64_t s = 0; s < tiling.numSynapseSets(); s++) {
        SynapseSetCoord c = tiling.setCoord(s);
        EXPECT_GE(c.fx, 0);
        EXPECT_LT(c.fx, 3);
        EXPECT_GE(c.fy, 0);
        EXPECT_LT(c.fy, 3);
        EXPECT_EQ(c.brickI % 16, 0);
        seen.insert({c.fy, c.fx, c.brickI});
    }
    EXPECT_EQ(static_cast<int64_t>(seen.size()),
              tiling.numSynapseSets());
    // Channel bricks iterate fastest.
    EXPECT_EQ(tiling.setCoord(0).brickI, 0);
    EXPECT_EQ(tiling.setCoord(1).brickI, 16);
    EXPECT_EQ(tiling.setCoord(3).fx, 1);
}

TEST(Tiling, GatherBrickReadsInput)
{
    AccelConfig accel;
    auto spec = layer13x13();
    LayerTiling tiling(spec, accel);
    dnn::NeuronTensor input(13, 13, 48);
    for (int i = 0; i < 48; i++)
        input.at(2, 3, i) = static_cast<uint16_t>(100 + i);
    // Window (2,2) with pad 1, set (fy=2, fx=1, brick 16) reads input
    // (2*1-1+1, 2*1-1+2) == (2, 3), channels 16..31.
    WindowCoord w{2, 2};
    SynapseSetCoord s{2, 1, 16};
    auto brick = tiling.gatherBrick(input, w, s);
    for (int lane = 0; lane < 16; lane++)
        EXPECT_EQ(brick[lane], 116 + lane);
}

TEST(Tiling, GatherBrickPaddingIsZero)
{
    AccelConfig accel;
    auto spec = layer13x13();
    LayerTiling tiling(spec, accel);
    dnn::NeuronTensor input(13, 13, 48);
    for (auto &v : input.flat())
        v = 0xffff;
    // Window (0,0), set (fy=0, fx=0) reads (-1,-1): all padding.
    auto brick = tiling.gatherBrick(input, {0, 0}, {0, 0, 0});
    for (uint16_t v : brick)
        EXPECT_EQ(v, 0);
}

TEST(Tiling, GatherBrickShortChannels)
{
    AccelConfig accel;
    dnn::LayerSpec spec = layer13x13();
    spec.inputChannels = 20; // Second brick has only 4 lanes.
    LayerTiling tiling(spec, accel);
    dnn::NeuronTensor input(13, 13, 20);
    for (auto &v : input.flat())
        v = 9;
    auto brick = tiling.gatherBrick(input, {1, 1}, {1, 1, 16});
    for (int lane = 0; lane < 4; lane++)
        EXPECT_EQ(brick[lane], 9);
    for (int lane = 4; lane < 16; lane++)
        EXPECT_EQ(brick[lane], 0);
}

TEST(Tiling, NmAddressBrickInterleaved)
{
    AccelConfig accel;
    auto spec = layer13x13();
    LayerTiling tiling(spec, accel);
    // Adjacent windows at the same set coordinate sit 16 neurons
    // apart (Section V-A4's unit-stride contiguity).
    SynapseSetCoord s{1, 1, 16};
    int64_t a0 = tiling.brickNmAddress({3, 3}, s);
    int64_t a1 = tiling.brickNmAddress({4, 3}, s);
    EXPECT_EQ(a1 - a0, 16);
    // Padding bricks have no address.
    EXPECT_EQ(tiling.brickNmAddress({0, 0}, {0, 0, 0}), -1);
}

TEST(Tiling, SmallFilterCountSinglePass)
{
    AccelConfig accel;
    auto spec = layer13x13();
    spec.numFilters = 96;
    LayerTiling tiling(spec, accel);
    EXPECT_EQ(tiling.passes(), 1);
}

TEST(Tiling, RejectsInvalidLayer)
{
    AccelConfig accel;
    dnn::LayerSpec bad;
    EXPECT_DEATH(LayerTiling(bad, accel), "invalid layer");
}

} // namespace
} // namespace sim
} // namespace pra
