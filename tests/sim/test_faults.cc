/**
 * @file
 * Tests for the deterministic fault-injection layer
 * (sim/serving/faults.h): counter-based replayable draws, the
 * fail/repair timeline walk, availability accounting, and the
 * retry-backoff schedule.
 */

#include <gtest/gtest.h>

#include "sim/serving/faults.h"

namespace pra {
namespace sim {
namespace {

FaultSpec
expSpec(uint64_t mtbf, uint64_t mttr, uint64_t seed = 0x5eed)
{
    FaultSpec spec;
    spec.mtbfCycles = mtbf;
    spec.mttrCycles = mttr;
    spec.kind = FaultKind::Exponential;
    spec.seed = seed;
    return spec;
}

FaultSpec
fixedSpec(uint64_t mtbf, uint64_t mttr)
{
    FaultSpec spec = expSpec(mtbf, mttr);
    spec.kind = FaultKind::Fixed;
    return spec;
}

TEST(Faults, DisabledSpecInjectsNothing)
{
    FaultSpec off;
    EXPECT_FALSE(faultsEnabled(off));
    FaultTimeline timeline(off, 0);
    EXPECT_EQ(timeline.failCycle(), kNoFault);
    EXPECT_EQ(timeline.repairCycle(), kNoFault);
    timeline.advance();
    EXPECT_EQ(timeline.failCycle(), kNoFault);
    EXPECT_EQ(upCyclesBefore(off, 0, 12345), 12345u);
}

TEST(Faults, DrawsAreAPureFunctionOfSpecInstanceAndIndex)
{
    FaultSpec spec = expSpec(100000, 10000);
    for (int instance : {0, 1, 7}) {
        for (int index : {0, 1, 33}) {
            EXPECT_EQ(upDuration(spec, instance, index),
                      upDuration(spec, instance, index));
            EXPECT_EQ(repairDuration(spec, instance, index),
                      repairDuration(spec, instance, index));
        }
    }
    // Different instances, indices, and seeds decorrelate.
    bool instance_differs = false, index_differs = false,
         seed_differs = false;
    FaultSpec reseeded = expSpec(100000, 10000, 0x5eed + 1);
    for (int i = 0; i < 16; i++) {
        instance_differs |=
            upDuration(spec, 0, i) != upDuration(spec, 1, i);
        index_differs |=
            upDuration(spec, 0, i) != upDuration(spec, 0, i + 16);
        seed_differs |=
            upDuration(spec, 0, i) != upDuration(reseeded, 0, i);
    }
    EXPECT_TRUE(instance_differs);
    EXPECT_TRUE(index_differs);
    EXPECT_TRUE(seed_differs);
}

TEST(Faults, UpAndRepairStreamsAreIndependent)
{
    // Same mean for both draws: the domain salts must still keep the
    // up and repair streams distinct.
    FaultSpec spec = expSpec(50000, 50000);
    bool differs = false;
    for (int i = 0; i < 16; i++)
        differs |=
            upDuration(spec, 0, i) != repairDuration(spec, 0, i);
    EXPECT_TRUE(differs);
}

TEST(Faults, FixedTimelineIsHandCheckable)
{
    // Fixed draws are the means themselves: fail at 1000, repaired at
    // 1100, fail again at 2100, and so on.
    FaultTimeline timeline(fixedSpec(1000, 100), 0);
    EXPECT_EQ(timeline.failCycle(), 1000u);
    EXPECT_EQ(timeline.repairCycle(), 1100u);
    timeline.advance();
    EXPECT_EQ(timeline.failCycle(), 2100u);
    EXPECT_EQ(timeline.repairCycle(), 2200u);
    timeline.advance();
    EXPECT_EQ(timeline.failCycle(), 3200u);
}

TEST(Faults, TimelineReplayMatchesRawDraws)
{
    FaultSpec spec = expSpec(100000, 10000);
    FaultTimeline timeline(spec, 3);
    uint64_t expected_fail = upDuration(spec, 3, 0);
    uint64_t expected_repair =
        expected_fail + repairDuration(spec, 3, 0);
    for (int k = 0; k < 8; k++) {
        ASSERT_EQ(timeline.failCycle(), expected_fail) << k;
        ASSERT_EQ(timeline.repairCycle(), expected_repair) << k;
        timeline.advance();
        expected_fail =
            expected_repair + upDuration(spec, 3, k + 1);
        expected_repair =
            expected_fail + repairDuration(spec, 3, k + 1);
    }
}

TEST(Faults, HugeMeansSaturateToNever)
{
    // A mean beyond the uint64 range degenerates to a perfect
    // instance instead of wrapping into an early fault.
    FaultTimeline timeline(fixedSpec(kNoFault, 1), 0);
    EXPECT_EQ(timeline.failCycle(), kNoFault);
    timeline.advance();
    EXPECT_EQ(timeline.failCycle(), kNoFault);
    EXPECT_EQ(upCyclesBefore(fixedSpec(kNoFault, 1), 0, 777), 777u);
}

TEST(Faults, UpCyclesBeforeCountsMttrWindows)
{
    // Fixed 1000/100 windows: horizon 2150 spans up [0,1000),
    // repair [1000,1100), up [1100,2100), repair [2100,2150) cut
    // short -> 2000 up cycles.
    FaultSpec spec = fixedSpec(1000, 100);
    EXPECT_EQ(upCyclesBefore(spec, 0, 500), 500u);
    EXPECT_EQ(upCyclesBefore(spec, 0, 1000), 1000u);
    EXPECT_EQ(upCyclesBefore(spec, 0, 1050), 1000u);
    EXPECT_EQ(upCyclesBefore(spec, 0, 1100), 1000u);
    EXPECT_EQ(upCyclesBefore(spec, 0, 2150), 2000u);
}

TEST(Faults, BackoffDoublesAndJitterStaysBounded)
{
    RetryPolicy policy;
    policy.backoffBaseCycles = 1000;
    for (int request : {0, 5}) {
        for (int retry = 1; retry <= 4; retry++) {
            const uint64_t base = UINT64_C(1000) << (retry - 1);
            const uint64_t delay =
                retryBackoffCycles(policy, 0x5eed, request, retry);
            // Stretch factor in [1, 2): never collapses to zero,
            // never more than doubles.
            EXPECT_GE(delay, base) << request << " " << retry;
            EXPECT_LE(delay, 2 * base) << request << " " << retry;
            // Replayable.
            EXPECT_EQ(delay, retryBackoffCycles(policy, 0x5eed,
                                                request, retry));
        }
    }
    // Distinct requests decorrelate (the retry herd spreads out).
    bool differs = false;
    for (int request = 0; request < 16; request++)
        differs |= retryBackoffCycles(policy, 0x5eed, request, 1) !=
                   retryBackoffCycles(policy, 0x5eed, request + 16, 1);
    EXPECT_TRUE(differs);
}

TEST(Faults, ZeroBaseBackoffRetriesImmediately)
{
    RetryPolicy policy;
    policy.backoffBaseCycles = 0;
    EXPECT_EQ(retryBackoffCycles(policy, 0x5eed, 0, 1), 0u);
    EXPECT_EQ(retryBackoffCycles(policy, 0x5eed, 9, 3), 0u);
}

TEST(Faults, HugeBackoffSaturatesInsteadOfWrapping)
{
    RetryPolicy policy;
    policy.backoffBaseCycles = UINT64_C(1) << 63;
    const uint64_t delay = retryBackoffCycles(policy, 0x5eed, 0, 2);
    EXPECT_EQ(delay, kNoFault);
}

TEST(Faults, KindNamesRoundTrip)
{
    EXPECT_STREQ(faultKindName(FaultKind::Exponential), "exponential");
    EXPECT_STREQ(faultKindName(FaultKind::Fixed), "fixed");
    EXPECT_EQ(parseFaultKind("exponential"), FaultKind::Exponential);
    EXPECT_EQ(parseFaultKind("fixed"), FaultKind::Fixed);
}

TEST(FaultsDeathTest, RejectsDegenerateInputs)
{
    FaultSpec spec = expSpec(1000, 100);
    EXPECT_DEATH(upDuration(spec, -1, 0), "negative instance");
    EXPECT_DEATH(upDuration(spec, 0, -1), "negative event index");
    FaultSpec off;
    EXPECT_DEATH(upDuration(off, 0, 0), "disabled");
    EXPECT_DEATH(parseFaultKind("weibull"), "exponential or fixed");
    RetryPolicy policy;
    EXPECT_DEATH(retryBackoffCycles(policy, 0, 0, 0), "1-based");
    EXPECT_DEATH(retryBackoffCycles(policy, 0, -1, 1),
                 "negative request");
}

} // namespace
} // namespace sim
} // namespace pra
