/**
 * @file
 * Tests for the shared operand-plane layer: the packed
 * activation-side summaries (per-brick and per-lane) against direct
 * tensor reductions, and the weight-side planes against a manual
 * materialization of the code streams — including the propagated
 * (requantized reference weights) build.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/propagate.h"
#include "dnn/weight_synth.h"
#include "sim/operand_planes.h"
#include "util/random.h"

namespace pra {
namespace sim {
namespace {

dnn::NeuronTensor
randomTensor(int sx, int sy, int si, uint64_t seed)
{
    dnn::NeuronTensor t(sx, sy, si);
    util::Xoshiro256 rng(seed);
    for (auto &v : t.flat())
        v = static_cast<uint16_t>(rng.nextBounded(65536));
    return t;
}

dnn::LayerSpec
weightLayer()
{
    dnn::LayerSpec spec;
    spec.name = "planes-ref";
    spec.inputX = 5;
    spec.inputY = 5;
    spec.inputChannels = 24; // 1.5 bricks: partial-lane edge case.
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 10;
    spec.stride = 1;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    spec.profiledWeightPrecision = 9;
    return spec;
}

TEST(OperandPlanes, BrickSummariesMatchDirectReduction)
{
    // 24 channels: brick 1 has only 8 real lanes.
    dnn::NeuronTensor t = randomTensor(4, 3, 24, 0x9a11);
    BrickPlanes planes = buildBrickPlanes(t);
    ASSERT_EQ(planes.sizeX, 4);
    ASSERT_EQ(planes.sizeY, 3);
    ASSERT_EQ(planes.bricksPerColumn, 2);
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 4; x++)
            for (int b = 0; b < 2; b++) {
                int lanes = std::min(dnn::kBrickSize, 24 - b * 16);
                int32_t pop = 0;
                int max_pop = 0, non_zero = 0;
                uint16_t or_mask = 0;
                for (int l = 0; l < lanes; l++) {
                    uint16_t v = t.at(x, y, b * 16 + l);
                    int p = std::popcount(v);
                    pop += p;
                    max_pop = std::max(max_pop, p);
                    non_zero += v != 0;
                    or_mask |= v;
                }
                size_t idx = planes.index(x, y, b);
                EXPECT_EQ(planes.pop[idx], pop);
                EXPECT_EQ(planes.maxPop[idx], max_pop);
                EXPECT_EQ(planes.nonZero[idx], non_zero);
                EXPECT_EQ(planes.orMask[idx], or_mask);
                // orPop is definitionally the popcount of orMask.
                EXPECT_EQ(planes.orPop[idx],
                          std::popcount(planes.orMask[idx]));
            }
}

TEST(OperandPlanes, LanePopPlanesMatchTensorPopcounts)
{
    dnn::NeuronTensor t = randomTensor(3, 4, 24, 0x9a12);
    LanePopPlanes planes = buildLanePopPlanes(t);
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 3; x++)
            for (int b = 0; b < 2; b++)
                for (int l = 0; l < dnn::kBrickSize; l++) {
                    int want = b * 16 + l < 24
                                   ? std::popcount(
                                         t.at(x, y, b * 16 + l))
                                   : 0;
                    EXPECT_EQ(planes.pop[planes.index(x, y, b, l)],
                              want);
                }
}

TEST(OperandPlanes, SyntheticWeightPlanesMatchMaterializedCodes)
{
    dnn::LayerSpec layer = weightLayer();
    WeightBrickPlanes planes =
        syntheticWeightPlanes(layer, dnn::kBrickSize);
    int positions = layer.filterX * layer.filterY;
    int bricks = 2;
    ASSERT_EQ(planes.numSets, positions * bricks);
    ASSERT_EQ(planes.lanes, dnn::kBrickSize);

    std::vector<uint16_t> codes(
        static_cast<size_t>(layer.synapsesPerFilter()));
    std::vector<int32_t> sum(planes.sumPop.size(), 0);
    std::vector<int> maxp(planes.sumPop.size(), 0);
    std::vector<uint16_t> ors(planes.sumPop.size(), 0);
    std::vector<uint16_t> mags(planes.sumPop.size(), 0);
    for (int f = 0; f < layer.numFilters; f++) {
        dnn::synthesizeWeightCodes(layer, f, codes);
        for (int pos = 0; pos < positions; pos++)
            for (int c = 0; c < layer.inputChannels; c++) {
                uint16_t code = codes[static_cast<size_t>(
                    pos * layer.inputChannels + c)];
                size_t idx = planes.index(
                    pos * bricks + c / dnn::kBrickSize,
                    c % dnn::kBrickSize);
                sum[idx] += std::popcount(code);
                maxp[idx] = std::max(maxp[idx], std::popcount(code));
                ors[idx] |= code;
                mags[idx] = std::max(mags[idx], code);
            }
    }
    for (size_t i = 0; i < planes.sumPop.size(); i++) {
        EXPECT_EQ(planes.sumPop[i], sum[i]) << i;
        EXPECT_EQ(planes.maxPop[i], maxp[i]) << i;
        EXPECT_EQ(planes.orMask[i], ors[i]) << i;
        EXPECT_EQ(planes.maxMag[i], mags[i]) << i;
    }

    // Determinism: a second build is identical.
    WeightBrickPlanes again =
        syntheticWeightPlanes(layer, dnn::kBrickSize);
    EXPECT_EQ(planes.sumPop, again.sumPop);
    EXPECT_EQ(planes.orMask, again.orMask);
}

TEST(OperandPlanes, ReshapedLaneCountReindexesBricks)
{
    dnn::LayerSpec layer = weightLayer();
    WeightBrickPlanes wide = syntheticWeightPlanes(layer, 16);
    WeightBrickPlanes narrow = syntheticWeightPlanes(layer, 8);
    // 24 channels: 2 bricks of 16 lanes, or 3 bricks of 8 lanes.
    EXPECT_EQ(wide.numSets, layer.filterX * layer.filterY * 2);
    EXPECT_EQ(narrow.numSets, layer.filterX * layer.filterY * 3);
    // Same codes, different packing: total popcount mass agrees.
    int64_t wide_sum = 0, narrow_sum = 0;
    for (int32_t s : wide.sumPop)
        wide_sum += s;
    for (int32_t s : narrow.sumPop)
        narrow_sum += s;
    EXPECT_EQ(wide_sum, narrow_sum);
    // The wide build's lanes beyond a partial brick stay zero.
    for (int pos = 0; pos < layer.filterX * layer.filterY; pos++)
        for (int l = 8; l < 16; l++) {
            size_t idx = wide.index(pos * 2 + 1, l);
            EXPECT_EQ(wide.sumPop[idx], 0);
            EXPECT_EQ(wide.orMask[idx], 0);
        }
}

TEST(OperandPlanes, PropagatedPlanesMatchRequantizedReferenceWeights)
{
    dnn::LayerSpec layer = weightLayer();
    const uint64_t synth_seed = 0x5eed;
    WeightBrickPlanes planes =
        propagatedWeightPlanes(layer, synth_seed, dnn::kBrickSize);

    // Manual requantization of the same reference weights the
    // propagated forward pass uses.
    std::vector<dnn::FilterTensor> filters = dnn::synthesizeFilters(
        layer, synth_seed ^ dnn::kPropagationFilterSalt);
    ASSERT_EQ(filters.size(), static_cast<size_t>(layer.numFilters));
    int max_mag = 0;
    for (const auto &f : filters)
        for (int16_t w : f.flat())
            max_mag = std::max(max_mag, std::abs(w));
    ASSERT_GT(max_mag, 0);
    const int max_code = (1 << layer.profiledWeightPrecision) - 1;
    const double scale = static_cast<double>(max_code) / max_mag;

    int positions = layer.filterX * layer.filterY;
    int bricks = 2;
    std::vector<int32_t> sum(planes.sumPop.size(), 0);
    std::vector<uint16_t> mags(planes.sumPop.size(), 0);
    for (const auto &f : filters)
        for (int pos = 0; pos < positions; pos++)
            for (int c = 0; c < layer.inputChannels; c++) {
                int fy = pos / layer.filterX;
                int fx = pos % layer.filterX;
                uint16_t code = static_cast<uint16_t>(
                    std::llround(std::abs(f.at(fx, fy, c)) * scale));
                size_t idx = planes.index(
                    pos * bricks + c / dnn::kBrickSize,
                    c % dnn::kBrickSize);
                sum[idx] += std::popcount(code);
                mags[idx] = std::max(mags[idx], code);
            }
    for (size_t i = 0; i < planes.sumPop.size(); i++) {
        EXPECT_EQ(planes.sumPop[i], sum[i]) << i;
        EXPECT_EQ(planes.maxMag[i], mags[i]) << i;
    }
    // The requantized stream is not the synthetic one.
    WeightBrickPlanes synth =
        syntheticWeightPlanes(layer, dnn::kBrickSize);
    EXPECT_NE(planes.sumPop, synth.sumPop);
}

} // namespace
} // namespace sim
} // namespace pra
