/**
 * @file
 * Tests for convolutional layer geometry (paper Section IV-A).
 */

#include <gtest/gtest.h>

#include "dnn/conv_layer.h"
#include "dnn/tensor.h"

namespace pra {
namespace dnn {
namespace {

ConvLayerSpec
makeLayer(int in, int channels, int f, int filters, int stride, int pad)
{
    ConvLayerSpec spec;
    spec.name = "test";
    spec.inputX = in;
    spec.inputY = in;
    spec.inputChannels = channels;
    spec.filterX = f;
    spec.filterY = f;
    spec.numFilters = filters;
    spec.stride = stride;
    spec.pad = pad;
    spec.profiledPrecision = 8;
    return spec;
}

TEST(ConvLayer, PaperOutputFormula)
{
    // Ox = (Ix - Fx)/S + 1 with no padding (Section IV-A).
    ConvLayerSpec spec = makeLayer(227, 3, 11, 96, 4, 0);
    EXPECT_EQ(spec.outX(), 55);
    EXPECT_EQ(spec.outY(), 55);
    EXPECT_EQ(spec.windows(), 55 * 55);
}

TEST(ConvLayer, PaddedOutput)
{
    ConvLayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    EXPECT_EQ(spec.outX(), 13);
    EXPECT_EQ(spec.outY(), 13);
}

TEST(ConvLayer, ProductCount)
{
    ConvLayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    EXPECT_EQ(spec.synapsesPerFilter(), 3 * 3 * 256);
    EXPECT_EQ(spec.products(),
              static_cast<int64_t>(13) * 13 * 384 * 3 * 3 * 256);
}

TEST(ConvLayer, BricksPerWindowRoundsChannelsUp)
{
    ConvLayerSpec spec = makeLayer(27, 96, 5, 256, 1, 2);
    EXPECT_EQ(spec.bricksPerWindow(), 5 * 5 * (96 / kBrickSize));
    ConvLayerSpec odd = makeLayer(27, 3, 5, 256, 1, 2);
    EXPECT_EQ(odd.bricksPerWindow(), 5 * 5 * 1);
    ConvLayerSpec mid = makeLayer(27, 20, 5, 256, 1, 2);
    EXPECT_EQ(mid.bricksPerWindow(), 5 * 5 * 2);
}

TEST(ConvLayer, InputNeuronCount)
{
    ConvLayerSpec spec = makeLayer(6, 1024, 3, 1024, 1, 1);
    EXPECT_EQ(spec.inputNeurons(), 6 * 6 * 1024);
}

TEST(ConvLayer, PrecisionWindowAnchoring)
{
    ConvLayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    spec.profiledPrecision = 9;
    auto w = spec.precisionWindow(2);
    EXPECT_EQ(w.lsb, 2);
    EXPECT_EQ(w.msb, 10);
    EXPECT_EQ(w.bits(), 9);
}

TEST(ConvLayer, PrecisionWindowClampsAtTop)
{
    ConvLayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    spec.profiledPrecision = 16;
    auto w = spec.precisionWindow(4);
    EXPECT_EQ(w.msb, 15);
    EXPECT_TRUE(w.valid());
}

TEST(ConvLayer, ValidityChecks)
{
    EXPECT_TRUE(makeLayer(13, 256, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(0, 256, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 0, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 0, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 0, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 384, 0, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 384, 1, -1).valid());
    // Filter larger than padded input.
    EXPECT_FALSE(makeLayer(3, 8, 7, 16, 1, 1).valid());
    // Bad precision.
    ConvLayerSpec bad = makeLayer(13, 256, 3, 384, 1, 1);
    bad.profiledPrecision = 0;
    EXPECT_FALSE(bad.valid());
    bad.profiledPrecision = 17;
    EXPECT_FALSE(bad.valid());
}

/** Geometry identity sweep: windows * stride relation. */
class StrideSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StrideSweep, OutputFitsInput)
{
    int stride = GetParam();
    ConvLayerSpec spec = makeLayer(32, 16, 3, 8, stride, 0);
    ASSERT_TRUE(spec.valid());
    // Last window must not read past the input.
    int last_start = (spec.outX() - 1) * stride;
    EXPECT_LE(last_start + spec.filterX, spec.inputX);
    // One more window would overflow.
    EXPECT_GT(last_start + stride + spec.filterX, spec.inputX);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace dnn
} // namespace pra
