/**
 * @file
 * Tests for the deterministic weight-code synthesizer: code ranges,
 * stream determinism, the seed-independence contract (one trained
 * network, regardless of --seed), and the propagated requantization
 * against a direct materialization of the reference weights.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/propagate.h"
#include "dnn/weight_synth.h"
#include "util/random.h"

namespace pra {
namespace dnn {
namespace {

LayerSpec
testLayer(int weight_precision)
{
    LayerSpec spec;
    spec.name = "wsynth";
    spec.inputX = 5;
    spec.inputY = 5;
    spec.inputChannels = 32;
    spec.filterX = 3;
    spec.filterY = 3;
    spec.numFilters = 12;
    spec.stride = 1;
    spec.pad = 1;
    spec.profiledPrecision = 8;
    spec.profiledWeightPrecision = weight_precision;
    return spec;
}

TEST(WeightSynth, CodesStayInProfiledPrecisionRange)
{
    for (int wp : {2, 8, 9, 16}) {
        LayerSpec layer = testLayer(wp);
        std::vector<uint16_t> codes(
            static_cast<size_t>(layer.synapsesPerFilter()));
        uint32_t max_code = (1u << wp) - 1;
        for (int f = 0; f < layer.numFilters; f++) {
            synthesizeWeightCodes(layer, f, codes);
            for (uint16_t code : codes)
                ASSERT_LE(code, max_code) << "wp=" << wp;
        }
    }
}

TEST(WeightSynth, StreamIsDeterministicAndPerFilter)
{
    LayerSpec layer = testLayer(8);
    std::vector<uint16_t> a(
        static_cast<size_t>(layer.synapsesPerFilter()));
    std::vector<uint16_t> b(a.size());
    synthesizeWeightCodes(layer, 3, a);
    synthesizeWeightCodes(layer, 3, b);
    EXPECT_EQ(a, b);
    synthesizeWeightCodes(layer, 4, b);
    EXPECT_NE(a, b);
    // A different layer name is a different trained tensor.
    LayerSpec other = testLayer(8);
    other.name = "wsynth2";
    synthesizeWeightCodes(other, 3, b);
    EXPECT_NE(a, b);
}

TEST(WeightSynth, SparsityAndDensityLandNearTargets)
{
    LayerSpec layer = testLayer(8);
    int64_t zeros = 0, total = 0, set_bits = 0;
    std::vector<uint16_t> codes(
        static_cast<size_t>(layer.synapsesPerFilter()));
    for (int f = 0; f < layer.numFilters; f++) {
        synthesizeWeightCodes(layer, f, codes);
        for (uint16_t code : codes) {
            total++;
            zeros += code == 0;
            set_bits += std::popcount(code);
        }
    }
    double zero_frac =
        static_cast<double>(zeros) / static_cast<double>(total);
    // kWeightZeroFraction exactly-zero codes plus the distribution's
    // own near-zero mass keeps this loose on the low side.
    EXPECT_GT(zero_frac, 0.02);
    EXPECT_LT(zero_frac, 0.15);
    double mean_pop =
        static_cast<double>(set_bits) / static_cast<double>(total);
    EXPECT_GT(mean_pop, 1.0);
    EXPECT_LT(mean_pop, 3.5);
}

TEST(WeightSynth, PropagatedCodesMatchRequantizedReference)
{
    LayerSpec layer = testLayer(9);
    const uint64_t synth_seed = 0xfeed;
    PropagatedWeightCodes source(layer, synth_seed);

    std::vector<FilterTensor> filters =
        synthesizeFilters(layer, synth_seed ^ kPropagationFilterSalt);
    int max_mag = 0;
    for (const auto &f : filters)
        for (int16_t w : f.flat())
            max_mag = std::max(max_mag, std::abs(w));
    EXPECT_EQ(source.maxMagnitude(), max_mag);

    const int max_code = (1 << layer.profiledWeightPrecision) - 1;
    const double scale = static_cast<double>(max_code) / max_mag;
    std::vector<uint16_t> codes(
        static_cast<size_t>(layer.synapsesPerFilter()));
    for (int f = 0; f < layer.numFilters; f++) {
        source.filterCodes(f, codes);
        size_t s = 0;
        bool all_match = true;
        for (int fy = 0; fy < layer.filterY; fy++)
            for (int fx = 0; fx < layer.filterX; fx++)
                for (int c = 0; c < layer.inputChannels; c++) {
                    uint16_t want = static_cast<uint16_t>(std::llround(
                        std::abs(filters[static_cast<size_t>(f)].at(
                            fx, fy, c)) *
                        scale));
                    all_match &= codes[s++] == want;
                }
        EXPECT_TRUE(all_match) << "filter " << f;
    }
}

TEST(WeightSynthDeathTest, PropagatedFiltersMustStreamInOrder)
{
    LayerSpec layer = testLayer(8);
    PropagatedWeightCodes source(layer, 0xfeed);
    std::vector<uint16_t> codes(
        static_cast<size_t>(layer.synapsesPerFilter()));
    source.filterCodes(0, codes);
    EXPECT_DEATH(source.filterCodes(2, codes), "order");
}

} // namespace
} // namespace dnn
} // namespace pra
