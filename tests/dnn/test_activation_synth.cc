/**
 * @file
 * Tests for the calibrated synthetic activation generator — the
 * substitute for the paper's real ImageNet traces (DESIGN.md §3).
 * The key checks: determinism, and that the synthesized streams hit
 * the paper's Table I bit statistics they were calibrated against.
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "fixedpoint/fixed_point.h"
#include "util/random.h"

namespace pra {
namespace dnn {
namespace {

TEST(DiscreteExponential, UniformWhenLambdaZero)
{
    DiscreteExponential d(0.0, 15);
    EXPECT_NEAR(d.expectedValue(), 8.0, 1e-9);
    // Mean popcount of 1..15 = 32/15.
    EXPECT_NEAR(d.expectedPopcount(), 32.0 / 15.0, 1e-9);
}

TEST(DiscreteExponential, LargeLambdaConcentratesOnOne)
{
    DiscreteExponential d(1e6, 255);
    EXPECT_NEAR(d.expectedValue(), 1.0, 1e-3);
    EXPECT_NEAR(d.expectedPopcount(), 1.0, 1e-3);
}

TEST(DiscreteExponential, SampleMatchesExpectation)
{
    DiscreteExponential d(8.0, 511);
    util::Xoshiro256 rng(99);
    double sum_pop = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; i++) {
        uint32_t v = d.sample(rng);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 511u);
        sum_pop += fixedpoint::essentialBits(static_cast<uint16_t>(v));
    }
    EXPECT_NEAR(sum_pop / n, d.expectedPopcount(), 0.05);
}

TEST(CalibrateLambda, HitsTarget)
{
    for (double target : {1.5, 2.0, 2.5, 3.0}) {
        double lambda = calibrateLambda(511, target);
        DiscreteExponential d(lambda, 511);
        EXPECT_NEAR(d.expectedPopcount(), target, 0.05) << target;
    }
}

TEST(CalibrateLambda, ClampsUnreachableTargets)
{
    // Above uniform mean -> lambda 0.
    EXPECT_EQ(calibrateLambda(255, 7.9), 0.0);
    // Below 1 -> concentrate on value 1.
    EXPECT_GE(calibrateLambda(255, 0.5), 1e5);
}

TEST(ActivationSynth, Deterministic)
{
    auto net = makeTinyNetwork();
    ActivationSynthesizer a(net, 123);
    ActivationSynthesizer b(net, 123);
    auto ta = a.synthesizeFixed16(1);
    auto tb = b.synthesizeFixed16(1);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); i++)
        EXPECT_EQ(ta.flat()[i], tb.flat()[i]);
}

TEST(ActivationSynth, SeedChangesStream)
{
    auto net = makeTinyNetwork();
    ActivationSynthesizer a(net, 1);
    ActivationSynthesizer b(net, 2);
    auto ta = a.synthesizeFixed16(1);
    auto tb = b.synthesizeFixed16(1);
    size_t diff = 0;
    for (size_t i = 0; i < ta.size(); i++)
        if (ta.flat()[i] != tb.flat()[i])
            diff++;
    EXPECT_GT(diff, ta.size() / 4);
}

TEST(ActivationSynth, TrimmedPairsWithRaw)
{
    // Table V comparisons need the trimmed stream to be exactly the
    // raw stream under the layer mask.
    auto net = makeAlexNet();
    ActivationSynthesizer synth(net);
    for (int layer = 1; layer < 3; layer++) {
        auto raw = synth.synthesizeFixed16(layer);
        auto trimmed = synth.synthesizeFixed16Trimmed(layer);
        int anchor = synth.fixed16Params(layer).anchorLsb;
        uint16_t mask = net.layers[layer].precisionWindow(anchor).mask();
        for (size_t i = 0; i < raw.size(); i++)
            EXPECT_EQ(trimmed.flat()[i],
                      static_cast<uint16_t>(raw.flat()[i] & mask));
    }
}

TEST(ActivationSynth, HitsTableIStatistics16Bit)
{
    // The ReLU layers' streams must reproduce the calibration
    // targets: zero fraction and NZ essential-bit content.
    for (const auto &net :
         {makeAlexNet(), makeVggM(), makeVgg19()}) {
        ActivationSynthesizer synth(net);
        double nz_sum = 0.0;
        double zero_sum = 0.0;
        int layers = 0;
        // Skip layer 0: its input is the image, not ReLU output.
        for (size_t i = 1; i < std::min<size_t>(4, net.layers.size());
             i++) {
            auto t = synth.synthesizeFixed16(static_cast<int>(i));
            nz_sum += fixedpoint::essentialBitFractionNonZero(t.flat(),
                                                              16);
            zero_sum += fixedpoint::zeroFraction(t.flat());
            layers++;
        }
        EXPECT_NEAR(nz_sum / layers, net.targets.nz16, 0.02)
            << net.name;
        EXPECT_NEAR(zero_sum / layers, net.targets.zeroFraction16(),
                    0.02)
            << net.name;
    }
}

TEST(ActivationSynth, HitsTableIStatistics8Bit)
{
    for (const auto &net : {makeAlexNet(), makeVggS()}) {
        ActivationSynthesizer synth(net);
        auto t = synth.synthesizeQuant8(1);
        for (uint16_t v : t.flat())
            EXPECT_LE(v, 255);
        EXPECT_NEAR(fixedpoint::essentialBitFractionNonZero(t.flat(), 8),
                    net.targets.nz8, 0.02)
            << net.name;
        EXPECT_NEAR(fixedpoint::zeroFraction(t.flat()),
                    net.targets.zeroFraction8(), 0.02)
            << net.name;
    }
}

TEST(ActivationSynth, FirstLayerIsImageLike)
{
    auto net = makeAlexNet();
    ActivationSynthesizer synth(net);
    auto image = synth.synthesizeFixed16(0);
    // Dense: nearly no zeros (CVN cannot skip layer 1, Section II).
    EXPECT_LT(fixedpoint::zeroFraction(image.flat()),
              2.5 * kImageZeroFraction);
    // Values fill the layer's precision window.
    double nz = fixedpoint::essentialBitFractionNonZero(image.flat(),
                                                        16);
    EXPECT_GT(nz, 0.2); // Much denser than the ReLU streams.
}

TEST(ActivationSynth, FcFrontSkipsImageOverride)
{
    // An FC-selected network starts at fc6, whose input is a pooled
    // ReLU output, not the image: the first-layer density override
    // must not apply, so the stream keeps the network's Table I zero
    // fraction.
    auto net = makeAlexNet(LayerSelect::Fc);
    ASSERT_EQ(net.layers.front().kind, LayerKind::FullyConnected);
    ActivationSynthesizer synth(net);
    EXPECT_NEAR(synth.fixed16Params(0).zeroFraction,
                net.targets.zeroFraction16(), 1e-12);
    auto stream = synth.synthesizeFixed16(0);
    EXPECT_EQ(stream.sizeX(), 1);
    EXPECT_EQ(stream.sizeY(), 1);
    EXPECT_EQ(stream.sizeI(), 9216);
    EXPECT_GT(fixedpoint::zeroFraction(stream.flat()), 0.3);

    // A conv-front network keeps the image-like layer 0 (the
    // existing behavior, byte-identical to the conv-only zoo).
    auto conv_net = makeAlexNet(LayerSelect::All);
    ActivationSynthesizer conv_synth(conv_net);
    EXPECT_DOUBLE_EQ(conv_synth.fixed16Params(0).zeroFraction,
                     kImageZeroFraction);
}

TEST(ActivationSynth, TrimRemovesRoughlyTableVBudget)
{
    // The essential-bit content removed by trimming should be near
    // the network's software-guidance budget.
    auto net = makeVggM();
    ActivationSynthesizer synth(net);
    double raw_bits = 0.0;
    double trim_bits = 0.0;
    for (int i = 1; i < 4; i++) {
        auto raw = synth.synthesizeFixed16(i);
        auto trim = synth.synthesizeFixed16Trimmed(i);
        for (uint16_t v : raw.flat())
            raw_bits += fixedpoint::essentialBits(v);
        for (uint16_t v : trim.flat())
            trim_bits += fixedpoint::essentialBits(v);
    }
    double removed = 1.0 - trim_bits / raw_bits;
    EXPECT_NEAR(removed, net.targets.softwareBenefit, 0.06);
}

TEST(ActivationSynth, ValuesFitSixteenBitWindow)
{
    auto net = makeVgg19(); // p == 13: tightest window fit.
    ActivationSynthesizer synth(net);
    for (int i : {0, 8, 15}) {
        const auto &params = synth.fixed16Params(i);
        EXPECT_LE(params.anchorLsb + params.precisionBits, 16);
        auto t = synth.synthesizeFixed16(i);
        (void)t; // Construction would panic on overflow.
    }
}

TEST(SynthesizeFilters, DeterministicAndBounded)
{
    auto layer = makeTinyNetwork().layers[0];
    auto f1 = synthesizeFilters(layer, 42, 100);
    auto f2 = synthesizeFilters(layer, 42, 100);
    ASSERT_EQ(f1.size(), static_cast<size_t>(layer.numFilters));
    for (size_t f = 0; f < f1.size(); f++) {
        for (size_t i = 0; i < f1[f].size(); i++) {
            int16_t w = f1[f].flat()[i];
            EXPECT_EQ(w, f2[f].flat()[i]);
            EXPECT_GE(w, -100);
            EXPECT_LE(w, 100);
        }
    }
}

} // namespace
} // namespace dnn
} // namespace pra
