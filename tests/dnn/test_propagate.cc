/**
 * @file
 * Tests for the propagated-activation pipeline (dnn/propagate.h):
 * pooling and requantization building blocks against hand-computed
 * values, the chain wiring against the reference convolution, the
 * shared layer-0 image stream, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "dnn/propagate.h"
#include "dnn/reference.h"

namespace pra {
namespace dnn {
namespace {

/** A 2-layer conv -> pool -> conv -> fc pipeline, hand-sized. */
Network
makePipeline()
{
    Network net;
    net.name = "PipelineUT";
    net.targets = {0.08, 0.18, 0.31, 0.44, 0.19};
    LayerSpec c1;
    c1.name = "c1";
    c1.inputX = 6;
    c1.inputY = 6;
    c1.inputChannels = 2;
    c1.filterX = 3;
    c1.filterY = 3;
    c1.numFilters = 4;
    c1.stride = 1;
    c1.pad = 1;
    c1.profiledPrecision = 8;
    LayerSpec p1 = LayerSpec::pool("p1", 6, 6, 4, 2, 2, PoolOp::Max);
    LayerSpec c2;
    c2.name = "c2";
    c2.inputX = 3;
    c2.inputY = 3;
    c2.inputChannels = 4;
    c2.filterX = 2;
    c2.filterY = 2;
    c2.numFilters = 3;
    c2.stride = 1;
    c2.pad = 0;
    c2.profiledPrecision = 7;
    LayerSpec f1 = LayerSpec::fullyConnected("f1", 2 * 2 * 3, 5, 6);
    net.layers = {c1, p1, c2, f1};
    int ordinal = 0;
    for (auto &layer : net.layers)
        layer.ordinal = layer.priced() ? ordinal++ : -1;
    return net;
}

TEST(PoolForward, MaxPoolHandComputed)
{
    LayerSpec pool = LayerSpec::pool("p", 4, 4, 1, 2, 2, PoolOp::Max);
    Tensor3D<int64_t> in(4, 4, 1);
    // Row-major values 1..16: windows {1,2,5,6}, {3,4,7,8},
    // {9,10,13,14}, {11,12,15,16}.
    int64_t v = 1;
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 4; x++)
            in.at(x, y, 0) = v++;
    auto out = poolForward(pool, in);
    ASSERT_EQ(out.sizeX(), 2);
    ASSERT_EQ(out.sizeY(), 2);
    EXPECT_EQ(out.at(0, 0, 0), 6);
    EXPECT_EQ(out.at(1, 0, 0), 8);
    EXPECT_EQ(out.at(0, 1, 0), 14);
    EXPECT_EQ(out.at(1, 1, 0), 16);
}

TEST(PoolForward, AvgPoolHandComputed)
{
    LayerSpec pool = LayerSpec::pool("p", 4, 4, 1, 2, 2, PoolOp::Avg);
    Tensor3D<int64_t> in(4, 4, 1);
    int64_t v = 1;
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 4; x++)
            in.at(x, y, 0) = v++;
    auto out = poolForward(pool, in);
    EXPECT_EQ(out.at(0, 0, 0), (1 + 2 + 5 + 6) / 4);
    EXPECT_EQ(out.at(1, 1, 0), (11 + 12 + 15 + 16) / 4);
}

TEST(PoolForward, GlobalAvgPool)
{
    // NiN/GoogLeNet style: window == input, one output per channel.
    LayerSpec pool = LayerSpec::pool("p", 3, 3, 2, 3, 1, PoolOp::Avg);
    Tensor3D<int64_t> in(3, 3, 2);
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++) {
            in.at(x, y, 0) = 9;
            in.at(x, y, 1) = x + y;
        }
    auto out = poolForward(pool, in);
    ASSERT_EQ(out.sizeX(), 1);
    ASSERT_EQ(out.sizeY(), 1);
    EXPECT_EQ(out.at(0, 0, 0), 9);
    EXPECT_EQ(out.at(0, 0, 1), 18 / 9); // sum of (x+y) over 3x3 = 18.
}

TEST(PoolForward, CeilModeClampsOverhangingWindow)
{
    // 5 wide, 2x2/2 ceil: ceil((5-2)/2)+1 = 3 outputs; the last
    // window starts at 4 and only covers column 4.
    LayerSpec pool = LayerSpec::pool("p", 5, 1, 1, 2, 2, PoolOp::Max,
                                     0, true);
    ASSERT_EQ(pool.outX(), 3);
    Tensor3D<int64_t> in(5, 1, 1);
    for (int x = 0; x < 5; x++)
        in.at(x, 0, 0) = 10 * (x + 1);
    auto out = poolForward(pool, in);
    EXPECT_EQ(out.at(0, 0, 0), 20);
    EXPECT_EQ(out.at(1, 0, 0), 40);
    EXPECT_EQ(out.at(2, 0, 0), 50); // Clamped single-element window.
}

TEST(PoolForward, CeilClampDropsWindowsThatStartOutside)
{
    // Caffe's rule: a ceil-rounded window count is clamped so the
    // last window starts inside input+pad. in=3, k=2, s=2, pad=1:
    // unclamped ceil gives 3 windows, but the third would start at
    // 3 (>= input+pad == 4 is false... base 2*2-1 = 3 >= inputX 3)
    // and cover nothing; the clamp keeps 2.
    LayerSpec pool = LayerSpec::pool("p", 3, 3, 1, 2, 2, PoolOp::Max,
                                     1, true);
    ASSERT_TRUE(pool.valid());
    EXPECT_EQ(pool.outX(), 2);
    Tensor3D<int64_t> in(3, 3, 1);
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++)
            in.at(x, y, 0) = 1 + x + 3 * y;
    auto out = poolForward(pool, in); // Must not hit empty windows.
    EXPECT_EQ(out.at(0, 0, 0), 1);    // Window covers only (0,0).
    EXPECT_EQ(out.at(1, 1, 0), 9);    // Window {5,6,8,9}.
}

TEST(PoolForward, PadAtLeastWindowIsInvalid)
{
    // pad >= kernel would let floor-mode windows land entirely in
    // padding; valid() rejects it (Caffe enforces the same).
    LayerSpec pool = LayerSpec::pool("p", 4, 4, 1, 2, 2, PoolOp::Max,
                                     2, false);
    EXPECT_FALSE(pool.valid());
}

TEST(Requantize, HandComputedWindowMapping)
{
    Tensor3D<int64_t> acts(2, 2, 1);
    acts.at(0, 0, 0) = 0;
    acts.at(1, 0, 0) = 3;
    acts.at(0, 1, 0) = 7;
    acts.at(1, 1, 0) = 14;
    // p = 4, anchor = 2: max (14) -> 15, v -> round(v * 15/14) << 2.
    auto codes = requantizeToWindow(acts, 4, 2);
    EXPECT_EQ(codes.at(0, 0, 0), 0);
    EXPECT_EQ(codes.at(1, 0, 0), 3 << 2);  // round(3.21) = 3
    EXPECT_EQ(codes.at(0, 1, 0), 8 << 2);  // round(7.5) = 8
    EXPECT_EQ(codes.at(1, 1, 0), 15 << 2);
}

TEST(Requantize, ZerosStayZeroAndMaxHitsWindowTop)
{
    Tensor3D<int64_t> acts(8, 8, 3);
    util::Xoshiro256 rng(42);
    for (auto &v : acts.flat())
        v = rng.nextBool(0.5) ? 0
                              : static_cast<int64_t>(
                                    rng.nextBounded(1 << 20)) + 1;
    acts.at(3, 3, 1) = 1 << 20; // Ensure a known maximum.
    auto codes = requantizeToWindow(acts, 9, 4);
    uint16_t top = static_cast<uint16_t>(((1u << 9) - 1) << 4);
    uint16_t max_code = 0;
    auto src = acts.flat();
    auto dst = codes.flat();
    for (size_t i = 0; i < src.size(); i++) {
        // Zeros survive exactly. (The converse is not guaranteed:
        // values below half a step flush to zero, as real
        // quantization does.)
        if (src[i] == 0) {
            EXPECT_EQ(dst[i], 0);
        }
        max_code = std::max(max_code, dst[i]);
        // Codes live inside the window: nothing below the anchor.
        EXPECT_EQ(dst[i] & 0xF, 0);
        EXPECT_LE(dst[i], top);
    }
    EXPECT_EQ(max_code, top);
}

TEST(Requantize, AllZeroTensorPropagatesZeros)
{
    Tensor3D<int64_t> acts(3, 3, 2);
    auto codes = requantizeToWindow(acts, 8, 0);
    for (uint16_t c : codes.flat())
        EXPECT_EQ(c, 0);
}

TEST(PropagateChain, FirstLayerSharesTheSyntheticImageStream)
{
    auto net = makeTinyNetwork(LayerSelect::All);
    ActivationSynthesizer synth(net, 0x5eed);
    PropagatedChain chain = propagateChain(synth);
    NeuronTensor image = synth.synthesizeFixed16(0);
    ASSERT_EQ(chain.inputs[0].size(), image.size());
    auto lhs = chain.inputs[0].flat();
    auto rhs = image.flat();
    for (size_t i = 0; i < rhs.size(); i++)
        ASSERT_EQ(lhs[i], rhs[i]);
}

TEST(PropagateChain, WiresConvReluPoolRequantizeExactly)
{
    // Recompute the chain of the hand-sized pipeline step by step
    // with the (individually hand-verified) building blocks and the
    // reference convolution; the chain must match exactly.
    Network net = makePipeline();
    ASSERT_TRUE(net.valid());
    ASSERT_TRUE(net.chainConsistent());
    ActivationSynthesizer synth(net, 0xabcd);
    PropagatedChain chain = propagateChain(synth);
    ASSERT_EQ(chain.inputs.size(), 4u);

    // Layer 0 (c1): the image stream.
    NeuronTensor in0 = synth.synthesizeFixed16(0);
    auto filters0 = synthesizeFilters(
        net.layers[0], synth.seed() ^ kPropagationFilterSalt);
    OutputTensor acc0 =
        referenceConvolution(net.layers[0], in0, filters0);
    for (auto &v : acc0.flat())
        v = std::max<int64_t>(v, 0); // ReLU.

    // Layer 1 (p1): pools the raw activations.
    auto pooled = poolForward(net.layers[1], acc0);
    EXPECT_TRUE(chain.inputs[1].empty()); // Pools carry no stream.

    // Layer 2 (c2): requantized into its 7-bit window, anchor
    // min(4, 16-7) = 4.
    auto in2 = requantizeToWindow(pooled, 7, 4);
    ASSERT_EQ(chain.inputs[2].size(), in2.size());
    {
        auto lhs = chain.inputs[2].flat();
        auto rhs = in2.flat();
        for (size_t i = 0; i < rhs.size(); i++)
            ASSERT_EQ(lhs[i], rhs[i]);
    }

    // Layer 3 (f1): c2's output, flattened channel-major into the
    // 1x1x12 column and requantized into the 6-bit window, anchor 4.
    auto filters2 = synthesizeFilters(
        net.layers[2], synth.seed() ^ kPropagationFilterSalt);
    OutputTensor acc2 =
        referenceConvolution(net.layers[2], in2, filters2);
    for (auto &v : acc2.flat())
        v = std::max<int64_t>(v, 0);
    Tensor3D<int64_t> flat(1, 1, static_cast<int>(acc2.size()));
    std::copy(acc2.flat().begin(), acc2.flat().end(),
              flat.flat().begin());
    auto in3 = requantizeToWindow(flat, 6, 4);
    ASSERT_EQ(chain.inputs[3].size(), in3.size());
    ASSERT_EQ(chain.inputs[3].sizeI(), 12);
    {
        auto lhs = chain.inputs[3].flat();
        auto rhs = in3.flat();
        for (size_t i = 0; i < rhs.size(); i++)
            ASSERT_EQ(lhs[i], rhs[i]);
    }
}

TEST(PropagateChain, ReluSparsityFlowsDownstream)
{
    // Random signed weights leave roughly half the accumulators
    // negative: downstream propagated streams must carry real zeros
    // (the inter-layer correlation synthetic streams cannot see).
    Network net = makePipeline();
    ActivationSynthesizer synth(net, 0x5eed);
    PropagatedChain chain = propagateChain(synth);
    const auto &c2_in = chain.inputs[2];
    double zeros = 0.0;
    for (uint16_t v : c2_in.flat())
        zeros += v == 0;
    double fraction = zeros / static_cast<double>(c2_in.size());
    EXPECT_GT(fraction, 0.05);
    EXPECT_LT(fraction, 0.95);
}

TEST(PropagateChain, DeterministicAcrossRebuilds)
{
    Network net = makeTinyNetwork(LayerSelect::All);
    ActivationSynthesizer synth(net, 0x1234);
    PropagatedChain a = propagateChain(synth);
    PropagatedChain b = propagateChain(synth);
    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (size_t i = 0; i < a.inputs.size(); i++) {
        ASSERT_EQ(a.inputs[i].size(), b.inputs[i].size());
        auto lhs = a.inputs[i].flat();
        auto rhs = b.inputs[i].flat();
        for (size_t k = 0; k < rhs.size(); k++)
            ASSERT_EQ(lhs[k], rhs[k]);
        EXPECT_EQ(a.inputScale[i], b.inputScale[i]);
    }
}

TEST(PropagateChain, TrimmedViewEqualsRawByConstruction)
{
    // Requantized codes already live inside the profiled window, so
    // Section V-F trimming removes nothing from propagated streams.
    Network net = makeTinyNetwork(LayerSelect::All);
    ActivationSynthesizer synth(net, 0x5eed);
    PropagatedChain chain = propagateChain(synth);
    for (size_t i = 0; i < net.layers.size(); i++) {
        if (!net.layers[i].priced())
            continue;
        NeuronTensor trimmed =
            trimToPrecision(net.layers[i], chain.inputs[i]);
        auto lhs = trimmed.flat();
        auto rhs = chain.inputs[i].flat();
        for (size_t k = 0; k < rhs.size(); k++)
            ASSERT_EQ(lhs[k], rhs[k]) << net.layers[i].name;
    }
}

TEST(PropagateChain, QuantizedViewPreservesZeroSkipping)
{
    Network net = makeTinyNetwork(LayerSelect::All);
    ActivationSynthesizer synth(net, 0x5eed);
    PropagatedChain chain = propagateChain(synth);
    // c2's propagated input has ReLU zeros; its quantized view must
    // keep exactly those zeros on code 0 (the zero-point nudge).
    const NeuronTensor &raw = chain.inputs[1];
    fixedpoint::QuantParams params;
    NeuronTensor codes = quantizeStream(raw, &params);
    EXPECT_EQ(params.zeroPoint, 0); // Post-ReLU: min is 0.
    auto src = raw.flat();
    auto dst = codes.flat();
    for (size_t i = 0; i < src.size(); i++) {
        if (src[i] == 0) {
            EXPECT_EQ(dst[i], 0);
        }
    }
    EXPECT_EQ(fixedpoint::dequantize(
                  fixedpoint::quantize(0.0, params), params),
              0.0);
}

TEST(PropagateChain, AlexNetRunsEndToEndThroughRealPools)
{
    // Acceptance: conv1 .. fc8 propagate through pool1/pool2/pool5.
    // Shapes must bridge exactly; every priced layer gets a stream.
    auto net = makeAlexNet(LayerSelect::All);
    ActivationSynthesizer synth(net, 0x5eed);
    PropagatedChain chain = propagateChain(synth);
    ASSERT_EQ(chain.inputs.size(), 11u);
    for (size_t i = 0; i < net.layers.size(); i++) {
        const auto &layer = net.layers[i];
        if (!layer.priced()) {
            EXPECT_TRUE(chain.inputs[i].empty()) << layer.name;
            continue;
        }
        ASSERT_FALSE(chain.inputs[i].empty()) << layer.name;
        EXPECT_EQ(chain.inputs[i].sizeX(), layer.inputX) << layer.name;
        EXPECT_EQ(chain.inputs[i].sizeY(), layer.inputY) << layer.name;
        EXPECT_EQ(chain.inputs[i].sizeI(), layer.inputChannels)
            << layer.name;
    }
    // fc6 consumes the flattened 6x6x256 pool5 output.
    EXPECT_EQ(chain.inputs[8].sizeI(), 6 * 6 * 256);
    // Downstream layers carry real ReLU sparsity.
    double zeros = 0.0;
    for (uint16_t v : chain.inputs[8].flat())
        zeros += v == 0;
    EXPECT_GT(zeros / 9216.0, 0.05);
}

TEST(PropagateChain, RejectsNonChainingNetworks)
{
    // A filtered selection misses the pools and the fc tail: the
    // forward pass cannot run and must say so loudly.
    auto net = makeAlexNet(LayerSelect::Conv);
    ActivationSynthesizer synth(net, 0x5eed);
    EXPECT_DEATH(propagateChain(synth), "shape-consistent pipeline");
}

TEST(PropagateChain, RejectsPoolFirstPipelines)
{
    // A pipeline must begin at a priced layer consuming the image;
    // a leading pool has no producer tensor to reduce.
    Network net;
    net.name = "PoolFirst";
    net.targets = {0.08, 0.18, 0.31, 0.44, 0.19};
    net.layers = {
        LayerSpec::pool("p0", 8, 8, 4, 2, 2, PoolOp::Max),
        LayerSpec::fullyConnected("f1", 4 * 4 * 4, 3, 8),
    };
    net.layers[1].ordinal = 0;
    ASSERT_TRUE(net.valid()); // Shapes chain; only propagation cares.
    ActivationSynthesizer synth(net, 0x5eed);
    EXPECT_DEATH(propagateChain(synth), "begin at a priced layer");
}

} // namespace
} // namespace dnn
} // namespace pra
