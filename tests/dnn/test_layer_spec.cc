/**
 * @file
 * Tests for layer geometry (paper Section IV-A): conv output
 * formulas with floor stride semantics, the fully-connected 1x1xI
 * lowering, and kind-aware validation.
 */

#include <gtest/gtest.h>

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"

namespace pra {
namespace dnn {
namespace {

LayerSpec
makeLayer(int in, int channels, int f, int filters, int stride, int pad)
{
    LayerSpec spec;
    spec.name = "test";
    spec.inputX = in;
    spec.inputY = in;
    spec.inputChannels = channels;
    spec.filterX = f;
    spec.filterY = f;
    spec.numFilters = filters;
    spec.stride = stride;
    spec.pad = pad;
    spec.profiledPrecision = 8;
    return spec;
}

TEST(ConvLayer, PaperOutputFormula)
{
    // Ox = (Ix - Fx)/S + 1 with no padding (Section IV-A).
    LayerSpec spec = makeLayer(227, 3, 11, 96, 4, 0);
    EXPECT_EQ(spec.outX(), 55);
    EXPECT_EQ(spec.outY(), 55);
    EXPECT_EQ(spec.windows(), 55 * 55);
}

TEST(ConvLayer, PaddedOutput)
{
    LayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    EXPECT_EQ(spec.outX(), 13);
    EXPECT_EQ(spec.outY(), 13);
}

TEST(ConvLayer, ProductCount)
{
    LayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    EXPECT_EQ(spec.synapsesPerFilter(), 3 * 3 * 256);
    EXPECT_EQ(spec.products(),
              static_cast<int64_t>(13) * 13 * 384 * 3 * 3 * 256);
}

TEST(ConvLayer, BricksPerWindowRoundsChannelsUp)
{
    LayerSpec spec = makeLayer(27, 96, 5, 256, 1, 2);
    EXPECT_EQ(spec.bricksPerWindow(), 5 * 5 * (96 / kBrickSize));
    LayerSpec odd = makeLayer(27, 3, 5, 256, 1, 2);
    EXPECT_EQ(odd.bricksPerWindow(), 5 * 5 * 1);
    LayerSpec mid = makeLayer(27, 20, 5, 256, 1, 2);
    EXPECT_EQ(mid.bricksPerWindow(), 5 * 5 * 2);
}

TEST(ConvLayer, InputNeuronCount)
{
    LayerSpec spec = makeLayer(6, 1024, 3, 1024, 1, 1);
    EXPECT_EQ(spec.inputNeurons(), 6 * 6 * 1024);
}

TEST(ConvLayer, PrecisionWindowAnchoring)
{
    LayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    spec.profiledPrecision = 9;
    auto w = spec.precisionWindow(2);
    EXPECT_EQ(w.lsb, 2);
    EXPECT_EQ(w.msb, 10);
    EXPECT_EQ(w.bits(), 9);
}

TEST(ConvLayer, PrecisionWindowClampsAtTop)
{
    LayerSpec spec = makeLayer(13, 256, 3, 384, 1, 1);
    spec.profiledPrecision = 16;
    auto w = spec.precisionWindow(4);
    EXPECT_EQ(w.msb, 15);
    EXPECT_TRUE(w.valid());
}

TEST(ConvLayer, ValidityChecks)
{
    EXPECT_TRUE(makeLayer(13, 256, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(0, 256, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 0, 3, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 0, 384, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 0, 1, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 384, 0, 1).valid());
    EXPECT_FALSE(makeLayer(13, 256, 3, 384, 1, -1).valid());
    // Filter larger than padded input.
    EXPECT_FALSE(makeLayer(3, 8, 7, 16, 1, 1).valid());
    // Bad precision.
    LayerSpec bad = makeLayer(13, 256, 3, 384, 1, 1);
    bad.profiledPrecision = 0;
    EXPECT_FALSE(bad.valid());
    bad.profiledPrecision = 17;
    EXPECT_FALSE(bad.valid());
}

TEST(ConvLayer, FilterFitIsCheckedPerAxisSymmetrically)
{
    // X fits, Y does not: must be rejected (the historical check
    // covered X only via a dead clause).
    LayerSpec tall = makeLayer(13, 8, 3, 16, 1, 0);
    tall.filterY = 15;
    EXPECT_FALSE(tall.valid());
    // Y fits, X does not.
    LayerSpec wide = makeLayer(13, 8, 3, 16, 1, 0);
    wide.filterX = 15;
    EXPECT_FALSE(wide.valid());
    // Padding can make either fit again.
    tall.pad = 1;
    EXPECT_TRUE(tall.valid());
}

TEST(ConvLayer, NonTilingStrideUsesFloorSemantics)
{
    // VGG-M conv2: floor((54 + 2*1 - 5) / 2) + 1 = 26 — the stride
    // does not tile the padded input and the layer is still valid
    // (trailing positions are dropped).
    LayerSpec spec = makeLayer(54, 96, 5, 256, 2, 1);
    EXPECT_EQ((spec.inputX + 2 * spec.pad - spec.filterX) % spec.stride,
              1);
    EXPECT_TRUE(spec.valid());
    EXPECT_EQ(spec.outX(), 26);
    EXPECT_EQ(spec.outY(), 26);

    // Degenerate single-window case: filter exactly covers the
    // padded input regardless of stride.
    LayerSpec one = makeLayer(7, 16, 7, 8, 3, 0);
    EXPECT_TRUE(one.valid());
    EXPECT_EQ(one.outX(), 1);
    EXPECT_EQ(one.windows(), 1);
}

TEST(FullyConnected, FactoryBuildsCanonicalLowering)
{
    LayerSpec spec = LayerSpec::fullyConnected("fc6", 9216, 4096, 10);
    EXPECT_EQ(spec.kind, LayerKind::FullyConnected);
    EXPECT_TRUE(spec.valid());
    EXPECT_EQ(spec.inputX, 1);
    EXPECT_EQ(spec.inputY, 1);
    EXPECT_EQ(spec.inputChannels, 9216);
    EXPECT_EQ(spec.filterX, 1);
    EXPECT_EQ(spec.filterY, 1);
    EXPECT_EQ(spec.numFilters, 4096);
    EXPECT_EQ(spec.profiledPrecision, 10);
    // One window; every output neuron consumes all inputs once.
    EXPECT_EQ(spec.windows(), 1);
    EXPECT_EQ(spec.outX(), 1);
    EXPECT_EQ(spec.outY(), 1);
    EXPECT_EQ(spec.synapsesPerFilter(), 9216);
    EXPECT_EQ(spec.synapses(), static_cast<int64_t>(9216) * 4096);
    EXPECT_EQ(spec.products(), spec.synapses());
    EXPECT_EQ(spec.bricksPerWindow(), (9216 + kBrickSize - 1) /
                                          kBrickSize);
    EXPECT_EQ(spec.inputNeurons(), 9216);
}

TEST(FullyConnected, MatchesOneByOneConvTwinExactly)
{
    LayerSpec fc = LayerSpec::fullyConnected("twin", 800, 64, 8);
    LayerSpec twin = makeLayer(1, 800, 1, 64, 1, 0);
    twin.name = "twin";
    ASSERT_TRUE(twin.valid());
    EXPECT_EQ(fc.products(), twin.products());
    EXPECT_EQ(fc.windows(), twin.windows());
    EXPECT_EQ(fc.bricksPerWindow(), twin.bricksPerWindow());
    EXPECT_EQ(fc.synapsesPerFilter(), twin.synapsesPerFilter());
    EXPECT_EQ(fc.inputNeurons(), twin.inputNeurons());
}

TEST(FullyConnected, RejectsNonCanonicalForms)
{
    LayerSpec spec = LayerSpec::fullyConnected("fc", 128, 32, 8);
    ASSERT_TRUE(spec.valid());
    LayerSpec bad = spec;
    bad.inputX = 2;
    EXPECT_FALSE(bad.valid());
    bad = spec;
    bad.filterY = 2;
    bad.inputY = 2; // Filter still fits; the kind check must reject.
    EXPECT_FALSE(bad.valid());
    bad = spec;
    bad.stride = 2;
    EXPECT_FALSE(bad.valid());
    bad = spec;
    bad.pad = 1;
    EXPECT_FALSE(bad.valid());
    bad = spec;
    bad.inputChannels = 0;
    EXPECT_FALSE(bad.valid());
}

TEST(LayerKind, NamesAndSelection)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv), "conv");
    EXPECT_STREQ(layerKindName(LayerKind::FullyConnected), "fc");
    EXPECT_TRUE(layerSelected(LayerKind::Conv, LayerSelect::Conv));
    EXPECT_FALSE(layerSelected(LayerKind::FullyConnected,
                               LayerSelect::Conv));
    EXPECT_FALSE(layerSelected(LayerKind::Conv, LayerSelect::Fc));
    EXPECT_TRUE(layerSelected(LayerKind::FullyConnected,
                              LayerSelect::Fc));
    EXPECT_TRUE(layerSelected(LayerKind::Conv, LayerSelect::All));
    EXPECT_TRUE(layerSelected(LayerKind::FullyConnected,
                              LayerSelect::All));
}

/** Geometry identity sweep: windows * stride relation. */
class StrideSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(StrideSweep, OutputFitsInput)
{
    int stride = GetParam();
    LayerSpec spec = makeLayer(32, 16, 3, 8, stride, 0);
    ASSERT_TRUE(spec.valid());
    // Last window must not read past the input.
    int last_start = (spec.outX() - 1) * stride;
    EXPECT_LE(last_start + spec.filterX, spec.inputX);
    // One more window would overflow.
    EXPECT_GT(last_start + stride + spec.filterX, spec.inputX);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace dnn
} // namespace pra
