/**
 * @file
 * Tests pinning the model zoo against the paper's Tables I and II.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"

namespace pra {
namespace dnn {
namespace {

TEST(ModelZoo, SixNetworksInPaperOrder)
{
    auto nets = makeAllNetworks();
    ASSERT_EQ(nets.size(), 6u);
    EXPECT_EQ(nets[0].name, "AlexNet");
    EXPECT_EQ(nets[1].name, "NiN");
    EXPECT_EQ(nets[2].name, "GoogLeNet");
    EXPECT_EQ(nets[3].name, "VGG_M");
    EXPECT_EQ(nets[4].name, "VGG_S");
    EXPECT_EQ(nets[5].name, "VGG_19");
}

TEST(ModelZoo, AllNetworksValid)
{
    for (const auto &net : makeAllNetworks()) {
        EXPECT_TRUE(net.valid()) << net.name;
        EXPECT_GT(net.totalProducts(), 0) << net.name;
    }
}

TEST(ModelZoo, LayerCountsMatchTableII)
{
    EXPECT_EQ(makeAlexNet().layers.size(), 5u);
    EXPECT_EQ(makeNiN().layers.size(), 12u);
    EXPECT_EQ(makeVggM().layers.size(), 5u);
    EXPECT_EQ(makeVggS().layers.size(), 5u);
    EXPECT_EQ(makeVgg19().layers.size(), 16u);
    // GoogLeNet: stem conv + 2 conv2 layers + 9 inceptions x 6 convs.
    EXPECT_EQ(makeGoogLeNet().layers.size(), 3u + 9u * 6u);
}

TEST(ModelZoo, AlexNetPrecisionProfile)
{
    auto net = makeAlexNet();
    const int expected[5] = {9, 8, 5, 5, 7};
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, NiNPrecisionProfile)
{
    auto net = makeNiN();
    const int expected[12] = {8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8};
    for (int i = 0; i < 12; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, Vgg19PrecisionProfile)
{
    auto net = makeVgg19();
    const int expected[16] = {12, 12, 12, 11, 12, 10, 11, 11,
                              13, 12, 13, 13, 13, 13, 13, 13};
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, AlexNetGeometry)
{
    auto net = makeAlexNet();
    EXPECT_EQ(net.layers[0].outX(), 55);
    EXPECT_EQ(net.layers[1].outX(), 27);
    EXPECT_EQ(net.layers[2].outX(), 13);
    // Known AlexNet conv MAC counts (within the conventional figures).
    EXPECT_NEAR(static_cast<double>(net.layers[0].products()),
                105e6, 2e6);
    EXPECT_NEAR(static_cast<double>(net.layers[1].products()),
                448e6, 3e6);
}

TEST(ModelZoo, TableITargetsStored)
{
    auto alex = makeAlexNet();
    EXPECT_DOUBLE_EQ(alex.targets.all16, 0.078);
    EXPECT_DOUBLE_EQ(alex.targets.nz16, 0.181);
    EXPECT_DOUBLE_EQ(alex.targets.all8, 0.314);
    EXPECT_DOUBLE_EQ(alex.targets.nz8, 0.443);
    EXPECT_DOUBLE_EQ(alex.targets.softwareBenefit, 0.23);
    auto vgg19 = makeVgg19();
    EXPECT_DOUBLE_EQ(vgg19.targets.all16, 0.127);
    EXPECT_DOUBLE_EQ(vgg19.targets.nz16, 0.242);
}

TEST(ModelZoo, ImpliedZeroFractionsAreSane)
{
    for (const auto &net : makeAllNetworks()) {
        double z16 = net.targets.zeroFraction16();
        double z8 = net.targets.zeroFraction8();
        EXPECT_GT(z16, 0.0) << net.name;
        EXPECT_LT(z16, 1.0) << net.name;
        EXPECT_GT(z8, 0.0) << net.name;
        EXPECT_LT(z8, 1.0) << net.name;
    }
}

TEST(ModelZoo, GoogLeNetInceptionShapesChain)
{
    auto net = makeGoogLeNet();
    // Each inception 3x3 conv consumes the 3x3_reduce output count.
    for (size_t i = 0; i + 1 < net.layers.size(); i++) {
        const auto &layer = net.layers[i];
        if (layer.name.find("3x3_reduce") != std::string::npos) {
            const auto &next = net.layers[i + 1];
            EXPECT_EQ(next.inputChannels, layer.numFilters)
                << layer.name;
        }
    }
}

TEST(ModelZoo, LookupByNameAndAliases)
{
    EXPECT_EQ(makeNetworkByName("alexnet").name, "AlexNet");
    EXPECT_EQ(makeNetworkByName("AlexNet").name, "AlexNet");
    EXPECT_EQ(makeNetworkByName("VGG_19").name, "VGG_19");
    EXPECT_EQ(makeNetworkByName("google").name, "GoogLeNet");
    EXPECT_EQ(makeNetworkByName("tiny").name, "Tiny");
    EXPECT_EQ(networkNames().size(), 6u);
}

TEST(ModelZoo, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeNetworkByName("resnet"), "unknown network");
}

TEST(ModelZoo, TinyNetworkIsSmallAndValid)
{
    auto net = makeTinyNetwork();
    EXPECT_TRUE(net.valid());
    EXPECT_LT(net.totalProducts(), 10'000'000);
}

} // namespace
} // namespace dnn
} // namespace pra
