/**
 * @file
 * Tests pinning the model zoo against the paper's Tables I and II.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"

namespace pra {
namespace dnn {
namespace {

TEST(ModelZoo, SixNetworksInPaperOrder)
{
    auto nets = makeAllNetworks();
    ASSERT_EQ(nets.size(), 6u);
    EXPECT_EQ(nets[0].name, "AlexNet");
    EXPECT_EQ(nets[1].name, "NiN");
    EXPECT_EQ(nets[2].name, "GoogLeNet");
    EXPECT_EQ(nets[3].name, "VGG_M");
    EXPECT_EQ(nets[4].name, "VGG_S");
    EXPECT_EQ(nets[5].name, "VGG_19");
}

TEST(ModelZoo, AllNetworksValid)
{
    for (const auto &net : makeAllNetworks()) {
        EXPECT_TRUE(net.valid()) << net.name;
        EXPECT_GT(net.totalProducts(), 0) << net.name;
    }
}

TEST(ModelZoo, LayerCountsMatchTableII)
{
    EXPECT_EQ(makeAlexNet().layers.size(), 5u);
    EXPECT_EQ(makeNiN().layers.size(), 12u);
    EXPECT_EQ(makeVggM().layers.size(), 5u);
    EXPECT_EQ(makeVggS().layers.size(), 5u);
    EXPECT_EQ(makeVgg19().layers.size(), 16u);
    // GoogLeNet: stem conv + 2 conv2 layers + 9 inceptions x 6 convs.
    EXPECT_EQ(makeGoogLeNet().layers.size(), 3u + 9u * 6u);
}

TEST(ModelZoo, AlexNetPrecisionProfile)
{
    auto net = makeAlexNet();
    const int expected[5] = {9, 8, 5, 5, 7};
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, NiNPrecisionProfile)
{
    auto net = makeNiN();
    const int expected[12] = {8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8};
    for (int i = 0; i < 12; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, Vgg19PrecisionProfile)
{
    auto net = makeVgg19();
    const int expected[16] = {12, 12, 12, 11, 12, 10, 11, 11,
                              13, 12, 13, 13, 13, 13, 13, 13};
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(net.layers[i].profiledPrecision, expected[i]);
}

TEST(ModelZoo, AlexNetGeometry)
{
    auto net = makeAlexNet();
    EXPECT_EQ(net.layers[0].outX(), 55);
    EXPECT_EQ(net.layers[1].outX(), 27);
    EXPECT_EQ(net.layers[2].outX(), 13);
    // Known AlexNet conv MAC counts (within the conventional figures).
    EXPECT_NEAR(static_cast<double>(net.layers[0].products()),
                105e6, 2e6);
    EXPECT_NEAR(static_cast<double>(net.layers[1].products()),
                448e6, 3e6);
}

TEST(ModelZoo, TableITargetsStored)
{
    auto alex = makeAlexNet();
    EXPECT_DOUBLE_EQ(alex.targets.all16, 0.078);
    EXPECT_DOUBLE_EQ(alex.targets.nz16, 0.181);
    EXPECT_DOUBLE_EQ(alex.targets.all8, 0.314);
    EXPECT_DOUBLE_EQ(alex.targets.nz8, 0.443);
    EXPECT_DOUBLE_EQ(alex.targets.softwareBenefit, 0.23);
    auto vgg19 = makeVgg19();
    EXPECT_DOUBLE_EQ(vgg19.targets.all16, 0.127);
    EXPECT_DOUBLE_EQ(vgg19.targets.nz16, 0.242);
}

TEST(ModelZoo, ImpliedZeroFractionsAreSane)
{
    for (const auto &net : makeAllNetworks()) {
        double z16 = net.targets.zeroFraction16();
        double z8 = net.targets.zeroFraction8();
        EXPECT_GT(z16, 0.0) << net.name;
        EXPECT_LT(z16, 1.0) << net.name;
        EXPECT_GT(z8, 0.0) << net.name;
        EXPECT_LT(z8, 1.0) << net.name;
    }
}

TEST(ModelZoo, GoogLeNetInceptionShapesChain)
{
    auto net = makeGoogLeNet();
    // Each inception 3x3 conv consumes the 3x3_reduce output count.
    for (size_t i = 0; i + 1 < net.layers.size(); i++) {
        const auto &layer = net.layers[i];
        if (layer.name.find("3x3_reduce") != std::string::npos) {
            const auto &next = net.layers[i + 1];
            EXPECT_EQ(next.inputChannels, layer.numFilters)
                << layer.name;
        }
    }
}

TEST(ModelZoo, LookupByNameAndAliases)
{
    EXPECT_EQ(makeNetworkByName("alexnet").name, "AlexNet");
    EXPECT_EQ(makeNetworkByName("AlexNet").name, "AlexNet");
    EXPECT_EQ(makeNetworkByName("VGG_19").name, "VGG_19");
    EXPECT_EQ(makeNetworkByName("google").name, "GoogLeNet");
    EXPECT_EQ(makeNetworkByName("tiny").name, "Tiny");
    EXPECT_EQ(networkNames().size(), 6u);
}

TEST(ModelZoo, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeNetworkByName("resnet"), "unknown network");
}

TEST(ModelZoo, TinyNetworkIsSmallAndValid)
{
    auto net = makeTinyNetwork();
    EXPECT_TRUE(net.valid());
    EXPECT_LT(net.totalProducts(), 10'000'000);
}

TEST(ModelZoo, DefaultSelectionIsConvOnly)
{
    // The historical conv-only workload must be byte-identical: the
    // default selection and an explicit Conv selection agree, and
    // neither contains an FC layer.
    for (const auto &net : makeAllNetworks()) {
        EXPECT_EQ(net.countLayers(LayerKind::FullyConnected), 0)
            << net.name;
    }
    auto imp = makeAlexNet();
    auto exp = makeAlexNet(LayerSelect::Conv);
    ASSERT_EQ(imp.layers.size(), exp.layers.size());
    for (size_t i = 0; i < imp.layers.size(); i++)
        EXPECT_EQ(imp.layers[i].name, exp.layers[i].name);
}

TEST(ModelZoo, FcTailLayerCounts)
{
    // AlexNet and the VGGs gain their three-layer FC tails plus
    // their interstitial pools; NiN and GoogLeNet use global pooling
    // instead of an FC tail (NiN: 3 interstitial + 1 global pool;
    // GoogLeNet: stem pool1/pool2, one 3x3/1 pool inside each of the
    // 9 inception modules, pool3/pool4 between module groups, and
    // the terminal global average pool).
    EXPECT_EQ(makeAlexNet(LayerSelect::All).layers.size(), 11u);
    EXPECT_EQ(makeVggM(LayerSelect::All).layers.size(), 11u);
    EXPECT_EQ(makeVggS(LayerSelect::All).layers.size(), 11u);
    EXPECT_EQ(makeVgg19(LayerSelect::All).layers.size(), 24u);
    EXPECT_EQ(makeNiN(LayerSelect::All).layers.size(), 16u);
    EXPECT_EQ(makeGoogLeNet(LayerSelect::All).layers.size(),
              3u + 9u * 7u + 2u + 2u + 1u);
    EXPECT_EQ(makeTinyNetwork(LayerSelect::All).layers.size(), 4u);

    EXPECT_EQ(makeAlexNet(LayerSelect::Fc).layers.size(), 3u);
    // Global-pooling networks contribute nothing under Fc.
    EXPECT_TRUE(makeNiN(LayerSelect::Fc).layers.empty());
    EXPECT_TRUE(makeGoogLeNet(LayerSelect::Fc).layers.empty());
}

TEST(ModelZoo, FcSelectionSkipsGlobalPoolingNetworks)
{
    // makeAllNetworks(Fc) must not hand out empty workloads: NiN and
    // GoogLeNet are skipped, the four FC-tailed networks remain.
    auto nets = makeAllNetworks(LayerSelect::Fc);
    ASSERT_EQ(nets.size(), 4u);
    EXPECT_EQ(nets[0].name, "AlexNet");
    EXPECT_EQ(nets[1].name, "VGG_M");
    EXPECT_EQ(nets[2].name, "VGG_S");
    EXPECT_EQ(nets[3].name, "VGG_19");
    for (const auto &net : nets) {
        EXPECT_TRUE(net.valid()) << net.name;
        EXPECT_EQ(net.countLayers(LayerKind::Conv), 0) << net.name;
    }
    // Conv and All keep all six.
    EXPECT_EQ(makeAllNetworks(LayerSelect::Conv).size(), 6u);
    EXPECT_EQ(makeAllNetworks(LayerSelect::All).size(), 6u);
}

TEST(ModelZoo, FcSelectionOfPoolingNetworkByNameIsFatal)
{
    EXPECT_DEATH(makeNetworkByName("nin", LayerSelect::Fc),
                 "no layers under the requested");
    EXPECT_DEATH(makeNetworkByName("googlenet", LayerSelect::Fc),
                 "no layers under the requested");
}

TEST(ModelZoo, FcParameterCountsMatchPublishedDefinitions)
{
    // Published AlexNet FC shapes: fc6 9216 -> 4096, fc7 4096 ->
    // 4096, fc8 4096 -> 1000. For an FC layer products() ==
    // synapses() == the parameter count.
    auto alex = makeAlexNet(LayerSelect::Fc);
    ASSERT_EQ(alex.layers.size(), 3u);
    EXPECT_EQ(alex.layers[0].name, "fc6");
    EXPECT_EQ(alex.layers[0].synapses(), 9216LL * 4096);
    EXPECT_EQ(alex.layers[1].synapses(), 4096LL * 4096);
    EXPECT_EQ(alex.layers[2].synapses(), 4096LL * 1000);
    for (const auto &layer : alex.layers) {
        EXPECT_EQ(layer.kind, LayerKind::FullyConnected) << layer.name;
        EXPECT_EQ(layer.products(), layer.synapses()) << layer.name;
    }

    // VGG-M/S: fc6 consumes the 6x6x512 pool5 output; VGG-19 the
    // 7x7x512 one.
    EXPECT_EQ(makeVggM(LayerSelect::Fc).layers[0].synapses(),
              18432LL * 4096);
    EXPECT_EQ(makeVggS(LayerSelect::Fc).layers[0].synapses(),
              18432LL * 4096);
    auto vgg19 = makeVgg19(LayerSelect::Fc);
    EXPECT_EQ(vgg19.layers[0].synapses(), 25088LL * 4096);
    EXPECT_EQ(vgg19.layers[1].synapses(), 4096LL * 4096);
    EXPECT_EQ(vgg19.layers[2].synapses(), 4096LL * 1000);

    // AlexNet's FC tail dominates its parameter budget (~58.6M vs
    // ~3.7M conv) — the motivation for pricing FC at all.
    int64_t fc_params = 0;
    for (const auto &layer : alex.layers)
        fc_params += layer.synapses();
    EXPECT_EQ(fc_params, 9216LL * 4096 + 4096LL * 4096 + 4096LL * 1000);
    int64_t conv_params = 0;
    for (const auto &layer : makeAlexNet(LayerSelect::Conv).layers)
        conv_params += layer.synapses();
    EXPECT_GT(fc_params, 10 * conv_params);
}

TEST(ModelZoo, FcSelectionsAreValidNetworks)
{
    for (auto select : {LayerSelect::Fc, LayerSelect::All}) {
        for (const auto &net : makeAllNetworks(select)) {
            EXPECT_TRUE(net.valid()) << net.name;
            EXPECT_GT(net.totalProducts(), 0) << net.name;
        }
    }
    // All == Conv + Fc, in execution order with the FC tail last.
    auto all = makeAlexNet(LayerSelect::All);
    EXPECT_EQ(all.countLayers(LayerKind::Conv), 5);
    EXPECT_EQ(all.countLayers(LayerKind::FullyConnected), 3);
    EXPECT_EQ(all.layers.front().name, "conv1");
    EXPECT_EQ(all.layers.back().name, "fc8");
}

TEST(ModelZoo, ParseLayerSelect)
{
    EXPECT_EQ(parseLayerSelect("conv"), LayerSelect::Conv);
    EXPECT_EQ(parseLayerSelect("fc"), LayerSelect::Fc);
    EXPECT_EQ(parseLayerSelect("all"), LayerSelect::All);
}

TEST(ModelZoo, ParseLayerSelectRejectsUnknown)
{
    EXPECT_DEATH(parseLayerSelect("convs"), "conv, fc or all");
}

TEST(ModelZoo, AllSelectionsArePoolBridgedPipelines)
{
    // Satellite: propagated shapes must chain. Every network's All
    // selection — pools included — must be a shape-consistent
    // pipeline end to end (each layer's input is its producers'
    // output, FC flattening included).
    for (const auto &net : makeAllNetworks(LayerSelect::All)) {
        std::string why;
        EXPECT_TRUE(net.chainConsistent(&why)) << net.name << ": "
                                               << why;
        EXPECT_GT(net.countLayers(LayerKind::Pool), 0) << net.name;
    }
    auto tiny = makeTinyNetwork(LayerSelect::All);
    std::string why;
    EXPECT_TRUE(tiny.chainConsistent(&why)) << why;
}

TEST(ModelZoo, PoolShapesBridgeThePublishedGeometry)
{
    // AlexNet pool5: 13x13x256 -> the 6x6x256 fc6 consumes.
    auto alex = makeAlexNet(LayerSelect::All);
    const auto &pool5 = alex.layers[7];
    ASSERT_EQ(pool5.name, "pool5");
    EXPECT_EQ(pool5.kind, LayerKind::Pool);
    EXPECT_EQ(pool5.outX(), 6);
    EXPECT_EQ(pool5.outY(), 6);
    EXPECT_EQ(pool5.outChannels(), 256);

    // The published networks mix pooling-rounding conventions:
    // GoogLeNet pool1 needs ceil (112 -> 56), VGG-M pool2 needs ceil
    // (26 -> 13), while VGG-S pool1 needs floor (109/3 -> 36) and
    // its pool5 ceil (17/3 -> 6).
    auto google = makeGoogLeNet(LayerSelect::All);
    ASSERT_EQ(google.layers[1].name, "pool1/3x3_s2");
    EXPECT_EQ(google.layers[1].outX(), 56);
    auto vggm = makeVggM(LayerSelect::All);
    ASSERT_EQ(vggm.layers[3].name, "pool2");
    EXPECT_EQ(vggm.layers[3].outX(), 13);
    auto vggs = makeVggS(LayerSelect::All);
    ASSERT_EQ(vggs.layers[1].name, "pool1");
    EXPECT_EQ(vggs.layers[1].outX(), 36);
    ASSERT_EQ(vggs.layers[7].name, "pool5");
    EXPECT_EQ(vggs.layers[7].outX(), 6);

    // NiN and GoogLeNet end in global pooling: one spatial output.
    auto nin = makeNiN(LayerSelect::All);
    const auto &nin_tail = nin.layers.back();
    EXPECT_EQ(nin_tail.kind, LayerKind::Pool);
    EXPECT_EQ(nin_tail.poolOp, PoolOp::Avg);
    EXPECT_EQ(nin_tail.outX(), 1);
    EXPECT_EQ(nin_tail.outY(), 1);
    const auto &google_tail = google.layers.back();
    EXPECT_EQ(google_tail.kind, LayerKind::Pool);
    EXPECT_EQ(google_tail.poolOp, PoolOp::Avg);
    EXPECT_EQ(google_tail.outX(), 1);
    EXPECT_EQ(google_tail.outChannels(), 1024);
}

TEST(ModelZoo, PoolsNeverReshuffleThePricedStreams)
{
    // Priced-layer ordinals ignore pools, so conv/fc streams are
    // invariant to the structural pool layers: conv-only lists are
    // unchanged and All-selection ordinals match them layer by
    // layer.
    auto conv_only = makeAlexNet(LayerSelect::Conv);
    ASSERT_EQ(conv_only.layers.size(), 5u);
    for (size_t i = 0; i < conv_only.layers.size(); i++)
        EXPECT_EQ(conv_only.layers[i].ordinal,
                  static_cast<int>(i));
    auto all = makeAlexNet(LayerSelect::All);
    int expected = 0;
    for (const auto &layer : all.layers) {
        if (!layer.priced()) {
            EXPECT_EQ(layer.ordinal, -1) << layer.name;
            continue;
        }
        EXPECT_EQ(layer.ordinal, expected++) << layer.name;
    }
    EXPECT_EQ(expected, 8);
}

TEST(ModelZoo, ChainCheckCatchesShapeBreaks)
{
    // The gate: a network with a pool (pipeline-shaped) whose shapes
    // do not chain must fail valid(); the same broken geometry
    // without pools/producers is exempt (synthetic workloads price
    // layers independently — the conv-only zoo relies on that).
    Network broken = makeTinyNetwork(LayerSelect::All);
    broken.layers[3] =
        LayerSpec::fullyConnected("fc1", 999, 16, 7); // Wrong width.
    broken.layers[3].ordinal = 2;
    EXPECT_FALSE(broken.chainConsistent());
    EXPECT_FALSE(broken.valid());

    Network exempt = makeAlexNet(LayerSelect::Conv); // Gaps, no pools.
    EXPECT_FALSE(exempt.chainConsistent());
    EXPECT_TRUE(exempt.valid());
}

TEST(ModelZoo, LookupByNameForwardsSelection)
{
    EXPECT_EQ(makeNetworkByName("alexnet", LayerSelect::All)
                  .layers.size(),
              11u);
    EXPECT_EQ(makeNetworkByName("tiny", LayerSelect::Fc)
                  .layers.size(),
              1u);
}

} // namespace
} // namespace dnn
} // namespace pra
