/**
 * @file
 * Tests for the golden reference convolution.
 */

#include <gtest/gtest.h>

#include "dnn/activation_synth.h"
#include "dnn/model_zoo.h"
#include "dnn/reference.h"

namespace pra {
namespace dnn {
namespace {

LayerSpec
smallLayer()
{
    LayerSpec spec;
    spec.name = "small";
    spec.inputX = 4;
    spec.inputY = 4;
    spec.inputChannels = 2;
    spec.filterX = 2;
    spec.filterY = 2;
    spec.numFilters = 2;
    spec.stride = 1;
    spec.pad = 0;
    spec.profiledPrecision = 8;
    return spec;
}

TEST(Reference, HandComputedOnesFilter)
{
    LayerSpec spec = smallLayer();
    NeuronTensor input(4, 4, 2);
    int v = 1;
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 4; x++)
            for (int i = 0; i < 2; i++)
                input.at(x, y, i) = static_cast<uint16_t>(v++);
    FilterTensor ones(2, 2, 2);
    for (auto &w : ones.flat())
        w = 1;
    std::vector<FilterTensor> filters = {ones, ones};
    auto out = referenceConvolution(spec, input, filters);
    // Window (0,0): neurons 1..4 (x0y0), 5..8? Layout: value order is
    // (y, x, i); window covers (0,0),(1,0),(0,1),(1,1) both channels:
    // 1+2 + 3+4 + 9+10 + 11+12 = 52.
    EXPECT_EQ(out.at(0, 0, 0), 52);
    EXPECT_EQ(out.at(0, 0, 1), 52); // Same filter content.
}

TEST(Reference, StrideSkipsWindows)
{
    LayerSpec spec = smallLayer();
    spec.stride = 2;
    NeuronTensor input(4, 4, 2);
    input.at(0, 0, 0) = 7;
    input.at(2, 0, 0) = 3;
    FilterTensor probe(2, 2, 2);
    probe.at(0, 0, 0) = 1;
    std::vector<FilterTensor> filters = {probe, probe};
    auto out = referenceConvolution(spec, input, filters);
    EXPECT_EQ(out.sizeX(), 2);
    EXPECT_EQ(out.at(0, 0, 0), 7);
    EXPECT_EQ(out.at(1, 0, 0), 3); // Window at x==2.
}

TEST(Reference, PaddingReadsZero)
{
    LayerSpec spec = smallLayer();
    spec.pad = 1;
    NeuronTensor input(4, 4, 2);
    input.at(0, 0, 0) = 5;
    FilterTensor probe(2, 2, 2);
    for (auto &w : probe.flat())
        w = 1;
    std::vector<FilterTensor> filters = {probe, probe};
    auto out = referenceConvolution(spec, input, filters);
    EXPECT_EQ(out.sizeX(), 5);
    // Top-left padded window sees only input (0,0).
    EXPECT_EQ(out.at(0, 0, 0), 5);
}

TEST(Reference, NegativeWeights)
{
    LayerSpec spec = smallLayer();
    NeuronTensor input(4, 4, 2);
    input.at(0, 0, 0) = 10;
    input.at(1, 0, 0) = 4;
    FilterTensor f(2, 2, 2);
    f.at(0, 0, 0) = -3;
    f.at(1, 0, 0) = 2;
    std::vector<FilterTensor> filters = {f, f};
    auto out = referenceConvolution(spec, input, filters);
    EXPECT_EQ(out.at(0, 0, 0), -30 + 8);
}

TEST(Reference, WindowDotMatchesFullConvolution)
{
    auto net = makeTinyNetwork();
    ActivationSynthesizer synth(net);
    const auto &spec = net.layers[0];
    auto input = synth.synthesizeFixed16(0);
    auto filters = synthesizeFilters(spec);
    auto out = referenceConvolution(spec, input, filters);
    for (int f = 0; f < spec.numFilters; f += 7) {
        for (int wy = 0; wy < spec.outY(); wy += 3) {
            for (int wx = 0; wx < spec.outX(); wx += 3) {
                EXPECT_EQ(out.at(wx, wy, f),
                          referenceWindowDot(spec, input, filters[f],
                                             wx, wy));
            }
        }
    }
}

TEST(Reference, ShapeMismatchPanics)
{
    LayerSpec spec = smallLayer();
    NeuronTensor wrong(3, 4, 2);
    std::vector<FilterTensor> filters(2, FilterTensor(2, 2, 2));
    EXPECT_DEATH(referenceConvolution(spec, wrong, filters),
                 "shape mismatch");
    NeuronTensor input(4, 4, 2);
    std::vector<FilterTensor> too_few(1, FilterTensor(2, 2, 2));
    EXPECT_DEATH(referenceConvolution(spec, input, too_few),
                 "filter count");
}

} // namespace
} // namespace dnn
} // namespace pra
