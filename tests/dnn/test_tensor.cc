/**
 * @file
 * Tests for the channel-major 3D tensor.
 */

#include <gtest/gtest.h>

#include "dnn/tensor.h"

namespace pra {
namespace dnn {
namespace {

TEST(Tensor3D, ZeroInitialized)
{
    NeuronTensor t(3, 4, 5);
    EXPECT_EQ(t.size(), 60u);
    for (uint16_t v : t.flat())
        EXPECT_EQ(v, 0);
}

TEST(Tensor3D, ReadWriteRoundTrip)
{
    NeuronTensor t(4, 3, 8);
    t.at(1, 2, 3) = 77;
    t.at(0, 0, 0) = 1;
    t.at(3, 2, 7) = 0xffff;
    EXPECT_EQ(t.at(1, 2, 3), 77);
    EXPECT_EQ(t.at(0, 0, 0), 1);
    EXPECT_EQ(t.at(3, 2, 7), 0xffff);
}

TEST(Tensor3D, ChannelMajorLayout)
{
    // Bricks along i must be contiguous in memory.
    NeuronTensor t(2, 2, 4);
    for (int i = 0; i < 4; i++)
        t.at(1, 0, i) = static_cast<uint16_t>(10 + i);
    auto flat = t.flat();
    // (x=1, y=0) starts at (0*2+1)*4 == 4.
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(flat[4 + i], 10 + i);
}

TEST(Tensor3D, PaddedReadsReturnZero)
{
    NeuronTensor t(2, 2, 2);
    t.at(0, 0, 0) = 5;
    EXPECT_EQ(t.atPadded(-1, 0, 0), 0);
    EXPECT_EQ(t.atPadded(0, -1, 0), 0);
    EXPECT_EQ(t.atPadded(2, 0, 0), 0);
    EXPECT_EQ(t.atPadded(0, 2, 1), 0);
    EXPECT_EQ(t.atPadded(0, 0, 0), 5);
}

TEST(Tensor3D, BrickSpansChannelRun)
{
    NeuronTensor t(1, 1, 40);
    for (int i = 0; i < 40; i++)
        t.at(0, 0, i) = static_cast<uint16_t>(i);
    auto brick = t.brick(0, 0, 16);
    ASSERT_EQ(brick.size(), 16u);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(brick[i], 16 + i);
}

TEST(Tensor3D, BrickShortAtChannelEdge)
{
    NeuronTensor t(1, 1, 20);
    auto brick = t.brick(0, 0, 16);
    EXPECT_EQ(brick.size(), 4u);
}

TEST(Tensor3D, OutOfRangePanics)
{
    NeuronTensor t(2, 2, 2);
    EXPECT_DEATH(t.at(2, 0, 0), "out of range");
    EXPECT_DEATH(t.at(0, 0, 2), "out of range");
}

TEST(Tensor3D, FilterTensorIsSigned)
{
    FilterTensor f(1, 1, 2);
    f.at(0, 0, 0) = -42;
    EXPECT_EQ(f.at(0, 0, 0), -42);
}

} // namespace
} // namespace dnn
} // namespace pra
