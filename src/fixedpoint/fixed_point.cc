#include "fixedpoint/fixed_point.h"

#include <bit>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace fixedpoint {

int
essentialBits(uint16_t value)
{
    return std::popcount(value);
}

int
msbPosition(uint16_t value)
{
    if (value == 0)
        return -1;
    return 15 - std::countl_zero(value);
}

int
lsbPosition(uint16_t value)
{
    if (value == 0)
        return -1;
    return std::countr_zero(value);
}

int
significantBits(uint16_t value)
{
    return msbPosition(value) + 1;
}

int
dynamicPrecision(uint16_t mask, bool leading_bit_only)
{
    if (mask == 0)
        return 0;
    if (leading_bit_only)
        return msbPosition(mask) + 1;
    return msbPosition(mask) - lsbPosition(mask) + 1;
}

double
essentialBitFraction(std::span<const uint16_t> values, int width)
{
    PRA_CHECK(width > 0 && width <= 16,
                         "essentialBitFraction: bad width");
    if (values.empty())
        return 0.0;
    uint64_t set_bits = 0;
    for (uint16_t v : values)
        set_bits += static_cast<uint64_t>(essentialBits(v));
    return static_cast<double>(set_bits) /
           (static_cast<double>(values.size()) * width);
}

double
essentialBitFractionNonZero(std::span<const uint16_t> values, int width)
{
    PRA_CHECK(width > 0 && width <= 16,
                         "essentialBitFractionNonZero: bad width");
    uint64_t set_bits = 0;
    uint64_t non_zero = 0;
    for (uint16_t v : values) {
        if (v == 0)
            continue;
        non_zero++;
        set_bits += static_cast<uint64_t>(essentialBits(v));
    }
    if (non_zero == 0)
        return 0.0;
    return static_cast<double>(set_bits) /
           (static_cast<double>(non_zero) * width);
}

double
zeroFraction(std::span<const uint16_t> values)
{
    if (values.empty())
        return 0.0;
    uint64_t zeros = 0;
    for (uint16_t v : values)
        if (v == 0)
            zeros++;
    return static_cast<double>(zeros) /
           static_cast<double>(values.size());
}

int64_t
shiftAddMultiply(int16_t synapse, uint16_t neuron)
{
    int64_t acc = 0;
    uint16_t rest = neuron;
    while (rest != 0) {
        int pos = std::countr_zero(rest);
        acc += static_cast<int64_t>(synapse) << pos;
        rest = static_cast<uint16_t>(rest & (rest - 1));
    }
    return acc;
}

} // namespace fixedpoint
} // namespace pra
