/**
 * @file
 * 16-bit fixed-point value utilities.
 *
 * DaDianNao (the baseline) and Pragmatic both store neurons as 16-bit
 * fixed-point numbers. After the ReLU nonlinearity neuron values are
 * non-negative, so the simulator treats a neuron as a 16-bit unsigned
 * magnitude bit pattern; synapses are signed 16-bit values. Timing
 * depends only on the neuron bit patterns, never on the synapses.
 *
 * The *essential bits* of a neuron (paper Section II) are its set bits:
 * each one generates a non-zero term in a shift-and-add multiplier.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pra {
namespace fixedpoint {

/** A 16-bit unsigned neuron bit pattern. */
using Neuron16 = uint16_t;

/** A 16-bit signed synapse (weight). */
using Synapse16 = int16_t;

/** Number of storage bits in the baseline representation. */
inline constexpr int kNeuronBits = 16;

/** Count of essential (set) bits in a neuron pattern. */
int essentialBits(uint16_t value);

/** Position of the most significant set bit; -1 for value == 0. */
int msbPosition(uint16_t value);

/** Position of the least significant set bit; -1 for value == 0. */
int lsbPosition(uint16_t value);

/**
 * Minimum number of bits needed to represent @p value, i.e.
 * msbPosition + 1; 0 for value == 0.
 */
int significantBits(uint16_t value);

/**
 * The bit-serial precision a runtime detector (Dynamic-Stripes)
 * derives from the OR @p mask of a value group: the span between the
 * group's leading and trailing set bits, or — when only the leading
 * bit is detected (@p leading_bit_only) — everything below the
 * leading bit as well. 0 for an all-zero group (nothing to stream).
 */
int dynamicPrecision(uint16_t mask, bool leading_bit_only);

/**
 * Average fraction of set bits per value over @p values, measured
 * against a @p width-bit representation (paper Table I, "All").
 */
double essentialBitFraction(std::span<const uint16_t> values, int width);

/**
 * Same as essentialBitFraction() but over the non-zero values only
 * (paper Table I, "NZ"). Returns 0 when there are no non-zero values.
 */
double essentialBitFractionNonZero(std::span<const uint16_t> values,
                                   int width);

/** Fraction of zero values in @p values (0 when empty). */
double zeroFraction(std::span<const uint16_t> values);

/**
 * Multiply a signed synapse by an unsigned neuron using the
 * shift-and-add decomposition n*s = sum over set bits i of (s << i).
 * This is the arithmetic a PIP performs spread over cycles; it must
 * (and does) equal the ordinary product. Used as a self-checking
 * primitive by the functional models.
 */
int64_t shiftAddMultiply(int16_t synapse, uint16_t neuron);

} // namespace fixedpoint
} // namespace pra

