/**
 * @file
 * TensorFlow-style 8-bit affine quantization (paper Section VI-F).
 *
 * The quantization maps a real interval [min, max] linearly onto the
 * 256 available 8-bit codes. The paper sets the limits to the per-layer
 * minimum and maximum neuron values; with ReLU outputs min == 0, so a
 * zero neuron quantizes to code 0 and PRA's zero-skipping semantics
 * carry over unchanged.
 */

#ifndef PRA_FIXEDPOINT_QUANTIZATION_H
#define PRA_FIXEDPOINT_QUANTIZATION_H

#include <cstdint>
#include <span>
#include <vector>

namespace pra {
namespace fixedpoint {

/** Number of bits in the quantized representation. */
inline constexpr int kQuantBits = 8;

/** Affine quantization parameters for one layer. */
struct QuantParams
{
    double minValue = 0.0;  ///< Real value mapping to code 0.
    double maxValue = 1.0;  ///< Real value mapping to code 255.

    /** Real-value step between adjacent codes. */
    double scale() const;

    bool operator==(const QuantParams &other) const = default;
};

/**
 * Derive per-layer parameters from observed values, as the paper does
 * ("the limit values are set to the maximum and the minimum neuron
 * values for each layer"). Degenerate all-equal inputs get a unit
 * range so that scale() stays positive.
 */
QuantParams chooseQuantParams(std::span<const double> values);

/**
 * Quantize one real value with round-half-away-from-zero (the
 * "recommended rounding mode"), clamping to [0, 255].
 */
uint8_t quantize(double value, const QuantParams &params);

/** Reconstruct the real value represented by @p code. */
double dequantize(uint8_t code, const QuantParams &params);

/** Quantize a whole span. */
std::vector<uint8_t> quantizeAll(std::span<const double> values,
                                 const QuantParams &params);

/**
 * Largest absolute reconstruction error possible for in-range inputs:
 * half a step.
 */
double maxRoundingError(const QuantParams &params);

} // namespace fixedpoint
} // namespace pra

#endif // PRA_FIXEDPOINT_QUANTIZATION_H
