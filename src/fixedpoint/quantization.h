/**
 * @file
 * TensorFlow-style 8-bit affine quantization (paper Section VI-F).
 *
 * The quantization maps a real interval onto the 256 available 8-bit
 * codes. The paper sets the limits to the per-layer minimum and
 * maximum neuron values; with ReLU outputs min == 0, so a zero neuron
 * quantizes to code 0 and PRA's zero-skipping semantics carry over
 * unchanged.
 *
 * Parameters are stored as (scale, zeroPoint) — the TF representation
 * — rather than (min, max): dequantize(code) is (code - zeroPoint) *
 * scale, so the real value 0.0 round-trips to *exactly* 0.0 by
 * construction (zeroPoint is the code for 0.0, and (zp - zp) * scale
 * is exact in floating point). A raw [min, max] range is converted by
 * fromRange(), which nudges the range so that 0.0 lands on an integer
 * code; without the nudge a ReLU zero would quantize to a fractional
 * code, dequantize to a small non-zero value, and silently break every
 * zero-skip count downstream.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pra {
namespace fixedpoint {

/** Number of bits in the quantized representation. */
inline constexpr int kQuantBits = 8;

/** Affine quantization parameters for one layer. */
struct QuantParams
{
    double scale = 1.0 / 255.0; ///< Real-value step between codes.
    int zeroPoint = 0;          ///< Code representing real 0.0.

    /** Real value mapping to code 0. */
    double minValue() const;
    /** Real value mapping to code 255. */
    double maxValue() const;

    /**
     * Build parameters covering [lo, hi] with 0.0 on an exact code:
     * the range is first extended to include 0 (an affine scheme must
     * represent the zero used for padding and ReLU), then the zero
     * point round(-lo / scale) is clamped to a valid code. The scale
     * is preserved, so the represented range is the requested one
     * shifted by less than one step. Degenerate ranges (hi <= lo) are
     * widened to a unit span above lo so the scale stays positive.
     */
    static QuantParams fromRange(double lo, double hi);

    bool operator==(const QuantParams &other) const = default;
};

/**
 * Derive per-layer parameters from observed values, as the paper does
 * ("the limit values are set to the maximum and the minimum neuron
 * values for each layer"), zero-nudged via fromRange().
 */
QuantParams chooseQuantParams(std::span<const double> values);

/**
 * Quantize one real value with round-half-away-from-zero (the
 * "recommended rounding mode"), clamping to [0, 255].
 */
uint8_t quantize(double value, const QuantParams &params);

/** Reconstruct the real value represented by @p code. */
double dequantize(uint8_t code, const QuantParams &params);

/** Quantize a whole span. */
std::vector<uint8_t> quantizeAll(std::span<const double> values,
                                 const QuantParams &params);

/**
 * Largest absolute reconstruction error possible for in-range inputs:
 * half a step.
 */
double maxRoundingError(const QuantParams &params);

} // namespace fixedpoint
} // namespace pra

