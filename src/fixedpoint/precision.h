/**
 * @file
 * Per-layer reduced-precision windows (paper Sections II, V-F).
 *
 * Stripes and PRA-red rely on profiled per-layer precisions in the
 * style of Judd et al.: for each layer there is a window of bit
 * positions [lsb, msb] outside of which bits can be zeroed without
 * hurting network accuracy. The hardware applies the window as an AND
 * mask on the neurons written to the Neuron Memory ("The hardware
 * trims the output neurons before writing them to NM using AND gates
 * and precision derived bit masks", Section V-F).
 */

#pragma once

#include <cstdint>
#include <span>

namespace pra {
namespace fixedpoint {

/**
 * A contiguous window of retained bit positions [lsb, msb] within the
 * 16-bit storage format. bits() is the per-layer precision p that
 * Stripes processes serially.
 */
struct PrecisionWindow
{
    int msb = 15;  ///< Highest retained bit position.
    int lsb = 0;   ///< Lowest retained bit position.

    /** Precision in bits: the p of the paper's Table II. */
    int bits() const { return msb - lsb + 1; }

    /** AND mask keeping exactly the window's bit positions. */
    uint16_t mask() const;

    /** True when 0 <= lsb <= msb <= 15. */
    bool valid() const { return lsb >= 0 && lsb <= msb && msb <= 15; }

    bool operator==(const PrecisionWindow &other) const = default;
};

/** Trim a neuron to the window: the hardware's AND-gate masking. */
uint16_t trimToWindow(uint16_t neuron, const PrecisionWindow &window);

/**
 * Profile the precision window needed by a set of neuron values.
 *
 * Mirrors the spirit of Judd et al.'s method: the msb is the highest
 * bit position used by any value; the lsb is then raised as long as
 * the total magnitude lost by masking the suffix bits stays below
 * @p tolerance (a fraction of the total magnitude of all values).
 * tolerance == 0 keeps every used bit.
 */
PrecisionWindow profileWindow(std::span<const uint16_t> values,
                              double tolerance = 0.01);

/**
 * Fraction of the values' total magnitude lost when trimming each to
 * @p window; the quantity profileWindow() bounds by its tolerance.
 */
double trimLossFraction(std::span<const uint16_t> values,
                        const PrecisionWindow &window);

} // namespace fixedpoint
} // namespace pra

