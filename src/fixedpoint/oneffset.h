/**
 * @file
 * The oneffset representation (paper Section V-A1).
 *
 * Pragmatic converts each neuron on the fly from its positional
 * storage format into an explicit list of "oneffsets": the exponents
 * of its constituent powers of two. A neuron n = 101b becomes
 * ((pow=2, eon=0), (pow=0, eon=1)) where the single eon (end-of-
 * neuron) bit marks the last entry. A zero neuron is a single entry
 * (pow=0, eon=1) carrying a null term.
 *
 * The hardware's oneffset generator is a leading-one detector that
 * emits one oneffset per cycle; OneffsetStream mirrors that cycle-by-
 * cycle behaviour, while encodeOneffsets() produces the whole list at
 * once for analysis.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace pra {
namespace fixedpoint {

/**
 * One entry of the explicit powers-of-two list: (pow, eon).
 * pow is 4 bits in hardware (shifts 0..15); eon marks the neuron end.
 * A zero neuron is encoded as a single null entry (valid == false,
 * eon == true) so downstream lanes can inject a zero term.
 */
struct Oneffset
{
    uint8_t pow = 0;     ///< Power of two (0..15).
    bool eon = false;    ///< End-of-neuron marker (out-of-band wire).
    bool valid = true;   ///< False only for the null term of a zero neuron.

    bool operator==(const Oneffset &other) const = default;
};

/**
 * Convert a neuron pattern into its full oneffset list.
 *
 * Entries are ordered from the *least* significant set bit to the most
 * significant one, matching the processing order assumed by the
 * 2-stage-shifting control logic (paper Fig. 7b processes offsets in
 * ascending order). The final entry has eon == true. A zero neuron
 * yields exactly one entry {pow=0, eon=true, valid=false}.
 */
std::vector<Oneffset> encodeOneffsets(uint16_t neuron);

/**
 * Rebuild the positional value from an oneffset list; the inverse of
 * encodeOneffsets(). Panics on malformed lists (duplicate powers,
 * missing eon).
 */
uint16_t decodeOneffsets(const std::vector<Oneffset> &offsets);

/**
 * Cycle-accurate model of a hardware oneffset generator: a 16-bit
 * leading-one detector that consumes one set bit per next() call.
 * Mirrors encodeOneffsets() output one entry at a time.
 */
class OneffsetStream
{
  public:
    /** Start converting @p neuron. */
    explicit OneffsetStream(uint16_t neuron = 0);

    /** Load a new neuron, discarding any unconsumed bits. */
    void load(uint16_t neuron);

    /** True when all oneffsets (incl. the eon entry) were consumed. */
    bool exhausted() const { return done_; }

    /**
     * Emit the next oneffset. Calling next() on an exhausted stream
     * returns null padding entries {pow=0, eon=true, valid=false};
     * hardware lanes inject zero terms while waiting for slower lanes.
     */
    Oneffset next();

    /** Number of entries remaining (0 when exhausted). */
    int remaining() const;

  private:
    uint16_t pending_ = 0;
    bool isZeroNeuron_ = false;
    bool done_ = true;
};

/**
 * Storage cost in bits of the oneffset representation of @p neuron:
 * 5 bits per entry (4-bit pow + eon). The paper notes this can exceed
 * 16 bits, which is why the representation is generated on the fly
 * rather than stored (Section V-A1).
 */
int oneffsetStorageBits(uint16_t neuron);

} // namespace fixedpoint
} // namespace pra

