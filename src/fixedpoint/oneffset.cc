#include "fixedpoint/oneffset.h"

#include <bit>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace fixedpoint {

std::vector<Oneffset>
encodeOneffsets(uint16_t neuron)
{
    std::vector<Oneffset> list;
    if (neuron == 0) {
        list.push_back({0, true, false});
        return list;
    }
    uint16_t rest = neuron;
    while (rest != 0) {
        uint8_t pos = static_cast<uint8_t>(std::countr_zero(rest));
        rest = static_cast<uint16_t>(rest & (rest - 1));
        list.push_back({pos, rest == 0, true});
    }
    return list;
}

uint16_t
decodeOneffsets(const std::vector<Oneffset> &offsets)
{
    PRA_CHECK(!offsets.empty(),
                         "decodeOneffsets: empty list");
    PRA_CHECK(offsets.back().eon,
                         "decodeOneffsets: missing end-of-neuron");
    uint16_t value = 0;
    for (size_t i = 0; i < offsets.size(); i++) {
        const Oneffset &entry = offsets[i];
        PRA_CHECK(entry.eon == (i + 1 == offsets.size()),
                             "decodeOneffsets: eon not on last entry");
        if (!entry.valid) {
            PRA_CHECK(offsets.size() == 1,
                                 "decodeOneffsets: null entry in "
                                 "non-zero neuron");
            return 0;
        }
        uint16_t bit = static_cast<uint16_t>(1u << entry.pow);
        PRA_CHECK((value & bit) == 0,
                             "decodeOneffsets: duplicate power");
        value = static_cast<uint16_t>(value | bit);
    }
    return value;
}

OneffsetStream::OneffsetStream(uint16_t neuron)
{
    load(neuron);
}

void
OneffsetStream::load(uint16_t neuron)
{
    pending_ = neuron;
    isZeroNeuron_ = (neuron == 0);
    done_ = false;
}

Oneffset
OneffsetStream::next()
{
    if (done_)
        return {0, true, false}; // Null padding term.
    if (isZeroNeuron_) {
        done_ = true;
        return {0, true, false};
    }
    uint8_t pos = static_cast<uint8_t>(std::countr_zero(pending_));
    pending_ = static_cast<uint16_t>(pending_ & (pending_ - 1));
    if (pending_ == 0)
        done_ = true;
    return {pos, done_, true};
}

int
OneffsetStream::remaining() const
{
    if (done_)
        return 0;
    if (isZeroNeuron_)
        return 1;
    return std::popcount(pending_);
}

int
oneffsetStorageBits(uint16_t neuron)
{
    // 4-bit pow + 1 eon bit per entry; a zero neuron still needs its
    // null entry.
    int entries = neuron == 0 ? 1 : std::popcount(neuron);
    return entries * 5;
}

} // namespace fixedpoint
} // namespace pra
