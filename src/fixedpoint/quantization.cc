#include "fixedpoint/quantization.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pra {
namespace fixedpoint {

double
QuantParams::scale() const
{
    return (maxValue - minValue) / 255.0;
}

QuantParams
chooseQuantParams(std::span<const double> values)
{
    QuantParams params;
    if (values.empty())
        return params;
    double lo = values[0];
    double hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    if (hi <= lo)
        hi = lo + 1.0; // Degenerate layer: keep the scale positive.
    params.minValue = lo;
    params.maxValue = hi;
    return params;
}

uint8_t
quantize(double value, const QuantParams &params)
{
    double s = params.scale();
    util::checkInvariant(s > 0.0, "quantize: non-positive scale");
    double code = (value - params.minValue) / s;
    double rounded = std::floor(code + 0.5);
    rounded = std::clamp(rounded, 0.0, 255.0);
    return static_cast<uint8_t>(rounded);
}

double
dequantize(uint8_t code, const QuantParams &params)
{
    return params.minValue + static_cast<double>(code) * params.scale();
}

std::vector<uint8_t>
quantizeAll(std::span<const double> values, const QuantParams &params)
{
    std::vector<uint8_t> codes;
    codes.reserve(values.size());
    for (double v : values)
        codes.push_back(quantize(v, params));
    return codes;
}

double
maxRoundingError(const QuantParams &params)
{
    return params.scale() / 2.0;
}

} // namespace fixedpoint
} // namespace pra
