#include "fixedpoint/quantization.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace fixedpoint {

double
QuantParams::minValue() const
{
    return dequantize(0, *this);
}

double
QuantParams::maxValue() const
{
    return dequantize(255, *this);
}

QuantParams
QuantParams::fromRange(double lo, double hi)
{
    if (hi <= lo)
        hi = lo + 1.0; // Degenerate layer: keep the scale positive.
    // An affine scheme must represent 0.0 exactly (ReLU zeros and
    // padding); extend the range to cover it before placing the zero
    // point.
    lo = std::min(lo, 0.0);
    hi = std::max(hi, 0.0);
    QuantParams params;
    params.scale = (hi - lo) / 255.0;
    PRA_CHECK(params.scale > 0.0,
                         "fromRange: non-positive scale");
    double zp = std::floor(-lo / params.scale + 0.5);
    params.zeroPoint =
        static_cast<int>(std::clamp(zp, 0.0, 255.0));
    return params;
}

QuantParams
chooseQuantParams(std::span<const double> values)
{
    if (values.empty())
        return QuantParams{};
    double lo = values[0];
    double hi = values[0];
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return QuantParams::fromRange(lo, hi);
}

uint8_t
quantize(double value, const QuantParams &params)
{
    PRA_CHECK(params.scale > 0.0,
                         "quantize: non-positive scale");
    double code = value / params.scale + params.zeroPoint;
    double rounded = std::floor(code + 0.5);
    rounded = std::clamp(rounded, 0.0, 255.0);
    return static_cast<uint8_t>(rounded);
}

double
dequantize(uint8_t code, const QuantParams &params)
{
    return (static_cast<double>(code) - params.zeroPoint) *
           params.scale;
}

std::vector<uint8_t>
quantizeAll(std::span<const double> values, const QuantParams &params)
{
    std::vector<uint8_t> codes;
    codes.reserve(values.size());
    for (double v : values)
        codes.push_back(quantize(v, params));
    return codes;
}

double
maxRoundingError(const QuantParams &params)
{
    return params.scale / 2.0;
}

} // namespace fixedpoint
} // namespace pra
