#include "fixedpoint/precision.h"

#include "fixedpoint/fixed_point.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace fixedpoint {

uint16_t
PrecisionWindow::mask() const
{
    PRA_CHECK(valid(), "PrecisionWindow::mask on bad window");
    uint32_t width = static_cast<uint32_t>(bits());
    uint32_t m = width >= 16 ? 0xffffu : ((1u << width) - 1u);
    return static_cast<uint16_t>(m << lsb);
}

uint16_t
trimToWindow(uint16_t neuron, const PrecisionWindow &window)
{
    return static_cast<uint16_t>(neuron & window.mask());
}

PrecisionWindow
profileWindow(std::span<const uint16_t> values, double tolerance)
{
    PRA_CHECK(tolerance >= 0.0 && tolerance < 1.0,
                         "profileWindow: tolerance must be in [0,1)");
    PrecisionWindow window{0, 0};
    int max_msb = 0;
    double total = 0.0;
    for (uint16_t v : values) {
        max_msb = std::max(max_msb, msbPosition(v));
        total += static_cast<double>(v);
    }
    if (total <= 0.0)
        return PrecisionWindow{0, 0}; // All-zero layer: 1-bit window.
    window.msb = max_msb;

    // Raise the lsb while the cumulative suffix loss stays tolerable.
    double budget = tolerance * total;
    double lost = 0.0;
    int lsb = 0;
    while (lsb < window.msb) {
        // Loss added by dropping bit position `lsb` from every value.
        double bit_loss = 0.0;
        uint16_t bit = static_cast<uint16_t>(1u << lsb);
        for (uint16_t v : values)
            if (v & bit)
                bit_loss += static_cast<double>(bit);
        if (lost + bit_loss > budget)
            break;
        lost += bit_loss;
        lsb++;
    }
    window.lsb = lsb;
    return window;
}

double
trimLossFraction(std::span<const uint16_t> values,
                 const PrecisionWindow &window)
{
    double total = 0.0;
    double lost = 0.0;
    for (uint16_t v : values) {
        total += static_cast<double>(v);
        lost += static_cast<double>(v - trimToWindow(v, window));
    }
    return total > 0.0 ? lost / total : 0.0;
}

} // namespace fixedpoint
} // namespace pra
