/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be reproducible across platforms and standard
 * library implementations, so we ship our own xoshiro256** generator
 * and our own distributions instead of relying on <random> engines
 * whose distribution implementations are not portable.
 */

#pragma once

#include <cstdint>
#include <string_view>

namespace pra {
namespace util {

/** FNV-1a 64-bit offset basis. */
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/** Mix one value into an FNV-1a 64-bit hash state. */
inline constexpr uint64_t
fnv1aMix(uint64_t h, uint64_t value)
{
    h ^= value;
    h *= 0x100000001b3ull;
    return h;
}

/**
 * FNV-1a 64-bit hash of a byte string, for deterministic seed
 * derivation and cache fingerprints (not cryptographic).
 */
inline constexpr uint64_t
fnv1a(std::string_view text, uint64_t h = kFnv1aOffset)
{
    for (char ch : text)
        h = fnv1aMix(h, static_cast<uint8_t>(ch));
    return h;
}

/**
 * xoshiro256** 1.0 by Blackman & Vigna — a small, fast, high-quality
 * 64-bit PRNG with a 256-bit state. Seeded deterministically via
 * splitmix64 so that any 64-bit seed produces a well-mixed state.
 */
class Xoshiro256
{
  public:
    /** Construct with a full 64-bit seed (expanded via splitmix64). */
    explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t nextInRange(int64_t lo, int64_t hi);

    /** Bernoulli draw: true with probability @p p. */
    bool nextBool(double p);

    /** Standard normal draw (Box-Muller, deterministic). */
    double nextGaussian();

    /**
     * Exponential draw with rate @p lambda (mean 1/lambda).
     * Requires lambda > 0.
     */
    double nextExponential(double lambda);

  private:
    uint64_t s_[4];
    /** Cached second Box-Muller variate, NaN when absent. */
    double gaussSpare_;
    bool hasSpare_;
};

} // namespace util
} // namespace pra

