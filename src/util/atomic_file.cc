#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace pra {
namespace util {

std::string
atomicTempPath(const std::string &path)
{
    return path + ".tmp";
}

void
writeFileAtomic(const std::string &path,
                const std::function<void(std::ostream &)> &producer)
{
    const std::string temp = atomicTempPath(path);
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open '" + temp + "' for writing");
        try {
            producer(out);
        } catch (...) {
            out.close();
            std::remove(temp.c_str());
            throw;
        }
        out.flush();
        if (!out) {
            out.close();
            std::remove(temp.c_str());
            fatal("failed while writing '" + temp + "'; '" + path +
                  "' left untouched");
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        fatal("cannot rename '" + temp + "' onto '" + path + "'");
    }
}

} // namespace util
} // namespace pra
