/**
 * @file
 * Lightweight statistics collection for the simulators.
 *
 * Counters, running averages and fixed-bucket histograms. All stats are
 * plain value types; a StatRegistry groups named stats for reporting.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pra {
namespace util {

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void increment(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Running mean/min/max/sum over double-valued samples.
 *
 * Mean and variance use Welford's online algorithm: the naive
 * sum-of-squares formula (sumSq/n - mean^2) cancels catastrophically
 * for large-mean, low-variance samples (cycle counts around 1e12
 * +/- 10 would report a variance of 0), while Welford's update keeps
 * full precision in the centered second moment.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Record one sample. */
    void add(double x);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance (0 for fewer than two samples). */
    double variance() const;
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0; ///< Welford running mean.
    double m2_ = 0.0;   ///< Welford centered second moment.
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over non-negative integer samples.
 *
 * Two bucket layouts share one interface:
 *
 *  - **unit-width** (the historical constructor): buckets [0,
 *    maxValue], one value each. Exact, but the bucket array scales
 *    with maxValue, so the constructor rejects ranges whose array
 *    would not comfortably fit in memory (kMaxUnitBuckets).
 *  - **log-spaced** (logSpaced()): HDR-style buckets — exact up to
 *    2 * 2^subBits, then 2^subBits geometrically growing buckets per
 *    power of two, so a maxValue of 2^40 cycles costs a few KB
 *    instead of 8 TB. Every bucket's relative width is below
 *    2^-subBits, which bounds the percentile error the coarsening
 *    introduces.
 *
 * In both layouts samples above maxValue land in a saturating
 * overflow bucket and report as maxValue + 1 from percentile() — a
 * loud sentinel rather than a silently wrong in-range value.
 */
class Histogram
{
  public:
    /** Largest unit-bucket array the constructor will allocate. */
    static constexpr uint64_t kMaxUnitBuckets = uint64_t{1} << 24;

    /** @param max_value largest sample with a dedicated bucket. */
    explicit Histogram(uint32_t max_value = 64);

    /**
     * A log-spaced histogram covering [0, max_value] with
     * 2^sub_bits buckets per power of two (sub_bits in [0, 8]);
     * values up to 2 * 2^sub_bits get exact unit buckets.
     */
    static Histogram logSpaced(uint64_t max_value, int sub_bits = 5);

    void add(uint64_t sample, uint64_t weight = 1);

    uint64_t count() const { return count_; }
    uint64_t bucket(uint32_t index) const;
    uint32_t numBuckets() const
    {
        return static_cast<uint32_t>(buckets_.size());
    }
    uint64_t overflow() const { return overflow_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Largest sample with a dedicated bucket. */
    uint64_t maxValue() const { return maxValue_; }
    bool isLogSpaced() const { return logSpaced_; }

    /** Smallest sample value bucket @p index covers. */
    uint64_t bucketLow(uint32_t index) const;
    /** Largest sample value bucket @p index covers (inclusive). */
    uint64_t bucketHigh(uint32_t index) const;

    /**
     * Upper bound of the smallest bucket b such that at least
     * @p fraction of the recorded weight lies in buckets <= b,
     * clamped to maxValue. Exact for unit buckets (bucket == value);
     * for log-spaced buckets a conservative (never understated)
     * value within 2^-subBits relative error. Overflowed samples
     * saturate to maxValue + 1.
     */
    uint64_t percentile(double fraction) const;

    void reset();

  private:
    Histogram(uint64_t max_value, int sub_bits);

    /** Bucket index of @p sample (which must be <= maxValue_). */
    size_t indexFor(uint64_t sample) const;

    std::vector<uint64_t> buckets_;
    uint64_t maxValue_ = 0;
    int subBits_ = 0;
    bool logSpaced_ = false;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of counters and running stats for end-of-run
 * reporting. Stats are owned by the registry and looked up by name.
 */
class StatRegistry
{
  public:
    /** Get (creating on first use) the counter with the given name. */
    Counter &counter(const std::string &name);

    /** Get (creating on first use) the running stat with @p name. */
    RunningStat &runningStat(const std::string &name);

    /** Names of all registered counters, sorted. */
    std::vector<std::string> counterNames() const;

    /** Names of all registered running stats, sorted. */
    std::vector<std::string> runningStatNames() const;

    /** Render all stats as "name = value" lines. */
    std::string report() const;

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, RunningStat> runningStats_;
};

} // namespace util
} // namespace pra

