/**
 * @file
 * Lightweight statistics collection for the simulators.
 *
 * Counters, running averages and fixed-bucket histograms. All stats are
 * plain value types; a StatRegistry groups named stats for reporting.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pra {
namespace util {

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void increment(uint64_t by = 1) { value_ += by; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * Running mean/min/max/sum over double-valued samples.
 *
 * Mean and variance use Welford's online algorithm: the naive
 * sum-of-squares formula (sumSq/n - mean^2) cancels catastrophically
 * for large-mean, low-variance samples (cycle counts around 1e12
 * +/- 10 would report a variance of 0), while Welford's update keeps
 * full precision in the centered second moment.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Record one sample. */
    void add(double x);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance (0 for fewer than two samples). */
    double variance() const;
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0; ///< Welford running mean.
    double m2_ = 0.0;   ///< Welford centered second moment.
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over non-negative integer samples with unit-width buckets
 * [0, maxValue]; samples above maxValue land in an overflow bucket.
 */
class Histogram
{
  public:
    /** @param max_value largest sample with a dedicated bucket. */
    explicit Histogram(uint32_t max_value = 64);

    void add(uint64_t sample, uint64_t weight = 1);

    uint64_t count() const { return count_; }
    uint64_t bucket(uint32_t index) const;
    uint32_t numBuckets() const
    {
        return static_cast<uint32_t>(buckets_.size());
    }
    uint64_t overflow() const { return overflow_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /**
     * Smallest sample value v such that at least @p fraction of the
     * recorded weight is <= v. Overflowed samples count as maxValue+1.
     */
    uint64_t percentile(double fraction) const;

    void reset();

  private:
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of counters and running stats for end-of-run
 * reporting. Stats are owned by the registry and looked up by name.
 */
class StatRegistry
{
  public:
    /** Get (creating on first use) the counter with the given name. */
    Counter &counter(const std::string &name);

    /** Get (creating on first use) the running stat with @p name. */
    RunningStat &runningStat(const std::string &name);

    /** Names of all registered counters, sorted. */
    std::vector<std::string> counterNames() const;

    /** Names of all registered running stats, sorted. */
    std::vector<std::string> runningStatNames() const;

    /** Render all stats as "name = value" lines. */
    std::string report() const;

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, RunningStat> runningStats_;
};

} // namespace util
} // namespace pra

