/**
 * @file
 * A minimal fixed-size worker pool for fan-out/join workloads.
 *
 * The sweep driver submits independent (network, engine) jobs and
 * waits for all of them; jobs write their results into caller-owned
 * slots, so completion order never affects output order. The pool is
 * deliberately small: submit + wait, no futures, no work stealing.
 *
 * Two extras serve the two-level sweep:
 *
 *  - exceptions never escape a worker thread: the first exception a
 *    job throws is captured and rethrown from wait(), and a throwing
 *    job still counts as finished (no deadlock);
 *  - TaskGroup lets a job running *on* the pool fan out subtasks to
 *    the same pool and join only those. Its wait() helps execute
 *    queued jobs instead of blocking, so nested fan-out cannot
 *    deadlock even when every worker is inside a group wait.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pra {
namespace util {

/** Fixed-size worker pool; jobs are void() callables. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count <= 1 still starts one worker
     * thread; use hardwareThreads() for an automatic choice.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending jobs are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Must not be called after shutdown began. */
    void submit(std::function<void()> job);

    /**
     * Enqueue one job at the *front* of the queue. TaskGroup submits
     * subtasks this way so nested fan-out runs before queued
     * top-level jobs — a helping wait() then executes subtasks
     * instead of inlining whole unrelated outer jobs (which would
     * serialize them and recurse arbitrarily deep).
     */
    void submitFirst(std::function<void()> job);

    /**
     * Block until every submitted job has finished executing. If any
     * job threw, rethrows the first captured exception (the remaining
     * jobs still ran to completion).
     */
    void wait();

    /**
     * Run one queued job on the calling thread; returns false when
     * the queue is empty. Used by TaskGroup::wait to make progress
     * instead of blocking while its subtasks are still queued.
     */
    bool runOneQueued();

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

  private:
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< Signals workers: job or stop.
    std::condition_variable drained_; ///< Signals wait(): all idle.
    int active_ = 0;                  ///< Jobs currently executing.
    bool stop_ = false;
    std::exception_ptr firstError_;   ///< First job exception, if any.

    void workerLoop();
    void runJob(std::function<void()> job);
};

/**
 * A join scope for subtasks submitted to a shared pool. run() enqueues
 * a subtask; wait() joins only this group's subtasks, executing other
 * queued pool jobs while it waits, and rethrows the first exception a
 * subtask threw. Submit every subtask before calling wait().
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** wait() must have been called (or no subtasks submitted). */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue one subtask into the pool under this group. */
    void run(std::function<void()> job);

    /**
     * Join this group's subtasks. Helps drain the pool queue while
     * waiting, so calling from inside a pool job is deadlock-free.
     * Rethrows the first exception any subtask threw.
     */
    void wait();

  private:
    ThreadPool &pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    int pending_ = 0;
    std::exception_ptr error_;
};

/**
 * Deterministic block-parallel execution policy handed down to layer
 * simulators: how many subtasks one sweep cell may fan out, and the
 * pool to fan them out on. Engines split an index range [0, n) into
 * at most maxTasks() contiguous blocks, compute an exact partial
 * result per block, and combine the partials in block order — so the
 * result is byte-identical for every task count, including the
 * default serial executor.
 */
class InnerExecutor
{
  public:
    /** Serial executor: forEachBlock runs inline. */
    InnerExecutor() = default;

    /** Up to @p max_tasks blocks across @p pool (null = serial). */
    InnerExecutor(ThreadPool *pool, int max_tasks)
        : pool_(pool), maxTasks_(max_tasks < 1 ? 1 : max_tasks)
    {
    }

    int maxTasks() const { return pool_ ? maxTasks_ : 1; }

    /** Number of blocks an n-element range splits into (>= 1 slots). */
    int
    blockCount(int64_t n) const
    {
        if (n <= 1)
            return n == 1 ? 1 : 0;
        int64_t tasks = maxTasks();
        return static_cast<int>(tasks < n ? tasks : n);
    }

    /** Half-open index range of block @p b of @p blocks over [0, n). */
    static std::pair<int64_t, int64_t>
    blockRange(int64_t n, int blocks, int b)
    {
        return {b * n / blocks, (b + 1) * static_cast<int64_t>(n) / blocks};
    }

    /**
     * Run fn(b) for b in [0, blocks); parallel across the pool when
     * one is attached, inline otherwise. Returns once every block
     * finished; rethrows the first exception a block threw.
     */
    void forEachBlock(int blocks,
                      const std::function<void(int)> &fn) const;

  private:
    ThreadPool *pool_ = nullptr;
    int maxTasks_ = 1;
};

} // namespace util
} // namespace pra

