/**
 * @file
 * A minimal fixed-size worker pool for fan-out/join workloads.
 *
 * The sweep driver submits independent (network, engine) jobs and
 * waits for all of them; jobs write their results into caller-owned
 * slots, so completion order never affects output order. The pool is
 * deliberately small: submit + wait, no futures, no work stealing.
 */

#ifndef PRA_UTIL_THREAD_POOL_H
#define PRA_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pra {
namespace util {

/** Fixed-size worker pool; jobs are void() callables. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers. A count <= 1 still starts one worker
     * thread; use hardwareThreads() for an automatic choice.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending jobs are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Must not be called after shutdown began. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

  private:
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< Signals workers: job or stop.
    std::condition_variable drained_; ///< Signals wait(): all idle.
    int active_ = 0;                  ///< Jobs currently executing.
    bool stop_ = false;

    void workerLoop();
};

} // namespace util
} // namespace pra

#endif // PRA_UTIL_THREAD_POOL_H
