#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pra {
namespace util {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Inform:
        tag = "info: ";
        break;
      case LogLevel::Debug:
        tag = "debug: ";
        break;
      default:
        break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Inform, msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace util
} // namespace pra
