/**
 * @file
 * Invariant-check macros: the repo's single contract layer.
 *
 * PRA_CHECK replaces the old util::checkInvariant overload pair. It is
 * active in release builds — the simulator's numbers are meaningless if
 * its invariants do not hold — and lazily materializes the message, so
 * hot paths (per-element tensor accesses, inner scheduling loops) never
 * pay a std::string construction on the success path. All three macros
 * report through util::panic(), which aborts, making every invariant
 * death-testable with EXPECT_DEATH.
 *
 * PRA_DCHECK is for checks too expensive for release hot loops; it
 * compiles away under NDEBUG unless PRA_DCHECK_ENABLED=1 is defined
 * first (tests force it on to death-test debug-only contracts).
 */

#pragma once

#include <sstream>
#include <string>

#include "util/logging.h"

namespace pra {
namespace util {
namespace detail {

/** Render "msg: lhs_text (lhs) != rhs_text (rhs)" for PRA_CHECK_EQ. */
template <typename L, typename R>
std::string
formatCheckEq(const char *lhs_text, const char *rhs_text, const L &lhs,
              const R &rhs, const char *msg)
{
    std::ostringstream out;
    out << msg << ": " << lhs_text << " (" << lhs << ") != " << rhs_text
        << " (" << rhs << ")";
    return out.str();
}

} // namespace detail
} // namespace util
} // namespace pra

/**
 * Check an internal invariant; panic (abort) with @p msg when @p cond
 * is false. @p msg may be a literal or any std::string expression —
 * it is evaluated only on failure.
 */
#define PRA_CHECK(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) [[unlikely]]                                         \
            ::pra::util::panic((msg));                                    \
    } while (0)

/**
 * Check two expressions for equality; on failure panic with @p msg
 * plus both expression texts and their streamed values.
 */
#define PRA_CHECK_EQ(lhs, rhs, msg)                                       \
    do {                                                                  \
        const auto &pra_check_lhs = (lhs);                                \
        const auto &pra_check_rhs = (rhs);                                \
        if (!(pra_check_lhs == pra_check_rhs)) [[unlikely]]               \
            ::pra::util::panic(::pra::util::detail::formatCheckEq(        \
                #lhs, #rhs, pra_check_lhs, pra_check_rhs, (msg)));        \
    } while (0)

/*
 * PRA_DCHECK_ENABLED defaults to "on in debug builds"; define it to 1
 * before including this header to force debug checks into a release
 * translation unit (the death tests do).
 */
#ifndef PRA_DCHECK_ENABLED
#ifdef NDEBUG
#define PRA_DCHECK_ENABLED 0
#else
#define PRA_DCHECK_ENABLED 1
#endif
#endif

#if PRA_DCHECK_ENABLED
#define PRA_DCHECK(cond, msg) PRA_CHECK(cond, msg)
#else
/** Debug-only check: compiled out, operands never evaluated. */
#define PRA_DCHECK(cond, msg)                                             \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
        (void)sizeof((msg));                                              \
    } while (0)
#endif
