#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PRA_CHECK(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    PRA_CHECK(cells.size() == headers_.size(),
                   "TextTable row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); c++) {
            line += row[c];
            if (c + 1 < row.size())
                line += std::string(widths[c] - row[c].size() + 2, ' ');
        }
        return line;
    };

    std::ostringstream out;
    out << renderRow(headers_) << "\n";
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); c++)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        out << renderRow(row) << "\n";
    return out.str();
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace util
} // namespace pra
