#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace util {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_++;
    sum_ += x;
    // Welford's update (see the class comment for why not sumSq).
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    double var = m2_ / static_cast<double>(count_);
    return var > 0.0 ? var : 0.0;
}

void
RunningStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(uint32_t max_value)
{
    PRA_CHECK(static_cast<uint64_t>(max_value) + 1 <= kMaxUnitBuckets,
              "Histogram: unit-bucket range too large to allocate; "
              "use Histogram::logSpaced for wide (cycle-scale) "
              "sample ranges");
    maxValue_ = max_value;
    buckets_.assign(static_cast<size_t>(max_value) + 1, 0);
}

Histogram::Histogram(uint64_t max_value, int sub_bits)
    : maxValue_(max_value), subBits_(sub_bits), logSpaced_(true)
{
    buckets_.assign(indexFor(max_value) + 1, 0);
}

Histogram
Histogram::logSpaced(uint64_t max_value, int sub_bits)
{
    PRA_CHECK(sub_bits >= 0 && sub_bits <= 8,
              "Histogram::logSpaced: sub_bits must be in [0, 8]");
    PRA_CHECK(max_value >= 1,
              "Histogram::logSpaced: empty sample range");
    return Histogram(max_value, sub_bits);
}

size_t
Histogram::indexFor(uint64_t sample) const
{
    if (!logSpaced_)
        return static_cast<size_t>(sample);
    // HDR layout: exact unit buckets below 2 * S (S = 2^subBits);
    // above that, the top subBits+1 significant bits select the
    // bucket — 2^subBits buckets per power of two, relative width
    // 2^-subBits.
    const uint64_t unit = uint64_t{2} << subBits_;
    if (sample < unit)
        return static_cast<size_t>(sample);
    const int shift = std::bit_width(sample) - 1 - subBits_;
    return static_cast<size_t>(
        (static_cast<uint64_t>(shift) << subBits_) +
        (sample >> shift));
}

void
Histogram::add(uint64_t sample, uint64_t weight)
{
    if (sample <= maxValue_)
        buckets_[indexFor(sample)] += weight;
    else
        overflow_ += weight;
    count_ += weight;
    sum_ += static_cast<double>(sample) * weight;
}

uint64_t
Histogram::bucket(uint32_t index) const
{
    PRA_CHECK(index < buckets_.size(), "Histogram bucket out of range");
    return buckets_[index];
}

uint64_t
Histogram::bucketLow(uint32_t index) const
{
    PRA_CHECK(index < buckets_.size(), "Histogram bucket out of range");
    const uint64_t unit = uint64_t{2} << subBits_;
    if (!logSpaced_ || index < unit)
        return index;
    // Invert indexFor: index = (shift << subBits) + (value >> shift)
    // with (value >> shift) in [S, 2S).
    const uint64_t shift = (index >> subBits_) - 1;
    const uint64_t mantissa =
        index - (shift << subBits_); // In [S, 2S).
    return mantissa << shift;
}

uint64_t
Histogram::bucketHigh(uint32_t index) const
{
    PRA_CHECK(index < buckets_.size(), "Histogram bucket out of range");
    const uint64_t unit = uint64_t{2} << subBits_;
    if (!logSpaced_ || index < unit)
        return index;
    const uint64_t shift = (index >> subBits_) - 1;
    return bucketLow(index) + (uint64_t{1} << shift) - 1;
}

uint64_t
Histogram::percentile(double fraction) const
{
    PRA_CHECK(fraction >= 0.0 && fraction <= 1.0,
                   "percentile fraction must be in [0,1]");
    if (count_ == 0)
        return 0;
    uint64_t target = static_cast<uint64_t>(
        std::ceil(fraction * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); i++) {
        seen += buckets_[i];
        if (seen >= target)
            return std::min(bucketHigh(static_cast<uint32_t>(i)),
                            maxValue_);
    }
    return maxValue_ + 1; // All remaining weight is overflow.
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return counters_[name];
}

RunningStat &
StatRegistry::runningStat(const std::string &name)
{
    return runningStats_[name];
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
StatRegistry::runningStatNames() const
{
    std::vector<std::string> names;
    names.reserve(runningStats_.size());
    for (const auto &kv : runningStats_)
        names.push_back(kv.first);
    return names;
}

std::string
StatRegistry::report() const
{
    std::ostringstream out;
    for (const auto &kv : counters_)
        out << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : runningStats_) {
        out << kv.first << " = " << kv.second.mean()
            << " (n=" << kv.second.count() << ", min=" << kv.second.min()
            << ", max=" << kv.second.max() << ")\n";
    }
    return out.str();
}

void
StatRegistry::reset()
{
    counters_.clear();
    runningStats_.clear();
}

} // namespace util
} // namespace pra
