/**
 * @file
 * Minimal CSV writer used by examples to export sweep results.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pra {
namespace util {

/**
 * Streams rows of cells as RFC-4180-ish CSV (quotes cells containing
 * commas, quotes or newlines). The writer does not own the stream.
 */
class CsvWriter
{
  public:
    /** @param out destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Write a header row; may only be called before any data row. */
    void writeHeader(const std::vector<std::string> &cells);

    /**
     * Write one data row. The first row written (header or data)
     * locks the table width; later rows must match it.
     */
    void writeRow(const std::vector<std::string> &cells);

    size_t rowsWritten() const { return rows_; }

    /** Escape one cell per the CSV quoting rules. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &out_;
    size_t width_ = 0;
    size_t rows_ = 0;
    bool headerWritten_ = false;

    void writeLine(const std::vector<std::string> &cells);
};

} // namespace util
} // namespace pra

