#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace pra {
namespace util {

ThreadPool::ThreadPool(int threads)
{
    int count = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    util::checkInvariant(static_cast<bool>(job),
                         "ThreadPool: empty job");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        util::checkInvariant(!stop_,
                             "ThreadPool: submit after shutdown");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run.
            job = std::move(queue_.front());
            queue_.pop_front();
            active_++;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            active_--;
            if (queue_.empty() && active_ == 0)
                drained_.notify_all();
        }
    }
}

} // namespace util
} // namespace pra
