#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace util {

ThreadPool::ThreadPool(int threads)
{
    int count = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    PRA_CHECK(static_cast<bool>(job),
                         "ThreadPool: empty job");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        PRA_CHECK(!stop_,
                             "ThreadPool: submit after shutdown");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::submitFirst(std::function<void()> job)
{
    PRA_CHECK(static_cast<bool>(job),
                         "ThreadPool: empty job");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        PRA_CHECK(!stop_,
                             "ThreadPool: submit after shutdown");
        queue_.push_front(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock,
                      [this] { return queue_.empty() && active_ == 0; });
        error = std::exchange(firstError_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

/**
 * Run @p job with active_ already incremented by the caller. The
 * decrement is RAII so a throwing job still counts as finished and
 * wait() cannot deadlock; the first exception is kept for wait() to
 * rethrow.
 */
void
ThreadPool::runJob(std::function<void()> job)
{
    struct ActiveGuard
    {
        ThreadPool &pool;
        std::exception_ptr error;

        ~ActiveGuard()
        {
            std::unique_lock<std::mutex> lock(pool.mutex_);
            if (error && !pool.firstError_)
                pool.firstError_ = error;
            pool.active_--;
            if (pool.queue_.empty() && pool.active_ == 0)
                pool.drained_.notify_all();
        }
    } guard{*this, nullptr};

    try {
        job();
    } catch (...) {
        guard.error = std::current_exception();
    }
}

bool
ThreadPool::runOneQueued()
{
    std::function<void()> job;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        job = std::move(queue_.front());
        queue_.pop_front();
        active_++;
    }
    runJob(std::move(job));
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run.
            job = std::move(queue_.front());
            queue_.pop_front();
            active_++;
        }
        runJob(std::move(job));
    }
}

TaskGroup::~TaskGroup()
{
    // A group abandoned without wait() (e.g. run() threw on a full
    // queue) must still join its subtasks: they capture `this`.
    try {
        wait();
    } catch (...) {
        // Destructors must not throw; wait() already ran every task.
    }
}

void
TaskGroup::run(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        pending_++;
    }
    pool_.submitFirst([this, job = std::move(job)] {
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (error && !error_)
            error_ = error;
        pending_--;
        if (pending_ == 0)
            done_.notify_all();
    });
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (pending_ == 0)
                break;
        }
        // Make progress instead of blocking: run queued pool jobs
        // (ours or another group's — either way the pool advances).
        if (pool_.runOneQueued())
            continue;
        // Queue empty: our remaining subtasks are executing on other
        // workers; now blocking is safe.
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        break;
    }
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        error = std::exchange(error_, nullptr);
    }
    if (error)
        std::rethrow_exception(error);
}

void
InnerExecutor::forEachBlock(int blocks,
                            const std::function<void(int)> &fn) const
{
    PRA_CHECK(blocks >= 0, "forEachBlock: negative blocks");
    if (!pool_ || maxTasks_ <= 1 || blocks <= 1) {
        for (int b = 0; b < blocks; b++)
            fn(b);
        return;
    }
    TaskGroup group(*pool_);
    for (int b = 0; b < blocks; b++)
        group.run([&fn, b] { fn(b); });
    group.wait();
}

} // namespace util
} // namespace pra
