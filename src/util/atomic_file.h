/**
 * @file
 * Atomic whole-file writes for CSV/JSON outputs.
 *
 * Tools that honor --csv=PATH used to stream straight into the
 * destination, so a failure mid-write (full disk, killed process,
 * fatal() in the producer) left a torn file where a previous good
 * result may have lived. writeFileAtomic() writes the payload to a
 * sibling temporary (PATH + ".tmp"), verifies the stream survived,
 * and only then renames over PATH — std::rename is atomic within a
 * filesystem on POSIX, so readers of PATH observe either the old
 * bytes or the new bytes, never a prefix.
 */

#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace pra {
namespace util {

/** The temporary sibling writeFileAtomic() stages @p path through. */
std::string atomicTempPath(const std::string &path);

/**
 * Write a file atomically: open @p path + ".tmp", hand the stream to
 * @p producer, flush, and rename onto @p path. Any failure — the
 * temporary cannot be opened, the stream is in a failed state after
 * the producer ran (including failures the producer injects), the
 * rename is refused, or the producer throws — removes the temporary
 * and calls fatal() (or rethrows), leaving whatever @p path held
 * before completely untouched.
 */
void writeFileAtomic(const std::string &path,
                     const std::function<void(std::ostream &)> &producer);

} // namespace util
} // namespace pra
