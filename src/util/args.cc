#include "util/args.h"

#include <cstdlib>

#include "util/logging.h"

namespace pra {
namespace util {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body.empty())
            fatal("empty flag name: '" + arg + "'");
        // Values attach with '='; a bare "--name" is a boolean. The
        // "--name value" form is deliberately unsupported: it is
        // ambiguous against positional arguments.
        auto eq = body.find('=');
        if (eq != std::string::npos)
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        else
            flags_[body] = "";
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
ArgParser::getString(const std::string &name,
                     const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

int64_t
ArgParser::getInt(const std::string &name, int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --" + name + " expects an integer, got '" +
              it->second + "'");
    return v;
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --" + name + " expects a number, got '" +
              it->second + "'");
    return v;
}

bool
ArgParser::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("flag --" + name + " expects a boolean, got '" + v + "'");
}

} // namespace util
} // namespace pra
