#include "util/args.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace pra {
namespace util {

namespace {

/** Plain Levenshtein distance for "did you mean" suggestions. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); j++)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); i++) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); j++) {
            size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

ArgParser::ArgParser(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body.empty())
            fatal("empty flag name: '" + arg + "'");
        // Values attach with '='; a bare "--name" is a boolean. The
        // "--name value" form is deliberately unsupported: it is
        // ambiguous against positional arguments.
        auto eq = body.find('=');
        if (eq != std::string::npos)
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
        else
            flags_[body] = "";
    }
}

void
ArgParser::checkUnknown(const std::vector<std::string> &known) const
{
    for (const auto &[name, value] : flags_) {
        (void)value;
        if (std::find(known.begin(), known.end(), name) != known.end())
            continue;
        std::string msg = "unknown flag --" + name;
        size_t best = name.size();
        const std::string *suggestion = nullptr;
        for (const auto &candidate : known) {
            size_t d = editDistance(name, candidate);
            if (d < best && d <= 2) {
                best = d;
                suggestion = &candidate;
            }
        }
        if (suggestion)
            msg += " (did you mean --" + *suggestion + "?)";
        fatal(msg);
    }
}

bool
ArgParser::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
ArgParser::getString(const std::string &name,
                     const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

int64_t
ArgParser::getInt(const std::string &name, int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --" + name + " expects an integer, got '" +
              it->second + "'");
    return v;
}

double
ArgParser::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --" + name + " expects a number, got '" +
              it->second + "'");
    return v;
}

bool
ArgParser::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1" || v == "yes" ||
        v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("flag --" + name + " expects a boolean, got '" + v + "'");
}

} // namespace util
} // namespace pra
