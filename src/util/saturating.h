/**
 * @file
 * Saturating unsigned 64-bit arithmetic.
 *
 * Cycle timestamps in the serving simulator are uint64_t and several
 * of them are user-controlled (--timeout, --backoff, --mtbf): naive
 * addition wraps for huge values and a wrapped deadline silently
 * reorders the event timeline. These helpers clamp to UINT64_MAX
 * instead, which the serving layer treats as "never" (kNeverFills /
 * kNoFault are both UINT64_MAX), so a saturated time stays on the
 * correct side of every comparison.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace pra {
namespace util {

/** a + b, clamped to UINT64_MAX instead of wrapping. */
inline constexpr uint64_t
saturatingAdd(uint64_t a, uint64_t b)
{
    return a > std::numeric_limits<uint64_t>::max() - b
               ? std::numeric_limits<uint64_t>::max()
               : a + b;
}

/** a * b, clamped to UINT64_MAX instead of wrapping. */
inline constexpr uint64_t
saturatingMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return a > std::numeric_limits<uint64_t>::max() / b
               ? std::numeric_limits<uint64_t>::max()
               : a * b;
}

/** a << shift, clamped to UINT64_MAX instead of losing high bits. */
inline constexpr uint64_t
saturatingShl(uint64_t a, int shift)
{
    if (a == 0)
        return 0;
    if (shift >= 64)
        return std::numeric_limits<uint64_t>::max();
    return a > (std::numeric_limits<uint64_t>::max() >> shift)
               ? std::numeric_limits<uint64_t>::max()
               : a << shift;
}

} // namespace util
} // namespace pra
