/**
 * @file
 * A tiny command-line flag parser shared by benches and examples.
 *
 * Flags look like "--name=value"; bare "--name" sets a boolean.
 * Anything else is a positional argument. ("--name value" is
 * deliberately unsupported: it is ambiguous against positionals.)
 *
 * Programs declare the flags they understand with checkUnknown():
 * a misspelled flag ("--smke") then fails loudly instead of silently
 * running with defaults.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pra {
namespace util {

/** Parsed command-line arguments. */
class ArgParser
{
  public:
    /** Parse argv; fatal() on malformed flags. */
    ArgParser(int argc, const char *const *argv);

    bool has(const std::string &name) const;

    /** String flag value, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback = "") const;

    /** Integer flag value, or @p fallback when absent. */
    int64_t getInt(const std::string &name, int64_t fallback) const;

    /** Double flag value, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Boolean flag: present without value, or
     * "true"/"false"/"1"/"0"/"yes"/"no"/"on"/"off".
     */
    bool getBool(const std::string &name, bool fallback = false) const;

    /**
     * fatal() when any parsed flag is not in @p known — call once,
     * after construction, with every flag the program understands.
     * The error names the closest known flag when one is plausible.
     */
    void checkUnknown(const std::vector<std::string> &known) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    const std::string &programName() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace pra

