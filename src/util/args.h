/**
 * @file
 * A tiny command-line flag parser shared by benches and examples.
 *
 * Flags look like "--name=value"; bare "--name" sets a boolean.
 * Anything else is a positional argument. ("--name value" is
 * deliberately unsupported: it is ambiguous against positionals.)
 */

#ifndef PRA_UTIL_ARGS_H
#define PRA_UTIL_ARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pra {
namespace util {

/** Parsed command-line arguments. */
class ArgParser
{
  public:
    /** Parse argv; fatal() on malformed flags. */
    ArgParser(int argc, const char *const *argv);

    bool has(const std::string &name) const;

    /** String flag value, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback = "") const;

    /** Integer flag value, or @p fallback when absent. */
    int64_t getInt(const std::string &name, int64_t fallback) const;

    /** Double flag value, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean flag: present without value, or "true"/"false"/"1"/"0". */
    bool getBool(const std::string &name, bool fallback = false) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    const std::string &programName() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace pra

#endif // PRA_UTIL_ARGS_H
