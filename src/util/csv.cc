#include "util/csv.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace util {

CsvWriter::CsvWriter(std::ostream &out)
    : out_(out)
{
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeLine(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); i++) {
        out_ << escape(cells[i]);
        if (i + 1 < cells.size())
            out_ << ',';
    }
    out_ << '\n';
}

void
CsvWriter::writeHeader(const std::vector<std::string> &cells)
{
    PRA_CHECK(!headerWritten_ && rows_ == 0,
                   "CSV header must be written first and only once");
    width_ = cells.size();
    headerWritten_ = true;
    writeLine(cells);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    // The first row (header or not) locks the table width; headerless
    // tables must not silently emit ragged CSV.
    if (!headerWritten_ && rows_ == 0)
        width_ = cells.size();
    PRA_CHECK(cells.size() == width_, "CSV row width mismatch");
    rows_++;
    writeLine(cells);
}

} // namespace util
} // namespace pra
