/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts. inform() and warn() report
 * status without stopping the simulation.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace pra {
namespace util {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Get the current global verbosity. */
LogLevel logLevel();

/** Set the global verbosity (affects inform/warn/debug output). */
void setLogLevel(LogLevel level);

/**
 * Emit a message to stderr at the given level, prefixed with its
 * severity tag. No-op if the global verbosity is lower than @p level.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Informative status message (not a problem). */
void inform(const std::string &msg);

/** Something is questionable but the run can continue. */
void warn(const std::string &msg);

/** Verbose debugging output. */
void debug(const std::string &msg);

/**
 * Report an unrecoverable *user* error (bad configuration, bad
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace util
} // namespace pra

