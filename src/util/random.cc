#include "util/random.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace util {

namespace {

/** splitmix64: used only for seeding. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(uint64_t seed)
    : gaussSpare_(0.0), hasSpare_(false)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // A state of all zeros is the one forbidden state; splitmix64
    // cannot produce four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Xoshiro256::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Xoshiro256::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Xoshiro256::nextBounded(uint64_t bound)
{
    PRA_CHECK(bound > 0, "nextBounded: bound must be positive");
    // Lemire's nearly-divisionless method with rejection.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = (0 - bound) % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Xoshiro256::nextInRange(int64_t lo, int64_t hi)
{
    PRA_CHECK(lo <= hi, "nextInRange: lo must be <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

bool
Xoshiro256::nextBool(double p)
{
    return nextDouble() < p;
}

double
Xoshiro256::nextGaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return gaussSpare_;
    }
    // Box-Muller: deterministic given the stream, portable.
    double u1 = nextDouble();
    double u2 = nextDouble();
    // Avoid log(0).
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    gaussSpare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Xoshiro256::nextExponential(double lambda)
{
    PRA_CHECK(lambda > 0.0, "nextExponential: lambda must be > 0");
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -std::log(u) / lambda;
}

} // namespace util
} // namespace pra
