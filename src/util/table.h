/**
 * @file
 * Aligned plain-text table rendering for bench/report output.
 *
 * Every bench binary prints the rows of the paper table or figure it
 * reproduces; TextTable keeps that output readable and diffable.
 */

#pragma once

#include <string>
#include <vector>

namespace pra {
namespace util {

/** A simple right-padded text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns, two spaces between columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals fractional digits. */
std::string formatDouble(double value, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.281 -> "28.1%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace util
} // namespace pra

