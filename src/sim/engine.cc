#include "sim/engine.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

LayerResult
Engine::simulateLayer(const dnn::LayerSpec &layer,
                      const LayerWorkload &workload,
                      const AccelConfig &accel, const SampleSpec &sample,
                      const util::InnerExecutor &exec) const
{
    (void)exec; // Engines without a block-parallel path run serially.
    return simulateLayer(layer, workload.tensor(), accel, sample);
}

NetworkResult
Engine::runNetwork(const dnn::Network &network,
                   const WorkloadSource &source, const AccelConfig &accel,
                   const SampleSpec &sample,
                   const util::InnerExecutor &exec) const
{
    NetworkResult result;
    result.networkName = network.name;
    result.engineName = name();
    result.layers.reserve(network.layers.size());
    for (size_t i = 0; i < network.layers.size(); i++) {
        // Pool layers are structural (shape bridging for the
        // propagated pipeline): no engine prices them.
        if (!network.layers[i].priced())
            continue;
        std::shared_ptr<const LayerWorkload> workload =
            source.layer(static_cast<int>(i), inputStream());
        result.layers.push_back(simulateLayer(network.layers[i],
                                              *workload, accel, sample,
                                              exec));
    }
    return result;
}

NetworkResult
Engine::runNetwork(const dnn::Network &network,
                   const dnn::ActivationSynthesizer &activations,
                   const AccelConfig &accel, const SampleSpec &sample) const
{
    return runNetwork(network, WorkloadSource(activations), accel,
                      sample, util::InnerExecutor());
}

NetworkResult
Engine::runBatch(const dnn::Network &network,
                 const WorkloadSource &source, const AccelConfig &accel,
                 const SampleSpec &sample,
                 const util::InnerExecutor &exec, int batch) const
{
    PRA_CHECK(batch >= 1, "runBatch: batch size must be >= 1");
    NetworkResult result = runNetwork(network, source.withImage(0),
                                      accel, sample, exec);
    for (int b = 1; b < batch; b++)
        accumulateBatchImage(result,
                             runNetwork(network, source.withImage(b),
                                        accel, sample, exec));
    for (auto &layer : result.layers)
        layer.batchImages = batch;
    return result;
}

} // namespace sim
} // namespace pra
