#include "sim/engine.h"

#include "util/logging.h"

namespace pra {
namespace sim {

dnn::NeuronTensor
synthesizeStream(const dnn::ActivationSynthesizer &activations,
                 int layer_idx, InputStream stream)
{
    switch (stream) {
      case InputStream::None:
        return dnn::NeuronTensor();
      case InputStream::Fixed16Raw:
        return activations.synthesizeFixed16(layer_idx);
      case InputStream::Fixed16Trimmed:
        return activations.synthesizeFixed16Trimmed(layer_idx);
      case InputStream::Quant8:
        return activations.synthesizeQuant8(layer_idx);
    }
    util::fatal("synthesizeStream: bad stream");
}

NetworkResult
Engine::runNetwork(const dnn::Network &network,
                   const dnn::ActivationSynthesizer &activations,
                   const AccelConfig &accel,
                   const SampleSpec &sample) const
{
    NetworkResult result;
    result.networkName = network.name;
    result.engineName = name();
    result.layers.reserve(network.layers.size());
    for (size_t i = 0; i < network.layers.size(); i++) {
        dnn::NeuronTensor input = synthesizeStream(
            activations, static_cast<int>(i), inputStream());
        result.layers.push_back(simulateLayer(network.layers[i], input,
                                              accel, sample));
    }
    return result;
}

} // namespace sim
} // namespace pra
