#include "sim/sweep.h"

#include <cstdio>

#include "dnn/activation_synth.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pra {
namespace sim {

namespace {

std::string
roundTrip(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

std::vector<NetworkResult>
runSweep(const std::vector<dnn::Network> &networks,
         const std::vector<EngineSelection> &engines,
         const EngineRegistry &registry, const SweepOptions &options)
{
    util::checkInvariant(!networks.empty() && !engines.empty(),
                         "runSweep: empty grid");
    // Validate every selection up front so knob errors surface before
    // any worker starts.
    for (const auto &sel : engines)
        registry.create(sel);

    const size_t cells = networks.size() * engines.size();
    std::vector<NetworkResult> results(cells);

    auto runCell = [&](size_t net_idx, size_t eng_idx) {
        // Each job builds its own engine and synthesizer: nothing is
        // shared across threads, and the stream depends only on
        // (network, seed), so any schedule yields identical results.
        const dnn::Network &network = networks[net_idx];
        std::unique_ptr<Engine> engine =
            registry.create(engines[eng_idx]);
        dnn::ActivationSynthesizer activations(network, options.seed);
        results[net_idx * engines.size() + eng_idx] =
            engine->runNetwork(network, activations, options.accel,
                               options.sample);
    };

    if (options.threads <= 1) {
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                runCell(n, e);
    } else {
        util::ThreadPool pool(options.threads);
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                pool.submit([&runCell, n, e] { runCell(n, e); });
        pool.wait();
    }
    return results;
}

const NetworkResult &
findResult(const std::vector<NetworkResult> &results,
           const std::string &network, const std::string &engine)
{
    for (const auto &result : results)
        if (result.networkName == network &&
            result.engineName == engine)
            return result;
    util::fatal("sweep: no result for (" + network + ", " + engine +
                ")");
}

void
writeSweepCsv(std::ostream &out,
              const std::vector<NetworkResult> &results, bool per_layer)
{
    util::CsvWriter csv(out);
    std::vector<std::string> header = {"network", "engine"};
    if (per_layer)
        header.push_back("layer");
    header.insert(header.end(),
                  {"cycles", "nm_stall_cycles", "effectual_terms",
                   "sb_read_steps"});
    csv.writeHeader(header);
    for (const auto &result : results) {
        if (per_layer) {
            for (const auto &layer : result.layers)
                csv.writeRow({result.networkName, result.engineName,
                              layer.layerName, roundTrip(layer.cycles),
                              roundTrip(layer.nmStallCycles),
                              roundTrip(layer.effectualTerms),
                              roundTrip(layer.sbReadSteps)});
        } else {
            double terms = 0.0;
            double sb_reads = 0.0;
            for (const auto &layer : result.layers) {
                terms += layer.effectualTerms;
                sb_reads += layer.sbReadSteps;
            }
            csv.writeRow({result.networkName, result.engineName,
                          roundTrip(result.totalCycles()),
                          roundTrip(result.totalStalls()),
                          roundTrip(terms), roundTrip(sb_reads)});
        }
    }
}

} // namespace sim
} // namespace pra
