#include "sim/sweep.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "dnn/activation_synth.h"
#include "sim/memory/memory_model.h"
#include "sim/workload_cache.h"
#include "util/csv.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pra {
namespace sim {

namespace {

std::string
roundTrip(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/**
 * Blocks one cell may split a layer into. An explicit innerThreads
 * wins; automatic mode splits only when the grid alone cannot keep
 * every worker busy, handing each cell its share of the pool.
 */
int
resolveInnerTasks(const SweepOptions &options, size_t cells)
{
    int threads = std::max(1, options.threads);
    if (options.innerThreads > 0)
        return options.innerThreads;
    if (cells >= static_cast<size_t>(threads))
        return 1;
    return static_cast<int>(
        (threads + cells - 1) / static_cast<int>(cells));
}

} // namespace

std::vector<NetworkResult>
runSweep(const std::vector<dnn::Network> &networks,
         const std::vector<EngineSelection> &engines,
         const EngineRegistry &registry, const SweepOptions &options)
{
    PRA_CHECK(!networks.empty() && !engines.empty(),
                         "runSweep: empty grid");
    PRA_CHECK(options.batch >= 1, "runSweep: batch must be >= 1");
    PRA_CHECK(options.shardCount >= 1 && options.shardIndex >= 0 &&
                  options.shardIndex < options.shardCount,
              "runSweep: shard index out of range");
    // Validate every selection up front so knob errors surface before
    // any worker starts.
    for (const auto &sel : engines)
        registry.create(sel);

    const size_t cells = networks.size() * engines.size();
    // The shard's contiguous slice of the grid-order cell list; the
    // balanced-split endpoints make shards 0..N-1 partition the grid
    // exactly, so concatenated shard outputs equal the unsharded run.
    const size_t shard_first =
        cells * static_cast<size_t>(options.shardIndex) /
        static_cast<size_t>(options.shardCount);
    const size_t shard_last =
        cells * (static_cast<size_t>(options.shardIndex) + 1) /
        static_cast<size_t>(options.shardCount);
    std::vector<NetworkResult> results(shard_last - shard_first);
    // More shards than cells leaves some shards empty; header-only
    // CSV output is exactly what concatenation expects from them.
    if (results.empty())
        return results;

    WorkloadCache cache;
    WorkloadCache *shared = options.cache ? &cache : nullptr;

    auto runCell = [&](size_t net_idx, size_t eng_idx,
                       const util::InnerExecutor &exec) {
        // Each job builds its own engine; the workload source is
        // either private (cache off: streams rebuilt per cell) or
        // backed by the sweep-wide cache. Streams depend only on
        // (network, seed), so both modes and any schedule yield
        // identical results.
        const dnn::Network &network = networks[net_idx];
        std::unique_ptr<Engine> engine =
            registry.create(engines[eng_idx]);
        std::shared_ptr<const dnn::ActivationSynthesizer> synth =
            shared ? shared->synthesizer(network, options.seed)
                   : std::make_shared<const dnn::ActivationSynthesizer>(
                         network, options.seed);
        WorkloadSource source =
            shared ? WorkloadSource(*synth, *shared,
                                    options.activations)
                   : WorkloadSource(*synth, options.activations);
        NetworkResult &cell =
            results[net_idx * engines.size() + eng_idx - shard_first];
        cell = engine->runBatch(network, source, options.accel,
                                options.sample, exec, options.batch);
        // Compose compute cycles with the memory hierarchy (no-op
        // when --memory=off). Pure per-layer arithmetic over the
        // finished result, so any schedule stays bit-identical.
        applyMemoryModel(network, options.accel, cell);
    };

    auto inShard = [&](size_t n, size_t e) {
        size_t cell = n * engines.size() + e;
        return cell >= shard_first && cell < shard_last;
    };

    const int inner = resolveInnerTasks(options, results.size());
    if (options.threads <= 1 && inner <= 1) {
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                if (inShard(n, e))
                    runCell(n, e, util::InnerExecutor());
    } else {
        util::ThreadPool pool(options.threads);
        util::InnerExecutor exec(&pool, inner);
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                if (inShard(n, e))
                    pool.submit([&runCell, &exec, n, e] {
                        runCell(n, e, exec);
                    });
        pool.wait();
    }
    return results;
}

const NetworkResult &
findResult(const std::vector<NetworkResult> &results,
           const std::string &network, const std::string &engine)
{
    for (const auto &result : results)
        if (result.networkName == network &&
            result.engineName == engine)
            return result;
    util::fatal("sweep: no result for (" + network + ", " + engine +
                ")");
}

void
writeSweepCsv(std::ostream &out,
              const std::vector<NetworkResult> &results, bool per_layer)
{
    // Memory columns appear only when some cell was produced with
    // memory modeling on, so the default (--memory=off) output stays
    // byte-identical to the committed goldens; the batch columns are
    // gated the same way on any cell actually being batched.
    bool memory = false;
    bool batched = false;
    for (const auto &result : results) {
        memory = memory || result.memoryModeled();
        batched = batched || result.batched();
    }

    util::CsvWriter csv(out);
    std::vector<std::string> header = {"network", "engine"};
    if (per_layer)
        header.push_back("layer");
    header.insert(header.end(),
                  {"cycles", "nm_stall_cycles", "effectual_terms",
                   "sb_read_steps"});
    if (batched)
        header.insert(header.end(), {"batch", "cycles_per_image"});
    if (memory)
        header.insert(header.end(),
                      {"on_chip_bytes", "off_chip_bytes",
                       "mem_stall_cycles", "system_cycles",
                       "bw_bound"});
    csv.writeHeader(header);
    for (const auto &result : results) {
        if (per_layer) {
            for (const auto &layer : result.layers) {
                std::vector<std::string> row = {
                    result.networkName, result.engineName,
                    layer.layerName, roundTrip(layer.cycles),
                    roundTrip(layer.nmStallCycles),
                    roundTrip(layer.effectualTerms),
                    roundTrip(layer.sbReadSteps)};
                if (batched) {
                    row.push_back(std::to_string(layer.batchImages));
                    row.push_back(roundTrip(layer.cyclesPerImage()));
                }
                if (memory) {
                    row.push_back(roundTrip(layer.onChipBytes));
                    row.push_back(roundTrip(layer.offChipBytes));
                    row.push_back(roundTrip(layer.memStallCycles));
                    row.push_back(roundTrip(layer.systemCycles()));
                    row.push_back(layer.bandwidthBound ? "1" : "0");
                }
                csv.writeRow(row);
            }
        } else {
            double terms = 0.0;
            double sb_reads = 0.0;
            int bw_bound = 0;
            for (const auto &layer : result.layers) {
                terms += layer.effectualTerms;
                sb_reads += layer.sbReadSteps;
                bw_bound += layer.bandwidthBound ? 1 : 0;
            }
            std::vector<std::string> row = {
                result.networkName, result.engineName,
                roundTrip(result.totalCycles()),
                roundTrip(result.totalStalls()), roundTrip(terms),
                roundTrip(sb_reads)};
            if (batched) {
                row.push_back(std::to_string(result.batchImages()));
                row.push_back(roundTrip(
                    result.totalCycles() /
                    static_cast<double>(result.batchImages())));
            }
            if (memory) {
                row.push_back(roundTrip(result.totalOnChipBytes()));
                row.push_back(roundTrip(result.totalOffChipBytes()));
                row.push_back(roundTrip(result.totalMemStalls()));
                row.push_back(roundTrip(result.totalSystemCycles()));
                // Network rows count their bandwidth-bound layers.
                row.push_back(std::to_string(bw_bound));
            }
            csv.writeRow(row);
        }
    }
}

} // namespace sim
} // namespace pra
