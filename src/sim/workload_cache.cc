#include "sim/workload_cache.h"

#include <algorithm>
#include <atomic>
#include <bit>

// The cycle planes memoize the Pragmatic brick schedule, so this one
// sim/ file reaches up into models/pragmatic for the batched kernel;
// everything builds into the single pra_core library.
#include "models/pragmatic/schedule.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

namespace {

/** The shared view value-independent engines receive. */
const std::shared_ptr<const LayerWorkload> &
emptyWorkload()
{
    static const std::shared_ptr<const LayerWorkload> empty =
        std::make_shared<const LayerWorkload>(dnn::NeuronTensor());
    return empty;
}

std::atomic<bool> g_cyclePlanesEnabled{true};

/**
 * The weight-plane builder a (mode, seed) workload carries:
 * propagated workloads price the requantized reference filters the
 * forward pass convolved; synthetic workloads keep the default
 * builder (layer-pure synthetic weight streams).
 */
LayerWorkload::WeightPlaneBuilder
weightPlaneBuilder(ActivationMode mode, uint64_t seed)
{
    if (mode != ActivationMode::Propagated)
        return {};
    return [seed](const dnn::LayerSpec &layer) {
        return propagatedWeightPlanes(layer, seed, dnn::kBrickSize);
    };
}

/**
 * Fold (stream, mode) into the int slot of LayerKey: synthetic and
 * propagated views of the same layer must never alias.
 */
int
streamModeTag(InputStream stream, ActivationMode mode)
{
    return static_cast<int>(stream) |
           (static_cast<int>(mode) << 8);
}

} // namespace

void
setCyclePlanesEnabled(bool enabled)
{
    g_cyclePlanesEnabled.store(enabled, std::memory_order_relaxed);
}

bool
cyclePlanesEnabled()
{
    return g_cyclePlanesEnabled.load(std::memory_order_relaxed);
}

const char *
activationModeName(ActivationMode mode)
{
    switch (mode) {
      case ActivationMode::Synthetic: return "synthetic";
      case ActivationMode::Propagated: return "propagated";
    }
    util::fatal("activationModeName: bad mode");
}

ActivationMode
parseActivationMode(const std::string &text)
{
    if (text == "synthetic")
        return ActivationMode::Synthetic;
    if (text == "propagated")
        return ActivationMode::Propagated;
    util::fatal("--activations must be synthetic or propagated (got '" +
                text + "')");
}

dnn::NeuronTensor
synthesizeStream(const dnn::ActivationSynthesizer &activations,
                 int layer_idx, InputStream stream, int image)
{
    switch (stream) {
      case InputStream::None:
        return dnn::NeuronTensor();
      case InputStream::Fixed16Raw:
        return activations.synthesizeFixed16(layer_idx, image);
      case InputStream::Fixed16Trimmed:
        return activations.synthesizeFixed16Trimmed(layer_idx, image);
      case InputStream::Quant8:
        return activations.synthesizeQuant8(layer_idx, image);
    }
    util::fatal("synthesizeStream: bad stream");
}

dnn::NeuronTensor
propagatedStream(const dnn::PropagatedChain &chain,
                 const dnn::Network &network, int layer_idx,
                 InputStream stream)
{
    const dnn::LayerSpec &layer =
        network.layers.at(static_cast<size_t>(layer_idx));
    PRA_CHECK(layer.priced(),
                         "propagatedStream: pools carry no priced "
                         "stream");
    const dnn::NeuronTensor &raw =
        chain.inputs.at(static_cast<size_t>(layer_idx));
    switch (stream) {
      case InputStream::None:
        return dnn::NeuronTensor();
      case InputStream::Fixed16Raw:
        return raw;
      case InputStream::Fixed16Trimmed:
        return dnn::trimToPrecision(layer, raw);
      case InputStream::Quant8:
        return dnn::quantizeStream(raw);
    }
    util::fatal("propagatedStream: bad stream");
}

const BrickPlanes &
LayerWorkload::brickPlanes() const
{
    std::call_once(planesOnce_,
                   [this] { planes_ = buildBrickPlanes(tensor_); });
    return planes_;
}

const LanePopPlanes &
LayerWorkload::lanePopPlanes() const
{
    std::call_once(lanePopsOnce_, [this] {
        lanePops_ = buildLanePopPlanes(tensor_);
    });
    return lanePops_;
}

const WeightBrickPlanes &
LayerWorkload::weightPlanes(const dnn::LayerSpec &layer) const
{
    std::call_once(weightOnce_, [this, &layer] {
        weightPlanes_ =
            weightBuilder_
                ? weightBuilder_(layer)
                : syntheticWeightPlanes(layer, dnn::kBrickSize);
    });
    return weightPlanes_;
}

std::span<const uint8_t>
LayerWorkload::cyclePlane(int first_stage_bits) const
{
    PRA_CHECK(first_stage_bits >= 1 && first_stage_bits <= 3,
                         "cyclePlane: only intermediate widths are "
                         "memoized (L=0/4 live in the brick planes)");
    PRA_CHECK(!tensor_.empty(),
                         "cyclePlane: empty workload has no planes");
    const int slot = first_stage_bits - 1;
    std::call_once(cyclesOnce_[slot], [this, first_stage_bits, slot] {
        const int channels = tensor_.sizeI();
        const int columns = tensor_.sizeX();
        const int bricks = (channels + dnn::kBrickSize - 1) /
                           dnn::kBrickSize;
        std::vector<uint8_t> plane(static_cast<size_t>(columns) *
                                   tensor_.sizeY() * bricks);
        // One batched kernel call per y-row: the tensor's
        // channel-major layout keeps a row's lanes contiguous, so the
        // kernel walks it with no per-brick gather.
        const size_t row_len = static_cast<size_t>(columns) * channels;
        const size_t out_len = static_cast<size_t>(columns) * bricks;
        for (int y = 0; y < tensor_.sizeY(); y++)
            models::scheduleCyclesRow(
                tensor_.flat().subspan(y * row_len, row_len), columns,
                channels, first_stage_bits,
                std::span<uint8_t>(plane.data() + y * out_len,
                                   out_len));
        cycles_[slot] = std::move(plane);
    });
    return cycles_[slot];
}

std::shared_ptr<const dnn::ActivationSynthesizer>
WorkloadCache::synthesizer(const dnn::Network &network, uint64_t seed)
{
    SynthKey key{network.name, network.workloadFingerprint(), seed};
    std::shared_future<std::shared_ptr<const dnn::ActivationSynthesizer>>
        future;
    Entry<const dnn::ActivationSynthesizer> *mine = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto [it, inserted] = synths_.try_emplace(key);
        if (inserted) {
            it->second.future = it->second.promise.get_future().share();
            mine = &it->second;
        }
        future = it->second.future;
    }
    if (mine) {
        // Build outside the lock: other keys proceed concurrently,
        // same-key requesters block on the future. A failed build
        // must fulfill the promise too, or every waiter hangs.
        try {
            mine->promise.set_value(
                std::make_shared<const dnn::ActivationSynthesizer>(
                    network, seed));
        } catch (...) {
            mine->promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const LayerWorkload>
WorkloadCache::layer(const dnn::ActivationSynthesizer &synth,
                     int layer_idx, InputStream stream,
                     ActivationMode mode, int image)
{
    if (stream == InputStream::None)
        return emptyWorkload();
    // Propagated codes already live inside the profiled window, so
    // trimming is the identity (see dnn/propagate.h): serve the
    // trimmed view from the raw entry instead of storing a
    // bit-identical duplicate (and rebuilding its brick planes).
    if (mode == ActivationMode::Propagated &&
        stream == InputStream::Fixed16Trimmed)
        stream = InputStream::Fixed16Raw;
    LayerKey key{synth.network().name,
                 synth.network().workloadFingerprint(), synth.seed(),
                 layer_idx, streamModeTag(stream, mode), image};
    std::shared_future<std::shared_ptr<const LayerWorkload>> future;
    Entry<const LayerWorkload> *mine = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto [it, inserted] = layers_.try_emplace(key);
        if (inserted) {
            it->second.future = it->second.promise.get_future().share();
            mine = &it->second;
            misses_++;
        } else {
            hits_++;
        }
        future = it->second.future;
    }
    if (mine) {
        try {
            dnn::NeuronTensor tensor;
            if (mode == ActivationMode::Propagated) {
                // chain() takes the mutex only briefly; building the
                // chain itself happens outside it, so this nested
                // call cannot deadlock.
                std::shared_ptr<const dnn::PropagatedChain> shared =
                    chain(synth, image);
                tensor = propagatedStream(*shared, synth.network(),
                                          layer_idx, stream);
            } else {
                tensor = synthesizeStream(synth, layer_idx, stream,
                                          image);
            }
            mine->promise.set_value(
                std::make_shared<const LayerWorkload>(
                    std::move(tensor),
                    weightPlaneBuilder(mode, synth.seed())));
        } catch (...) {
            mine->promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const dnn::PropagatedChain>
WorkloadCache::chain(const dnn::ActivationSynthesizer &synth,
                     int image)
{
    ChainKey key{synth.network().name,
                 synth.network().workloadFingerprint(), synth.seed(),
                 image};
    std::shared_future<std::shared_ptr<const dnn::PropagatedChain>>
        future;
    Entry<const dnn::PropagatedChain> *mine = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto [it, inserted] = chains_.try_emplace(key);
        if (inserted) {
            it->second.future = it->second.promise.get_future().share();
            mine = &it->second;
        }
        future = it->second.future;
    }
    if (mine) {
        try {
            mine->promise.set_value(
                std::make_shared<const dnn::PropagatedChain>(
                    dnn::propagateChain(synth, image)));
        } catch (...) {
            mine->promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

int64_t
WorkloadCache::hits() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return hits_;
}

int64_t
WorkloadCache::misses() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return misses_;
}

WorkloadSource
WorkloadSource::withImage(int image) const
{
    PRA_CHECK(image >= 0, "WorkloadSource::withImage: batch image "
                          "index must be non-negative");
    WorkloadSource copy(*this);
    if (copy.image_ != image) {
        copy.image_ = image;
        copy.localChain_.reset();
    }
    return copy;
}

std::shared_ptr<const LayerWorkload>
WorkloadSource::layer(int layer_idx, InputStream stream) const
{
    if (stream == InputStream::None)
        return emptyWorkload();
    if (cache_)
        return cache_->layer(synth_, layer_idx, stream, mode_, image_);
    if (mode_ == ActivationMode::Propagated) {
        // Trimmed == raw on propagated streams (identity by
        // construction); the cached path makes the same alias.
        if (stream == InputStream::Fixed16Trimmed)
            stream = InputStream::Fixed16Raw;
        return std::make_shared<const LayerWorkload>(
            propagatedStream(*chain(), synth_.network(), layer_idx,
                             stream),
            weightPlaneBuilder(mode_, synth_.seed()));
    }
    return std::make_shared<const LayerWorkload>(
        synthesizeStream(synth_, layer_idx, stream, image_));
}

std::shared_ptr<const dnn::PropagatedChain>
WorkloadSource::chain() const
{
    if (mode_ != ActivationMode::Propagated)
        util::fatal("WorkloadSource::chain: synthetic sources have "
                    "no propagated chain");
    if (cache_)
        return cache_->chain(synth_, image_);
    if (!localChain_)
        localChain_ = std::make_shared<const dnn::PropagatedChain>(
            dnn::propagateChain(synth_, image_));
    return localChain_;
}

} // namespace sim
} // namespace pra
