#include "sim/nm_model.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

int
nmFetchCycles(const LayerTiling &tiling, int64_t pallet, int64_t set)
{
    const AccelConfig &config = tiling.config();
    SynapseSetCoord coord = tiling.setCoord(set);
    std::vector<int64_t> rows;
    rows.reserve(config.windowsPerPallet * 2);
    for (int c = 0; c < config.windowsPerPallet; c++) {
        int64_t w = tiling.windowIndex(pallet, c);
        if (w < 0)
            continue;
        int64_t addr = tiling.brickNmAddress(tiling.windowCoord(w), coord);
        if (addr < 0)
            continue; // Padding brick: no NM access.
        int64_t first_row = addr / config.nmRowNeurons;
        int64_t last_row = (addr + config.neuronLanes - 1) /
                           config.nmRowNeurons;
        for (int64_t r = first_row; r <= last_row; r++)
            rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    // Even an all-padding step costs one dispatch cycle.
    return std::max<int>(1, static_cast<int>(rows.size()));
}

int64_t
NmOverlapTracker::step(int64_t process_cycles, int64_t next_fetch_cycles)
{
    PRA_CHECK(process_cycles >= 0 && next_fetch_cycles >= 0,
                         "NmOverlapTracker: negative cycles");
    int64_t stall = std::max<int64_t>(0, next_fetch_cycles -
                                             process_cycles);
    stalls_ += stall;
    return stall;
}

} // namespace sim
} // namespace pra
