#include "sim/tiling.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

LayerTiling::LayerTiling(const dnn::LayerSpec &layer,
                         const AccelConfig &config)
    : layer_(layer), config_(config)
{
    PRA_CHECK(layer_.valid(), "LayerTiling: invalid layer");
    PRA_CHECK(config_.valid(), "LayerTiling: invalid config");
    PRA_CHECK(config_.neuronLanes <= dnn::kBrickSize,
                         "LayerTiling: neuronLanes exceeds brick size");
    int64_t windows = layer_.windows();
    numPallets_ = (windows + config_.windowsPerPallet - 1) /
                  config_.windowsPerPallet;
    channelBricks_ = (layer_.inputChannels + config_.neuronLanes - 1) /
                     config_.neuronLanes;
    numSets_ = static_cast<int64_t>(layer_.filterY) * layer_.filterX *
               channelBricks_;
    passes_ = config_.passes(layer_.numFilters);
}

int64_t
LayerTiling::palletCount(const dnn::LayerSpec &layer,
                         const AccelConfig &config)
{
    int64_t windows = layer.windows();
    return (windows + config.windowsPerPallet - 1) /
           config.windowsPerPallet;
}

WindowCoord
LayerTiling::windowCoord(int64_t w) const
{
    PRA_CHECK(w >= 0 && w < layer_.windows(),
                         "windowCoord: index out of range");
    WindowCoord coord;
    coord.x = static_cast<int>(w % layer_.outX());
    coord.y = static_cast<int>(w / layer_.outX());
    return coord;
}

int
LayerTiling::windowsInPallet(int64_t p) const
{
    PRA_CHECK(p >= 0 && p < numPallets_,
                         "windowsInPallet: pallet out of range");
    int64_t first = p * config_.windowsPerPallet;
    int64_t remaining = layer_.windows() - first;
    return static_cast<int>(
        std::min<int64_t>(remaining, config_.windowsPerPallet));
}

int64_t
LayerTiling::windowIndex(int64_t p, int column) const
{
    PRA_CHECK(column >= 0 && column < config_.windowsPerPallet,
                         "windowIndex: column out of range");
    int64_t w = p * config_.windowsPerPallet + column;
    return w < layer_.windows() ? w : -1;
}

SynapseSetCoord
LayerTiling::setCoord(int64_t s) const
{
    PRA_CHECK(s >= 0 && s < numSets_,
                         "setCoord: set out of range");
    SynapseSetCoord coord;
    coord.brickI = static_cast<int>(s % channelBricks_) *
                   config_.neuronLanes;
    int64_t rest = s / channelBricks_;
    coord.fx = static_cast<int>(rest % layer_.filterX);
    coord.fy = static_cast<int>(rest / layer_.filterX);
    return coord;
}

std::array<uint16_t, dnn::kBrickSize>
LayerTiling::gatherBrick(const dnn::NeuronTensor &input,
                         const WindowCoord &w,
                         const SynapseSetCoord &s) const
{
    std::array<uint16_t, dnn::kBrickSize> brick{};
    int x = w.x * layer_.stride - layer_.pad + s.fx;
    int y = w.y * layer_.stride - layer_.pad + s.fy;
    if (x < 0 || x >= layer_.inputX || y < 0 || y >= layer_.inputY)
        return brick; // Entirely padding: all zeros.
    int lanes = std::min(config_.neuronLanes,
                         layer_.inputChannels - s.brickI);
    for (int lane = 0; lane < lanes; lane++)
        brick[lane] = input.at(x, y, s.brickI + lane);
    return brick;
}

std::span<const uint16_t>
LayerTiling::gatherBrickView(const dnn::NeuronTensor &input,
                             const WindowCoord &w,
                             const SynapseSetCoord &s) const
{
    int x = w.x * layer_.stride - layer_.pad + s.fx;
    int y = w.y * layer_.stride - layer_.pad + s.fy;
    if (x < 0 || x >= layer_.inputX || y < 0 || y >= layer_.inputY)
        return {}; // Entirely padding: all zeros.
    int lanes = std::min(config_.neuronLanes,
                         layer_.inputChannels - s.brickI);
    return std::span<const uint16_t>(&input.at(x, y, s.brickI),
                                     static_cast<size_t>(lanes));
}

int64_t
LayerTiling::brickNmAddress(const WindowCoord &w,
                            const SynapseSetCoord &s) const
{
    int x = w.x * layer_.stride - layer_.pad + s.fx;
    int y = w.y * layer_.stride - layer_.pad + s.fy;
    if (x < 0 || x >= layer_.inputX || y < 0 || y >= layer_.inputY)
        return -1;
    // NM stores neurons brick-interleaved: consecutive x positions of
    // the same channel brick are adjacent, so a unit-stride pallet's
    // 16 bricks fall into one or two rows (Section V-A4).
    int64_t brick_index =
        (static_cast<int64_t>(s.brickI / config_.neuronLanes) *
             layer_.inputY +
         y) *
            layer_.inputX +
        x;
    return brick_index * config_.neuronLanes;
}

} // namespace sim
} // namespace pra
