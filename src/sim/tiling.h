/**
 * @file
 * Window/pallet/synapse-set tiling of a priced layer — convolutional
 * or lowered fully-connected (paper Sections IV-A1 and V-A3).
 *
 * Execution is organized as:
 *   for each pass (group of 256 filters)
 *     for each pallet (group of 16 adjacent windows)
 *       for each synapse set (filter position (fy, fx) x channel brick)
 *         process one neuron brick per window against 16 synapse
 *         bricks (one per filter lane)
 *
 * The classes here enumerate that structure and gather the neuron
 * bricks each step consumes, including zero padding at the borders.
 *
 * A fully-connected layer arrives here in its canonical lowered form
 * (1 x 1 x I input, 1 x 1 filters — see dnn/layer_spec.h): it tiles
 * to exactly one window in one partial pallet, with ceil(I / 16)
 * synapse sets, and needs no special casing anywhere below.
 */

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"

namespace pra {
namespace sim {

/** One synapse-set coordinate: a filter position and channel brick. */
struct SynapseSetCoord
{
    int fy = 0;      ///< Filter row.
    int fx = 0;      ///< Filter column.
    int brickI = 0;  ///< First channel of the brick (multiple of 16).

    bool operator==(const SynapseSetCoord &other) const = default;
};

/** A window position in the output space. */
struct WindowCoord
{
    int x = 0;
    int y = 0;

    bool operator==(const WindowCoord &other) const = default;
};

/**
 * Enumerates pallets and synapse sets for one layer under a given
 * machine configuration.
 */
class LayerTiling
{
  public:
    LayerTiling(const dnn::LayerSpec &layer,
                const AccelConfig &config);

    const dnn::LayerSpec &layer() const { return layer_; }
    const AccelConfig &config() const { return config_; }

    /** Total pallets: ceil(windows / windowsPerPallet). */
    int64_t numPallets() const { return numPallets_; }

    /**
     * The pallet count of @p layer under @p config without building
     * a full tiling — the single definition the memory model and the
     * batch scheduler share with the execution loop above: a batch
     * of B images runs this whole pass/pallet/set structure B times
     * (filters stay loaded across images; see
     * sim/memory/memory_model.h for the traffic consequences).
     */
    static int64_t palletCount(const dnn::LayerSpec &layer,
                               const AccelConfig &config);

    /** Synapse sets per window: Fx * Fy * ceil(I / brick). */
    int64_t numSynapseSets() const { return numSets_; }

    /** Passes over the windows (filter groups of 256). */
    int passes() const { return passes_; }

    /**
     * Window coordinate of window index @p w (row-major over the
     * output plane). w must be within [0, windows).
     */
    WindowCoord windowCoord(int64_t w) const;

    /**
     * Number of real windows in pallet @p p (the last pallet of a
     * layer may be partial).
     */
    int windowsInPallet(int64_t p) const;

    /** Window index of column @p c of pallet @p p; -1 when inactive. */
    int64_t windowIndex(int64_t p, int column) const;

    /** Synapse-set coordinate of set index @p s (fy, fx, brick order). */
    SynapseSetCoord setCoord(int64_t s) const;

    /**
     * Gather the 16 neurons of the brick consumed by window @p w at
     * synapse set @p s: the input brick at
     * (w.x * S - pad + s.fx, w.y * S - pad + s.fy, s.brickI).
     * Out-of-bounds positions (padding) and channels beyond I read 0.
     */
    std::array<uint16_t, dnn::kBrickSize>
    gatherBrick(const dnn::NeuronTensor &input, const WindowCoord &w,
                const SynapseSetCoord &s) const;

    /**
     * Zero-copy view of the same brick: the tensor's channel-major
     * layout keeps a brick's lanes contiguous, so the view aliases
     * @p input directly. Padding positions yield an empty span and a
     * partial channel brick a short one — both equivalent to
     * gatherBrick()'s zero-padded lanes for scheduling and popcount
     * purposes (zero lanes contribute nothing to either).
     */
    std::span<const uint16_t>
    gatherBrickView(const dnn::NeuronTensor &input, const WindowCoord &w,
                    const SynapseSetCoord &s) const;

    /**
     * First flat NM address (in neurons) of the brick, or -1 when the
     * whole brick lies in padding (no NM access needed).
     */
    int64_t brickNmAddress(const WindowCoord &w,
                           const SynapseSetCoord &s) const;

  private:
    dnn::LayerSpec layer_;
    AccelConfig config_;
    int64_t numPallets_ = 0;
    int64_t numSets_ = 0;
    int passes_ = 1;
    int channelBricks_ = 0;
};

} // namespace sim
} // namespace pra

