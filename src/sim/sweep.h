/**
 * @file
 * Parallel (network x engine) sweep driver with a shared workload
 * cache and two-level scheduling.
 *
 * A sweep fans the full grid of (model-zoo network, engine variant)
 * jobs out across a worker pool and collects one NetworkResult per
 * cell. All cells of a grid draw their synthesized streams from one
 * WorkloadCache (unless disabled), so each distinct (network,
 * representation, trim, seed) workload is built exactly once no
 * matter how many engines consume it.
 *
 * Scheduling is two-level: grid cells fan out across the pool, and
 * when the grid alone cannot occupy every worker (fewer cells than
 * threads) each cell may additionally split large layers into pallet
 * blocks on the same pool (see InnerExecutor).
 *
 * Determinism: streams depend only on (network, seed) — identical
 * whether cached or rebuilt — results are stored by grid position
 * (network-major, engine-minor), and block splits combine exact
 * integer partials in block order, so the output is bit-identical
 * for any thread count, any inner-thread count, and with the cache
 * on or off.
 *
 * When options.accel.memory is enabled (--memory=<preset>), every
 * cell's compute result is composed with the memory-hierarchy model
 * (sim/memory/memory_model.h) after its engine finishes: pure
 * per-layer arithmetic, so the determinism guarantees above are
 * unchanged and the compute columns are byte-identical to a
 * memory-off run of the same grid.
 */

#pragma once

#include <ostream>
#include <vector>

#include "dnn/network.h"
#include "sim/accel_config.h"
#include "sim/engine_registry.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"

namespace pra {
namespace sim {

/** Options shared by every job of a sweep. */
struct SweepOptions
{
    int threads = 1;          ///< Worker threads (<= 1: sequential).
    /**
     * Layer-splitting subtasks each cell may fan out on the shared
     * pool: 0 picks automatically (split only when the grid has
     * fewer cells than threads), 1 disables inner parallelism, N
     * allows up to N blocks per layer.
     */
    int innerThreads = 0;
    bool cache = true;        ///< Share workloads across the grid.
    AccelConfig accel;        ///< Machine configuration.
    SampleSpec sample{64};    ///< Per-layer sampling cap.
    uint64_t seed = 0x5eed;   ///< Activation-synthesis seed.
    /**
     * Synthetic (default: calibrated independent streams, the
     * committed-golden workload) or Propagated (streams from one
     * reference forward pass; networks must be full pipelines —
     * LayerSelect::All with pools). See sim/workload_cache.h.
     */
    ActivationMode activations = ActivationMode::Synthetic;
    /**
     * Images per request: every cell runs Engine::runBatch over this
     * many per-image streams and reports per-batch totals (plus the
     * batch / cycles_per_image CSV columns). 1 — the default — is
     * byte-identical to the historical single-image sweep.
     */
    int batch = 1;
    /**
     * Grid shard [shardIndex / shardCount): the sweep prices only
     * its contiguous share of the grid-order cell list, cells
     * [cells * i / N, cells * (i+1) / N), and returns only those
     * results — so concatenating the CSV bodies of shards 0..N-1
     * reproduces the unsharded output byte for byte. The default
     * 0/1 covers the whole grid.
     */
    int shardIndex = 0;
    int shardCount = 1;
};

/**
 * Run the (networks x engines) grid — or, when options selects a
 * shard, its contiguous slice. Returns one NetworkResult per covered
 * cell in grid order: all engines of networks[0], then networks[1],
 * ... Engine selections are validated (instantiated once) before any
 * worker starts, so bad knobs fail fast.
 */
std::vector<NetworkResult>
runSweep(const std::vector<dnn::Network> &networks,
         const std::vector<EngineSelection> &engines,
         const EngineRegistry &registry, const SweepOptions &options);

/**
 * Find the cell for (network, engine-label) in sweep results;
 * fatal() when absent.
 */
const NetworkResult &findResult(const std::vector<NetworkResult> &results,
                                const std::string &network,
                                const std::string &engine);

/**
 * Emit sweep results as CSV in grid order. Per-network totals by
 * default; @p per_layer adds one row per layer instead. Formatting
 * uses round-trip precision, so two result sets are bit-identical iff
 * their CSV dumps are byte-identical. Results carrying memory
 * modeling grow the on_chip_bytes / off_chip_bytes /
 * mem_stall_cycles / system_cycles / bw_bound columns; compute-only
 * results keep the historical (golden-pinned) column set.
 */
void writeSweepCsv(std::ostream &out,
                   const std::vector<NetworkResult> &results,
                   bool per_layer = false);

} // namespace sim
} // namespace pra

