#include "sim/engine_registry.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

void
EngineRegistry::registerEngine(const std::string &kind,
                               const std::string &help, Factory factory)
{
    PRA_CHECK(!kind.empty() && static_cast<bool>(factory),
                         "EngineRegistry: bad registration");
    auto [it, inserted] = factories_.emplace(
        kind, Entry{help, std::move(factory)});
    (void)it;
    PRA_CHECK(inserted, "EngineRegistry: duplicate kind '" +
                                       kind + "'");
}

bool
EngineRegistry::has(const std::string &kind) const
{
    return factories_.count(kind) != 0;
}

std::unique_ptr<Engine>
EngineRegistry::create(const std::string &kind,
                       const EngineKnobs &knobs) const
{
    auto it = factories_.find(kind);
    if (it == factories_.end())
        util::fatal("unknown engine '" + kind + "'");
    std::unique_ptr<Engine> engine = it->second.factory(knobs);
    PRA_CHECK(static_cast<bool>(engine),
                         "EngineRegistry: factory returned null");
    return engine;
}

std::vector<std::string>
EngineRegistry::kinds() const
{
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto &[kind, entry] : factories_)
        names.push_back(kind);
    return names; // std::map iterates sorted.
}

const std::string &
EngineRegistry::help(const std::string &kind) const
{
    auto it = factories_.find(kind);
    if (it == factories_.end())
        util::fatal("unknown engine '" + kind + "'");
    return it->second.help;
}

EngineSelection
parseEngineSpec(const std::string &spec)
{
    EngineSelection sel;
    size_t pos = spec.find(':');
    sel.kind = spec.substr(0, pos);
    if (sel.kind.empty())
        util::fatal("empty engine spec");
    while (pos != std::string::npos) {
        size_t start = pos + 1;
        pos = spec.find(':', start);
        std::string pair =
            spec.substr(start, pos == std::string::npos
                                   ? std::string::npos
                                   : pos - start);
        size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            util::fatal("bad engine knob '" + pair + "' in '" + spec +
                        "' (expected key=value)");
        sel.knobs[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    return sel;
}

int64_t
knobInt(const EngineKnobs &knobs, const std::string &key,
        int64_t fallback)
{
    auto it = knobs.find(key);
    if (it == knobs.end())
        return fallback;
    try {
        size_t used = 0;
        int64_t value = std::stoll(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument(it->second);
        return value;
    } catch (const std::exception &) {
        util::fatal("knob '" + key + "': not an integer: '" +
                    it->second + "'");
    }
}

bool
knobBool(const EngineKnobs &knobs, const std::string &key, bool fallback)
{
    auto it = knobs.find(key);
    if (it == knobs.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "1" || v == "true")
        return true;
    if (v == "0" || v == "false")
        return false;
    util::fatal("knob '" + key + "': not a bool: '" + v + "'");
}

std::string
knobString(const EngineKnobs &knobs, const std::string &key,
           const std::string &fallback)
{
    auto it = knobs.find(key);
    return it == knobs.end() ? fallback : it->second;
}

void
requireKnownKnobs(const std::string &kind, const EngineKnobs &knobs,
                  const std::vector<std::string> &allowed)
{
    for (const auto &[key, value] : knobs) {
        (void)value;
        if (std::find(allowed.begin(), allowed.end(), key) ==
            allowed.end())
            util::fatal("engine '" + kind + "': unknown knob '" + key +
                        "'");
    }
}

} // namespace sim
} // namespace pra
