/**
 * @file
 * Per-layer and per-network simulation results.
 *
 * Cycle counts are stored as doubles because sampled simulation scales
 * integer step counts by a rational factor; totals over full networks
 * are far below the 2^53 precision limit.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pra {
namespace sim {

/**
 * Measured outcome of simulating one layer on one engine.
 *
 * Column semantics (these are the CSV columns writeSweepCsv emits,
 * in order):
 *
 *  - cycles: total *compute* execution cycles, NM stalls included
 *    (the "cycles" the paper's speedups compare). For the analytic
 *    terms engines this holds the selected term count, not cycles.
 *  - nmStallCycles: the subset of cycles lost waiting on Neuron
 *    Memory row fetches (sim/nm_model.h); engines that do not model
 *    NM stalls report 0.
 *  - effectualTerms: non-zero oneffset terms processed (for DaDN:
 *    all terms — it processes everything).
 *  - sbReadSteps: synapse-buffer read operations (one per pallet
 *    step; identical across designs by construction, Section V-E).
 *  - sampleScale: the sampling scale factor applied to the counts
 *    above (1.0 for exhaustive runs).
 *
 * Memory-hierarchy columns — filled by sim/memory/memory_model.h
 * only when a sweep runs with --memory enabled (memoryModeled gates
 * the extra CSV columns so default output stays byte-identical):
 *
 *  - onChipBytes: global-buffer <-> scratchpad traffic.
 *  - offChipBytes: DRAM <-> global-buffer traffic.
 *  - memStallCycles: stall cycles from the double-buffered
 *    fetch/compute overlap rule; systemCycles() adds them to the
 *    compute cycles.
 *  - bandwidthBound: true when the layer's fetch time exceeds its
 *    compute time (memory, not the NFU, sets its system time).
 */
struct LayerResult
{
    std::string layerName;
    std::string engineName;

    double cycles = 0.0;         ///< Compute cycles, NM stalls incl.
    double effectualTerms = 0.0; ///< Non-zero terms processed (scaled).
    double nmStallCycles = 0.0;  ///< Cycles lost waiting on NM.
    double sbReadSteps = 0.0;    ///< Synapse-buffer read operations.
    double sampleScale = 1.0;    ///< Applied sampling scale factor.

    /**
     * Images this result covers: 1 for the historical single-image
     * run, B for an Engine::runBatch aggregate, where the count
     * columns above are per-*batch* totals (the sum over the B
     * per-image simulations). cyclesPerImage() recovers the
     * per-image view; a batch of 1 is byte-identical to a plain run.
     */
    int batchImages = 1;

    bool memoryModeled = false;  ///< Memory columns below are live.
    double onChipBytes = 0.0;    ///< GB <-> scratchpad traffic.
    double offChipBytes = 0.0;   ///< DRAM traffic.
    double memStallCycles = 0.0; ///< Fetch/compute-overlap stalls.
    bool bandwidthBound = false; ///< Fetch time exceeds compute time.

    /** Compute cycles plus memory stalls (== cycles when off). */
    double systemCycles() const { return cycles + memStallCycles; }

    /** Per-image compute cycles (== cycles at batch 1). */
    double
    cyclesPerImage() const
    {
        return cycles / static_cast<double>(batchImages);
    }
};

/** Results for all layers of a network on one engine. */
struct NetworkResult
{
    std::string networkName;
    std::string engineName;
    std::vector<LayerResult> layers;

    double totalCycles() const;
    double totalStalls() const;

    /** Sum of layer systemCycles() (== totalCycles() memory-off). */
    double totalSystemCycles() const;
    double totalOnChipBytes() const;
    double totalOffChipBytes() const;
    double totalMemStalls() const;

    /** True when any layer carries live memory columns. */
    bool memoryModeled() const;

    /** Images per batch (layers agree by construction; 1 if empty). */
    int batchImages() const;

    /** True when this result aggregates more than one image. */
    bool batched() const { return batchImages() > 1; }

    /**
     * Execution-time speedup of this result relative to @p baseline
     * (baseline cycles / these cycles), the paper's performance
     * metric. Uses system cycles, so with memory modeling enabled
     * this is the *system* speedup; with it off (or ideal, which has
     * zero stalls) it is exactly the compute-only ratio.
     */
    double speedupOver(const NetworkResult &baseline) const;
};

/** Geometric mean of a list of per-network speedups ("geo" columns). */
double geometricMean(const std::vector<double> &values);

/**
 * Accumulate one further image's network result into a batch
 * aggregate: layer-wise sums of cycles, effectualTerms, nmStallCycles
 * and sbReadSteps. Both results must cover the same layers on the
 * same engine with the same sampling scale, and must not carry
 * memory columns yet (the memory model prices the *batch*, post-hoc,
 * via applyMemoryModel — per-image memory columns would double count
 * the shared filter traffic). batchImages is left for the caller
 * (Engine::runBatch) to stamp once the batch is complete.
 */
void accumulateBatchImage(NetworkResult &total,
                          const NetworkResult &image);

} // namespace sim
} // namespace pra

