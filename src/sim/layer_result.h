/**
 * @file
 * Per-layer and per-network simulation results.
 *
 * Cycle counts are stored as doubles because sampled simulation scales
 * integer step counts by a rational factor; totals over full networks
 * are far below the 2^53 precision limit.
 */

#ifndef PRA_SIM_LAYER_RESULT_H
#define PRA_SIM_LAYER_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

namespace pra {
namespace sim {

/** Measured outcome of simulating one layer on one engine. */
struct LayerResult
{
    std::string layerName;
    std::string engineName;

    double cycles = 0.0;       ///< Total execution cycles (scaled).
    double effectualTerms = 0.0; ///< Non-zero terms processed (scaled).
    double nmStallCycles = 0.0;  ///< Cycles lost waiting on NM.
    double sbReadSteps = 0.0;    ///< Synapse-buffer read operations.
    double sampleScale = 1.0;    ///< Applied sampling scale factor.
};

/** Results for all layers of a network on one engine. */
struct NetworkResult
{
    std::string networkName;
    std::string engineName;
    std::vector<LayerResult> layers;

    double totalCycles() const;
    double totalStalls() const;

    /**
     * Execution-time speedup of this result relative to @p baseline
     * (baseline cycles / these cycles), the paper's performance
     * metric.
     */
    double speedupOver(const NetworkResult &baseline) const;
};

/** Geometric mean of a list of per-network speedups ("geo" columns). */
double geometricMean(const std::vector<double> &values);

} // namespace sim
} // namespace pra

#endif // PRA_SIM_LAYER_RESULT_H
