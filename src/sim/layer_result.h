/**
 * @file
 * Per-layer and per-network simulation results.
 *
 * Cycle counts are stored as doubles because sampled simulation scales
 * integer step counts by a rational factor; totals over full networks
 * are far below the 2^53 precision limit.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pra {
namespace sim {

/**
 * Measured outcome of simulating one layer on one engine.
 *
 * Column semantics (these are the CSV columns writeSweepCsv emits,
 * in order):
 *
 *  - cycles: total *compute* execution cycles, NM stalls included
 *    (the "cycles" the paper's speedups compare). For the analytic
 *    terms engines this holds the selected term count, not cycles.
 *  - nmStallCycles: the subset of cycles lost waiting on Neuron
 *    Memory row fetches (sim/nm_model.h); engines that do not model
 *    NM stalls report 0.
 *  - effectualTerms: non-zero oneffset terms processed (for DaDN:
 *    all terms — it processes everything).
 *  - sbReadSteps: synapse-buffer read operations (one per pallet
 *    step; identical across designs by construction, Section V-E).
 *  - sampleScale: the sampling scale factor applied to the counts
 *    above (1.0 for exhaustive runs).
 *
 * Memory-hierarchy columns — filled by sim/memory/memory_model.h
 * only when a sweep runs with --memory enabled (memoryModeled gates
 * the extra CSV columns so default output stays byte-identical):
 *
 *  - onChipBytes: global-buffer <-> scratchpad traffic.
 *  - offChipBytes: DRAM <-> global-buffer traffic.
 *  - memStallCycles: stall cycles from the double-buffered
 *    fetch/compute overlap rule; systemCycles() adds them to the
 *    compute cycles.
 *  - bandwidthBound: true when the layer's fetch time exceeds its
 *    compute time (memory, not the NFU, sets its system time).
 */
struct LayerResult
{
    std::string layerName;
    std::string engineName;

    double cycles = 0.0;         ///< Compute cycles, NM stalls incl.
    double effectualTerms = 0.0; ///< Non-zero terms processed (scaled).
    double nmStallCycles = 0.0;  ///< Cycles lost waiting on NM.
    double sbReadSteps = 0.0;    ///< Synapse-buffer read operations.
    double sampleScale = 1.0;    ///< Applied sampling scale factor.

    bool memoryModeled = false;  ///< Memory columns below are live.
    double onChipBytes = 0.0;    ///< GB <-> scratchpad traffic.
    double offChipBytes = 0.0;   ///< DRAM traffic.
    double memStallCycles = 0.0; ///< Fetch/compute-overlap stalls.
    bool bandwidthBound = false; ///< Fetch time exceeds compute time.

    /** Compute cycles plus memory stalls (== cycles when off). */
    double systemCycles() const { return cycles + memStallCycles; }
};

/** Results for all layers of a network on one engine. */
struct NetworkResult
{
    std::string networkName;
    std::string engineName;
    std::vector<LayerResult> layers;

    double totalCycles() const;
    double totalStalls() const;

    /** Sum of layer systemCycles() (== totalCycles() memory-off). */
    double totalSystemCycles() const;
    double totalOnChipBytes() const;
    double totalOffChipBytes() const;
    double totalMemStalls() const;

    /** True when any layer carries live memory columns. */
    bool memoryModeled() const;

    /**
     * Execution-time speedup of this result relative to @p baseline
     * (baseline cycles / these cycles), the paper's performance
     * metric. Uses system cycles, so with memory modeling enabled
     * this is the *system* speedup; with it off (or ideal, which has
     * zero stalls) it is exactly the compute-only ratio.
     */
    double speedupOver(const NetworkResult &baseline) const;
};

/** Geometric mean of a list of per-network speedups ("geo" columns). */
double geometricMean(const std::vector<double> &values);

} // namespace sim
} // namespace pra

