/**
 * @file
 * Neuron Memory access-cost model (paper Section V-A4).
 *
 * The central NM is single-ported; the dispatcher assembles the 16
 * neuron bricks a pallet step needs. With unit stride the bricks fall
 * in one or two adjacent NM rows (1-2 cycles); larger strides spread
 * them over more rows. Fetch overlaps with processing: a step that
 * takes PC cycles to process hides up to PC cycles of the *next*
 * step's NMC fetch cycles.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/accel_config.h"
#include "sim/tiling.h"

namespace pra {
namespace sim {

/**
 * Cycles to fetch one pallet step's bricks from NM: the number of
 * distinct NM rows covering the 16 bricks (padding bricks are free).
 *
 * @param tiling layer tiling (provides brick addresses).
 * @param pallet pallet index.
 * @param set    synapse-set index.
 */
int nmFetchCycles(const LayerTiling &tiling, int64_t pallet, int64_t set);

/**
 * Running fetch/process overlap (max(NMC, PC) of Section V-A4):
 * tracks the NM stall cycles a stream of steps accumulates.
 */
class NmOverlapTracker
{
  public:
    NmOverlapTracker() = default;

    /**
     * Account one step: the step's processing takes @p process_cycles
     * while the *next* step's fetch needs @p next_fetch_cycles.
     * Returns the stall added (0 when the fetch is fully hidden).
     */
    int64_t step(int64_t process_cycles, int64_t next_fetch_cycles);

    int64_t totalStalls() const { return stalls_; }

  private:
    int64_t stalls_ = 0;
};

} // namespace sim
} // namespace pra

