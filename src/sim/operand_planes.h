/**
 * @file
 * Packed per-brick operand planes, parameterized by operand side.
 *
 * The simulator prices engines that exploit ineffectual *bits*, and
 * the unit of pricing is the 16-channel brick. This module owns the
 * packed summaries both operand sides reduce to, hoisted out of the
 * activation-only workload cache so weight-aware engines (Laconic,
 * and the per-group precision detectors of Dynamic-Stripes) share one
 * construction path with the Pragmatic cost layer
 * (models/pragmatic/brick_cost.h):
 *
 *  - activation side: BrickPlanes summarize a layer's input stream
 *    per brick *position* (x, y, brick) — term counts, schedule
 *    bounds, the lane-OR mask per-group precision detection reduces
 *    over — and LanePopPlanes keep the per-lane popcounts Laconic's
 *    serial act-side terms need;
 *
 *  - weight side: WeightBrickPlanes summarize the filter operand per
 *    *synapse-set lane* (set, lane), reduced across filters — term
 *    counts (sum of popcounts), essential-bit positions (OR mask and
 *    max popcount), and the per-group max magnitude a precision
 *    detector would latch.
 *
 * Every plane is an exact, value-deterministic reduction of its
 * operand tensor: results are bit-identical whether an engine reads
 * the shared planes or rederives a brick lane by lane from the tensor
 * (summarizeBrick is that single shared reduction). Weight planes are
 * built from a per-filter code callback so the synthetic
 * (seed-independent, dnn/weight_synth.h) and propagated (requantized
 * reference filters) sources stream through one reducer without
 * materializing all filters at once.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"

namespace pra {
namespace sim {

/**
 * The packed summary of one brick's lanes — the single reduction all
 * plane builders and tensor-path fallbacks share. Missing lanes
 * (padding, partial channel bricks) count as zero, so a short or
 * empty span is equivalent to its zero-padded gather.
 */
struct BrickSummary
{
    int32_t pop = 0;      ///< Total set bits (effectual terms).
    uint8_t maxPop = 0;   ///< Busiest lane's popcount.
    uint8_t nonZero = 0;  ///< Non-zero lanes.
    uint16_t orMask = 0;  ///< OR of all lanes (essential-bit union).
};

/** Reduce one brick's lanes to its packed summary. */
BrickSummary summarizeBrick(std::span<const uint16_t> lanes);

/**
 * Packed per-brick planes of one activation stream. Bricks are
 * dnn::kBrickSize consecutive channels; entry (x, y, b) lives at flat
 * index (y * sizeX + x) * bricksPerColumn + b. The last brick of a
 * column is partial when the channel count is not a brick multiple
 * (missing lanes count as zero, as gathers pad them).
 */
struct BrickPlanes
{
    int sizeX = 0;
    int sizeY = 0;
    int bricksPerColumn = 0; ///< ceil(channels / kBrickSize).

    std::vector<int32_t> pop;    ///< Brick term (set-bit) totals.
    std::vector<uint8_t> maxPop; ///< Max lane popcount (L=4 cycles).
    std::vector<uint8_t> orPop;  ///< Popcount of lane OR (L=0 cycles).
    std::vector<uint8_t> nonZero; ///< Non-zero lanes in the brick.
    /**
     * OR of the brick's lanes — the essential-bit union a per-group
     * precision detector (Dynamic-Stripes) reduces further across a
     * column group; orPop is its popcount.
     */
    std::vector<uint16_t> orMask;

    size_t
    index(int x, int y, int brick) const
    {
        return (static_cast<size_t>(y) * sizeX + x) * bricksPerColumn +
               brick;
    }
};

/** Build the packed brick planes of @p tensor (must be non-empty). */
BrickPlanes buildBrickPlanes(const dnn::NeuronTensor &tensor);

/**
 * Per-lane popcounts of one activation stream, kBrickSize lanes per
 * brick position (missing lanes hold zero). The act-side operand of
 * Laconic's serial product terms: lane (x, y, b, l) lives at
 * index(x, y, b, l).
 */
struct LanePopPlanes
{
    int sizeX = 0;
    int sizeY = 0;
    int bricksPerColumn = 0; ///< ceil(channels / kBrickSize).

    std::vector<uint8_t> pop; ///< Per-lane set-bit counts.

    size_t
    index(int x, int y, int brick, int lane) const
    {
        return ((static_cast<size_t>(y) * sizeX + x) * bricksPerColumn +
                brick) *
                   dnn::kBrickSize +
               lane;
    }
};

/** Build the per-lane popcount planes of @p tensor (non-empty). */
LanePopPlanes buildLanePopPlanes(const dnn::NeuronTensor &tensor);

/**
 * Packed weight-side planes of one layer: per (synapse set, channel
 * lane), reduced across *all* of the layer's filters. A synapse set
 * is a (fy, fx, channel-brick) coordinate in LayerTiling::setCoord
 * order — set s = ((fy * Fx) + fx) * ceil(I / lanes) + brick — and
 * lane l of set s covers input channel brickI + l (lanes beyond the
 * channel count hold zero).
 *
 * Multi-pass layers (more filters than one pass holds) share one
 * all-filter reduction: maxPop/orMask/maxMag are then a worst-case-
 * pass bound rather than per-pass exact, which is the approximation
 * weight-aware engines price (sumPop stays exact — it is the total
 * weight-side term count across every filter).
 */
struct WeightBrickPlanes
{
    int numSets = 0; ///< Fx * Fy * ceil(I / lanes).
    int lanes = 0;   ///< Channel lanes per set (machine neuron lanes).

    std::vector<int32_t> sumPop; ///< Set-bit total across filters.
    std::vector<uint8_t> maxPop; ///< Max filter popcount (this lane).
    std::vector<uint16_t> orMask; ///< OR of codes across filters.
    std::vector<uint16_t> maxMag; ///< Max code magnitude across filters.

    size_t
    index(int set, int lane) const
    {
        return static_cast<size_t>(set) * lanes + lane;
    }
};

/**
 * Reduce @p layer's filters into weight planes with @p lanes channel
 * lanes per set. @p filter_codes must fill its span (length
 * layer.synapsesPerFilter(), flat (fy * Fx + fx) * I + c layout —
 * FilterTensor order) with filter @p filter's magnitude codes; it is
 * called once per filter, in filter order.
 */
WeightBrickPlanes buildWeightBrickPlanes(
    const dnn::LayerSpec &layer, int lanes,
    const std::function<void(int filter, std::span<uint16_t> codes)>
        &filter_codes);

/**
 * Weight planes of the deterministic synthetic weight streams
 * (dnn/weight_synth.h): a pure function of the layer name, geometry,
 * and profiled weight precision — no network or seed context, so the
 * tensor and workload engine paths derive bit-identical planes.
 */
WeightBrickPlanes syntheticWeightPlanes(const dnn::LayerSpec &layer,
                                        int lanes);

/**
 * Weight planes of the propagated reference filters: the exact
 * synthesizeFilters(layer, synth_seed ^ kPropagationFilterSalt)
 * weights the forward pass convolves, requantized into the layer's
 * profiled weight-precision window (streamed one filter at a time —
 * peak memory is one filter, not the whole layer).
 */
WeightBrickPlanes propagatedWeightPlanes(const dnn::LayerSpec &layer,
                                         uint64_t synth_seed,
                                         int lanes);

} // namespace sim
} // namespace pra
