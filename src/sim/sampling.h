/**
 * @file
 * Deterministic pallet sampling.
 *
 * Layer cycle counts are sums over pallet steps that are identically
 * distributed across the output plane, so uniformly sampling pallets
 * and scaling gives an unbiased estimate at a fraction of the runtime.
 * Sampling is deterministic (evenly spaced with a fixed phase) so
 * results are reproducible; maxUnits == 0 disables sampling.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace pra {
namespace sim {

/** Sampling policy for per-layer simulation. */
struct SampleSpec
{
    /** Maximum units (pallets) simulated per layer; 0 = simulate all. */
    int64_t maxUnits = 0;

    bool enabled() const { return maxUnits > 0; }
};

/** The result of sampling @p total units. */
struct SamplePlan
{
    std::vector<int64_t> indices; ///< Unit indices to simulate.
    double scale = 1.0;           ///< total / indices.size().
};

/**
 * Evenly spaced sample of up to @p spec.maxUnits indices from
 * [0, total); always includes index 0 and, via even spacing, units
 * across the whole range. total == 0 yields an empty plan.
 */
SamplePlan planSample(int64_t total, const SampleSpec &spec);

} // namespace sim
} // namespace pra

