#include "sim/layer_result.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

double
NetworkResult::totalCycles() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.cycles;
    return total;
}

double
NetworkResult::totalStalls() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.nmStallCycles;
    return total;
}

double
NetworkResult::totalSystemCycles() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.systemCycles();
    return total;
}

double
NetworkResult::totalOnChipBytes() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.onChipBytes;
    return total;
}

double
NetworkResult::totalOffChipBytes() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.offChipBytes;
    return total;
}

double
NetworkResult::totalMemStalls() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.memStallCycles;
    return total;
}

bool
NetworkResult::memoryModeled() const
{
    for (const auto &layer : layers)
        if (layer.memoryModeled)
            return true;
    return false;
}

int
NetworkResult::batchImages() const
{
    if (layers.empty())
        return 1;
    int batch = layers.front().batchImages;
    for (const auto &layer : layers)
        PRA_CHECK(layer.batchImages == batch,
                  "batchImages: layers disagree on the batch size");
    return batch;
}

void
accumulateBatchImage(NetworkResult &total, const NetworkResult &image)
{
    PRA_CHECK(total.networkName == image.networkName &&
                  total.engineName == image.engineName,
              "accumulateBatchImage: results from different runs");
    PRA_CHECK(total.layers.size() == image.layers.size(),
              "accumulateBatchImage: layer count mismatch");
    for (size_t i = 0; i < total.layers.size(); i++) {
        LayerResult &sum = total.layers[i];
        const LayerResult &add = image.layers[i];
        PRA_CHECK(sum.layerName == add.layerName &&
                      sum.sampleScale == add.sampleScale,
                  "accumulateBatchImage: layer mismatch");
        PRA_CHECK(!sum.memoryModeled && !add.memoryModeled,
                  "accumulateBatchImage: memory columns must be "
                  "applied to the finished batch, not per image");
        sum.cycles += add.cycles;
        sum.effectualTerms += add.effectualTerms;
        sum.nmStallCycles += add.nmStallCycles;
        sum.sbReadSteps += add.sbReadSteps;
    }
}

double
NetworkResult::speedupOver(const NetworkResult &baseline) const
{
    double mine = totalSystemCycles();
    double theirs = baseline.totalSystemCycles();
    PRA_CHECK(mine > 0.0 && theirs > 0.0,
                         "speedupOver: zero cycle counts");
    return theirs / mine;
}

double
geometricMean(const std::vector<double> &values)
{
    PRA_CHECK(!values.empty(), "geometricMean: empty input");
    double log_sum = 0.0;
    for (double v : values) {
        PRA_CHECK(v > 0.0, "geometricMean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sim
} // namespace pra
