#include "sim/layer_result.h"

#include <cmath>

#include "util/logging.h"

namespace pra {
namespace sim {

double
NetworkResult::totalCycles() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.cycles;
    return total;
}

double
NetworkResult::totalStalls() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.nmStallCycles;
    return total;
}

double
NetworkResult::speedupOver(const NetworkResult &baseline) const
{
    double mine = totalCycles();
    double theirs = baseline.totalCycles();
    util::checkInvariant(mine > 0.0 && theirs > 0.0,
                         "speedupOver: zero cycle counts");
    return theirs / mine;
}

double
geometricMean(const std::vector<double> &values)
{
    util::checkInvariant(!values.empty(), "geometricMean: empty input");
    double log_sum = 0.0;
    for (double v : values) {
        util::checkInvariant(v > 0.0, "geometricMean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sim
} // namespace pra
