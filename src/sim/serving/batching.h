/**
 * @file
 * Batching policy for the serving simulator: when does a free
 * accelerator instance launch, and how many queued requests does it
 * take?
 *
 * The policy is the standard max-batch + timeout rule production
 * inference servers use: a dispatcher would *like* to fill a batch
 * of maxBatch requests (amortizing the filter traffic the
 * batch-aware memory model prices), but will not hold the head
 * request longer than timeoutCycles waiting for stragglers. The
 * launch time of a dispatch whose head request arrived at H is
 *
 *     start = max(instance_free,
 *                 min(arrival_of_the_batch-filling_request,
 *                     H + timeoutCycles))
 *
 * and the batch is every request that has arrived by `start`, capped
 * at maxBatch — so a saturated system runs full batches back to
 * back, a lightly loaded one degenerates to batch-1 dispatch after
 * the timeout, and timeoutCycles == 0 dispatches greedily the moment
 * an instance frees up.
 *
 * The decision rule is a pure function of three cycle times, kept
 * separate from the fleet event loop so tests can pin its corner
 * cases (timeout wins / fill wins / busy-instance wins) directly.
 */

#pragma once

#include <cstdint>

namespace pra {
namespace sim {

/** Sentinel for "the batch never fills" (too few requests remain). */
inline constexpr uint64_t kNeverFills = UINT64_C(0xffffffffffffffff);

/** Max-batch + timeout dispatch policy. */
struct BatchingPolicy
{
    int maxBatch = 8;           ///< Largest batch one dispatch takes.
    uint64_t timeoutCycles = 0; ///< Max head-of-line wait (0: greedy).
};

/**
 * Launch cycle of the next dispatch: the instance is free at
 * @p instance_free, the head (oldest waiting) request arrived at
 * @p head_arrival, and the request that would fill the batch arrives
 * at @p fill_arrival (kNeverFills when fewer than maxBatch requests
 * remain). See file comment for the rule.
 */
uint64_t dispatchCycle(const BatchingPolicy &policy,
                       uint64_t instance_free, uint64_t head_arrival,
                       uint64_t fill_arrival);

} // namespace sim
} // namespace pra
