#include "sim/serving/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"

namespace pra {
namespace sim {

namespace {

/** Domain tag so arrival draws never collide with workload seeds. */
constexpr uint64_t kArrivalSalt = 0xa441'7a1e'5eed'0001ull;

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Uniform: return "uniform";
      case ArrivalKind::Poisson: return "poisson";
    }
    util::fatal("arrivalKindName: bad kind");
}

ArrivalKind
parseArrivalKind(const std::string &text)
{
    if (text == "uniform")
        return ArrivalKind::Uniform;
    if (text == "poisson")
        return ArrivalKind::Poisson;
    util::fatal("--arrival must be uniform or poisson (got '" + text +
                "')");
}

uint64_t
arrivalGap(const ArrivalSpec &spec, int index)
{
    PRA_CHECK(spec.meanGapCycles >= 1.0,
              "arrivalGap: mean gap must be at least one cycle");
    PRA_CHECK(index >= 0, "arrivalGap: negative request index");
    double gap = spec.meanGapCycles;
    if (spec.kind == ArrivalKind::Poisson) {
        // A fresh generator per index, seeded by a mix of (seed,
        // index): the draw depends on nothing but its own counter.
        util::Xoshiro256 rng(util::fnv1aMix(
            util::fnv1aMix(util::fnv1aMix(util::kFnv1aOffset,
                                          kArrivalSalt),
                           spec.seed),
            static_cast<uint64_t>(index)));
        gap = spec.meanGapCycles * rng.nextExponential(1.0);
    }
    // Round half away from zero and clamp to one full cycle: two
    // requests never alias onto the same draw, and cycle time stays
    // integral.
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(gap)));
}

std::vector<uint64_t>
generateArrivals(const ArrivalSpec &spec, int count)
{
    PRA_CHECK(count >= 1, "generateArrivals: need at least one "
                          "request");
    std::vector<uint64_t> arrivals(static_cast<size_t>(count));
    uint64_t now = 0;
    for (int i = 0; i < count; i++) {
        now += arrivalGap(spec, i);
        arrivals[static_cast<size_t>(i)] = now;
    }
    return arrivals;
}

} // namespace sim
} // namespace pra
