/**
 * @file
 * Event-driven multi-instance serving simulation on top of the
 * per-batch cost substrate.
 *
 * The sweep machinery answers "how many cycles does a batch of B
 * images of network N cost on engine E?"; this module answers the
 * capacity-planning question the ROADMAP's north star actually asks:
 * "given an arrival rate, a batching policy, and a fleet of
 * identical accelerator instances, what latency distribution and
 * throughput does that design point deliver?"
 *
 * The pipeline has three stages:
 *
 *  1. **Cost curve** (buildBatchCostCurve): per (network, engine),
 *     the system cycles of a batch of 1..maxBatch images, built
 *     *incrementally* — one engine pass per image, accumulated
 *     exactly like Engine::runBatch, memory model applied to each
 *     prefix — so entry b-1 is bit-identical to a standalone
 *     --batch=b sweep of the same cell and the whole curve costs
 *     maxBatch engine passes, not maxBatch * (maxBatch + 1) / 2.
 *  2. **Arrival trace** (sim/serving/arrival.h): counter-based
 *     seeded arrivals, independent of evaluation order.
 *  3. **Fleet event loop** (simulateServing): instances are
 *     identical servers; the dispatcher repeatedly takes the
 *     earliest-free instance (lowest id on ties), launches at the
 *     cycle sim/serving/batching.h dictates, and charges the batch
 *     the curve's cost. Single-threaded over a fixed-order trace:
 *     deterministic by construction, so serving reports are
 *     byte-identical across --threads/--inner-threads/--cache (the
 *     parallelism lives in stage 1, whose results are already
 *     bit-identical across schedules).
 *
 * Latencies (completion - arrival, in cycles) feed a log-spaced
 * util::Histogram; p50/p95/p99 are its conservative bucket bounds.
 * Rates convert through the nominal 1 GHz clock (kCyclesPerSecond):
 * the paper's designs are all specified at 1 GHz, so cycles and
 * nanoseconds coincide.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dnn/network.h"
#include "sim/accel_config.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"
#include "sim/sampling.h"
#include "sim/serving/arrival.h"
#include "sim/serving/batching.h"
#include "sim/serving/faults.h"
#include "sim/workload_cache.h"
#include "util/thread_pool.h"

namespace pra {
namespace sim {

/** Nominal accelerator clock: all paper designs run at 1 GHz. */
inline constexpr double kCyclesPerSecond = 1e9;

/**
 * Latency histogram range: 2^42 cycles (~73 minutes at 1 GHz) with
 * 2^6 buckets per power of two (<= 1.6% relative bucket width).
 */
inline constexpr uint64_t kLatencyHistogramMax = uint64_t{1} << 42;
inline constexpr int kLatencyHistogramSubBits = 6;

/** One serving design point (everything but the workload cell). */
struct ServingConfig
{
    int instances = 1;     ///< Identical accelerator instances.
    int requests = 256;    ///< Trace length (one image per request).
    ArrivalSpec arrival;   ///< Arrival process (gap set per rate).
    BatchingPolicy policy; ///< Max-batch + timeout dispatch rule.

    // --- Degraded-serving layer (defaults model the perfect fleet
    // --- the historical goldens pin: no faults, unbounded queue).
    FaultSpec faults;      ///< Fail-stop schedule (mtbf 0 = off).
    RetryPolicy retry;     ///< Requeue rule for killed batches.
    /** Dispatch-queue bound; arrivals beyond it shed. 0 = unbounded. */
    int queueCap = 0;
    /**
     * Admission-control watermark: when the dispatch queue holds at
     * least this many waiting requests, the dispatcher degrades to
     * half the max batch and greedy (no-timeout) launches, trading
     * batch amortization for queue drain before the cap has to shed.
     * 0 = off.
     */
    int degradeWatermark = 0;
};

/**
 * True when @p config needs the degraded event loop (fault
 * injection, a bounded queue, or admission control); false selects
 * the historical perfect-fleet loop, whose output every committed
 * serving golden pins byte for byte.
 */
bool servingDegradedEnabled(const ServingConfig &config);

/** System-cycle cost of batches of 1..maxBatch images of one cell. */
struct BatchCostCurve
{
    std::string networkName;
    std::string engineName;
    /** [b-1]: system cycles of a batch of b (monotone in b). */
    std::vector<double> batchSystemCycles;
};

/**
 * Build the cost curve of (network, engine) for batches of
 * 1..max_batch images; see file comment for the incremental
 * construction and its bit-identity guarantee.
 */
BatchCostCurve buildBatchCostCurve(const dnn::Network &network,
                                   const Engine &engine,
                                   const WorkloadSource &source,
                                   const AccelConfig &accel,
                                   const SampleSpec &sample,
                                   const util::InnerExecutor &exec,
                                   int max_batch);

/** Outcome of one serving simulation. */
struct ServingReport
{
    std::string networkName;
    std::string engineName;

    ArrivalKind arrivalKind = ArrivalKind::Poisson;
    double offeredPerSecond = 0.0; ///< Offered load (images/s, 1 GHz).
    int instances = 1;
    int maxBatch = 1;
    uint64_t timeoutCycles = 0;
    int requests = 0;

    int64_t dispatches = 0;   ///< Batches launched.
    double meanBatch = 0.0;   ///< Dispatched images / dispatches.
    uint64_t p50Cycles = 0;   ///< Median request latency.
    uint64_t p95Cycles = 0;
    uint64_t p99Cycles = 0;
    double meanLatencyCycles = 0.0;
    /**
     * Completed throughput (goodput) at 1 GHz: only requests that
     * finished count, so under faults this is goodput vs the
     * offeredPerSecond column.
     */
    double imagesPerSecond = 0.0;
    double utilization = 0.0; ///< Busy share of instances * makespan.
    uint64_t makespanCycles = 0; ///< Last completion/resolution cycle.

    // --- Degraded-serving columns, emitted only when the fault
    // --- layer is configured (see writeServingCsv).
    bool degraded = false; ///< Degraded loop configured for this run.
    uint64_t mtbfCycles = 0;     ///< Config echo (0 = faults off).
    uint64_t mttrCycles = 0;     ///< Config echo.
    FaultKind faultKind = FaultKind::Exponential;
    int queueCap = 0;            ///< Config echo (0 = unbounded).
    int degradeWatermark = 0;    ///< Config echo (0 = off).
    int retryLimit = 0;          ///< Config echo (retry.maxRetries).
    uint64_t backoffBaseCycles = 0; ///< Config echo.
    int completed = 0;        ///< Requests that finished.
    int64_t retries = 0;      ///< Re-queued attempts after kills.
    int permanentFailures = 0; ///< Requests out of retry budget.
    int shedRequests = 0;     ///< Requests dropped at the full queue.
    int64_t killedBatches = 0; ///< In-flight batches lost to faults.
    int64_t instanceFailures = 0; ///< Fail-stop events before the end.
    int64_t degradedDispatches = 0; ///< Launches under the watermark.
    /** Instance up-share of instances * makespan (1 with faults off). */
    double availability = 1.0;
    /** p99 latency over requests that survived >= 1 kill (0: none). */
    uint64_t p99FaultedCycles = 0;
};

/**
 * Run the fleet event loop for one cost curve under @p config
 * (whose policy.maxBatch must not exceed the curve's length).
 * Dispatches to the degraded loop iff servingDegradedEnabled().
 * Deterministic: same inputs, same report, bit for bit.
 */
ServingReport simulateServing(const BatchCostCurve &curve,
                              const ServingConfig &config);

/**
 * The degraded fleet event loop, callable directly so tests can pin
 * its fault-free specialization: with faults, queue cap, and
 * watermark all off it must reproduce every field simulateServing's
 * perfect-fleet loop reports, bit for bit.
 */
ServingReport simulateServingDegraded(const BatchCostCurve &curve,
                                      const ServingConfig &config);

/** Options of a serving sweep over (networks x engines x rates). */
struct ServingSweepOptions
{
    int threads = 1;    ///< Workers for cost-curve building.
    int innerThreads = 0; ///< Layer-splitting subtasks (see sweep.h).
    bool cache = true;  ///< Share workloads across the grid.
    AccelConfig accel;  ///< Machine configuration (incl. --memory).
    SampleSpec sample{64};
    uint64_t seed = 0x5eed;
    ActivationMode activations = ActivationMode::Synthetic;
    /** Offered load points (images/s at 1 GHz), one report each. */
    std::vector<double> offeredPerSecond;
    /** Fleet + policy + arrival kind/seed (gap filled per rate). */
    ServingConfig serving;
};

/**
 * Build every (network, engine) cost curve — in parallel on
 * options.threads workers sharing one WorkloadCache — then run the
 * (cheap, serial) event loop per offered rate. Reports come back in
 * (network-major, engine, rate) order.
 */
std::vector<ServingReport>
runServingSweep(const std::vector<dnn::Network> &networks,
                const std::vector<EngineSelection> &engines,
                const EngineRegistry &registry,
                const ServingSweepOptions &options);

/**
 * Emit serving reports as CSV (round-trip precision, so two report
 * sets are bit-identical iff their CSV dumps are byte-identical).
 */
void writeServingCsv(std::ostream &out,
                     const std::vector<ServingReport> &reports);

} // namespace sim
} // namespace pra
