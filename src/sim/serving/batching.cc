#include "sim/serving/batching.h"

#include <algorithm>

#include "util/check.h"
#include "util/saturating.h"

namespace pra {
namespace sim {

uint64_t
dispatchCycle(const BatchingPolicy &policy, uint64_t instance_free,
              uint64_t head_arrival, uint64_t fill_arrival)
{
    PRA_CHECK(policy.maxBatch >= 1,
              "dispatchCycle: maxBatch must be >= 1");
    PRA_CHECK(fill_arrival == kNeverFills ||
                  fill_arrival >= head_arrival,
              "dispatchCycle: fill precedes head");
    // Wait for a full batch or the head's timeout, whichever comes
    // first; the timeout deadline saturates rather than wrapping for
    // huge --timeout values (kNeverFills == UINT64_MAX, so the
    // saturated sum is exactly the "never" sentinel).
    uint64_t deadline =
        util::saturatingAdd(head_arrival, policy.timeoutCycles);
    uint64_t ready = std::min(fill_arrival, deadline);
    // A dispatch that can never fill under a saturated timeout would
    // otherwise wait forever; the finite trace has nothing further
    // to offer it, so it goes out as soon as its head is waiting.
    if (ready == kNeverFills)
        ready = head_arrival;
    return std::max(instance_free, ready);
}

} // namespace sim
} // namespace pra
