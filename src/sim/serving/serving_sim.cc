#include "sim/serving/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <memory>
#include <queue>
#include <set>
#include <tuple>
#include <utility>

#include "sim/memory/memory_model.h"
#include "util/csv.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/saturating.h"
#include "util/stats.h"

namespace pra {
namespace sim {

namespace {

std::string
roundTrip(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

/** Shared sanity checks of both fleet loops. */
void
checkServingConfig(const BatchCostCurve &curve,
                   const ServingConfig &config)
{
    PRA_CHECK(config.instances >= 1,
              "simulateServing: need at least one instance");
    PRA_CHECK(config.requests >= 1,
              "simulateServing: need at least one request");
    PRA_CHECK(config.policy.maxBatch >= 1 &&
                  static_cast<size_t>(config.policy.maxBatch) <=
                      curve.batchSystemCycles.size(),
              "simulateServing: cost curve does not cover maxBatch");
    PRA_CHECK(config.queueCap >= 0,
              "simulateServing: queue cap must be non-negative");
    PRA_CHECK(config.degradeWatermark >= 0,
              "simulateServing: degrade watermark must be "
              "non-negative");
    PRA_CHECK(config.retry.maxRetries >= 0,
              "simulateServing: retry limit must be non-negative");
    if (faultsEnabled(config.faults))
        PRA_CHECK(config.faults.mttrCycles >= 1,
                  "simulateServing: mean repair time must be at "
                  "least one cycle when faults are enabled");
}

/** Copy the degraded-layer configuration into the report. */
void
stampServingConfig(ServingReport &report, const ServingConfig &config)
{
    report.arrivalKind = config.arrival.kind;
    report.offeredPerSecond =
        kCyclesPerSecond / config.arrival.meanGapCycles;
    report.instances = config.instances;
    report.maxBatch = config.policy.maxBatch;
    report.timeoutCycles = config.policy.timeoutCycles;
    report.requests = config.requests;
    report.degraded = servingDegradedEnabled(config);
    report.mtbfCycles = config.faults.mtbfCycles;
    report.mttrCycles = config.faults.mttrCycles;
    report.faultKind = config.faults.kind;
    report.queueCap = config.queueCap;
    report.degradeWatermark = config.degradeWatermark;
    report.retryLimit = config.retry.maxRetries;
    report.backoffBaseCycles = config.retry.backoffBaseCycles;
}

} // namespace

BatchCostCurve
buildBatchCostCurve(const dnn::Network &network, const Engine &engine,
                    const WorkloadSource &source,
                    const AccelConfig &accel, const SampleSpec &sample,
                    const util::InnerExecutor &exec, int max_batch)
{
    PRA_CHECK(max_batch >= 1,
              "buildBatchCostCurve: max_batch must be >= 1");
    BatchCostCurve curve;
    curve.networkName = network.name;
    curve.engineName = engine.name();
    curve.batchSystemCycles.reserve(static_cast<size_t>(max_batch));

    // One engine pass per image, accumulated exactly the way
    // Engine::runBatch accumulates — so pricing prefix b (stamp the
    // batch size, apply the memory model to a copy) reproduces a
    // standalone runBatch(b) bit for bit, at max_batch passes total
    // instead of one per (prefix, image) pair.
    NetworkResult acc = engine.runNetwork(network, source.withImage(0),
                                          accel, sample, exec);
    for (int b = 1; b <= max_batch; b++) {
        if (b > 1)
            accumulateBatchImage(
                acc, engine.runNetwork(network, source.withImage(b - 1),
                                       accel, sample, exec));
        NetworkResult priced = acc;
        for (auto &layer : priced.layers)
            layer.batchImages = b;
        applyMemoryModel(network, accel, priced);
        curve.batchSystemCycles.push_back(priced.totalSystemCycles());
    }
    return curve;
}

namespace {

/**
 * The historical perfect-fleet loop: instances never fail, the queue
 * is unbounded, every request completes. Every committed serving
 * golden pins this loop's output byte for byte, so it stays
 * untouched; runDegradedFleet() below must reproduce it exactly when
 * the fault layer is configured off (test-pinned).
 */
ServingReport
runIdealFleet(const BatchCostCurve &curve, const ServingConfig &config)
{
    const std::vector<uint64_t> arrivals =
        generateArrivals(config.arrival, config.requests);
    const size_t n = arrivals.size();
    const size_t max_batch =
        static_cast<size_t>(config.policy.maxBatch);

    std::vector<uint64_t> free_at(
        static_cast<size_t>(config.instances), 0);
    util::Histogram latencies = util::Histogram::logSpaced(
        kLatencyHistogramMax, kLatencyHistogramSubBits);
    uint64_t makespan = 0;
    double busy_cycles = 0.0;
    int64_t dispatches = 0;

    size_t k = 0;
    while (k < n) {
        // Earliest-free instance, lowest id on ties: a strict-<
        // linear scan gives exactly that ordering.
        size_t j = 0;
        for (size_t i = 1; i < free_at.size(); i++)
            if (free_at[i] < free_at[j])
                j = i;

        const uint64_t head = arrivals[k];
        const size_t fill_idx = k + max_batch - 1;
        const uint64_t fill =
            fill_idx < n ? arrivals[fill_idx] : kNeverFills;
        const uint64_t start =
            dispatchCycle(config.policy, free_at[j], head, fill);

        // Everything that has arrived by launch rides along, up to
        // the batch cap; the head itself always has (head <= start).
        size_t take = 1;
        while (take < max_batch && k + take < n &&
               arrivals[k + take] <= start)
            take++;

        const double cost = curve.batchSystemCycles[take - 1];
        const uint64_t cost_cycles = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(cost)));
        const uint64_t done = start + cost_cycles;
        for (size_t r = k; r < k + take; r++)
            latencies.add(done - arrivals[r]);
        busy_cycles += static_cast<double>(cost_cycles);
        free_at[j] = done;
        makespan = std::max(makespan, done);
        dispatches++;
        k += take;
    }

    ServingReport report;
    report.networkName = curve.networkName;
    report.engineName = curve.engineName;
    stampServingConfig(report, config);
    report.dispatches = dispatches;
    report.meanBatch = static_cast<double>(config.requests) /
                       static_cast<double>(dispatches);
    report.p50Cycles = latencies.percentile(0.50);
    report.p95Cycles = latencies.percentile(0.95);
    report.p99Cycles = latencies.percentile(0.99);
    report.meanLatencyCycles = latencies.mean();
    report.imagesPerSecond = static_cast<double>(config.requests) *
                             kCyclesPerSecond /
                             static_cast<double>(makespan);
    report.utilization =
        busy_cycles / (static_cast<double>(config.instances) *
                       static_cast<double>(makespan));
    report.makespanCycles = makespan;
    report.completed = config.requests;
    return report;
}

/**
 * Discrete events of the degraded fleet loop. The enumerator order
 * is the tie-break at equal cycles and is load-bearing:
 * completions are observed before the fail-stop of the same cycle
 * (a batch whose interval is [start, done) finished), repairs before
 * new work is admitted, and arrivals/retries enter the queue before
 * the dispatcher re-evaluates.
 */
enum class EventKind : int {
    BatchDone = 0,
    InstanceFail = 1,
    InstanceRepair = 2,
    Arrival = 3,
    RetryReady = 4,
    TryDispatch = 5,
};

struct FleetEvent
{
    uint64_t cycle = 0;
    EventKind kind = EventKind::TryDispatch;
    int idx = 0;      ///< Instance (fleet events) or request id.
    int64_t epoch = 0; ///< Launch generation (BatchDone staleness).
};

/** Min-heap order over the deterministic (cycle, kind, idx) total
 *  order; epoch disambiguates nothing but keeps the order total. */
struct FleetEventAfter
{
    bool
    operator()(const FleetEvent &a, const FleetEvent &b) const
    {
        return std::tie(a.cycle, a.kind, a.idx, a.epoch) >
               std::tie(b.cycle, b.kind, b.idx, b.epoch);
    }
};

/**
 * The degraded fleet loop: the perfect-fleet semantics extended with
 * fail-stop faults (in-flight batches killed, requests retried with
 * exponential backoff, permanent-failure accounting), a bounded
 * dispatch queue with load-shedding, and the admission-control
 * watermark. Driven by a deterministic event heap; with the fault
 * layer configured off it reproduces runIdealFleet bit for bit
 * (test-pinned): dispatch decisions fire at exactly the cycles the
 * pull-loop computes, because every decline schedules a TryDispatch
 * wake-up at its own dispatchCycle estimate.
 */
ServingReport
runDegradedFleet(const BatchCostCurve &curve,
                 const ServingConfig &config)
{
    const std::vector<uint64_t> arrivals =
        generateArrivals(config.arrival, config.requests);
    const int n = static_cast<int>(arrivals.size());
    const bool faults = faultsEnabled(config.faults);

    // Per-request state: dispatch attempts consumed so far.
    std::vector<int> tries(static_cast<size_t>(n), 0);
    // Waiting requests, ordered by (queue-entry cycle, id): trace
    // order for arrivals, requeue order for retries.
    std::set<std::pair<uint64_t, int>> pending;
    size_t next_arrival = 0; ///< Trace index of the next Arrival.

    const size_t instances = static_cast<size_t>(config.instances);
    std::vector<uint64_t> free_at(instances, 0);
    std::vector<char> up(instances, 1);
    std::vector<int64_t> epoch(instances, 0);
    std::vector<uint64_t> launch_at(instances, 0);
    std::vector<std::vector<int>> flight(instances);
    std::vector<FaultTimeline> timelines;
    timelines.reserve(instances);
    for (size_t i = 0; i < instances; i++)
        timelines.emplace_back(config.faults,
                               static_cast<int>(i));

    std::priority_queue<FleetEvent, std::vector<FleetEvent>,
                        FleetEventAfter>
        events;
    for (int r = 0; r < n; r++)
        events.push({arrivals[static_cast<size_t>(r)],
                     EventKind::Arrival, r, 0});
    for (size_t i = 0; i < instances; i++)
        if (timelines[i].failCycle() != kNoFault)
            events.push({timelines[i].failCycle(),
                         EventKind::InstanceFail,
                         static_cast<int>(i), 0});

    util::Histogram latencies = util::Histogram::logSpaced(
        kLatencyHistogramMax, kLatencyHistogramSubBits);
    util::Histogram faulted_latencies = util::Histogram::logSpaced(
        kLatencyHistogramMax, kLatencyHistogramSubBits);
    uint64_t makespan = 0;
    double busy_cycles = 0.0;
    int64_t dispatches = 0;
    int64_t dispatched_images = 0;
    int64_t degraded_dispatches = 0;
    int64_t killed_batches = 0;
    int64_t instance_failures = 0;
    int64_t retries = 0;
    int completed = 0;
    int permanent_failures = 0;
    int shed = 0;
    int resolved = 0;

    // A request entering the queue at cycle t: shed at the cap (the
    // bounded queue's loud load-shedding), queued otherwise.
    auto admit = [&](uint64_t t, int request) {
        if (config.queueCap > 0 &&
            pending.size() >= static_cast<size_t>(config.queueCap)) {
            shed++;
            resolved++;
            makespan = std::max(makespan, t);
            return;
        }
        pending.insert({t, request});
    };

    auto handleEvent = [&](const FleetEvent &ev, uint64_t t) {
        switch (ev.kind) {
          case EventKind::BatchDone: {
            const size_t i = static_cast<size_t>(ev.idx);
            if (ev.epoch != epoch[i])
                return; // The batch this completion meant was killed.
            for (int r : flight[i]) {
                const uint64_t latency =
                    t - arrivals[static_cast<size_t>(r)];
                latencies.add(latency);
                if (tries[static_cast<size_t>(r)] > 1)
                    faulted_latencies.add(latency);
                completed++;
                resolved++;
            }
            busy_cycles += static_cast<double>(t - launch_at[i]);
            makespan = std::max(makespan, t);
            flight[i].clear();
            return;
          }
          case EventKind::InstanceFail: {
            const size_t i = static_cast<size_t>(ev.idx);
            instance_failures++;
            up[i] = 0;
            if (!flight[i].empty()) {
                // Fail-stop mid-batch: the whole batch is lost.
                killed_batches++;
                busy_cycles += static_cast<double>(t - launch_at[i]);
                for (int r : flight[i]) {
                    const int used = tries[static_cast<size_t>(r)];
                    if (used > config.retry.maxRetries) {
                        permanent_failures++;
                        resolved++;
                        makespan = std::max(makespan, t);
                        continue;
                    }
                    retries++;
                    const uint64_t ready = util::saturatingAdd(
                        t, retryBackoffCycles(config.retry,
                                              config.faults.seed, r,
                                              used));
                    events.push({ready, EventKind::RetryReady, r, 0});
                }
                flight[i].clear();
                epoch[i]++;
            }
            if (timelines[i].repairCycle() != kNoFault)
                events.push({timelines[i].repairCycle(),
                             EventKind::InstanceRepair, ev.idx, 0});
            return;
          }
          case EventKind::InstanceRepair: {
            const size_t i = static_cast<size_t>(ev.idx);
            up[i] = 1;
            free_at[i] = t;
            timelines[i].advance();
            if (timelines[i].failCycle() != kNoFault)
                events.push({timelines[i].failCycle(),
                             EventKind::InstanceFail, ev.idx, 0});
            return;
          }
          case EventKind::Arrival:
            next_arrival = static_cast<size_t>(ev.idx) + 1;
            admit(t, ev.idx);
            return;
          case EventKind::RetryReady:
            admit(t, ev.idx);
            return;
          case EventKind::TryDispatch:
            return; // Only exists to wake the dispatcher below.
        }
    };

    // Launch every batch the policy allows at cycle t; when the next
    // launch is strictly in the future, schedule a TryDispatch
    // wake-up at exactly that estimate (re-evaluated there, so new
    // arrivals/retries/repairs can only pull it earlier).
    auto dispatchAt = [&](uint64_t t) {
        while (!pending.empty()) {
            // Earliest-free instance among in-service idle ones,
            // lowest id on ties (the perfect-fleet rule).
            int j = -1;
            for (size_t i = 0; i < instances; i++) {
                if (!up[i] || !flight[i].empty())
                    continue;
                if (j < 0 || free_at[i] < free_at[static_cast<size_t>(j)])
                    j = static_cast<int>(i);
            }
            if (j < 0)
                return; // Every instance is busy or down.
            const size_t ji = static_cast<size_t>(j);

            const size_t occupancy = pending.size();
            const bool degrade =
                config.degradeWatermark > 0 &&
                occupancy >=
                    static_cast<size_t>(config.degradeWatermark);
            BatchingPolicy policy = config.policy;
            if (degrade) {
                // Watermark crossed: shed to half the batch cap and
                // greedy launches before the cap has to drop.
                policy.maxBatch = std::max(1, policy.maxBatch / 2);
                policy.timeoutCycles = 0;
            }
            const size_t max_batch =
                static_cast<size_t>(policy.maxBatch);

            const uint64_t head = pending.begin()->first;
            uint64_t fill;
            if (occupancy >= max_batch) {
                auto it = pending.begin();
                std::advance(it,
                             static_cast<ptrdiff_t>(max_batch) - 1);
                fill = it->first;
            } else {
                // Estimate the fill from the trace tail; retries
                // still in backoff are unknowable to a dispatcher.
                const size_t idx =
                    next_arrival + (max_batch - occupancy) - 1;
                fill = idx < static_cast<size_t>(n)
                           ? arrivals[idx]
                           : kNeverFills;
                // A requeued head can outrank older trace arrivals.
                fill = std::max(fill, head);
            }
            const uint64_t start =
                dispatchCycle(policy, free_at[ji], head, fill);
            if (start > t) {
                events.push({start, EventKind::TryDispatch, 0, 0});
                return;
            }
            // start < t only after a watermark flip mid-wait; the
            // launch happens now either way.
            const uint64_t launch = std::max(start, t);

            size_t take = 0;
            while (take < max_batch && !pending.empty()) {
                auto it = pending.begin();
                flight[ji].push_back(it->second);
                tries[static_cast<size_t>(it->second)]++;
                pending.erase(it);
                take++;
            }
            const double cost = curve.batchSystemCycles[take - 1];
            const uint64_t cost_cycles = std::max<uint64_t>(
                1, static_cast<uint64_t>(std::llround(cost)));
            const uint64_t done =
                util::saturatingAdd(launch, cost_cycles);
            launch_at[ji] = launch;
            free_at[ji] = done;
            if (done != kNoFault)
                events.push({done, EventKind::BatchDone, j,
                             epoch[ji]});
            dispatches++;
            dispatched_images += static_cast<int64_t>(take);
            if (degrade)
                degraded_dispatches++;
        }
    };

    while (!events.empty() && resolved < n) {
        const uint64_t t = events.top().cycle;
        while (!events.empty() && events.top().cycle == t) {
            FleetEvent ev = events.top();
            events.pop();
            handleEvent(ev, t);
        }
        if (resolved >= n)
            break;
        dispatchAt(t);
    }
    // The heap can only drain with unresolved requests when every
    // instance wedged permanently (saturated repair/completion
    // times): account the stranded requests as permanent failures
    // rather than stalling or spinning.
    permanent_failures += n - resolved;
    resolved = n;

    ServingReport report;
    report.networkName = curve.networkName;
    report.engineName = curve.engineName;
    stampServingConfig(report, config);
    report.dispatches = dispatches;
    report.meanBatch =
        dispatches == 0
            ? 0.0
            : static_cast<double>(dispatched_images) /
                  static_cast<double>(dispatches);
    report.p50Cycles = latencies.percentile(0.50);
    report.p95Cycles = latencies.percentile(0.95);
    report.p99Cycles = latencies.percentile(0.99);
    report.meanLatencyCycles = latencies.mean();
    const double span = static_cast<double>(std::max<uint64_t>(
        makespan, 1));
    report.imagesPerSecond =
        static_cast<double>(completed) * kCyclesPerSecond / span;
    report.utilization =
        busy_cycles / (static_cast<double>(config.instances) * span);
    report.makespanCycles = makespan;
    report.completed = completed;
    report.retries = retries;
    report.permanentFailures = permanent_failures;
    report.shedRequests = shed;
    report.killedBatches = killed_batches;
    report.instanceFailures = instance_failures;
    report.degradedDispatches = degraded_dispatches;
    if (faults) {
        uint64_t up_cycles = 0;
        for (size_t i = 0; i < instances; i++)
            up_cycles +=
                upCyclesBefore(config.faults, static_cast<int>(i),
                               makespan);
        report.availability =
            static_cast<double>(up_cycles) /
            (static_cast<double>(config.instances) * span);
    }
    report.p99FaultedCycles = faulted_latencies.count() > 0
                                  ? faulted_latencies.percentile(0.99)
                                  : 0;
    return report;
}

} // namespace

bool
servingDegradedEnabled(const ServingConfig &config)
{
    return faultsEnabled(config.faults) || config.queueCap > 0 ||
           config.degradeWatermark > 0;
}

ServingReport
simulateServing(const BatchCostCurve &curve, const ServingConfig &config)
{
    checkServingConfig(curve, config);
    return servingDegradedEnabled(config)
               ? runDegradedFleet(curve, config)
               : runIdealFleet(curve, config);
}

ServingReport
simulateServingDegraded(const BatchCostCurve &curve,
                        const ServingConfig &config)
{
    checkServingConfig(curve, config);
    return runDegradedFleet(curve, config);
}

std::vector<ServingReport>
runServingSweep(const std::vector<dnn::Network> &networks,
                const std::vector<EngineSelection> &engines,
                const EngineRegistry &registry,
                const ServingSweepOptions &options)
{
    PRA_CHECK(!networks.empty() && !engines.empty(),
              "runServingSweep: empty grid");
    PRA_CHECK(!options.offeredPerSecond.empty(),
              "runServingSweep: no offered rates");
    for (double rate : options.offeredPerSecond)
        PRA_CHECK(rate > 0.0 && rate <= kCyclesPerSecond,
                  "runServingSweep: offered rate must be in "
                  "(0, 1e9] images/s");
    // Validate every selection up front, as runSweep does.
    for (const auto &sel : engines)
        registry.create(sel);

    const size_t cells = networks.size() * engines.size();
    std::vector<BatchCostCurve> curves(cells);

    WorkloadCache cache;
    WorkloadCache *shared = options.cache ? &cache : nullptr;

    auto buildCell = [&](size_t net_idx, size_t eng_idx,
                         const util::InnerExecutor &exec) {
        const dnn::Network &network = networks[net_idx];
        std::unique_ptr<Engine> engine =
            registry.create(engines[eng_idx]);
        std::shared_ptr<const dnn::ActivationSynthesizer> synth =
            shared ? shared->synthesizer(network, options.seed)
                   : std::make_shared<const dnn::ActivationSynthesizer>(
                         network, options.seed);
        WorkloadSource source =
            shared ? WorkloadSource(*synth, *shared,
                                    options.activations)
                   : WorkloadSource(*synth, options.activations);
        curves[net_idx * engines.size() + eng_idx] =
            buildBatchCostCurve(network, *engine, source,
                                options.accel, options.sample, exec,
                                options.serving.policy.maxBatch);
    };

    // Stage 1 — expensive, parallel: cost curves fan out like sweep
    // cells, and every curve is bit-identical across schedules.
    if (options.threads <= 1) {
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                buildCell(n, e, util::InnerExecutor());
    } else {
        util::ThreadPool pool(options.threads);
        int inner = options.innerThreads;
        if (inner <= 0)
            inner = cells >= static_cast<size_t>(options.threads)
                        ? 1
                        : static_cast<int>(
                              (options.threads + cells - 1) / cells);
        util::InnerExecutor exec(&pool, inner);
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                pool.submit([&buildCell, &exec, n, e] {
                    buildCell(n, e, exec);
                });
        pool.wait();
    }

    // Stage 2 — cheap, serial: one event loop per (cell, rate), in
    // fixed report order.
    std::vector<ServingReport> reports;
    reports.reserve(cells * options.offeredPerSecond.size());
    for (const auto &curve : curves) {
        for (double rate : options.offeredPerSecond) {
            ServingConfig config = options.serving;
            config.arrival.meanGapCycles = kCyclesPerSecond / rate;
            reports.push_back(simulateServing(curve, config));
        }
    }
    return reports;
}

void
writeServingCsv(std::ostream &out,
                const std::vector<ServingReport> &reports)
{
    util::CsvWriter csv(out);
    // The degraded-serving columns appear only when some report ran
    // the degraded loop, so historical (fault-free) CSVs — and the
    // committed goldens that pin them — keep their exact shape.
    bool degraded = false;
    for (const auto &r : reports)
        degraded = degraded || r.degraded;

    std::vector<std::string> header = {
        "network", "engine", "arrival", "offered_per_s",
        "instances", "max_batch", "timeout_cycles",
        "requests", "dispatches", "mean_batch",
        "p50_cycles", "p95_cycles", "p99_cycles",
        "mean_latency_cycles", "images_per_s",
        "utilization", "makespan_cycles"};
    if (degraded) {
        const char *extra[] = {
            "mtbf_cycles", "mttr_cycles", "fault_dist", "queue_cap",
            "degrade_watermark", "retry_limit", "backoff_cycles",
            "completed", "retries", "permanent_failures",
            "shed_requests", "killed_batches", "instance_failures",
            "degraded_dispatches", "availability",
            "p99_faulted_cycles"};
        header.insert(header.end(), std::begin(extra),
                      std::end(extra));
    }
    csv.writeHeader(header);

    for (const auto &r : reports) {
        std::vector<std::string> row = {
            r.networkName, r.engineName,
            arrivalKindName(r.arrivalKind),
            roundTrip(r.offeredPerSecond),
            std::to_string(r.instances),
            std::to_string(r.maxBatch),
            std::to_string(r.timeoutCycles),
            std::to_string(r.requests),
            std::to_string(r.dispatches),
            roundTrip(r.meanBatch),
            std::to_string(r.p50Cycles),
            std::to_string(r.p95Cycles),
            std::to_string(r.p99Cycles),
            roundTrip(r.meanLatencyCycles),
            roundTrip(r.imagesPerSecond),
            roundTrip(r.utilization),
            std::to_string(r.makespanCycles)};
        if (degraded) {
            const std::string tail[] = {
                std::to_string(r.mtbfCycles),
                std::to_string(r.mttrCycles),
                faultKindName(r.faultKind),
                std::to_string(r.queueCap),
                std::to_string(r.degradeWatermark),
                std::to_string(r.retryLimit),
                std::to_string(r.backoffBaseCycles),
                std::to_string(r.completed),
                std::to_string(r.retries),
                std::to_string(r.permanentFailures),
                std::to_string(r.shedRequests),
                std::to_string(r.killedBatches),
                std::to_string(r.instanceFailures),
                std::to_string(r.degradedDispatches),
                roundTrip(r.availability),
                std::to_string(r.p99FaultedCycles)};
            row.insert(row.end(), std::begin(tail), std::end(tail));
        }
        csv.writeRow(row);
    }
}

} // namespace sim
} // namespace pra
