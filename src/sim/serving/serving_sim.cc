#include "sim/serving/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "sim/memory/memory_model.h"
#include "util/csv.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stats.h"

namespace pra {
namespace sim {

namespace {

std::string
roundTrip(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

BatchCostCurve
buildBatchCostCurve(const dnn::Network &network, const Engine &engine,
                    const WorkloadSource &source,
                    const AccelConfig &accel, const SampleSpec &sample,
                    const util::InnerExecutor &exec, int max_batch)
{
    PRA_CHECK(max_batch >= 1,
              "buildBatchCostCurve: max_batch must be >= 1");
    BatchCostCurve curve;
    curve.networkName = network.name;
    curve.engineName = engine.name();
    curve.batchSystemCycles.reserve(static_cast<size_t>(max_batch));

    // One engine pass per image, accumulated exactly the way
    // Engine::runBatch accumulates — so pricing prefix b (stamp the
    // batch size, apply the memory model to a copy) reproduces a
    // standalone runBatch(b) bit for bit, at max_batch passes total
    // instead of one per (prefix, image) pair.
    NetworkResult acc = engine.runNetwork(network, source.withImage(0),
                                          accel, sample, exec);
    for (int b = 1; b <= max_batch; b++) {
        if (b > 1)
            accumulateBatchImage(
                acc, engine.runNetwork(network, source.withImage(b - 1),
                                       accel, sample, exec));
        NetworkResult priced = acc;
        for (auto &layer : priced.layers)
            layer.batchImages = b;
        applyMemoryModel(network, accel, priced);
        curve.batchSystemCycles.push_back(priced.totalSystemCycles());
    }
    return curve;
}

ServingReport
simulateServing(const BatchCostCurve &curve, const ServingConfig &config)
{
    PRA_CHECK(config.instances >= 1,
              "simulateServing: need at least one instance");
    PRA_CHECK(config.requests >= 1,
              "simulateServing: need at least one request");
    PRA_CHECK(config.policy.maxBatch >= 1 &&
                  static_cast<size_t>(config.policy.maxBatch) <=
                      curve.batchSystemCycles.size(),
              "simulateServing: cost curve does not cover maxBatch");

    const std::vector<uint64_t> arrivals =
        generateArrivals(config.arrival, config.requests);
    const size_t n = arrivals.size();
    const size_t max_batch =
        static_cast<size_t>(config.policy.maxBatch);

    std::vector<uint64_t> free_at(
        static_cast<size_t>(config.instances), 0);
    util::Histogram latencies = util::Histogram::logSpaced(
        kLatencyHistogramMax, kLatencyHistogramSubBits);
    uint64_t makespan = 0;
    double busy_cycles = 0.0;
    int64_t dispatches = 0;

    size_t k = 0;
    while (k < n) {
        // Earliest-free instance, lowest id on ties: a strict-<
        // linear scan gives exactly that ordering.
        size_t j = 0;
        for (size_t i = 1; i < free_at.size(); i++)
            if (free_at[i] < free_at[j])
                j = i;

        const uint64_t head = arrivals[k];
        const size_t fill_idx = k + max_batch - 1;
        const uint64_t fill =
            fill_idx < n ? arrivals[fill_idx] : kNeverFills;
        const uint64_t start =
            dispatchCycle(config.policy, free_at[j], head, fill);

        // Everything that has arrived by launch rides along, up to
        // the batch cap; the head itself always has (head <= start).
        size_t take = 1;
        while (take < max_batch && k + take < n &&
               arrivals[k + take] <= start)
            take++;

        const double cost = curve.batchSystemCycles[take - 1];
        const uint64_t cost_cycles = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(cost)));
        const uint64_t done = start + cost_cycles;
        for (size_t r = k; r < k + take; r++)
            latencies.add(done - arrivals[r]);
        busy_cycles += static_cast<double>(cost_cycles);
        free_at[j] = done;
        makespan = std::max(makespan, done);
        dispatches++;
        k += take;
    }

    ServingReport report;
    report.networkName = curve.networkName;
    report.engineName = curve.engineName;
    report.arrivalKind = config.arrival.kind;
    report.offeredPerSecond =
        kCyclesPerSecond / config.arrival.meanGapCycles;
    report.instances = config.instances;
    report.maxBatch = config.policy.maxBatch;
    report.timeoutCycles = config.policy.timeoutCycles;
    report.requests = config.requests;
    report.dispatches = dispatches;
    report.meanBatch = static_cast<double>(config.requests) /
                       static_cast<double>(dispatches);
    report.p50Cycles = latencies.percentile(0.50);
    report.p95Cycles = latencies.percentile(0.95);
    report.p99Cycles = latencies.percentile(0.99);
    report.meanLatencyCycles = latencies.mean();
    report.imagesPerSecond = static_cast<double>(config.requests) *
                             kCyclesPerSecond /
                             static_cast<double>(makespan);
    report.utilization =
        busy_cycles / (static_cast<double>(config.instances) *
                       static_cast<double>(makespan));
    report.makespanCycles = makespan;
    return report;
}

std::vector<ServingReport>
runServingSweep(const std::vector<dnn::Network> &networks,
                const std::vector<EngineSelection> &engines,
                const EngineRegistry &registry,
                const ServingSweepOptions &options)
{
    PRA_CHECK(!networks.empty() && !engines.empty(),
              "runServingSweep: empty grid");
    PRA_CHECK(!options.offeredPerSecond.empty(),
              "runServingSweep: no offered rates");
    for (double rate : options.offeredPerSecond)
        PRA_CHECK(rate > 0.0 && rate <= kCyclesPerSecond,
                  "runServingSweep: offered rate must be in "
                  "(0, 1e9] images/s");
    // Validate every selection up front, as runSweep does.
    for (const auto &sel : engines)
        registry.create(sel);

    const size_t cells = networks.size() * engines.size();
    std::vector<BatchCostCurve> curves(cells);

    WorkloadCache cache;
    WorkloadCache *shared = options.cache ? &cache : nullptr;

    auto buildCell = [&](size_t net_idx, size_t eng_idx,
                         const util::InnerExecutor &exec) {
        const dnn::Network &network = networks[net_idx];
        std::unique_ptr<Engine> engine =
            registry.create(engines[eng_idx]);
        std::shared_ptr<const dnn::ActivationSynthesizer> synth =
            shared ? shared->synthesizer(network, options.seed)
                   : std::make_shared<const dnn::ActivationSynthesizer>(
                         network, options.seed);
        WorkloadSource source =
            shared ? WorkloadSource(*synth, *shared,
                                    options.activations)
                   : WorkloadSource(*synth, options.activations);
        curves[net_idx * engines.size() + eng_idx] =
            buildBatchCostCurve(network, *engine, source,
                                options.accel, options.sample, exec,
                                options.serving.policy.maxBatch);
    };

    // Stage 1 — expensive, parallel: cost curves fan out like sweep
    // cells, and every curve is bit-identical across schedules.
    if (options.threads <= 1) {
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                buildCell(n, e, util::InnerExecutor());
    } else {
        util::ThreadPool pool(options.threads);
        int inner = options.innerThreads;
        if (inner <= 0)
            inner = cells >= static_cast<size_t>(options.threads)
                        ? 1
                        : static_cast<int>(
                              (options.threads + cells - 1) / cells);
        util::InnerExecutor exec(&pool, inner);
        for (size_t n = 0; n < networks.size(); n++)
            for (size_t e = 0; e < engines.size(); e++)
                pool.submit([&buildCell, &exec, n, e] {
                    buildCell(n, e, exec);
                });
        pool.wait();
    }

    // Stage 2 — cheap, serial: one event loop per (cell, rate), in
    // fixed report order.
    std::vector<ServingReport> reports;
    reports.reserve(cells * options.offeredPerSecond.size());
    for (const auto &curve : curves) {
        for (double rate : options.offeredPerSecond) {
            ServingConfig config = options.serving;
            config.arrival.meanGapCycles = kCyclesPerSecond / rate;
            reports.push_back(simulateServing(curve, config));
        }
    }
    return reports;
}

void
writeServingCsv(std::ostream &out,
                const std::vector<ServingReport> &reports)
{
    util::CsvWriter csv(out);
    csv.writeHeader({"network", "engine", "arrival", "offered_per_s",
                     "instances", "max_batch", "timeout_cycles",
                     "requests", "dispatches", "mean_batch",
                     "p50_cycles", "p95_cycles", "p99_cycles",
                     "mean_latency_cycles", "images_per_s",
                     "utilization", "makespan_cycles"});
    for (const auto &r : reports)
        csv.writeRow({r.networkName, r.engineName,
                      arrivalKindName(r.arrivalKind),
                      roundTrip(r.offeredPerSecond),
                      std::to_string(r.instances),
                      std::to_string(r.maxBatch),
                      std::to_string(r.timeoutCycles),
                      std::to_string(r.requests),
                      std::to_string(r.dispatches),
                      roundTrip(r.meanBatch),
                      std::to_string(r.p50Cycles),
                      std::to_string(r.p95Cycles),
                      std::to_string(r.p99Cycles),
                      roundTrip(r.meanLatencyCycles),
                      roundTrip(r.imagesPerSecond),
                      roundTrip(r.utilization),
                      std::to_string(r.makespanCycles)});
}

} // namespace sim
} // namespace pra
