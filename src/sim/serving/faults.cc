#include "sim/serving/faults.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/saturating.h"

namespace pra {
namespace sim {

namespace {

/** Domain tags so fault draws never collide with arrival/workload
 *  seeds (or with each other across the up/repair/jitter streams). */
constexpr uint64_t kUpSalt = 0xfa17'0000'5eed'0001ull;
constexpr uint64_t kRepairSalt = 0xfa17'0000'5eed'0002ull;
constexpr uint64_t kBackoffSalt = 0xfa17'0000'5eed'0003ull;

/**
 * One duration draw with mean @p mean_cycles: exponential (or the
 * mean itself for FaultKind::Fixed), rounded half away from zero and
 * clamped to a full cycle — a pure function of (salt, seed,
 * instance, index), mirroring arrivalGap.
 */
uint64_t
durationDraw(uint64_t salt, const FaultSpec &spec, uint64_t mean_cycles,
             int instance, int index)
{
    PRA_CHECK(instance >= 0, "fault draw: negative instance");
    PRA_CHECK(index >= 0, "fault draw: negative event index");
    double duration = static_cast<double>(mean_cycles);
    if (spec.kind == FaultKind::Exponential) {
        util::Xoshiro256 rng(util::fnv1aMix(
            util::fnv1aMix(
                util::fnv1aMix(util::fnv1aMix(util::kFnv1aOffset, salt),
                               spec.seed),
                static_cast<uint64_t>(instance)),
            static_cast<uint64_t>(index)));
        duration *= rng.nextExponential(1.0);
    }
    // Clamp before the cast: a draw beyond 2^63 is already "never"
    // territory and must not invoke UB in llround.
    if (duration >= 9.0e18)
        return kNoFault;
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(duration)));
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Exponential: return "exponential";
      case FaultKind::Fixed: return "fixed";
    }
    util::fatal("faultKindName: bad kind");
}

FaultKind
parseFaultKind(const std::string &text)
{
    if (text == "exponential")
        return FaultKind::Exponential;
    if (text == "fixed")
        return FaultKind::Fixed;
    util::fatal("--fault-dist must be exponential or fixed (got '" +
                text + "')");
}

uint64_t
upDuration(const FaultSpec &spec, int instance, int index)
{
    PRA_CHECK(faultsEnabled(spec),
              "upDuration: faults are disabled (mtbf == 0)");
    return durationDraw(kUpSalt, spec, spec.mtbfCycles, instance,
                        index);
}

uint64_t
repairDuration(const FaultSpec &spec, int instance, int index)
{
    PRA_CHECK(faultsEnabled(spec),
              "repairDuration: faults are disabled (mtbf == 0)");
    PRA_CHECK(spec.mttrCycles >= 1,
              "repairDuration: mean repair time must be at least one "
              "cycle when faults are enabled");
    return durationDraw(kRepairSalt, spec, spec.mttrCycles, instance,
                        index);
}

FaultTimeline::FaultTimeline(const FaultSpec &spec, int instance)
    : spec_(spec), instance_(instance)
{
    if (!faultsEnabled(spec_))
        return;
    fail_ = upDuration(spec_, instance_, 0);
    repair_ = util::saturatingAdd(
        fail_, fail_ == kNoFault
                   ? 0
                   : repairDuration(spec_, instance_, 0));
}

void
FaultTimeline::advance()
{
    if (fail_ == kNoFault)
        return;
    index_++;
    fail_ = util::saturatingAdd(
        repair_, upDuration(spec_, instance_, index_));
    repair_ =
        fail_ == kNoFault
            ? kNoFault
            : util::saturatingAdd(
                  fail_, repairDuration(spec_, instance_, index_));
}

uint64_t
upCyclesBefore(const FaultSpec &spec, int instance, uint64_t horizon)
{
    if (!faultsEnabled(spec))
        return horizon;
    uint64_t up = 0;
    uint64_t window_start = 0;
    FaultTimeline timeline(spec, instance);
    while (window_start < horizon) {
        uint64_t fail = std::min(timeline.failCycle(), horizon);
        up += fail - window_start;
        if (timeline.failCycle() >= horizon)
            break;
        window_start = std::min(timeline.repairCycle(), horizon);
        timeline.advance();
    }
    return up;
}

uint64_t
retryBackoffCycles(const RetryPolicy &policy, uint64_t seed,
                   int request, int retry)
{
    PRA_CHECK(request >= 0, "retryBackoffCycles: negative request");
    PRA_CHECK(retry >= 1, "retryBackoffCycles: retry is 1-based");
    uint64_t base =
        util::saturatingShl(policy.backoffBaseCycles, retry - 1);
    if (base == 0)
        return 0;
    util::Xoshiro256 rng(util::fnv1aMix(
        util::fnv1aMix(
            util::fnv1aMix(util::fnv1aMix(util::kFnv1aOffset,
                                          kBackoffSalt),
                           seed),
            static_cast<uint64_t>(request)),
        static_cast<uint64_t>(retry)));
    // Stretch by [1, 2): full-jitter would let delays collapse to
    // zero and re-synchronize the herd the moment backoff is small.
    // The scaled draw is clamped before the cast — a saturated base
    // times a fraction near one can round to 2^64, whose uint64 cast
    // would be UB.
    const double scaled = static_cast<double>(base) * rng.nextDouble();
    const uint64_t jitter =
        scaled >= 9.0e18 ? base : static_cast<uint64_t>(scaled);
    return util::saturatingAdd(base, std::min(jitter, base));
}

} // namespace sim
} // namespace pra
