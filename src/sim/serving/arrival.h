/**
 * @file
 * Deterministic request-arrival processes for the serving simulator.
 *
 * Arrivals are *counter-based*: the gap after request i is a pure
 * function of (seed, i) — each draw seeds its own Xoshiro256 from a
 * well-mixed per-index hash instead of advancing one shared stream.
 * That costs a few cycles per draw but buys exactly the property the
 * repo's determinism regime needs: the arrival trace is independent
 * of evaluation order, thread count, and how many requests any other
 * component consumed, so serving reports are byte-identical across
 * --threads/--cache and a trace prefix never changes when the
 * request count grows.
 *
 * Two processes cover the capacity-planning questions the serving
 * model answers: Uniform (a fixed inter-arrival gap — the paced
 * load-generator case) and Poisson (exponential gaps — the classic
 * open-system model of independent users).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pra {
namespace sim {

/** Shape of the inter-arrival gap distribution. */
enum class ArrivalKind { Uniform, Poisson };

/** Kind name as accepted by --arrival ("uniform"/"poisson"). */
const char *arrivalKindName(ArrivalKind kind);

/** Parse an --arrival= value; fatal() on anything else. */
ArrivalKind parseArrivalKind(const std::string &text);

/** One arrival process: kind, intensity, and seed. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /**
     * Mean inter-arrival gap in simulated cycles (>= 1). At the
     * nominal 1 GHz clock, a gap of G cycles is an offered load of
     * 1e9 / G images per second.
     */
    double meanGapCycles = 1000.0;
    uint64_t seed = 0x5eed;
};

/**
 * The gap (in cycles, >= 1) between request @p index and request
 * @p index + 1 — a pure function of (spec, index); see file comment.
 */
uint64_t arrivalGap(const ArrivalSpec &spec, int index);

/**
 * Absolute arrival cycles of @p count requests: request 0 arrives at
 * the first gap (the trace starts one gap after cycle 0, so a
 * uniform process is evenly spaced from the very first request), and
 * request i+1 follows i by arrivalGap(spec, i + 1). Non-decreasing
 * by construction; a prefix of a longer trace is identical to a
 * shorter trace.
 */
std::vector<uint64_t> generateArrivals(const ArrivalSpec &spec,
                                       int count);

} // namespace sim
} // namespace pra
