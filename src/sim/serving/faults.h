/**
 * @file
 * Deterministic fail-stop fault injection and retry policy for the
 * serving simulator.
 *
 * Real accelerator fleets must be sized for the degraded case: the
 * capacity question that matters is what p99 and goodput survive when
 * an instance dies mid-batch at peak load. This module supplies the
 * failure process; sim/serving/serving_sim.cc consumes it in the
 * degraded fleet event loop.
 *
 * Every draw follows the arrivalGap regime (sim/serving/arrival.h):
 * a *counter-based* pure function of (spec, instance, event index) —
 * each draw seeds its own Xoshiro256 from a well-mixed per-index
 * hash, with no wall clock and no shared RNG state. The schedule of
 * instance i is therefore independent of evaluation order, thread
 * count, and every other instance, so faulted serving reports stay
 * byte-identical across --threads/--cache, and a schedule prefix
 * never changes when the simulated horizon grows.
 *
 * An instance alternates up-windows and repair-windows:
 *
 *     up_0 = upDuration(spec, i, 0)        (mean mtbfCycles)
 *     down_0 = repairDuration(spec, i, 0)  (mean mttrCycles)
 *     fail_k   = repair_{k-1} + up_k       (repair_{-1} = 0)
 *     repair_k = fail_k + down_k
 *
 * i.e. fail-stop at fail_k, back in service at repair_k. All
 * accumulation saturates at kNoFault (= UINT64_MAX, "never"), so a
 * huge --mtbf degenerates cleanly to a perfect instance.
 *
 * FaultKind::Fixed replaces the exponential draws with the means
 * themselves (the deterministic analogue of ArrivalKind::Uniform),
 * which makes fault scenarios hand-checkable in unit tests.
 */

#pragma once

#include <cstdint>
#include <string>

namespace pra {
namespace sim {

/** Sentinel cycle for "this instance never fails (again)". */
inline constexpr uint64_t kNoFault = UINT64_C(0xffffffffffffffff);

/** Shape of the up/repair duration distributions. */
enum class FaultKind { Exponential, Fixed };

/** Kind name as accepted by --fault-dist. */
const char *faultKindName(FaultKind kind);

/** Parse a --fault-dist= value; fatal() on anything else. */
FaultKind parseFaultKind(const std::string &text);

/** One fail-stop/repair process: intensity, distribution, seed. */
struct FaultSpec
{
    /** Mean up-time in cycles; 0 disables fault injection. */
    uint64_t mtbfCycles = 0;
    /** Mean repair time in cycles (>= 1 when faults are enabled). */
    uint64_t mttrCycles = 0;
    FaultKind kind = FaultKind::Exponential;
    uint64_t seed = 0x5eed;
};

/** True when @p spec injects faults at all (mtbfCycles > 0). */
inline bool
faultsEnabled(const FaultSpec &spec)
{
    return spec.mtbfCycles > 0;
}

/**
 * Length of up-window @p index of instance @p instance, in cycles
 * (>= 1) — a pure function of (spec, instance, index).
 */
uint64_t upDuration(const FaultSpec &spec, int instance, int index);

/**
 * Length of repair-window @p index of instance @p instance, in
 * cycles (>= 1) — a pure function of (spec, instance, index).
 */
uint64_t repairDuration(const FaultSpec &spec, int instance,
                        int index);

/**
 * Lazy walker over one instance's absolute fail/repair cycles.
 * Window k is up over [repair_{k-1}, fail_k) and under repair over
 * [fail_k, repair_k); advance() moves to window k+1. A disabled spec
 * (or a saturated accumulation) reports failCycle() == kNoFault and
 * never advances past it.
 */
class FaultTimeline
{
  public:
    FaultTimeline(const FaultSpec &spec, int instance);

    /** Absolute cycle of the current window's fail-stop. */
    uint64_t failCycle() const { return fail_; }
    /** Absolute cycle the current window's repair completes. */
    uint64_t repairCycle() const { return repair_; }

    /** Move to the next up-window (no-op once saturated). */
    void advance();

  private:
    FaultSpec spec_;
    int instance_;
    int index_ = 0;
    uint64_t fail_ = kNoFault;
    uint64_t repair_ = kNoFault;
};

/**
 * Cycles instance @p instance is in service within [0, horizon) —
 * the numerator of the fleet availability the serving report carries.
 */
uint64_t upCyclesBefore(const FaultSpec &spec, int instance,
                        uint64_t horizon);

/**
 * Retry policy for requests whose batch was killed by a fail-stop:
 * up to maxRetries re-dispatches after the first attempt, each
 * delayed by truncated binary exponential backoff with deterministic
 * jitter (see retryBackoffCycles). A request that fails
 * maxRetries + 1 times is a permanent failure.
 */
struct RetryPolicy
{
    int maxRetries = 3; ///< Re-dispatches allowed after attempt one.
    /** Backoff scale: retry r waits ~backoffBase * 2^(r-1) cycles. */
    uint64_t backoffBaseCycles = 1000;
};

/**
 * Requeue delay (cycles) before retry number @p retry (1-based) of
 * request @p request: backoffBase * 2^(retry-1), stretched by a
 * deterministic jitter factor in [1, 2) drawn as a pure function of
 * (policy, seed, request, retry), saturating instead of wrapping.
 * Jitter decorrelates the retry herd a mass batch-kill creates while
 * keeping the trace a pure counter function, exactly like arrivals.
 */
uint64_t retryBackoffCycles(const RetryPolicy &policy, uint64_t seed,
                            int request, int retry);

} // namespace sim
} // namespace pra
