/**
 * @file
 * Name -> engine-factory registry.
 *
 * Engines register under a *kind* ("dadn", "stripes", "pragmatic",
 * "pragmatic-col", "terms"); a factory turns a knob map (string
 * key=value pairs, e.g. {"bits","2"}) into a configured Engine
 * instance. Factories must reject unknown knob keys with fatal() so
 * CLI typos fail loudly. The built-in engines live in
 * models/engines.h to keep this layer free of backend dependencies.
 */

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace pra {
namespace sim {

/** Engine configuration knobs as parsed key=value strings. */
using EngineKnobs = std::map<std::string, std::string>;

/** A (kind, knobs) pair naming one engine variant of a sweep grid. */
struct EngineSelection
{
    std::string kind;
    EngineKnobs knobs;
};

/** Registry of engine factories, keyed by kind. */
class EngineRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Engine>(const EngineKnobs &)>;

    /**
     * Register @p factory under @p kind with a one-line @p help
     * string (knob summary); fatal() on duplicate kinds.
     */
    void registerEngine(const std::string &kind,
                        const std::string &help, Factory factory);

    bool has(const std::string &kind) const;

    /** Instantiate @p kind with @p knobs; fatal() on unknown kind. */
    std::unique_ptr<Engine> create(const std::string &kind,
                                   const EngineKnobs &knobs = {}) const;

    /** Instantiate from a selection. */
    std::unique_ptr<Engine> create(const EngineSelection &sel) const
    {
        return create(sel.kind, sel.knobs);
    }

    /** Registered kinds in sorted order. */
    std::vector<std::string> kinds() const;

    /** The help string registered for @p kind. */
    const std::string &help(const std::string &kind) const;

    size_t size() const { return factories_.size(); }

  private:
    struct Entry
    {
        std::string help;
        Factory factory;
    };
    std::map<std::string, Entry> factories_;
};

/**
 * Parse an engine-spec string into a selection. The syntax is
 * "kind[:key=value]*", e.g. "pragmatic:bits=2" or
 * "pragmatic-col:bits=2:ssr=1".
 */
EngineSelection parseEngineSpec(const std::string &spec);

/** Look one knob up as an integer, or @p fallback when absent. */
int64_t knobInt(const EngineKnobs &knobs, const std::string &key,
                int64_t fallback);

/** Look one knob up as a bool ("1"/"0"/"true"/"false"). */
bool knobBool(const EngineKnobs &knobs, const std::string &key,
              bool fallback);

/** Look one knob up as a string, or @p fallback when absent. */
std::string knobString(const EngineKnobs &knobs, const std::string &key,
                       const std::string &fallback);

/**
 * fatal() unless every key of @p knobs appears in @p allowed —
 * factories call this so misspelled knobs are caught.
 */
void requireKnownKnobs(const std::string &kind, const EngineKnobs &knobs,
                       const std::vector<std::string> &allowed);

} // namespace sim
} // namespace pra

