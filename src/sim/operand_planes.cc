#include "sim/operand_planes.h"

#include <algorithm>
#include <bit>

#include "dnn/weight_synth.h"
#include "util/check.h"

namespace pra {
namespace sim {

BrickSummary
summarizeBrick(std::span<const uint16_t> lanes)
{
    BrickSummary s;
    int max_pop = 0;
    int non_zero = 0;
    for (uint16_t v : lanes) {
        int p = std::popcount(v);
        s.pop += p;
        max_pop = std::max(max_pop, p);
        s.orMask |= v;
        non_zero += v != 0;
    }
    s.maxPop = static_cast<uint8_t>(max_pop);
    s.nonZero = static_cast<uint8_t>(non_zero);
    return s;
}

BrickPlanes
buildBrickPlanes(const dnn::NeuronTensor &tensor)
{
    PRA_CHECK(!tensor.empty(),
              "brickPlanes: empty workload has no planes");
    BrickPlanes planes;
    planes.sizeX = tensor.sizeX();
    planes.sizeY = tensor.sizeY();
    planes.bricksPerColumn =
        (tensor.sizeI() + dnn::kBrickSize - 1) / dnn::kBrickSize;
    size_t cells = static_cast<size_t>(planes.sizeX) * planes.sizeY *
                   planes.bricksPerColumn;
    planes.pop.resize(cells);
    planes.maxPop.resize(cells);
    planes.orPop.resize(cells);
    planes.nonZero.resize(cells);
    planes.orMask.resize(cells);

    const uint16_t *data = tensor.flat().data();
    const int channels = tensor.sizeI();
    size_t out = 0;
    // Channel-major layout: each (x, y) column is `channels`
    // consecutive elements, carved into kBrickSize bricks.
    for (int64_t column = 0;
         column < static_cast<int64_t>(planes.sizeX) * planes.sizeY;
         column++) {
        const uint16_t *lane = data + column * channels;
        for (int base = 0; base < channels; base += dnn::kBrickSize) {
            int lanes = std::min(dnn::kBrickSize, channels - base);
            BrickSummary s = summarizeBrick(
                std::span<const uint16_t>(lane + base,
                                          static_cast<size_t>(lanes)));
            planes.pop[out] = s.pop;
            planes.maxPop[out] = s.maxPop;
            planes.orPop[out] =
                static_cast<uint8_t>(std::popcount(s.orMask));
            planes.nonZero[out] = s.nonZero;
            planes.orMask[out] = s.orMask;
            out++;
        }
    }
    return planes;
}

LanePopPlanes
buildLanePopPlanes(const dnn::NeuronTensor &tensor)
{
    PRA_CHECK(!tensor.empty(),
              "lanePopPlanes: empty workload has no planes");
    LanePopPlanes planes;
    planes.sizeX = tensor.sizeX();
    planes.sizeY = tensor.sizeY();
    planes.bricksPerColumn =
        (tensor.sizeI() + dnn::kBrickSize - 1) / dnn::kBrickSize;
    size_t cells = static_cast<size_t>(planes.sizeX) * planes.sizeY *
                   planes.bricksPerColumn * dnn::kBrickSize;
    planes.pop.assign(cells, 0);

    const uint16_t *data = tensor.flat().data();
    const int channels = tensor.sizeI();
    size_t out = 0;
    for (int64_t column = 0;
         column < static_cast<int64_t>(planes.sizeX) * planes.sizeY;
         column++) {
        const uint16_t *lane = data + column * channels;
        for (int base = 0; base < channels; base += dnn::kBrickSize) {
            int lanes = std::min(dnn::kBrickSize, channels - base);
            for (int i = 0; i < lanes; i++)
                planes.pop[out + i] = static_cast<uint8_t>(
                    std::popcount(lane[base + i]));
            out += dnn::kBrickSize;
        }
    }
    return planes;
}

WeightBrickPlanes
buildWeightBrickPlanes(
    const dnn::LayerSpec &layer, int lanes,
    const std::function<void(int filter, std::span<uint16_t> codes)>
        &filter_codes)
{
    PRA_CHECK(layer.priced(),
              "weightBrickPlanes: pool layers carry no weights");
    PRA_CHECK(lanes >= 1, "weightBrickPlanes: lanes must be positive");
    const int channels = layer.inputChannels;
    const int bricks = (channels + lanes - 1) / lanes;
    const int positions = layer.filterX * layer.filterY;

    WeightBrickPlanes planes;
    planes.lanes = lanes;
    planes.numSets = positions * bricks;
    size_t cells = static_cast<size_t>(planes.numSets) * lanes;
    planes.sumPop.assign(cells, 0);
    planes.maxPop.assign(cells, 0);
    planes.orMask.assign(cells, 0);
    planes.maxMag.assign(cells, 0);

    // Stream one filter at a time, reducing its codes into the
    // per-(set, lane) accumulators. The flat (fy * Fx + fx) * I + c
    // filter layout keeps each set's lanes contiguous.
    std::vector<uint16_t> codes(
        static_cast<size_t>(layer.synapsesPerFilter()));
    for (int f = 0; f < layer.numFilters; f++) {
        filter_codes(f, codes);
        for (int pos = 0; pos < positions; pos++) {
            const uint16_t *column =
                codes.data() + static_cast<size_t>(pos) * channels;
            for (int brick = 0; brick < bricks; brick++) {
                int real = std::min(lanes, channels - brick * lanes);
                size_t idx = planes.index(pos * bricks + brick, 0);
                const uint16_t *lane = column + brick * lanes;
                for (int l = 0; l < real; l++) {
                    uint16_t code = lane[l];
                    int p = std::popcount(code);
                    planes.sumPop[idx + l] += p;
                    planes.maxPop[idx + l] = static_cast<uint8_t>(
                        std::max<int>(planes.maxPop[idx + l], p));
                    planes.orMask[idx + l] |= code;
                    planes.maxMag[idx + l] = std::max<uint16_t>(
                        planes.maxMag[idx + l], code);
                }
            }
        }
    }
    return planes;
}

WeightBrickPlanes
syntheticWeightPlanes(const dnn::LayerSpec &layer, int lanes)
{
    return buildWeightBrickPlanes(
        layer, lanes, [&layer](int filter, std::span<uint16_t> codes) {
            dnn::synthesizeWeightCodes(layer, filter, codes);
        });
}

WeightBrickPlanes
propagatedWeightPlanes(const dnn::LayerSpec &layer, uint64_t synth_seed,
                       int lanes)
{
    dnn::PropagatedWeightCodes source(layer, synth_seed);
    return buildWeightBrickPlanes(
        layer, lanes, [&source](int filter, std::span<uint16_t> codes) {
            source.filterCodes(filter, codes);
        });
}

} // namespace sim
} // namespace pra
