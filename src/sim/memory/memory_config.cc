#include "sim/memory/memory_config.h"

#include <algorithm>

#include "util/logging.h"

namespace pra {
namespace sim {

namespace {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;

struct PresetDef
{
    const char *name;
    const char *help;
    MemoryConfig config;
};

/**
 * The named design points. Capacities and bandwidths are calibration
 * choices documented in docs/ARCHITECTURE.md ("memory presets"), not
 * published numbers: the paper's machines were evaluated compute-only,
 * so these presets exist to bound the designs between a generous
 * eDRAM-class hierarchy (dadn), a starved edge part (edge), and a
 * high-bandwidth off-chip interface (hbm).
 */
const PresetDef kPresets[] = {
    {"dadn",
     "DaDN-class hierarchy: 4 MiB global buffer, 16 banks x 32 B/cyc, "
     "8 KiB/128 KiB spads, 32 B/cyc DRAM",
     {"dadn", true, false, 4.0 * kMiB, 16, 32.0, 8.0 * kKiB,
      128.0 * kKiB, 32.0}},
    {"edge",
     "edge-class hierarchy: 512 KiB global buffer, 8 banks x 16 B/cyc, "
     "4 KiB/64 KiB spads, 8 B/cyc DRAM",
     {"edge", true, false, 512.0 * kKiB, 8, 16.0, 4.0 * kKiB,
      64.0 * kKiB, 8.0}},
    {"hbm",
     "HBM-class hierarchy: 4 MiB global buffer, 16 banks x 32 B/cyc, "
     "8 KiB/128 KiB spads, 256 B/cyc DRAM",
     {"hbm", true, false, 4.0 * kMiB, 16, 32.0, 8.0 * kKiB,
      128.0 * kKiB, 256.0}},
};

} // namespace

bool
MemoryConfig::valid() const
{
    if (!enabled || ideal)
        return true;
    return gbCapacityBytes > 0.0 && gbBanks > 0 &&
           gbBankBytesPerCycle > 0.0 && inputSpadBytes > 0.0 &&
           weightSpadBytes > 0.0 && dramBytesPerCycle > 0.0;
}

MemoryConfig
parseMemoryPreset(const std::string &preset)
{
    if (preset == "off")
        return MemoryConfig{};
    if (preset == "ideal") {
        MemoryConfig config;
        config.preset = "ideal";
        config.enabled = true;
        config.ideal = true;
        return config;
    }
    for (const PresetDef &def : kPresets)
        if (preset == def.name)
            return def.config;
    std::string known = "off, ideal";
    for (const PresetDef &def : kPresets)
        known += std::string(", ") + def.name;
    util::fatal("unknown memory preset '" + preset + "' (known: " +
                known + ")");
}

std::vector<std::string>
memoryPresetNames()
{
    std::vector<std::string> names = {"ideal", "off"};
    for (const PresetDef &def : kPresets)
        names.push_back(def.name);
    // kPresets is alphabetical after {ideal, off}; keep the whole
    // list sorted for stable help output.
    std::sort(names.begin(), names.end());
    return names;
}

std::string
memoryPresetHelp(const std::string &preset)
{
    if (preset == "off")
        return "no memory modeling (compute-only results; the default)";
    if (preset == "ideal")
        return "infinite bandwidth and capacity: traffic counted, "
               "zero stalls";
    for (const PresetDef &def : kPresets)
        if (preset == def.name)
            return def.help;
    util::fatal("unknown memory preset '" + preset + "'");
}

} // namespace sim
} // namespace pra
