/**
 * @file
 * Memory-hierarchy configuration and presets.
 *
 * Describes the three levels the memory model prices (see
 * sim/memory/memory_model.h for the traffic and stall rules):
 *
 *  - a chip-wide **global buffer** (the NM-class eDRAM/SRAM block)
 *    with a capacity, a bank count, and a per-bank bandwidth;
 *  - per-tile **double-buffered scratchpads** for the input stream
 *    (NBin-class) and the synapse slice (SB-class) — capacities are
 *    per *half* of the double buffer, i.e. what one tile step can
 *    keep resident while the next step's data is prefetched;
 *  - one off-chip **DRAM channel** with a flat bytes-per-cycle
 *    bandwidth.
 *
 * A config is selected by preset name on the CLI
 * (`--memory=off|ideal|dadn|edge|hbm`). "off" (the default
 * everywhere) disables the model entirely so every committed golden
 * stays byte-identical; "ideal" counts traffic but has infinite
 * bandwidth and capacity, so stalls are zero by construction and
 * compute columns match "off" exactly — the equivalence tests and CI
 * assert both properties.
 *
 * This header is dependency-free so AccelConfig can embed a
 * MemoryConfig without the sim layer growing a cycle.
 */

#pragma once

#include <string>
#include <vector>

namespace pra {
namespace sim {

/** One memory-hierarchy design point (see file comment). */
struct MemoryConfig
{
    /** Preset this config was built from ("off" = model disabled). */
    std::string preset = "off";

    /** False (default): no memory modeling, goldens unchanged. */
    bool enabled = false;

    /**
     * Infinite bandwidth *and* capacity: traffic bytes are still
     * counted (they depend only on geometry), but every fetch is
     * free, so stall cycles are exactly zero and off-chip traffic is
     * compulsory-only.
     */
    bool ideal = false;

    double gbCapacityBytes = 0.0;    ///< Global-buffer capacity.
    int gbBanks = 0;                 ///< Independent GB banks.
    double gbBankBytesPerCycle = 0.0; ///< Bandwidth per bank.

    /** Input (NBin-class) scratchpad bytes per tile, per half. */
    double inputSpadBytes = 0.0;
    /** Weight (SB-class) scratchpad bytes per tile, per half. */
    double weightSpadBytes = 0.0;

    double dramBytesPerCycle = 0.0;  ///< Off-chip channel bandwidth.

    /** Aggregate global-buffer bandwidth in bytes per cycle. */
    double gbBytesPerCycle() const
    {
        return static_cast<double>(gbBanks) * gbBankBytesPerCycle;
    }

    /**
     * True when the config is usable: disabled and ideal configs are
     * always valid; a real preset needs strictly positive capacities,
     * bank count, and bandwidths (a zero-capacity buffer or
     * zero-bandwidth channel is a degenerate machine, rejected
     * loudly, not simulated).
     */
    bool valid() const;
};

/**
 * Build the config for @p preset: "off", "ideal", or a named design
 * point ("dadn", "edge", "hbm" — see memoryPresetNames()). fatal()
 * on anything else, naming the known presets.
 */
MemoryConfig parseMemoryPreset(const std::string &preset);

/** Names accepted by parseMemoryPreset(), sorted, including off/ideal. */
std::vector<std::string> memoryPresetNames();

/** One-line description of @p preset (for --list-memory style help). */
std::string memoryPresetHelp(const std::string &preset);

} // namespace sim
} // namespace pra

