/**
 * @file
 * Memory-hierarchy traffic and stall model.
 *
 * Turns a layer's geometry plus an engine's *compute* cycles into
 * stall-aware *system* cycles, without touching the engines: the
 * model is applied to a finished LayerResult/NetworkResult, so every
 * engine (including ones that override runNetwork) gets memory
 * modeling through the same two free functions.
 *
 * ## Traffic (bytes, 16-bit words)
 *
 * Execution is pass-major (groups of tiles*filtersPerTile filters)
 * and pallet-minor (sim/tiling.h). Per layer:
 *
 *  - **on-chip** (global buffer <-> scratchpads):
 *      * ifmap: each image's input streams through the NBin-class
 *        scratchpad once per pass — inputNeurons * 2 * B * passes
 *        bytes for a batch of B images;
 *      * filters: each pass's filter slice loads once when the
 *        per-tile slice (filtersPerTile * synapsesPerFilter words)
 *        fits the weight scratchpad half — the whole batch reuses it,
 *        since execution is pass-major and image-minor, so resident
 *        filter traffic does NOT scale with B (the classic batching
 *        amortization) — and re-streams per (image, pallet) when it
 *        does not — synapses * 2 * (1 or numPallets * B) bytes;
 *      * ofmap: written back once per image — outputNeurons * 2 * B
 *        bytes.
 *  - **off-chip** (DRAM <-> global buffer): compulsory-only when the
 *    batch working set (B ifmaps + filters + B ofmaps) fits the
 *    global buffer; otherwise each ifmap is re-fetched from DRAM on
 *    every pass. Filters are consumed by exactly one pass each and
 *    shared by the whole batch, so they cross the channel once
 *    regardless of B — which is why the off-chip bytes of a batch-B
 *    run are strictly below B times the batch-1 run on any
 *    filter-heavy (FC) layer.
 *
 * ## Stalls (double-buffered fetch/compute overlap)
 *
 * The scratchpads are double-buffered: while tile step i computes,
 * step i+1's data is prefetched (the same rule CADOSys's
 * double_buffer_scratchpad_mem applies per prefetch request). With
 * steps = passes * numPallets uniform tile steps, fetch time
 * F = max(onChipBytes / gbBandwidth, offChipBytes / dramBandwidth)
 * (the two channels run in parallel) and compute time C:
 *
 *     stall = F/steps                      (cold fill of step 0)
 *           + (steps-1)/steps * max(0, F - C)   (steady state)
 *
 * so a compute-bound layer pays only the first fill, and a
 * bandwidth-bound layer degenerates to "system time = fetch time".
 * A layer is flagged bandwidth-bound when F > C. The ideal preset
 * (infinite bandwidth/capacity) has zero stalls by construction and
 * compulsory-only off-chip traffic.
 *
 * Everything is derived from full-layer geometry and the (possibly
 * sampled) compute-cycle estimate in one fixed evaluation order, so
 * results are bit-identical across thread counts and cache modes.
 */

#pragma once

#include "dnn/layer_spec.h"
#include "dnn/network.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/memory/memory_config.h"

namespace pra {
namespace sim {

/** Per-layer memory traffic, in bytes (see file comment). */
struct LayerTraffic
{
    double ifmapBytes = 0.0;  ///< Batch input bytes (unique * B).
    double filterBytes = 0.0; ///< Unique synapse bytes (shared by B).
    double ofmapBytes = 0.0;  ///< Batch output bytes (unique * B).

    double onChipBytes = 0.0;  ///< GB <-> scratchpad traffic.
    double offChipBytes = 0.0; ///< DRAM <-> GB traffic.

    /** Uniform double-buffer tile steps (passes * pallets * B). */
    double tileSteps = 1.0;

    /** True when the working set fits the global buffer (or ideal). */
    bool fitsGlobalBuffer = false;
    /** True when a pass's per-tile filter slice fits the weight spad. */
    bool weightsResident = false;
};

/**
 * Traffic of a batch of @p batch images (>= 1) of @p layer under
 * @p accel and @p memory (which must be enabled and valid; panic
 * otherwise). Pool layers carry no priced traffic and must not be
 * passed here. batch == 1 reproduces the historical single-image
 * traffic exactly (every batch factor is a multiply by 1.0).
 */
LayerTraffic layerTraffic(const dnn::LayerSpec &layer,
                          const AccelConfig &accel,
                          const MemoryConfig &memory, int batch = 1);

/**
 * Stall cycles of the overlap rule (file comment) for @p traffic
 * against @p compute_cycles. Zero under an ideal config.
 */
double memoryStallCycles(const LayerTraffic &traffic,
                         double compute_cycles,
                         const MemoryConfig &memory);

/**
 * Fill @p result's memory columns (onChipBytes, offChipBytes,
 * memStallCycles, bandwidthBound, memoryModeled) from @p layer's
 * traffic — at the result's own batchImages — and the result's
 * per-batch compute cycles. No-op when accel.memory is disabled.
 */
void applyMemoryModel(const dnn::LayerSpec &layer,
                      const AccelConfig &accel, LayerResult &result);

/**
 * Apply the model to every priced layer of @p network, in network
 * order. @p result must hold exactly one LayerResult per priced
 * layer, in order (what every engine's runNetwork produces); layer
 * names are cross-checked. No-op when accel.memory is disabled.
 */
void applyMemoryModel(const dnn::Network &network,
                      const AccelConfig &accel, NetworkResult &result);

} // namespace sim
} // namespace pra

