#include "sim/memory/memory_model.h"

#include <algorithm>

#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

namespace {

/** Bytes per 16-bit neuron/synapse word. */
constexpr double kWordBytes = 2.0;

} // namespace

LayerTraffic
layerTraffic(const dnn::LayerSpec &layer, const AccelConfig &accel,
             const MemoryConfig &memory, int batch)
{
    PRA_CHECK(memory.enabled && memory.valid(),
                         "layerTraffic: disabled or invalid memory "
                         "config");
    PRA_CHECK(layer.priced(),
                         "layerTraffic: pool layers carry no priced "
                         "traffic");
    PRA_CHECK(batch >= 1, "layerTraffic: batch must be >= 1");

    LayerTraffic t;
    double passes = static_cast<double>(accel.passes(layer.numFilters));
    double pallets = static_cast<double>(
        LayerTiling::palletCount(layer, accel));
    double images = static_cast<double>(batch);
    t.tileSteps = std::max(1.0, passes * pallets * images);

    // ifmap/ofmap are per-image tensors, filters the shared model:
    // a batch streams B inputs and writes B outputs against one set
    // of weights. Every factor is * 1.0 at batch 1, so single-image
    // traffic is bit-identical to the pre-batch model.
    t.ifmapBytes =
        static_cast<double>(layer.inputNeurons()) * kWordBytes * images;
    t.filterBytes = static_cast<double>(layer.synapses()) * kWordBytes;
    t.ofmapBytes =
        static_cast<double>(layer.outputNeurons()) * kWordBytes * images;

    // One pass's filter slice per tile: filtersPerTile filters of
    // synapsesPerFilter words. Resident slices load once per pass
    // and serve the whole batch (pass-major, image-minor execution);
    // oversized slices re-stream from the global buffer per
    // (image, pallet).
    double slice_bytes = static_cast<double>(accel.filtersPerTile) *
                         static_cast<double>(layer.synapsesPerFilter()) *
                         kWordBytes;
    t.weightsResident =
        memory.ideal || slice_bytes <= memory.weightSpadBytes;
    double filter_gb =
        t.filterBytes * (t.weightsResident ? 1.0 : pallets * images);
    t.onChipBytes = t.ifmapBytes * passes + filter_gb + t.ofmapBytes;

    // Off-chip: compulsory-only when the batch working set fits the
    // global buffer; otherwise every ifmap re-crosses the channel
    // each pass. Filters cross once regardless of the batch — the
    // amortization that makes batched FC serving worthwhile.
    double working_set = t.ifmapBytes + t.filterBytes + t.ofmapBytes;
    t.fitsGlobalBuffer =
        memory.ideal || working_set <= memory.gbCapacityBytes;
    double ifmap_dram =
        t.fitsGlobalBuffer ? t.ifmapBytes : t.ifmapBytes * passes;
    t.offChipBytes = ifmap_dram + t.filterBytes + t.ofmapBytes;
    return t;
}

double
memoryStallCycles(const LayerTraffic &traffic, double compute_cycles,
                  const MemoryConfig &memory)
{
    if (memory.ideal)
        return 0.0;
    double fetch =
        std::max(traffic.onChipBytes / memory.gbBytesPerCycle(),
                 traffic.offChipBytes / memory.dramBytesPerCycle);
    double steps = traffic.tileSteps;
    double cold_fill = fetch / steps;
    double steady =
        (steps - 1.0) / steps * std::max(0.0, fetch - compute_cycles);
    return cold_fill + steady;
}

void
applyMemoryModel(const dnn::LayerSpec &layer, const AccelConfig &accel,
                 LayerResult &result)
{
    const MemoryConfig &memory = accel.memory;
    if (!memory.enabled)
        return;
    LayerTraffic traffic =
        layerTraffic(layer, accel, memory, result.batchImages);
    result.onChipBytes = traffic.onChipBytes;
    result.offChipBytes = traffic.offChipBytes;
    result.memStallCycles =
        memoryStallCycles(traffic, result.cycles, memory);
    if (!memory.ideal) {
        double fetch =
            std::max(traffic.onChipBytes / memory.gbBytesPerCycle(),
                     traffic.offChipBytes / memory.dramBytesPerCycle);
        result.bandwidthBound = fetch > result.cycles;
    }
    result.memoryModeled = true;
}

void
applyMemoryModel(const dnn::Network &network, const AccelConfig &accel,
                 NetworkResult &result)
{
    if (!accel.memory.enabled)
        return;
    size_t r = 0;
    for (const auto &layer : network.layers) {
        if (!layer.priced())
            continue;
        PRA_CHECK(r < result.layers.size() &&
                                 result.layers[r].layerName ==
                                     layer.name,
                             "applyMemoryModel: result/network layer "
                             "mismatch");
        applyMemoryModel(layer, accel, result.layers[r]);
        r++;
    }
    PRA_CHECK(r == result.layers.size(),
                         "applyMemoryModel: extra result layers");
}

} // namespace sim
} // namespace pra
