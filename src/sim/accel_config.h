/**
 * @file
 * Shared accelerator configuration (paper Section IV-B).
 *
 * All modeled designs (DaDN, Stripes, Pragmatic) share the DaDianNao
 * organization: 16 tiles, 16 filters per tile, 16 neuron lanes, and a
 * central Neuron Memory (NM) broadcasting neuron bricks to the tiles.
 * The defaults reproduce the configuration of the paper's evaluation;
 * the struct exists so tests and the design-space example can shrink
 * or reshape the machine.
 */

#pragma once

#include <cstdint>

#include "sim/memory/memory_config.h"

namespace pra {
namespace sim {

/** Machine-level configuration shared by every modeled design. */
struct AccelConfig
{
    int tiles = 16;            ///< Tiles per chip.
    int filtersPerTile = 16;   ///< Filter lanes per tile.
    int neuronLanes = 16;      ///< Neurons per brick (brick size).
    int windowsPerPallet = 16; ///< PIP columns / bricks per pallet.

    /**
     * Neurons per NM row. DaDN's NM supplies 256 16-bit neurons per
     * row access (4096 bits); a pallet with unit stride then spans at
     * most two adjacent rows (Section V-A4).
     */
    int nmRowNeurons = 256;

    /**
     * Memory-hierarchy design point (global buffer, double-buffered
     * scratchpads, DRAM channel — sim/memory/memory_config.h).
     * Disabled by default: results are compute-only and every
     * committed golden is byte-identical. When enabled, the sweep
     * driver composes each engine's compute cycles with the traffic
     * and stall model of sim/memory/memory_model.h.
     */
    MemoryConfig memory;

    /** Filters processed concurrently by the whole chip. */
    int filtersPerPass() const { return tiles * filtersPerTile; }

    /** Passes over the input needed for a layer with @p filters. */
    int
    passes(int filters) const
    {
        return (filters + filtersPerPass() - 1) / filtersPerPass();
    }

    bool
    valid() const
    {
        return tiles > 0 && filtersPerTile > 0 && neuronLanes > 0 &&
               windowsPerPallet > 0 && nmRowNeurons >= neuronLanes &&
               memory.valid();
    }
};

} // namespace sim
} // namespace pra

