/**
 * @file
 * The unified simulation-engine interface.
 *
 * Every cycle/term model in src/models adapts to this interface so
 * that sweeps, benches and tools can treat "a thing that simulates a
 * layer" uniformly: DaDN and Stripes (value-independent baselines),
 * the Pragmatic pallet- and column-sync engines, and the analytic
 * term-count model. Adapters wrap the existing models without
 * changing their math; an engine is identified by its registry
 * *kind* (e.g. "pragmatic") and a variant *name* derived from its
 * knobs (e.g. "PRA-2b-1R").
 */

#ifndef PRA_SIM_ENGINE_H
#define PRA_SIM_ENGINE_H

#include <string>

#include "dnn/activation_synth.h"
#include "dnn/conv_layer.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"

namespace pra {
namespace sim {

/**
 * Which synthesized neuron stream an engine's simulateLayer expects.
 * None marks value-independent engines (geometry only); the sweep
 * driver skips synthesis for them entirely.
 */
enum class InputStream { None, Fixed16Raw, Fixed16Trimmed, Quant8 };

/** Synthesize the stream @p stream of layer @p layer_idx. */
dnn::NeuronTensor
synthesizeStream(const dnn::ActivationSynthesizer &activations,
                 int layer_idx, InputStream stream);

/** One simulation backend behind a uniform layer/network API. */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Registry kind this engine was created under, e.g. "stripes". */
    virtual std::string kind() const = 0;

    /**
     * Variant label embedded in results, e.g. "PRA-2b". Distinct
     * knob settings of one kind produce distinct names.
     */
    virtual std::string name() const = 0;

    /** The neuron stream simulateLayer expects as @p input. */
    virtual InputStream inputStream() const { return InputStream::None; }

    /**
     * Simulate one layer. @p input carries the stream announced by
     * inputStream() (empty for value-independent engines). The
     * returned LayerResult has layerName and engineName filled in.
     */
    virtual LayerResult
    simulateLayer(const dnn::ConvLayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const AccelConfig &accel,
                  const SampleSpec &sample) const = 0;

    /**
     * Simulate a whole network on the synthesized activation stream.
     * The default loops simulateLayer over the layers in order,
     * synthesizing each layer's inputStream(); engines needing extra
     * per-layer context (e.g. the analytic model's first-layer CVN
     * rule) override this.
     */
    virtual NetworkResult
    runNetwork(const dnn::Network &network,
               const dnn::ActivationSynthesizer &activations,
               const AccelConfig &accel, const SampleSpec &sample) const;
};

} // namespace sim
} // namespace pra

#endif // PRA_SIM_ENGINE_H
