/**
 * @file
 * The unified simulation-engine interface.
 *
 * Every cycle/term model in src/models adapts to this interface so
 * that sweeps, benches and tools can treat "a thing that simulates a
 * layer" uniformly: DaDN and Stripes (value-independent baselines),
 * the Pragmatic pallet- and column-sync engines, and the analytic
 * term-count model. Adapters wrap the existing models without
 * changing their math; an engine is identified by its registry
 * *kind* (e.g. "pragmatic") and a variant *name* derived from its
 * knobs (e.g. "PRA-2b-1R").
 *
 * Engines consume immutable LayerWorkload views (stream tensor plus
 * packed per-brick planes) handed out by a WorkloadSource, so a sweep
 * can share one synthesized workload across every grid cell, and may
 * split big layers into deterministic blocks across an InnerExecutor.
 * The tensor-based simulateLayer overload remains the one engines
 * must implement and the workload overload defaults to it, so simple
 * engines never see the cache machinery.
 */

#pragma once

#include <string>

#include "dnn/activation_synth.h"
#include "dnn/layer_spec.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"
#include "util/thread_pool.h"

namespace pra {
namespace sim {

/** One simulation backend behind a uniform layer/network API. */
class Engine
{
  public:
    virtual ~Engine() = default;

    /** Registry kind this engine was created under, e.g. "stripes". */
    virtual std::string kind() const = 0;

    /**
     * Variant label embedded in results, e.g. "PRA-2b". Distinct
     * knob settings of one kind produce distinct names.
     */
    virtual std::string name() const = 0;

    /** The neuron stream simulateLayer expects as @p input. */
    virtual InputStream inputStream() const { return InputStream::None; }

    /**
     * Simulate one layer. @p input carries the stream announced by
     * inputStream() (empty for value-independent engines). The
     * returned LayerResult has layerName and engineName filled in.
     */
    virtual LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const AccelConfig &accel,
                  const SampleSpec &sample) const = 0;

    /**
     * Simulate one layer from a shared workload view, optionally
     * splitting it into deterministic blocks across @p exec. The
     * default ignores the planes and the executor and forwards to the
     * tensor overload; engines with a workload-aware fast path
     * (Pragmatic) override it. Must produce bit-identical results to
     * the tensor overload on workload.tensor().
     */
    virtual LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const LayerWorkload &workload, const AccelConfig &accel,
                  const SampleSpec &sample,
                  const util::InnerExecutor &exec) const;

    /**
     * Simulate a whole network on the workloads of @p source. The
     * default loops simulateLayer over the layers in order, pulling
     * each layer's inputStream() view from the source; structural
     * pool layers (never priced by any engine) are skipped, so
     * results contain one entry per *priced* layer. Engines needing
     * extra per-layer context (e.g. the analytic model's
     * first-layer CVN rule) override this and apply the same skip.
     */
    virtual NetworkResult
    runNetwork(const dnn::Network &network, const WorkloadSource &source,
               const AccelConfig &accel, const SampleSpec &sample,
               const util::InnerExecutor &exec) const;

    /**
     * Convenience overload: simulate a whole network straight off a
     * synthesizer (uncached workloads, serial execution).
     */
    NetworkResult
    runNetwork(const dnn::Network &network,
               const dnn::ActivationSynthesizer &activations,
               const AccelConfig &accel, const SampleSpec &sample) const;

    /**
     * Simulate a batch of @p batch images (must be >= 1): one
     * runNetwork per image on source.withImage(b), accumulated into a
     * per-batch aggregate (accumulateBatchImage) with batchImages
     * stamped on every layer. Image 0 is the historical stream, so
     * runBatch(..., 1) is byte-identical to runNetwork() apart from
     * the (defaulted) batchImages field. Deliberately non-virtual:
     * engines that override runNetwork (the analytic terms model)
     * batch through the same accumulation rule.
     */
    NetworkResult
    runBatch(const dnn::Network &network, const WorkloadSource &source,
             const AccelConfig &accel, const SampleSpec &sample,
             const util::InnerExecutor &exec, int batch) const;
};

} // namespace sim
} // namespace pra

