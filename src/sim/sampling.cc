#include "sim/sampling.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace sim {

SamplePlan
planSample(int64_t total, const SampleSpec &spec)
{
    PRA_CHECK(total >= 0, "planSample: negative total");
    SamplePlan plan;
    if (total == 0)
        return plan;
    if (!spec.enabled() || total <= spec.maxUnits) {
        plan.indices.reserve(total);
        for (int64_t i = 0; i < total; i++)
            plan.indices.push_back(i);
        plan.scale = 1.0;
        return plan;
    }
    int64_t count = spec.maxUnits;
    plan.indices.reserve(count);
    // Evenly spaced indices: floor(k * total / count) is strictly
    // increasing because total > count.
    for (int64_t k = 0; k < count; k++)
        plan.indices.push_back(k * total / count);
    plan.scale = static_cast<double>(total) /
                 static_cast<double>(count);
    return plan;
}

} // namespace sim
} // namespace pra
