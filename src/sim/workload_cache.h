/**
 * @file
 * Shared workload substrate for sweeps: synthesized neuron streams,
 * packed per-brick term-count/oneffset-bound planes, and a
 * thread-safe cache keyed by (network, representation, trim, seed).
 *
 * Every value-dependent engine in a sweep grid consumes some
 * synthesized stream of each layer — convolutional or
 * fully-connected alike (an FC layer's stream is its lowered
 * 1 x 1 x I input column); cache keys carry the network's workload
 * fingerprint, so different layer selections of one network never
 * share entries. Without sharing, each grid cell re-synthesizes its
 * streams from scratch, so sweep cost grows with the grid size
 * instead of with the number of *distinct* workloads.
 * The cache synthesizes each (network, stream, seed) workload once
 * and hands every consumer an immutable std::shared_ptr view.
 *
 * A LayerWorkload also precomputes, per 16-channel brick position,
 * packed summaries of the oneffset content the engines otherwise
 * rederive lane by lane:
 *
 *  - pop:     total oneffsets (set bits) of the brick — the brick's
 *             effectual-term count;
 *  - maxPop:  the busiest lane's oneffset count — exactly the
 *             single-stage (L=4) PIP schedule length;
 *  - orPop:   distinct oneffset positions across the brick — exactly
 *             the L=0 schedule length, and an upper bound for any L;
 *  - nonZero: non-zero lanes — the zero-skip term count.
 *
 * Since the brick schedule length is monotone in L between orPop
 * (L=0) and maxPop (L=4) — properties asserted by the schedule test
 * suite — engines can serve L=0/L=4 from the planes outright and skip
 * the cycle-by-cycle schedule for any L whenever orPop == maxPop,
 * without changing a single result bit.
 */

#ifndef PRA_SIM_WORKLOAD_CACHE_H
#define PRA_SIM_WORKLOAD_CACHE_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/network.h"
#include "dnn/tensor.h"

namespace pra {
namespace sim {

/**
 * Which synthesized neuron stream an engine's simulateLayer expects.
 * None marks value-independent engines (geometry only); workload
 * sources hand them an empty view and skip synthesis entirely.
 */
enum class InputStream { None, Fixed16Raw, Fixed16Trimmed, Quant8 };

/** Synthesize the stream @p stream of layer @p layer_idx. */
dnn::NeuronTensor
synthesizeStream(const dnn::ActivationSynthesizer &activations,
                 int layer_idx, InputStream stream);

/**
 * Packed per-brick planes of one layer stream (see file comment).
 * Bricks are dnn::kBrickSize consecutive channels; entry (x, y, b)
 * lives at flat index (y * sizeX + x) * bricksPerColumn + b. The
 * last brick of a column is partial when the channel count is not a
 * brick multiple (missing lanes count as zero, as gathers pad them).
 */
struct BrickPlanes
{
    int sizeX = 0;
    int sizeY = 0;
    int bricksPerColumn = 0; ///< ceil(channels / kBrickSize).

    std::vector<int32_t> pop;    ///< Brick term (set-bit) totals.
    std::vector<uint8_t> maxPop; ///< Max lane popcount (L=4 cycles).
    std::vector<uint8_t> orPop;  ///< Popcount of lane OR (L=0 cycles).
    std::vector<uint8_t> nonZero; ///< Non-zero lanes in the brick.

    size_t
    index(int x, int y, int brick) const
    {
        return (static_cast<size_t>(y) * sizeX + x) * bricksPerColumn +
               brick;
    }
};

/**
 * One layer's input stream plus its lazily built brick planes.
 * Immutable once constructed; share freely across threads via
 * std::shared_ptr<const LayerWorkload>.
 */
class LayerWorkload
{
  public:
    /** Wrap a synthesized stream (empty tensor = no-input view). */
    explicit LayerWorkload(dnn::NeuronTensor tensor)
        : tensor_(std::move(tensor))
    {
    }

    const dnn::NeuronTensor &tensor() const { return tensor_; }

    /**
     * The packed brick planes, built on first use (thread-safe).
     * Must not be called on an empty (no-input) workload.
     */
    const BrickPlanes &brickPlanes() const;

  private:
    dnn::NeuronTensor tensor_;
    mutable std::once_flag planesOnce_;
    mutable BrickPlanes planes_;
};

/**
 * Thread-safe cache of synthesizers and layer workloads, keyed by
 * (network name, workload fingerprint, seed) and (network name,
 * workload fingerprint, seed, layer, stream). The fingerprint
 * (Network::workloadFingerprint()) covers the layer list and the
 * calibration targets, keeping two selections of the same network —
 * e.g. AlexNet conv-only vs its FC tail, both named "AlexNet" — or
 * same-named networks with different targets from silently sharing
 * each other's streams. Concurrent requests for the same key block
 * until the first requester finishes building; everyone shares one
 * immutable object.
 */
class WorkloadCache
{
  public:
    WorkloadCache() = default;

    WorkloadCache(const WorkloadCache &) = delete;
    WorkloadCache &operator=(const WorkloadCache &) = delete;

    /** The shared synthesizer for (network, seed). */
    std::shared_ptr<const dnn::ActivationSynthesizer>
    synthesizer(const dnn::Network &network, uint64_t seed);

    /**
     * The shared workload of layer @p layer_idx's @p stream under
     * @p synth. InputStream::None returns the shared empty view.
     */
    std::shared_ptr<const LayerWorkload>
    layer(const dnn::ActivationSynthesizer &synth, int layer_idx,
          InputStream stream);

    /** Workload requests served from / added to the cache so far. */
    int64_t hits() const;
    int64_t misses() const;

  private:
    /** (name, workload fingerprint, seed, layer index, stream). */
    using LayerKey =
        std::tuple<std::string, uint64_t, uint64_t, int, int>;
    /** (name, workload fingerprint, seed). */
    using SynthKey = std::tuple<std::string, uint64_t, uint64_t>;

    template <typename V> struct Entry
    {
        std::promise<std::shared_ptr<V>> promise;
        std::shared_future<std::shared_ptr<V>> future;
    };

    mutable std::mutex mutex_;
    std::map<SynthKey, Entry<const dnn::ActivationSynthesizer>> synths_;
    std::map<LayerKey, Entry<const LayerWorkload>> layers_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
};

/**
 * Where one simulation run's workloads come from: a synthesizer,
 * optionally backed by a shared cache. Uncached sources synthesize
 * (and build planes) on every request — exactly the same values, just
 * not shared — so results are byte-identical with the cache on or
 * off.
 */
class WorkloadSource
{
  public:
    /** Uncached: every layer() call synthesizes afresh. */
    explicit WorkloadSource(const dnn::ActivationSynthesizer &synth)
        : synth_(synth)
    {
    }

    /** Cached: layer() shares workloads through @p cache. */
    WorkloadSource(const dnn::ActivationSynthesizer &synth,
                   WorkloadCache &cache)
        : synth_(synth), cache_(&cache)
    {
    }

    const dnn::ActivationSynthesizer &synthesizer() const
    {
        return synth_;
    }

    /** The workload view of layer @p layer_idx's @p stream. */
    std::shared_ptr<const LayerWorkload>
    layer(int layer_idx, InputStream stream) const;

  private:
    const dnn::ActivationSynthesizer &synth_;
    WorkloadCache *cache_ = nullptr;
};

} // namespace sim
} // namespace pra

#endif // PRA_SIM_WORKLOAD_CACHE_H
