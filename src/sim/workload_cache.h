/**
 * @file
 * Shared workload substrate for sweeps: synthesized or propagated
 * neuron streams, packed per-brick term-count/oneffset-bound planes,
 * and a thread-safe cache keyed by (network name, workload
 * fingerprint, seed, layer, stream-or-mode tag) — see
 * WorkloadCache::LayerKey; the fingerprint covers the layer list and
 * calibration targets, so two selections of one network never share
 * streams. Propagated workloads additionally share
 * one reference forward pass (dnn/propagate.h) per (network, seed):
 * the chain is built exactly once per cache no matter how many
 * engines and layers consume it, and an uncached source memoizes its
 * own — so results are identical across thread counts and with the
 * cache on or off.
 *
 * Every value-dependent engine in a sweep grid consumes some
 * synthesized stream of each layer — convolutional or
 * fully-connected alike (an FC layer's stream is its lowered
 * 1 x 1 x I input column); cache keys carry the network's workload
 * fingerprint, so different layer selections of one network never
 * share entries. Without sharing, each grid cell re-synthesizes its
 * streams from scratch, so sweep cost grows with the grid size
 * instead of with the number of *distinct* workloads.
 * The cache synthesizes each (network, stream, seed) workload once
 * and hands every consumer an immutable std::shared_ptr view.
 *
 * A LayerWorkload also precomputes, per 16-channel brick position,
 * packed summaries of the oneffset content the engines otherwise
 * rederive lane by lane (the plane types and builders live in
 * sim/operand_planes.h, shared with the weight-side planes):
 *
 *  - pop:     total oneffsets (set bits) of the brick — the brick's
 *             effectual-term count;
 *  - maxPop:  the busiest lane's oneffset count — exactly the
 *             single-stage (L=4) PIP schedule length;
 *  - orPop:   distinct oneffset positions across the brick — exactly
 *             the L=0 schedule length, and an upper bound for any L;
 *  - nonZero: non-zero lanes — the zero-skip term count.
 *
 * Since the brick schedule length is monotone in L between orPop
 * (L=0) and maxPop (L=4) — properties asserted by the schedule test
 * suite — engines can serve L=0/L=4 from the planes outright and skip
 * the cycle-by-cycle schedule for any L whenever orPop == maxPop,
 * without changing a single result bit.
 *
 * For the intermediate widths (L in 1..3, which include the paper's
 * headline 2-stage design) a workload additionally memoizes
 * *schedule-cycle planes*: one lazily built, thread-safe plane per L
 * holding the exact brickScheduleCycles() of every brick, computed
 * row-at-a-time by the batched kernel
 * (models::scheduleCyclesRow). A brick's schedule length depends only
 * on its input position and L — not on which window visits it — so
 * one plane serves every overlapping window (Fx x Fy revisits), both
 * Pragmatic engines, and every sweep cell sharing the workload. The
 * planes are an exact memoization, not an approximation: results are
 * bit-identical with them on or off (setCyclePlanesEnabled).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/network.h"
#include "dnn/propagate.h"
#include "dnn/tensor.h"
#include "sim/operand_planes.h"

namespace pra {
namespace sim {

/**
 * Which synthesized neuron stream an engine's simulateLayer expects.
 * None marks value-independent engines (geometry only); workload
 * sources hand them an empty view and skip synthesis entirely.
 */
enum class InputStream { None, Fixed16Raw, Fixed16Trimmed, Quant8 };

/**
 * Where layer input streams come from.
 *
 * Synthetic: each layer's stream is synthesized independently,
 * calibrated to the paper's Table I/V statistics (the historical
 * default; all committed goldens are synthetic).
 *
 * Propagated: the streams come from one reference forward pass of
 * the whole network (dnn/propagate.h) — each layer's input is the
 * previous layer's actual output through ReLU, pooling, and
 * requantization into the layer's profiled window, so inter-layer
 * correlation is real. Requires a chain-consistent pipeline network
 * (LayerSelect::All with its pool layers). The trimmed view equals
 * the raw one (requantized codes carry no sub-window noise) and the
 * quantized view applies per-layer zero-nudged affine quantization
 * to the propagated codes.
 */
enum class ActivationMode { Synthetic, Propagated };

/**
 * Globally enable/disable serving intermediate-L schedule lengths
 * from the memoized cycle planes (default: enabled). The planes are
 * an exact memoization, so this changes wall-clock only, never a
 * result bit — the switch exists for equivalence tests and A/B
 * timing (--planes=off). Not synchronized with in-flight
 * simulations: flip it only between runs.
 */
void setCyclePlanesEnabled(bool enabled);
bool cyclePlanesEnabled();

/** Mode name as accepted by --activations ("synthetic"/"propagated"). */
const char *activationModeName(ActivationMode mode);

/** Parse an --activations= value; fatal() on anything else. */
ActivationMode parseActivationMode(const std::string &text);

/**
 * Synthesize the stream @p stream of layer @p layer_idx for batch
 * image @p image (image 0 = the historical single-image stream).
 */
dnn::NeuronTensor
synthesizeStream(const dnn::ActivationSynthesizer &activations,
                 int layer_idx, InputStream stream, int image = 0);

/**
 * Derive the stream @p stream of layer @p layer_idx from a
 * propagated chain (raw = the chain input itself, trimmed = masked,
 * quant8 = per-layer affine quantization of the codes).
 */
dnn::NeuronTensor
propagatedStream(const dnn::PropagatedChain &chain,
                 const dnn::Network &network, int layer_idx,
                 InputStream stream);

/**
 * One layer's input stream plus its lazily built operand planes
 * (sim/operand_planes.h owns the plane types and builders).
 * Immutable once constructed; share freely across threads via
 * std::shared_ptr<const LayerWorkload>. Activation-side planes
 * (brick, lane-pop, cycle) derive from the stream tensor; the
 * optional weight-side planes derive from the layer's weight source
 * — everything is built on first use, so activation-only engines
 * never pay for operand sides they don't read.
 */
class LayerWorkload
{
  public:
    /**
     * Builds the workload's weight-side planes on first
     * weightPlanes() use. An empty builder means the synthetic
     * weight streams (seed-independent; sim::syntheticWeightPlanes);
     * propagated sources install a builder that requantizes the
     * reference filters instead.
     */
    using WeightPlaneBuilder =
        std::function<WeightBrickPlanes(const dnn::LayerSpec &)>;

    /** Wrap a synthesized stream (empty tensor = no-input view). */
    explicit LayerWorkload(dnn::NeuronTensor tensor,
                           WeightPlaneBuilder weight_builder = {})
        : tensor_(std::move(tensor)),
          weightBuilder_(std::move(weight_builder))
    {
    }

    const dnn::NeuronTensor &tensor() const { return tensor_; }

    /**
     * The packed brick planes, built on first use (thread-safe).
     * Must not be called on an empty (no-input) workload.
     */
    const BrickPlanes &brickPlanes() const;

    /**
     * The per-lane popcount planes (Laconic's act-side operand),
     * built on first use (thread-safe). Must not be called on an
     * empty (no-input) workload.
     */
    const LanePopPlanes &lanePopPlanes() const;

    /**
     * The weight-side planes of @p layer (the layer this workload is
     * the input stream of — every caller must pass the same spec),
     * built on first use (thread-safe) with kBrickSize lanes per set.
     * Synthetic workloads derive them from the layer alone;
     * propagated workloads install a builder over the requantized
     * reference filters, so weight-aware engines price the same
     * weights the forward pass convolved.
     */
    const WeightBrickPlanes &
    weightPlanes(const dnn::LayerSpec &layer) const;

    /**
     * The schedule-cycle plane for first-stage width
     * @p first_stage_bits, built on first use (thread-safe). Entry
     * BrickPlanes::index(x, y, brick) is the exact
     * models::brickScheduleCycles() of that brick — the memoized
     * answer BrickCostModel serves instead of rerunning the serial
     * schedule per (window, synapse-set) visit. Only the widths the
     * packed planes cannot already answer are valid here: 1 <=
     * first_stage_bits <= 3 (L=0 is orPop, L=4 is maxPop). Must not
     * be called on an empty (no-input) workload.
     */
    std::span<const uint8_t> cyclePlane(int first_stage_bits) const;

  private:
    dnn::NeuronTensor tensor_;
    WeightPlaneBuilder weightBuilder_;
    mutable std::once_flag planesOnce_;
    mutable BrickPlanes planes_;
    mutable std::once_flag lanePopsOnce_;
    mutable LanePopPlanes lanePops_;
    mutable std::once_flag weightOnce_;
    mutable WeightBrickPlanes weightPlanes_;
    /** Slot l holds the plane for first_stage_bits == l + 1. */
    mutable std::once_flag cyclesOnce_[3];
    mutable std::vector<uint8_t> cycles_[3];
};

/**
 * Thread-safe cache of synthesizers and layer workloads, keyed by
 * (network name, workload fingerprint, seed) and (network name,
 * workload fingerprint, seed, layer, stream). The fingerprint
 * (Network::workloadFingerprint()) covers the layer list and the
 * calibration targets, keeping two selections of the same network —
 * e.g. AlexNet conv-only vs its FC tail, both named "AlexNet" — or
 * same-named networks with different targets from silently sharing
 * each other's streams. Concurrent requests for the same key block
 * until the first requester finishes building; everyone shares one
 * immutable object.
 */
class WorkloadCache
{
  public:
    WorkloadCache() = default;

    WorkloadCache(const WorkloadCache &) = delete;
    WorkloadCache &operator=(const WorkloadCache &) = delete;

    /** The shared synthesizer for (network, seed). */
    std::shared_ptr<const dnn::ActivationSynthesizer>
    synthesizer(const dnn::Network &network, uint64_t seed);

    /**
     * The shared workload of layer @p layer_idx's @p stream under
     * @p synth, drawn from synthesis or from the shared propagated
     * chain per @p mode, for batch image @p image (the LayerKey
     * carries the image index, so every image of a batched request
     * is its own cache entry shared across all consumers of that
     * image). InputStream::None returns the shared empty view.
     */
    std::shared_ptr<const LayerWorkload>
    layer(const dnn::ActivationSynthesizer &synth, int layer_idx,
          InputStream stream,
          ActivationMode mode = ActivationMode::Synthetic,
          int image = 0);

    /**
     * The shared propagated chain for @p synth's (network, seed) and
     * batch image @p image: one reference forward pass per image,
     * built once and handed to every consumer.
     */
    std::shared_ptr<const dnn::PropagatedChain>
    chain(const dnn::ActivationSynthesizer &synth, int image = 0);

    /** Workload requests served from / added to the cache so far. */
    int64_t hits() const;
    int64_t misses() const;

  private:
    /**
     * (name, workload fingerprint, seed, layer index,
     * stream | mode tag, batch image): synthetic and propagated
     * workloads of the same layer are distinct entries, and so is
     * every image of a batch.
     */
    using LayerKey =
        std::tuple<std::string, uint64_t, uint64_t, int, int, int>;
    /** (name, workload fingerprint, seed). */
    using SynthKey = std::tuple<std::string, uint64_t, uint64_t>;
    /** (name, workload fingerprint, seed, batch image). */
    using ChainKey = std::tuple<std::string, uint64_t, uint64_t, int>;

    template <typename V> struct Entry
    {
        std::promise<std::shared_ptr<V>> promise;
        std::shared_future<std::shared_ptr<V>> future;
    };

    mutable std::mutex mutex_;
    std::map<SynthKey, Entry<const dnn::ActivationSynthesizer>> synths_;
    std::map<ChainKey, Entry<const dnn::PropagatedChain>> chains_;
    std::map<LayerKey, Entry<const LayerWorkload>> layers_;
    int64_t hits_ = 0;
    int64_t misses_ = 0;
};

/**
 * Where one simulation run's workloads come from: a synthesizer (and
 * activation mode), optionally backed by a shared cache. Uncached
 * sources rebuild workloads on every request — exactly the same
 * values, just not shared — so results are byte-identical with the
 * cache on or off; an uncached propagated source memoizes its own
 * forward pass (one chain per source, not per layer request).
 *
 * A source is consumed from the one thread driving its grid cell;
 * the chain memo is not synchronized (the shared cache is).
 */
class WorkloadSource
{
  public:
    /** Uncached: every layer() call rebuilds its workload. */
    explicit WorkloadSource(
        const dnn::ActivationSynthesizer &synth,
        ActivationMode mode = ActivationMode::Synthetic)
        : synth_(synth), mode_(mode)
    {
    }

    /** Cached: layer() shares workloads through @p cache. */
    WorkloadSource(const dnn::ActivationSynthesizer &synth,
                   WorkloadCache &cache,
                   ActivationMode mode = ActivationMode::Synthetic)
        : synth_(synth), cache_(&cache), mode_(mode)
    {
    }

    const dnn::ActivationSynthesizer &synthesizer() const
    {
        return synth_;
    }

    ActivationMode mode() const { return mode_; }

    /** The batch image this source's streams belong to. */
    int image() const { return image_; }

    /**
     * A copy of this source bound to batch image @p image: same
     * synthesizer, cache, and mode, but every layer() call now yields
     * that image's stream. The local chain memo carries over only
     * when the image is unchanged (a different image propagates a
     * different forward pass).
     */
    WorkloadSource withImage(int image) const;

    /** The workload view of layer @p layer_idx's @p stream. */
    std::shared_ptr<const LayerWorkload>
    layer(int layer_idx, InputStream stream) const;

    /**
     * The propagated chain backing this source (shared or memoized
     * locally); fatal() in synthetic mode.
     */
    std::shared_ptr<const dnn::PropagatedChain> chain() const;

  private:
    const dnn::ActivationSynthesizer &synth_;
    WorkloadCache *cache_ = nullptr;
    ActivationMode mode_ = ActivationMode::Synthetic;
    int image_ = 0;
    mutable std::shared_ptr<const dnn::PropagatedChain> localChain_;
};

} // namespace sim
} // namespace pra

