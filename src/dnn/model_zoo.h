/**
 * @file
 * The six networks of the paper's evaluation (Section VI-A):
 * AlexNet, NiN, GoogLeNet, VGG-M, VGG-S and VGG-19.
 *
 * Layer geometries follow the published network definitions; each
 * layer carries its per-layer neuron precision from the paper's
 * Table II, and each network carries the Table I / Table V bit
 * statistics used to calibrate the synthetic activation stream.
 * GoogLeNet's convolutions are grouped into the 11 precision groups of
 * Table II (stem conv, conv2 block, nine inception modules).
 */

#ifndef PRA_DNN_MODEL_ZOO_H
#define PRA_DNN_MODEL_ZOO_H

#include <string>
#include <vector>

#include "dnn/network.h"

namespace pra {
namespace dnn {

Network makeAlexNet();
Network makeNiN();
Network makeGoogLeNet();
Network makeVggM();
Network makeVggS();
Network makeVgg19();

/** All six evaluation networks in the paper's reporting order. */
std::vector<Network> makeAllNetworks();

/** Look a network up by (case-insensitive) name; fatal() if unknown. */
Network makeNetworkByName(const std::string &name);

/** Names accepted by makeNetworkByName(). */
std::vector<std::string> networkNames();

/**
 * A deliberately tiny two-layer network for tests and the quickstart
 * example: small enough for exhaustive (unsampled) simulation and
 * functional cross-checking.
 */
Network makeTinyNetwork();

} // namespace dnn
} // namespace pra

#endif // PRA_DNN_MODEL_ZOO_H
