/**
 * @file
 * The six networks of the paper's evaluation (Section VI-A):
 * AlexNet, NiN, GoogLeNet, VGG-M, VGG-S and VGG-19.
 *
 * Layer geometries follow the published network definitions; each
 * layer carries its per-layer neuron precision from the paper's
 * Table II, and each network carries the Table I / Table V bit
 * statistics used to calibrate the synthetic activation stream.
 * GoogLeNet's convolutions are grouped into the 11 precision groups of
 * Table II (stem conv, conv2 block, nine inception modules).
 *
 * Networks are no longer conv-only: each builder takes a LayerSelect
 * choosing which layer kinds to include. The default, Conv, returns
 * exactly the paper's conv-layer workload (byte-identical results to
 * the historical conv-only zoo); Fc/All add the real fully-connected
 * tails (AlexNet fc6-fc8, the VGG fc layers) in their canonical
 * 1x1xI lowered form. NiN and GoogLeNet replace FC tails with global
 * pooling, so an Fc selection leaves them with no layers: builders
 * return them empty, makeAllNetworks() skips them, and
 * makeNetworkByName() rejects the combination loudly.
 *
 * Under All, each network additionally carries its published
 * interstitial (and, for NiN/GoogLeNet, terminal global-average)
 * pooling layers. Pools are structural: no engine prices them, but
 * they make the layer list a shape-consistent pipeline
 * (Network::chainConsistent()) the propagated-activation mode can
 * run end-to-end — e.g. AlexNet conv1 .. pool5 .. fc8. GoogLeNet's
 * inception branches are expressed through explicit per-layer
 * producer lists (LayerSpec::producers), with the four branch
 * outputs of each module concatenating channel-wise into the next
 * consumer. Priced layers' synthesized streams are invariant to the
 * pools: stream seeding uses priced-only ordinals.
 */

#pragma once

#include <string>
#include <vector>

#include "dnn/network.h"

namespace pra {
namespace dnn {

Network makeAlexNet(LayerSelect select = LayerSelect::Conv);
Network makeNiN(LayerSelect select = LayerSelect::Conv);
Network makeGoogLeNet(LayerSelect select = LayerSelect::Conv);
Network makeVggM(LayerSelect select = LayerSelect::Conv);
Network makeVggS(LayerSelect select = LayerSelect::Conv);
Network makeVgg19(LayerSelect select = LayerSelect::Conv);

/**
 * The evaluation networks in the paper's reporting order. Networks
 * the selection leaves empty (NiN and GoogLeNet under Fc) are
 * skipped, so every returned network is valid.
 */
std::vector<Network> makeAllNetworks(LayerSelect select =
                                         LayerSelect::Conv);

/**
 * Look a network up by (case-insensitive) name; fatal() if unknown
 * or if the selection leaves the network with no layers.
 */
Network makeNetworkByName(const std::string &name,
                          LayerSelect select = LayerSelect::Conv);

/** Names accepted by makeNetworkByName(). */
std::vector<std::string> networkNames();

/**
 * Parse a --layers= value: "conv", "fc" or "all"; fatal() otherwise.
 */
LayerSelect parseLayerSelect(const std::string &text);

/**
 * A deliberately tiny two-layer network for tests and the quickstart
 * example: small enough for exhaustive (unsampled) simulation and
 * functional cross-checking. Fc/All add a tiny fc tail.
 */
Network makeTinyNetwork(LayerSelect select = LayerSelect::Conv);

} // namespace dnn
} // namespace pra

