/**
 * @file
 * Reference (golden) convolution used to validate the functional
 * models of every accelerator: DaDN's bit-parallel NFU, Stripes'
 * serial-parallel units and Pragmatic's PIPs must all produce exactly
 * these output sums.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"

namespace pra {
namespace dnn {

/** Output partial sums of a conv layer: one int64 per (x, y, filter). */
using OutputTensor = Tensor3D<int64_t>;

/**
 * Compute the layer's output with exact 64-bit accumulation:
 * o(k,l,f) = sum over (x,y,i) of s_f(x,y,i) * n(x*?S offsets), with
 * zero padding (paper Section IV-A). No activation function is
 * applied: the accelerators compare pre-activation partial sums.
 *
 * @param layer   geometry (input size must match @p input).
 * @param input   the input neuron array.
 * @param filters one FilterTensor per output filter.
 */
OutputTensor referenceConvolution(const LayerSpec &layer,
                                  const NeuronTensor &input,
                                  const std::vector<FilterTensor> &filters);

/**
 * Dot product of one window position against one filter; the quantum
 * of work the inner-product units perform.
 */
int64_t referenceWindowDot(const LayerSpec &layer,
                           const NeuronTensor &input,
                           const FilterTensor &filter,
                           int window_x, int window_y);

} // namespace dnn
} // namespace pra

