/**
 * @file
 * Propagated-activation pipeline: the reference forward pass.
 *
 * Synthetic workloads price every layer against an independently
 * synthesized stream, which makes inter-layer correlation invisible:
 * ReLU sparsity feeding the next convolution, pooling concentrating
 * magnitudes, the fc tail consuming what the conv trunk actually
 * produced. This module instead runs the network once, layer by
 * layer, so each layer's *input tensor is the previous layer's actual
 * output* (the approach trace-driven simulators like DNNsim take with
 * recorded forward passes):
 *
 *  1. Layer 0 consumes the synthesized image stream — bit-identical
 *     to the synthetic mode's layer-0 input, so the two modes share
 *     their only common workload.
 *  2. A conv/FC layer runs referenceConvolution() against
 *     deterministic synthesized filters, accumulating into int64.
 *  3. ReLU zeroes the negative accumulators.
 *  4. Pool layers reduce the int64 activations (max or average)
 *     without requantizing — pooling is shape bridging, not a priced
 *     computation.
 *  5. When the next *priced* layer consumes the activations, they are
 *     requantized into that layer's 16-bit profiled-precision window:
 *     the layer maximum maps linearly onto the top of the window
 *     [anchor, anchor + p - 1] with anchor = min(kNoiseSuffixBits,
 *     16 - p) — the same window synthetic calibration uses. The
 *     requantized codes carry no sub-window noise, so Section V-F
 *     trimming is a no-op on propagated streams by construction.
 *
 * Everything is deterministic in (network, seed) alone: no sampling,
 * no thread-count dependence, so cached and per-cell rebuilt chains
 * are bit-identical.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/network.h"
#include "dnn/reference.h"
#include "dnn/tensor.h"
#include "fixedpoint/quantization.h"

namespace pra {
namespace dnn {

/**
 * Seed salt for the forward-pass filters, so the propagated filters
 * of a layer are independent of (but deterministic alongside) any
 * filters tests synthesize with the default salt.
 */
inline constexpr uint64_t kPropagationFilterSalt = 0xf0f0'aa55'1234'9876;

/** The materialized forward pass of one network. */
struct PropagatedChain
{
    /**
     * inputs[i]: the 16-bit input stream of layers[i], requantized
     * into that layer's profiled window. Pool layers consume raw
     * int64 activations instead and hold an empty tensor here (they
     * are never priced, so no engine asks for their stream).
     */
    std::vector<NeuronTensor> inputs;

    /**
     * inputScale[i]: the real activation value one unit of the
     * *unshifted* code of inputs[i] represents (layer max /
     * (2^p - 1)), or 0 for pools and all-zero inputs. Recorded for
     * diagnostics and tests; engines consume codes only.
     */
    std::vector<double> inputScale;
};

/**
 * Run the reference forward pass of @p synth's network (which must be
 * chain-consistent — a full pipeline with its pool layers, not a
 * filtered selection; fatal() otherwise). Layer 0's input is
 * synth.synthesizeFixed16(0, image); filters come from
 * synthesizeFilters() seeded by (synth.seed() ^
 * kPropagationFilterSalt) — the whole batch shares one trained model,
 * so filters do not vary with @p image, only the input image (and
 * hence every propagated stream) does. Image 0 is the historical
 * chain, byte-identical to the pre-batch pipeline.
 */
PropagatedChain propagateChain(const ActivationSynthesizer &synth,
                               int image = 0);

/**
 * Pool the int64 activation tensor @p input through pool layer
 * @p layer (max or average). Ceil-mode pools may overhang the input;
 * out-of-range elements are skipped (max) or excluded from the
 * divisor (average, integer division truncating toward zero).
 */
Tensor3D<int64_t> poolForward(const LayerSpec &layer,
                              const Tensor3D<int64_t> &input);

/**
 * Requantize non-negative int64 activations into a p-bit window
 * anchored @p anchor_lsb above bit 0: value v maps to
 * round(v * (2^p - 1) / max) << anchor_lsb. An all-zero tensor maps
 * to all-zero codes. @p max_out (optional) receives the tensor
 * maximum, saving callers that need the scale a second full scan.
 */
NeuronTensor requantizeToWindow(const Tensor3D<int64_t> &activations,
                                int precision_bits, int anchor_lsb,
                                int64_t *max_out = nullptr);

/**
 * The software-trimmed view of a propagated stream: codes ANDed with
 * the layer's precision window at the synthesis anchor (identical to
 * the rule synthetic trimming applies). Requantized codes already
 * live inside the window, so this is the identity on chain inputs —
 * kept as an explicit operation so trimmed/untrimmed engine variants
 * stay well defined in propagated mode.
 */
NeuronTensor trimToPrecision(const LayerSpec &layer,
                             const NeuronTensor &stream);

/**
 * The 8-bit quantized view of a propagated stream: TF-style affine
 * quantization of the 16-bit codes with per-layer parameters chosen
 * from the stream itself (chooseQuantParams — zero-nudged, so ReLU
 * zeros stay code 0 and zero-skip semantics survive quantization).
 * @p params_out (optional) receives the chosen parameters.
 */
NeuronTensor quantizeStream(const NeuronTensor &stream,
                            fixedpoint::QuantParams *params_out =
                                nullptr);

} // namespace dnn
} // namespace pra

