#include "dnn/network.h"

#include <bit>

#include "util/random.h"

namespace pra {
namespace dnn {

int64_t
Network::totalProducts() const
{
    int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.products();
    return total;
}

uint64_t
Network::workloadFingerprint() const
{
    // FNV-1a over every field that shapes a synthesized workload.
    uint64_t h = util::kFnv1aOffset;
    for (double target :
         {targets.all16, targets.nz16, targets.all8, targets.nz8,
          targets.softwareBenefit})
        h = util::fnv1aMix(h, std::bit_cast<uint64_t>(target));
    h = util::fnv1aMix(h, layers.size());
    for (const auto &layer : layers) {
        h = util::fnv1a(layer.name, h);
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.kind));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.inputX));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.inputY));
        h = util::fnv1aMix(h,
                           static_cast<uint64_t>(layer.inputChannels));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.filterX));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.filterY));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.numFilters));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.stride));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.pad));
        h = util::fnv1aMix(
            h, static_cast<uint64_t>(layer.profiledPrecision));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.ordinal));
    }
    return h;
}

int
Network::countLayers(LayerKind kind) const
{
    int count = 0;
    for (const auto &layer : layers)
        count += layer.kind == kind;
    return count;
}

bool
Network::valid() const
{
    if (name.empty() || layers.empty())
        return false;
    for (const auto &layer : layers)
        if (!layer.valid())
            return false;
    return true;
}

} // namespace dnn
} // namespace pra
