#include "dnn/network.h"

#include <bit>

#include "util/random.h"

namespace pra {
namespace dnn {

int64_t
Network::totalProducts() const
{
    int64_t total = 0;
    for (const auto &layer : layers)
        if (layer.priced())
            total += layer.products();
    return total;
}

uint64_t
Network::workloadFingerprint() const
{
    // FNV-1a over every field that shapes a synthesized workload.
    uint64_t h = util::kFnv1aOffset;
    for (double target :
         {targets.all16, targets.nz16, targets.all8, targets.nz8,
          targets.softwareBenefit})
        h = util::fnv1aMix(h, std::bit_cast<uint64_t>(target));
    h = util::fnv1aMix(h, layers.size());
    for (const auto &layer : layers) {
        h = util::fnv1a(layer.name, h);
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.kind));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.inputX));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.inputY));
        h = util::fnv1aMix(h,
                           static_cast<uint64_t>(layer.inputChannels));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.filterX));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.filterY));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.numFilters));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.stride));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.pad));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.poolOp));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.poolCeil));
        h = util::fnv1aMix(
            h, static_cast<uint64_t>(layer.profiledPrecision));
        h = util::fnv1aMix(
            h, static_cast<uint64_t>(layer.profiledWeightPrecision));
        h = util::fnv1aMix(h, static_cast<uint64_t>(layer.ordinal));
        h = util::fnv1aMix(h, layer.producers.size());
        for (int producer : layer.producers)
            h = util::fnv1aMix(h, static_cast<uint64_t>(producer));
    }
    return h;
}

int
Network::countLayers(LayerKind kind) const
{
    int count = 0;
    for (const auto &layer : layers)
        count += layer.kind == kind;
    return count;
}

namespace {

std::string
chainMismatch(const Network &net, size_t idx, const std::string &what)
{
    return net.name + " layer " + std::to_string(idx) + " (" +
           net.layers[idx].name + "): " + what;
}

} // namespace

bool
Network::chainConsistent(std::string *why) const
{
    auto fail = [&](size_t idx, const std::string &what) {
        if (why)
            *why = chainMismatch(*this, idx, what);
        return false;
    };
    if (layers.empty())
        return true;
    if (!layers.front().producers.empty())
        return fail(0, "first layer must consume the image, not "
                       "another layer");
    for (size_t j = 1; j < layers.size(); j++) {
        const LayerSpec &layer = layers[j];
        std::vector<int> producers = layer.producers;
        if (producers.empty())
            producers.push_back(static_cast<int>(j) - 1);
        // All producers must precede the consumer and agree on their
        // spatial extent; channels concatenate.
        int out_x = -1;
        int out_y = -1;
        int64_t channels = 0;
        for (int p : producers) {
            if (p < 0 || p >= static_cast<int>(j))
                return fail(j, "producer index " + std::to_string(p) +
                                   " is not an earlier layer");
            const LayerSpec &prod = layers[p];
            if (out_x < 0) {
                out_x = prod.outX();
                out_y = prod.outY();
            } else if (prod.outX() != out_x || prod.outY() != out_y) {
                return fail(j, "concatenated producers disagree on "
                               "spatial extent");
            }
            channels += prod.outChannels();
        }
        if (layer.kind == LayerKind::FullyConnected) {
            // The lowering flattens the producer output into the
            // 1 x 1 x I column.
            int64_t flat = static_cast<int64_t>(out_x) * out_y *
                           channels;
            if (layer.inputChannels != flat)
                return fail(j, "fc expects " +
                                   std::to_string(layer.inputChannels) +
                                   " inputs but producers supply " +
                                   std::to_string(flat));
        } else if (layer.inputX != out_x || layer.inputY != out_y ||
                   layer.inputChannels != channels) {
            return fail(
                j, "expects " + std::to_string(layer.inputX) + "x" +
                       std::to_string(layer.inputY) + "x" +
                       std::to_string(layer.inputChannels) +
                       " but producers supply " +
                       std::to_string(out_x) + "x" +
                       std::to_string(out_y) + "x" +
                       std::to_string(channels));
        }
    }
    return true;
}

bool
Network::valid() const
{
    if (name.empty() || layers.empty())
        return false;
    bool pipeline = false;
    for (const auto &layer : layers) {
        if (!layer.valid())
            return false;
        pipeline |= layer.kind == LayerKind::Pool ||
                    !layer.producers.empty();
    }
    // Pipeline-shaped networks (built for propagation) must chain;
    // see chainConsistent() for why filtered selections are exempt.
    if (pipeline && !chainConsistent())
        return false;
    return true;
}

} // namespace dnn
} // namespace pra
