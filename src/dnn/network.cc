#include "dnn/network.h"

namespace pra {
namespace dnn {

int64_t
Network::totalProducts() const
{
    int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.products();
    return total;
}

bool
Network::valid() const
{
    if (name.empty() || layers.empty())
        return false;
    for (const auto &layer : layers)
        if (!layer.valid())
            return false;
    return true;
}

} // namespace dnn
} // namespace pra
