/**
 * @file
 * Layer geometry (paper Section IV-A), generalized over layer kinds.
 *
 * A convolutional layer applies N filters of Fx x Fy x I synapses
 * over an Nx x Ny x I input with stride S (and optional zero padding,
 * which the real networks use even though the paper's formula elides
 * it), producing an Ox x Oy x N output. All cycle and term counts
 * derive from this geometry plus the neuron bit patterns.
 *
 * A fully-connected layer is expressed in the same geometry by the
 * canonical lowering every unit-level simulator uses (DNNsim models
 * InnerProduct the same way): its I inputs become a 1 x 1 x I input
 * column and each of its N output neurons a 1 x 1 x I filter, so the
 * layer is a convolution with a single window. Because the lowering
 * is exact, every engine prices FC layers through its existing
 * schedule/term paths — an FC layer costs bit-for-bit the same as its
 * hand-built 1x1xI convolutional twin.
 *
 * A pooling layer (max or average) is *structural*: the accelerators
 * never price it (pooling is a trivial reduction next to the NFU
 * work), but the propagated-activation pipeline needs it to bridge
 * shapes between priced layers — e.g. AlexNet pool5 turns conv5's
 * 13x13x256 output into the 6x6x256 tensor fc6 consumes. Pool layers
 * reuse the filter fields for the pooling window, preserve depth
 * (numFilters == inputChannels), and may use ceil output rounding
 * (Caffe-style) where the published network shapes require it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fixedpoint/precision.h"

namespace pra {
namespace dnn {

/** What a layer computes; geometry is shared, validation is not. */
enum class LayerKind
{
    Conv,           ///< Spatial convolution.
    FullyConnected, ///< Inner product, lowered to a 1x1xI window.
    Pool,           ///< Spatial pooling: shape bridging, never priced.
};

/** Pooling reduction for LayerKind::Pool. */
enum class PoolOp { Max, Avg };

/** Human-readable kind name ("conv", "fc", "pool"). */
const char *layerKindName(LayerKind kind);

/**
 * Which layer kinds a workload includes. Conv is the default
 * everywhere so pre-existing sweeps and figures are unchanged.
 * Pool layers ride along only under All (they are priced by no
 * engine, but the propagated-activation pipeline needs the full
 * chain); Conv and Fc selections drop them.
 */
enum class LayerSelect { Conv, Fc, All };

/** True when @p select includes layers of @p kind. */
bool layerSelected(LayerKind kind, LayerSelect select);

/** Static description of one layer. */
struct LayerSpec
{
    std::string name;

    LayerKind kind = LayerKind::Conv;

    int inputX = 0;        ///< Nx: input width.
    int inputY = 0;        ///< Ny: input height.
    int inputChannels = 0; ///< I: input depth.

    int filterX = 0;       ///< Fx: filter width (pool window width).
    int filterY = 0;       ///< Fy: filter height (pool window height).
    int numFilters = 0;    ///< N: filter count == output depth.

    int stride = 1;        ///< S: window stride.
    int pad = 0;           ///< Zero padding on each border.

    /** Pool layers only: the pooling reduction. */
    PoolOp poolOp = PoolOp::Max;

    /**
     * Pool layers only: Caffe-style ceil output rounding. The
     * published networks mix conventions (VGG-M pool2 needs
     * ceil((26-3)/2)+1 == 13 while VGG-S pool1 needs
     * floor((109-3)/3)+1 == 36), so each pool carries its own.
     * A ceil pool's last window may overhang the input; the pooling
     * reduction clamps it to in-range elements.
     */
    bool poolCeil = false;

    /**
     * Profiled neuron precision in bits for this layer's *input*
     * neuron stream (paper Table II); drives Stripes' cycle count and
     * PRA's software-guided trimming.
     */
    int profiledPrecision = 16;

    /**
     * Profiled *weight* precision in bits: the magnitude window the
     * layer's weight codes occupy (DNNsim-style per-layer weight
     * profiles). Only weight-aware engines (Laconic, weight-side
     * planes) consume it; activation-only engines never read it.
     */
    int profiledWeightPrecision = 8;

    /**
     * The layer's position among the *priced* (non-pool) layers of
     * its unfiltered network, or -1 when unknown (hand-built layers
     * and pool layers). The model zoo assigns it before applying a
     * layer selection; activation synthesis seeds streams by it, so
     * the same logical layer gets the same stream no matter which
     * selection it survived into — and adding or removing structural
     * pool layers never reshuffles the streams of priced layers.
     */
    int ordinal = -1;

    /**
     * Indices (into the unfiltered layer list) of the layers whose
     * outputs this layer consumes. Empty means "the previous layer"
     * — the only form linear networks need. More than one producer
     * means the inputs are concatenated along the channel dimension
     * in list order (GoogLeNet's inception modules: the four branch
     * outputs concatenate into the next consumer's input). Only the
     * chain-consistency check and the propagated-activation pipeline
     * interpret producers; selections other than All clear them
     * (filtering invalidates the indices).
     */
    std::vector<int> producers;

    /** True for layers the engines price (everything but Pool). */
    bool priced() const { return kind != LayerKind::Pool; }

    /** Output depth: numFilters (pools preserve inputChannels). */
    int outChannels() const { return numFilters; }

    /**
     * Build a fully-connected layer over @p inputs inputs and
     * @p outputs output neurons in its canonical lowered form:
     * a 1 x 1 x inputs input, outputs filters of 1 x 1 x inputs,
     * stride 1, no padding.
     */
    static LayerSpec fullyConnected(std::string name, int inputs,
                                    int outputs, int precision = 16,
                                    int weight_precision = 8);

    /**
     * Build a pooling layer: a @p window x @p window reduction with
     * stride @p stride over an @p in_x x @p in_y x @p channels input,
     * depth-preserving. @p ceil_mode selects Caffe-style ceil output
     * rounding (see poolCeil).
     */
    static LayerSpec pool(std::string name, int in_x, int in_y,
                          int channels, int window, int stride,
                          PoolOp op, int pad = 0,
                          bool ceil_mode = false);

    /**
     * Output width: floor((Nx + 2*pad - Fx) / S) + 1, or the ceil of
     * the division for pool layers with poolCeil set.
     *
     * Floor semantics: when the stride does not tile the padded input
     * exactly, the trailing positions that cannot fit a full window
     * are dropped (the convention real networks rely on — e.g.
     * VGG-M conv2: floor((54 + 2 - 5) / 2) + 1 = 26).
     */
    int outX() const;
    /** Output height, with the same rounding semantics as outX(). */
    int outY() const;
    /** Number of windows == output neurons per filter. */
    int64_t windows() const;
    /** Synapses per filter: Fx * Fy * I. */
    int64_t synapsesPerFilter() const;
    /** Total synapses (parameters): N * Fx * Fy * I. */
    int64_t synapses() const;
    /** Multiply-accumulate count: windows * N * Fx * Fy * I. */
    int64_t products() const;
    /** Bricks per window: Fx * Fy * ceil(I / 16). */
    int64_t bricksPerWindow() const;
    /** Input neuron count: Nx * Ny * I. */
    int64_t inputNeurons() const;
    /** Output neuron count: Ox * Oy * N. */
    int64_t outputNeurons() const;

    /**
     * The trimming window implied by the profiled precision: the
     * retained bits are anchored @p anchor_lsb positions above bit 0
     * (the synthesis keeps suffix noise below the anchor; see
     * dnn/activation_synth.h).
     */
    fixedpoint::PrecisionWindow precisionWindow(int anchor_lsb) const;

    /**
     * Sanity-check the geometry; returns false on malformed specs.
     *
     * All kinds: positive dimensions, stride >= 1, pad >= 0,
     * profiled neuron and weight precisions in [1, 16], and the
     * filter must fit the
     * padded input on each axis (checked symmetrically for X and Y);
     * outX()/outY() floor semantics then guarantee at least one
     * window per axis, so a non-tiling stride is *accepted* — the
     * dropped trailing positions are documented behavior, not an
     * error. FullyConnected additionally requires the canonical
     * lowered form (1x1 spatial extent, stride 1, no padding); Pool
     * requires depth preservation (numFilters == inputChannels).
     */
    bool valid() const;
};

} // namespace dnn
} // namespace pra

