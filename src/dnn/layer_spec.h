/**
 * @file
 * Layer geometry (paper Section IV-A), generalized over layer kinds.
 *
 * A convolutional layer applies N filters of Fx x Fy x I synapses
 * over an Nx x Ny x I input with stride S (and optional zero padding,
 * which the real networks use even though the paper's formula elides
 * it), producing an Ox x Oy x N output. All cycle and term counts
 * derive from this geometry plus the neuron bit patterns.
 *
 * A fully-connected layer is expressed in the same geometry by the
 * canonical lowering every unit-level simulator uses (DNNsim models
 * InnerProduct the same way): its I inputs become a 1 x 1 x I input
 * column and each of its N output neurons a 1 x 1 x I filter, so the
 * layer is a convolution with a single window. Because the lowering
 * is exact, every engine prices FC layers through its existing
 * schedule/term paths — an FC layer costs bit-for-bit the same as its
 * hand-built 1x1xI convolutional twin.
 */

#ifndef PRA_DNN_LAYER_SPEC_H
#define PRA_DNN_LAYER_SPEC_H

#include <cstdint>
#include <string>

#include "fixedpoint/precision.h"

namespace pra {
namespace dnn {

/** What a layer computes; geometry is shared, validation is not. */
enum class LayerKind
{
    Conv,           ///< Spatial convolution.
    FullyConnected, ///< Inner product, lowered to a 1x1xI window.
};

/** Human-readable kind name ("conv", "fc"). */
const char *layerKindName(LayerKind kind);

/**
 * Which layer kinds a workload includes. Conv is the default
 * everywhere so pre-existing sweeps and figures are unchanged.
 */
enum class LayerSelect { Conv, Fc, All };

/** True when @p select includes layers of @p kind. */
bool layerSelected(LayerKind kind, LayerSelect select);

/** Static description of one layer. */
struct LayerSpec
{
    std::string name;

    LayerKind kind = LayerKind::Conv;

    int inputX = 0;        ///< Nx: input width.
    int inputY = 0;        ///< Ny: input height.
    int inputChannels = 0; ///< I: input depth.

    int filterX = 0;       ///< Fx: filter width.
    int filterY = 0;       ///< Fy: filter height.
    int numFilters = 0;    ///< N: filter count == output depth.

    int stride = 1;        ///< S: window stride.
    int pad = 0;           ///< Zero padding on each border.

    /**
     * Profiled neuron precision in bits for this layer's *input*
     * neuron stream (paper Table II); drives Stripes' cycle count and
     * PRA's software-guided trimming.
     */
    int profiledPrecision = 16;

    /**
     * The layer's position in its *unfiltered* network, or -1 when
     * unknown (hand-built layers). The model zoo assigns it before
     * applying a layer selection; activation synthesis seeds streams
     * by it, so the same logical layer gets the same stream no
     * matter which selection it survived into.
     */
    int ordinal = -1;

    /**
     * Build a fully-connected layer over @p inputs inputs and
     * @p outputs output neurons in its canonical lowered form:
     * a 1 x 1 x inputs input, outputs filters of 1 x 1 x inputs,
     * stride 1, no padding.
     */
    static LayerSpec fullyConnected(std::string name, int inputs,
                                    int outputs, int precision = 16);

    /**
     * Output width: floor((Nx + 2*pad - Fx) / S) + 1.
     *
     * Floor semantics: when the stride does not tile the padded input
     * exactly, the trailing positions that cannot fit a full window
     * are dropped (the convention real networks rely on — e.g.
     * VGG-M conv2: floor((54 + 2 - 5) / 2) + 1 = 26).
     */
    int outX() const;
    /** Output height, with the same floor semantics as outX(). */
    int outY() const;
    /** Number of windows == output neurons per filter. */
    int64_t windows() const;
    /** Synapses per filter: Fx * Fy * I. */
    int64_t synapsesPerFilter() const;
    /** Total synapses (parameters): N * Fx * Fy * I. */
    int64_t synapses() const;
    /** Multiply-accumulate count: windows * N * Fx * Fy * I. */
    int64_t products() const;
    /** Bricks per window: Fx * Fy * ceil(I / 16). */
    int64_t bricksPerWindow() const;
    /** Input neuron count: Nx * Ny * I. */
    int64_t inputNeurons() const;

    /**
     * The trimming window implied by the profiled precision: the
     * retained bits are anchored @p anchor_lsb positions above bit 0
     * (the synthesis keeps suffix noise below the anchor; see
     * dnn/activation_synth.h).
     */
    fixedpoint::PrecisionWindow precisionWindow(int anchor_lsb) const;

    /**
     * Sanity-check the geometry; returns false on malformed specs.
     *
     * All kinds: positive dimensions, stride >= 1, pad >= 0,
     * profiled precision in [1, 16], and the filter must fit the
     * padded input on each axis (checked symmetrically for X and Y);
     * outX()/outY() floor semantics then guarantee at least one
     * window per axis, so a non-tiling stride is *accepted* — the
     * dropped trailing positions are documented behavior, not an
     * error. FullyConnected additionally requires the canonical
     * lowered form (1x1 spatial extent, stride 1, no padding).
     */
    bool valid() const;
};

} // namespace dnn
} // namespace pra

#endif // PRA_DNN_LAYER_SPEC_H
