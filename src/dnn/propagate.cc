#include "dnn/propagate.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

namespace {

/** ReLU in place: negative accumulators become zero. */
void
relu(Tensor3D<int64_t> &tensor)
{
    for (auto &v : tensor.flat())
        v = std::max<int64_t>(v, 0);
}

/**
 * The effective producer list of layer @p idx (empty producers =
 * previous layer); callers guarantee idx >= 1.
 */
std::vector<int>
producersOf(const Network &net, size_t idx)
{
    if (!net.layers[idx].producers.empty())
        return net.layers[idx].producers;
    return {static_cast<int>(idx) - 1};
}

/**
 * Concatenate producer outputs along the channel dimension (list
 * order), the inception-module join. A single producer is a plain
 * copy-through reference case handled by the caller to avoid the
 * copy.
 */
Tensor3D<int64_t>
concatChannels(const std::vector<const Tensor3D<int64_t> *> &parts)
{
    int size_x = parts.front()->sizeX();
    int size_y = parts.front()->sizeY();
    int channels = 0;
    for (const auto *part : parts) {
        PRA_CHECK(part->sizeX() == size_x &&
                                 part->sizeY() == size_y,
                             "concatChannels: spatial mismatch");
        channels += part->sizeI();
    }
    Tensor3D<int64_t> out(size_x, size_y, channels);
    for (int y = 0; y < size_y; y++)
        for (int x = 0; x < size_x; x++) {
            int base = 0;
            for (const auto *part : parts) {
                for (int i = 0; i < part->sizeI(); i++)
                    out.at(x, y, base + i) = part->at(x, y, i);
                base += part->sizeI();
            }
        }
    return out;
}

/**
 * Reshape int64 activations into an FC layer's 1 x 1 x I input
 * column, flattening in the tensor's canonical channel-major order.
 */
Tensor3D<int64_t>
flattenForFc(const Tensor3D<int64_t> &acts)
{
    Tensor3D<int64_t> flat(1, 1, static_cast<int>(acts.size()));
    std::copy(acts.flat().begin(), acts.flat().end(),
              flat.flat().begin());
    return flat;
}

} // namespace

Tensor3D<int64_t>
poolForward(const LayerSpec &layer, const Tensor3D<int64_t> &input)
{
    PRA_CHECK(layer.kind == LayerKind::Pool,
                         "poolForward: not a pool layer");
    PRA_CHECK(input.sizeX() == layer.inputX &&
                             input.sizeY() == layer.inputY &&
                             input.sizeI() == layer.inputChannels,
                         "poolForward: input shape mismatch");
    Tensor3D<int64_t> out(layer.outX(), layer.outY(),
                          layer.inputChannels);
    for (int wy = 0; wy < layer.outY(); wy++) {
        for (int wx = 0; wx < layer.outX(); wx++) {
            int base_x = wx * layer.stride - layer.pad;
            int base_y = wy * layer.stride - layer.pad;
            for (int i = 0; i < layer.inputChannels; i++) {
                int64_t best = 0;
                int64_t sum = 0;
                int count = 0;
                bool any = false;
                for (int fy = 0; fy < layer.filterY; fy++) {
                    int y = base_y + fy;
                    if (y < 0 || y >= layer.inputY)
                        continue;
                    for (int fx = 0; fx < layer.filterX; fx++) {
                        int x = base_x + fx;
                        if (x < 0 || x >= layer.inputX)
                            continue;
                        int64_t v = input.at(x, y, i);
                        best = any ? std::max(best, v) : v;
                        any = true;
                        sum += v;
                        count++;
                    }
                }
                PRA_CHECK(any,
                                     "poolForward: empty window");
                out.at(wx, wy, i) = layer.poolOp == PoolOp::Max
                                        ? best
                                        : sum / count;
            }
        }
    }
    return out;
}

NeuronTensor
requantizeToWindow(const Tensor3D<int64_t> &activations,
                   int precision_bits, int anchor_lsb,
                   int64_t *max_out)
{
    PRA_CHECK(precision_bits >= 1 && precision_bits <= 16 &&
                             anchor_lsb >= 0 &&
                             anchor_lsb + precision_bits <= 16,
                         "requantizeToWindow: bad window");
    NeuronTensor out(activations.sizeX(), activations.sizeY(),
                     activations.sizeI());
    int64_t max_value = 0;
    for (int64_t v : activations.flat()) {
        PRA_CHECK(v >= 0, "requantizeToWindow: negative "
                                     "activation (ReLU missing?)");
        max_value = std::max(max_value, v);
    }
    if (max_out)
        *max_out = max_value;
    if (max_value == 0)
        return out; // A dead layer propagates zeros.
    const double top =
        static_cast<double>((1u << precision_bits) - 1);
    const double scale = top / static_cast<double>(max_value);
    auto src = activations.flat();
    auto dst = out.flat();
    for (size_t i = 0; i < src.size(); i++) {
        // Round half away from zero; values are non-negative and the
        // scale maps max_value to exactly `top`, so no clamp needed.
        uint32_t code = static_cast<uint32_t>(
            std::llround(static_cast<double>(src[i]) * scale));
        dst[i] = static_cast<uint16_t>(code << anchor_lsb);
    }
    return out;
}

NeuronTensor
trimToPrecision(const LayerSpec &layer, const NeuronTensor &stream)
{
    uint16_t mask = layer.precisionWindow(synthesisAnchor(layer)).mask();
    NeuronTensor trimmed = stream;
    for (auto &v : trimmed.flat())
        v = static_cast<uint16_t>(v & mask);
    return trimmed;
}

NeuronTensor
quantizeStream(const NeuronTensor &stream,
               fixedpoint::QuantParams *params_out)
{
    // Max straight off the codes: a multi-megapixel stream must not
    // be copied into a transient vector<double> just to pick a
    // range, and the minimum is irrelevant — codes are non-negative,
    // so fromRange() anchors at 0 (zeroPoint 0) regardless.
    uint16_t hi = 0;
    for (uint16_t v : stream.flat())
        hi = std::max(hi, v);
    fixedpoint::QuantParams params = fixedpoint::QuantParams::fromRange(
        0.0, static_cast<double>(hi));
    if (params_out)
        *params_out = params;
    NeuronTensor codes(stream.sizeX(), stream.sizeY(), stream.sizeI());
    auto src = stream.flat();
    auto dst = codes.flat();
    for (size_t i = 0; i < src.size(); i++)
        dst[i] = fixedpoint::quantize(static_cast<double>(src[i]),
                                      params);
    return codes;
}

PropagatedChain
propagateChain(const ActivationSynthesizer &synth, int image)
{
    const Network &net = synth.network();
    PRA_CHECK(image >= 0, "propagateChain: batch image index must be "
                          "non-negative");
    std::string why;
    if (!net.chainConsistent(&why))
        util::fatal("propagateChain: network '" + net.name +
                    "' is not a shape-consistent pipeline (" + why +
                    "); propagated activations need the full layer "
                    "chain including pools (--layers=all)");
    if (!net.layers.front().priced())
        util::fatal("propagateChain: network '" + net.name +
                    "' starts with a pool layer; the pipeline must "
                    "begin at a priced layer consuming the image");

    const size_t count = net.layers.size();
    PropagatedChain chain;
    chain.inputs.resize(count);
    chain.inputScale.assign(count, 0.0);

    // Free each layer's int64 output as soon as its last consumer has
    // run: VGG-scale activations are tens of megabytes apiece.
    std::vector<size_t> last_use(count, 0);
    for (size_t j = 1; j < count; j++)
        for (int p : producersOf(net, j))
            last_use[static_cast<size_t>(p)] = j;
    std::vector<std::optional<Tensor3D<int64_t>>> outputs(count);
    // Consecutive consumers of one multi-producer set (the six
    // layers of an inception module all joining the previous
    // module's four branch outputs) share one materialized concat
    // instead of each rebuilding a multi-megabyte tensor. Only one
    // such set is live at a time, so a single memo slot suffices.
    std::vector<int> concat_key;
    std::optional<Tensor3D<int64_t>> concat_memo;

    for (size_t j = 0; j < count; j++) {
        const LayerSpec &layer = net.layers[j];

        // Gather this layer's int64 input activations (not needed
        // for layer 0, whose input is the image stream).
        const Tensor3D<int64_t> *acts = nullptr;
        if (j > 0) {
            std::vector<int> producers = producersOf(net, j);
            if (producers.size() == 1) {
                acts = &*outputs[static_cast<size_t>(producers[0])];
            } else {
                if (producers != concat_key) {
                    std::vector<const Tensor3D<int64_t> *> parts;
                    parts.reserve(producers.size());
                    for (int p : producers)
                        parts.push_back(
                            &*outputs[static_cast<size_t>(p)]);
                    concat_memo = concatChannels(parts);
                    concat_key = producers;
                }
                acts = &*concat_memo;
            }
        }

        if (layer.kind == LayerKind::Pool) {
            // Pools reduce raw activations; requantization waits for
            // the next priced consumer. Their chain input stays
            // empty (nothing prices a pool).
            outputs[j] = poolForward(layer, *acts);
        } else {
            NeuronTensor input16;
            if (j == 0) {
                // The image stream, shared with synthetic mode (the
                // batch image index selects which image of a batched
                // request this forward pass propagates).
                input16 = synth.synthesizeFixed16(0, image);
                chain.inputScale[j] = 1.0;
            } else {
                // FC flattens the producer output into its column;
                // conv consumes it as-is (no copy).
                std::optional<Tensor3D<int64_t>> flat;
                const Tensor3D<int64_t> *shaped = acts;
                if (layer.kind == LayerKind::FullyConnected) {
                    flat = flattenForFc(*acts);
                    shaped = &*flat;
                }
                int64_t max_value = 0;
                input16 = requantizeToWindow(*shaped,
                                             layer.profiledPrecision,
                                             synthesisAnchor(layer),
                                             &max_value);
                if (max_value > 0)
                    chain.inputScale[j] =
                        static_cast<double>(max_value) /
                        static_cast<double>(
                            (1u << layer.profiledPrecision) - 1);
            }
            // Run the layer on exactly the stream the engines price.
            if (last_use[j] > 0) {
                std::vector<FilterTensor> filters = synthesizeFilters(
                    layer, synth.seed() ^ kPropagationFilterSalt);
                Tensor3D<int64_t> out =
                    referenceConvolution(layer, input16, filters);
                relu(out);
                outputs[j] = std::move(out);
            }
            chain.inputs[j] = std::move(input16);
        }

        // Drop inputs whose last consumer was this layer.
        for (size_t p = 0; p < j; p++)
            if (last_use[p] == j && outputs[p])
                outputs[p].reset();
    }
    return chain;
}

} // namespace dnn
} // namespace pra
