/**
 * @file
 * Convolutional layer geometry (paper Section IV-A).
 *
 * A layer applies N filters of Fx x Fy x I synapses over an
 * Nx x Ny x I input with stride S (and optional zero padding, which
 * the real networks use even though the paper's formula elides it),
 * producing an Ox x Oy x N output. All cycle and term counts derive
 * from this geometry plus the neuron bit patterns.
 */

#ifndef PRA_DNN_CONV_LAYER_H
#define PRA_DNN_CONV_LAYER_H

#include <cstdint>
#include <string>

#include "fixedpoint/precision.h"

namespace pra {
namespace dnn {

/** Static description of one convolutional layer. */
struct ConvLayerSpec
{
    std::string name;

    int inputX = 0;        ///< Nx: input width.
    int inputY = 0;        ///< Ny: input height.
    int inputChannels = 0; ///< I: input depth.

    int filterX = 0;       ///< Fx: filter width.
    int filterY = 0;       ///< Fy: filter height.
    int numFilters = 0;    ///< N: filter count == output depth.

    int stride = 1;        ///< S: window stride.
    int pad = 0;           ///< Zero padding on each border.

    /**
     * Profiled neuron precision in bits for this layer's *input*
     * neuron stream (paper Table II); drives Stripes' cycle count and
     * PRA's software-guided trimming.
     */
    int profiledPrecision = 16;

    /** Output width: (Nx + 2*pad - Fx) / S + 1. */
    int outX() const;
    /** Output height. */
    int outY() const;
    /** Number of windows == output neurons per filter. */
    int64_t windows() const;
    /** Synapses per filter: Fx * Fy * I. */
    int64_t synapsesPerFilter() const;
    /** Multiply-accumulate count: windows * N * Fx * Fy * I. */
    int64_t products() const;
    /** Bricks per window: Fx * Fy * ceil(I / 16). */
    int64_t bricksPerWindow() const;
    /** Input neuron count: Nx * Ny * I. */
    int64_t inputNeurons() const;

    /**
     * The trimming window implied by the profiled precision: the
     * retained bits are anchored @p anchor_lsb positions above bit 0
     * (the synthesis keeps suffix noise below the anchor; see
     * dnn/activation_synth.h).
     */
    fixedpoint::PrecisionWindow precisionWindow(int anchor_lsb) const;

    /** Sanity-check the geometry; returns false on malformed specs. */
    bool valid() const;
};

} // namespace dnn
} // namespace pra

#endif // PRA_DNN_CONV_LAYER_H
