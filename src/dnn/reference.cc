#include "dnn/reference.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

namespace {

/**
 * The dot product of one window against one filter, walking the
 * channel-major storage directly: for each in-range filter row
 * segment the input channels are contiguous, so the inner loop is a
 * plain span product instead of a per-element bounds-checked at()
 * (which a whole-network forward pass cannot afford). Out-of-range
 * coordinates contribute zero (padding), exactly like atPadded().
 */
int64_t
windowDotFast(const LayerSpec &layer, const NeuronTensor &input,
              const FilterTensor &filter, int window_x, int window_y)
{
    const uint16_t *in = input.flat().data();
    const int16_t *fl = filter.flat().data();
    const int channels = layer.inputChannels;
    int64_t acc = 0;
    int base_x = window_x * layer.stride - layer.pad;
    int base_y = window_y * layer.stride - layer.pad;
    for (int fy = 0; fy < layer.filterY; fy++) {
        int y = base_y + fy;
        if (y < 0 || y >= layer.inputY)
            continue;
        int x_lo = std::max(0, -base_x);
        int x_hi = std::min(layer.filterX, layer.inputX - base_x);
        for (int fx = x_lo; fx < x_hi; fx++) {
            int x = base_x + fx;
            const uint16_t *in_col =
                in + (static_cast<size_t>(y) * layer.inputX + x) *
                         channels;
            const int16_t *fl_col =
                fl + (static_cast<size_t>(fy) * layer.filterX + fx) *
                         channels;
            for (int i = 0; i < channels; i++)
                acc += static_cast<int64_t>(fl_col[i]) * in_col[i];
        }
    }
    return acc;
}

} // namespace

int64_t
referenceWindowDot(const LayerSpec &layer, const NeuronTensor &input,
                   const FilterTensor &filter, int window_x, int window_y)
{
    return windowDotFast(layer, input, filter, window_x, window_y);
}

OutputTensor
referenceConvolution(const LayerSpec &layer, const NeuronTensor &input,
                     const std::vector<FilterTensor> &filters)
{
    PRA_CHECK(layer.valid(), "referenceConvolution: bad layer");
    PRA_CHECK(input.sizeX() == layer.inputX &&
                             input.sizeY() == layer.inputY &&
                             input.sizeI() == layer.inputChannels,
                         "referenceConvolution: input shape mismatch");
    PRA_CHECK(static_cast<int>(filters.size()) ==
                             layer.numFilters,
                         "referenceConvolution: filter count mismatch");

    OutputTensor output(layer.outX(), layer.outY(), layer.numFilters);
    int64_t *out = output.flat().data();
    const int out_x = layer.outX();
    const int out_y = layer.outY();
    const int num_filters = layer.numFilters;
    for (int f = 0; f < num_filters; f++) {
        const FilterTensor &filter = filters[f];
        PRA_CHECK(filter.sizeX() == layer.filterX &&
                                 filter.sizeY() == layer.filterY &&
                                 filter.sizeI() == layer.inputChannels,
                             "referenceConvolution: filter shape mismatch");
        for (int wy = 0; wy < out_y; wy++)
            for (int wx = 0; wx < out_x; wx++)
                out[(static_cast<size_t>(wy) * out_x + wx) *
                        num_filters +
                    f] = windowDotFast(layer, input, filter, wx, wy);
    }
    return output;
}

} // namespace dnn
} // namespace pra
