#include "dnn/reference.h"

#include "util/logging.h"

namespace pra {
namespace dnn {

int64_t
referenceWindowDot(const LayerSpec &layer, const NeuronTensor &input,
                   const FilterTensor &filter, int window_x, int window_y)
{
    int64_t acc = 0;
    int base_x = window_x * layer.stride - layer.pad;
    int base_y = window_y * layer.stride - layer.pad;
    for (int fy = 0; fy < layer.filterY; fy++) {
        for (int fx = 0; fx < layer.filterX; fx++) {
            for (int i = 0; i < layer.inputChannels; i++) {
                uint16_t n = input.atPadded(base_x + fx, base_y + fy, i);
                int16_t s = filter.at(fx, fy, i);
                acc += static_cast<int64_t>(s) * n;
            }
        }
    }
    return acc;
}

OutputTensor
referenceConvolution(const LayerSpec &layer, const NeuronTensor &input,
                     const std::vector<FilterTensor> &filters)
{
    util::checkInvariant(layer.valid(), "referenceConvolution: bad layer");
    util::checkInvariant(input.sizeX() == layer.inputX &&
                             input.sizeY() == layer.inputY &&
                             input.sizeI() == layer.inputChannels,
                         "referenceConvolution: input shape mismatch");
    util::checkInvariant(static_cast<int>(filters.size()) ==
                             layer.numFilters,
                         "referenceConvolution: filter count mismatch");

    OutputTensor output(layer.outX(), layer.outY(), layer.numFilters);
    for (int f = 0; f < layer.numFilters; f++) {
        const FilterTensor &filter = filters[f];
        util::checkInvariant(filter.sizeX() == layer.filterX &&
                                 filter.sizeY() == layer.filterY &&
                                 filter.sizeI() == layer.inputChannels,
                             "referenceConvolution: filter shape mismatch");
        for (int wy = 0; wy < layer.outY(); wy++)
            for (int wx = 0; wx < layer.outX(); wx++)
                output.at(wx, wy, f) =
                    referenceWindowDot(layer, input, filter, wx, wy);
    }
    return output;
}

} // namespace dnn
} // namespace pra
