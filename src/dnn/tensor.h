/**
 * @file
 * 3D neuron/synapse arrays (paper Section IV-A).
 *
 * A convolutional layer consumes an Nx x Ny x I neuron array and N
 * filters of Fx x Fy x I synapses. Storage is channel-major (the i
 * dimension is contiguous) so that a *brick* — 16 consecutive elements
 * along i — is contiguous in memory, matching the paper's data layout
 * for NM and SB.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

/** Elements per brick / bricks per pallet (paper Section IV-A1). */
inline constexpr int kBrickSize = 16;

/**
 * A dense 3D array with channel-major layout: index (x, y, i) maps to
 * (y * sizeX + x) * sizeI + i.
 */
template <typename T>
class Tensor3D
{
  public:
    Tensor3D() = default;

    /** Create a zero-initialized tensor of the given extent. */
    Tensor3D(int size_x, int size_y, int size_i)
        : sizeX_(size_x), sizeY_(size_y), sizeI_(size_i),
          data_(static_cast<size_t>(size_x) * size_y * size_i, T{})
    {
        PRA_CHECK(size_x > 0 && size_y > 0 && size_i > 0,
                             "Tensor3D: extents must be positive");
    }

    int sizeX() const { return sizeX_; }
    int sizeY() const { return sizeY_; }
    int sizeI() const { return sizeI_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Element access; bounds-checked via invariant in debug paths. */
    T &
    at(int x, int y, int i)
    {
        return data_[flatIndex(x, y, i)];
    }

    const T &
    at(int x, int y, int i) const
    {
        return data_[flatIndex(x, y, i)];
    }

    /**
     * Element access with zero padding: coordinates outside the array
     * read as T{} (convolution padding).
     */
    T
    atPadded(int x, int y, int i) const
    {
        if (x < 0 || x >= sizeX_ || y < 0 || y >= sizeY_)
            return T{};
        return at(x, y, i);
    }

    /** Whole storage as a flat span (channel-major). */
    std::span<const T> flat() const { return data_; }
    std::span<T> flat() { return data_; }

    /**
     * The brick starting at (x, y, i): up to kBrickSize consecutive
     * channel elements. Shorter at the channel edge.
     */
    std::span<const T>
    brick(int x, int y, int i) const
    {
        size_t base = flatIndex(x, y, i);
        size_t len = std::min<size_t>(kBrickSize,
                                      static_cast<size_t>(sizeI_ - i));
        return std::span<const T>(data_.data() + base, len);
    }

  private:
    int sizeX_ = 0;
    int sizeY_ = 0;
    int sizeI_ = 0;
    std::vector<T> data_;

    size_t
    flatIndex(int x, int y, int i) const
    {
        PRA_CHECK(x >= 0 && x < sizeX_ && y >= 0 &&
                             y < sizeY_ && i >= 0 && i < sizeI_,
                             "Tensor3D index out of range");
        return (static_cast<size_t>(y) * sizeX_ + x) * sizeI_ + i;
    }
};

/** Neuron tensor: 16-bit unsigned magnitudes (post-ReLU). */
using NeuronTensor = Tensor3D<uint16_t>;

/** One filter's synapses: 16-bit signed weights. */
using FilterTensor = Tensor3D<int16_t>;

} // namespace dnn
} // namespace pra

