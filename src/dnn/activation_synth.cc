#include "dnn/activation_synth.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fixedpoint/fixed_point.h"
#include "fixedpoint/precision.h"
#include "fixedpoint/quantization.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

namespace {

/**
 * Expected popcount of the dense mixture component for a p-bit core:
 * MSB fixed at bit p-1, lower p-1 bits uniform.
 */
double
densePopcount(int precision_bits)
{
    return 1.0 + (precision_bits - 1) * 0.5;
}

} // namespace

DiscreteExponential::DiscreteExponential(double lambda, uint32_t max_value)
    : lambda_(lambda), maxValue_(max_value)
{
    PRA_CHECK(max_value >= 1,
                         "DiscreteExponential: max_value must be >= 1");
    PRA_CHECK(lambda >= 0.0,
                         "DiscreteExponential: lambda must be >= 0");
    cdf_.resize(max_value);
    double total = 0.0;
    double pop_sum = 0.0;
    double val_sum = 0.0;
    for (uint32_t v = 1; v <= max_value; v++) {
        // Anchor the exponent at v == 1 so the weights stay finite
        // for any lambda (pure renormalization: same distribution).
        double w = std::exp(-lambda * static_cast<double>(v - 1) /
                            max_value);
        total += w;
        pop_sum += w * std::popcount(v);
        val_sum += w * v;
        cdf_[v - 1] = total;
    }
    for (double &c : cdf_)
        c /= total;
    expectedPopcount_ = pop_sum / total;
    expectedValue_ = val_sum / total;
}

uint32_t
DiscreteExponential::sample(util::Xoshiro256 &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    size_t idx = static_cast<size_t>(it - cdf_.begin());
    if (idx >= cdf_.size())
        idx = cdf_.size() - 1;
    return static_cast<uint32_t>(idx + 1);
}

double
calibrateLambda(uint32_t max_value, double target_popcount)
{
    // Reachable range: lambda -> inf concentrates on value 1
    // (popcount 1); lambda == 0 is uniform.
    double uniform_pop = DiscreteExponential(0.0, max_value)
                             .expectedPopcount();
    if (target_popcount >= uniform_pop) {
        if (target_popcount > uniform_pop + 0.05) {
            util::warn("calibrateLambda: target popcount " +
                       std::to_string(target_popcount) +
                       " unreachable (max " +
                       std::to_string(uniform_pop) + "); clamping");
        }
        return 0.0;
    }
    if (target_popcount <= 1.0)
        return 1e6; // Concentrate on value 1.

    // Expected popcount is monotone in lambda to within quantization
    // wiggles; bracket on a log grid, then bisect.
    double lo = 0.0;           // popcount == uniform_pop (high)
    double hi = 1e6;           // popcount ~= 1 (low)
    for (int iter = 0; iter < 60; iter++) {
        double mid = (lo <= 0.0) ? std::min(1.0, hi / 2)
                                 : std::sqrt(lo * hi);
        double pop = DiscreteExponential(mid, max_value)
                         .expectedPopcount();
        if (pop > target_popcount)
            lo = mid;
        else
            hi = mid;
        if (hi / std::max(lo, 1e-12) < 1.0001)
            break;
    }
    return std::sqrt(std::max(lo, 1e-12) * hi);
}

SynthParams
calibrateFixed16(const LayerSpec &layer, const BitStatsTargets &targets)
{
    SynthParams params;
    params.zeroFraction = targets.zeroFraction16();
    params.precisionBits = layer.profiledPrecision;
    params.anchorLsb = synthesisAnchor(layer);

    double raw_target = targets.nz16 * fixedpoint::kNeuronBits;
    // Split the raw essential-bit budget: a softwareBenefit fraction
    // lives in the suffix-noise bits the trimming removes (Table V),
    // the rest in the core window. Each of the kNoiseSuffixBits noise
    // positions of every non-zero neuron is set independently with
    // per-bit noise probabilities, so trimming shortens the busy lanes —
    // matching how reduced-precision profiling removes low-order bits
    // across the board.
    double noise_budget =
        params.anchorLsb > 0
            ? std::min(raw_target * targets.softwareBenefit,
                       static_cast<double>(params.anchorLsb))
            : 0.0;
    double core_target = raw_target - noise_budget;

    uint32_t core_max = (1u << layer.profiledPrecision) - 1;
    params.lambda = calibrateLambda(core_max, kLightComponentPopcount);
    double light_pop = DiscreteExponential(params.lambda, core_max)
                           .expectedPopcount();
    double dense_pop = densePopcount(layer.profiledPrecision);
    if (dense_pop > light_pop) {
        params.denseFraction = std::clamp(
            (core_target - light_pop) / (dense_pop - light_pop), 0.0,
            1.0);
    }
    // If the dense component alone cannot reach the target, push the
    // light component's rate down as a fallback.
    if (params.denseFraction >= 1.0 && core_target > dense_pop)
        params.lambda = calibrateLambda(core_max, core_target);

    // Noise goes to the dense lanes first (they dominate schedule
    // length, see SynthParams); overflow spills to the light lanes.
    if (params.anchorLsb > 0 && noise_budget > 0.0) {
        double dense_capacity =
            params.denseFraction * params.anchorLsb;
        if (dense_capacity >= noise_budget) {
            params.noiseDense =
                noise_budget / (params.denseFraction > 0.0
                                    ? params.denseFraction *
                                          params.anchorLsb
                                    : 1.0);
        } else {
            params.noiseDense = params.denseFraction > 0.0 ? 1.0 : 0.0;
            double spill = noise_budget - dense_capacity;
            double light_share = 1.0 - params.denseFraction;
            if (light_share > 0.0)
                params.noiseLight = std::clamp(
                    spill / (light_share * params.anchorLsb), 0.0,
                    1.0);
        }
    }
    return params;
}

SynthParams
calibrateQuant8(const BitStatsTargets &targets)
{
    SynthParams params;
    params.zeroFraction = targets.zeroFraction8();
    params.precisionBits = fixedpoint::kQuantBits;
    params.anchorLsb = 0;
    params.noiseDense = 0.0;
    params.noiseLight = 0.0;
    double target = targets.nz8 * fixedpoint::kQuantBits;
    params.lambda = calibrateLambda(255, kLightComponentPopcount);
    double light_pop =
        DiscreteExponential(params.lambda, 255).expectedPopcount();
    double dense_pop = densePopcount(fixedpoint::kQuantBits);
    if (dense_pop > light_pop) {
        params.denseFraction = std::clamp(
            (target - light_pop) / (dense_pop - light_pop), 0.0, 1.0);
    }
    if (params.denseFraction >= 1.0 && target > dense_pop)
        params.lambda = calibrateLambda(255, target);
    return params;
}

ActivationSynthesizer::ActivationSynthesizer(const Network &network,
                                             uint64_t seed)
    : network_(network), seed_(seed)
{
    PRA_CHECK(network_.valid(),
                         "ActivationSynthesizer: invalid network");
    fixed16Params_.reserve(network_.layers.size());
    for (const auto &layer : network_.layers) {
        // Pool layers carry no priced stream (propagation computes
        // their tensors); skip the (expensive) calibration and keep a
        // placeholder so indices stay aligned.
        if (!layer.priced()) {
            fixed16Params_.push_back(SynthParams{});
            continue;
        }
        fixed16Params_.push_back(calibrateFixed16(layer,
                                                  network_.targets));
    }
    quant8Params_ = calibrateQuant8(network_.targets);

    // The first layer's input is the image, not a ReLU output: it is
    // dense (nearly no zeros) and its pixel values spread uniformly
    // across the layer's precision window. This is why Cnvlutin
    // cannot skip layer 1 (Section II-B) and it shapes conv1 timing.
    // The override only applies when the network actually starts at
    // its convolutional front: an FC-selected network begins at fc6,
    // whose input is a pooled ReLU output, not the image.
    if (!fixed16Params_.empty() &&
        network_.layers.front().kind == LayerKind::Conv) {
        SynthParams &first = fixed16Params_.front();
        first.zeroFraction = kImageZeroFraction;
        first.lambda = 0.0; // Uniform pixel magnitudes.
        first.denseFraction = 0.0;
        first.noiseDense = 0.0;
        first.noiseLight = 0.0;
    }
}

NeuronTensor
ActivationSynthesizer::synthesizeRaw(int layer_idx, bool quantized,
                                     int image) const
{
    const auto &layer = network_.layers.at(layer_idx);
    PRA_CHECK(layer.priced(),
                         "synthesizeRaw: pool layers have no "
                         "synthetic stream (they are never priced)");
    PRA_CHECK(image >= 0,
                         "synthesizeRaw: batch image index must be "
                         "non-negative");
    SynthParams params =
        quantized ? quant8Params_ : fixed16Params_.at(layer_idx);
    if (quantized && layer_idx == 0 && layer.kind == LayerKind::Conv) {
        // Image input: dense, uniform codes (see the fixed-point
        // first-layer note in the constructor).
        params.zeroFraction = kImageZeroFraction;
        params.lambda = 0.0;
        params.denseFraction = 0.0;
        params.noiseDense = 0.0;
        params.noiseLight = 0.0;
    }

    // Seed by the layer's ordinal (its position among the priced
    // layers of the unfiltered network) rather than its index in
    // this selection, so the same logical layer synthesizes the same
    // stream under --layers=fc and --layers=all, and structural pool
    // layers never reshuffle priced streams. Hand-built layers
    // without an ordinal fall back to the index; for pool-free lists
    // (Conv selections, hand-built nets) ordinal == index, so
    // pre-selection streams are bit-identical — under All the pools
    // make index and ordinal diverge, which is exactly why seeding
    // must use the ordinal.
    uint64_t position = static_cast<uint64_t>(
        layer.ordinal >= 0 ? layer.ordinal : layer_idx);
    // Image 0's salt is zero, so single-image (batch-1) streams are
    // byte-identical to the historical ones.
    uint64_t layer_seed = seed_ ^ util::fnv1a(network_.name) ^
                          util::fnv1a(layer.name) ^
                          (quantized ? 0x9u : 0x1u) ^ (position << 32) ^
                          imageStreamSalt(image);
    util::Xoshiro256 rng(layer_seed);

    uint32_t core_max = (1u << params.precisionBits) - 1;
    DiscreteExponential core(params.lambda, core_max);
    uint32_t noise_max =
        params.anchorLsb > 0 ? (1u << params.anchorLsb) - 1 : 0;

    const int p = params.precisionBits;
    NeuronTensor tensor(layer.inputX, layer.inputY, layer.inputChannels);
    for (auto &value : tensor.flat()) {
        if (rng.nextBool(params.zeroFraction)) {
            value = 0;
            continue;
        }
        uint32_t core_value;
        bool dense = rng.nextBool(params.denseFraction);
        if (dense) {
            // Dense (heavy-tail) component: MSB at the window top,
            // uniform lower bits.
            uint32_t low = p > 1 ? static_cast<uint32_t>(
                                       rng.nextBounded(1u << (p - 1)))
                                 : 0;
            core_value = (1u << (p - 1)) | low;
        } else {
            core_value = core.sample(rng);
        }
        uint32_t v = core_value << params.anchorLsb;
        if (noise_max > 0) {
            double noise_prob = dense ? params.noiseDense
                                      : params.noiseLight;
            for (int b = 0; b < params.anchorLsb; b++)
                if (rng.nextBool(noise_prob))
                    v |= 1u << b;
        }
        value = static_cast<uint16_t>(v);
    }
    return tensor;
}

NeuronTensor
ActivationSynthesizer::synthesizeFixed16(int layer_idx, int image) const
{
    return synthesizeRaw(layer_idx, false, image);
}

NeuronTensor
ActivationSynthesizer::synthesizeFixed16Trimmed(int layer_idx,
                                                int image) const
{
    NeuronTensor tensor = synthesizeRaw(layer_idx, false, image);
    const auto &layer = network_.layers.at(layer_idx);
    uint16_t mask = layer
                        .precisionWindow(
                            fixed16Params_.at(layer_idx).anchorLsb)
                        .mask();
    for (auto &value : tensor.flat())
        value = static_cast<uint16_t>(value & mask);
    return tensor;
}

NeuronTensor
ActivationSynthesizer::synthesizeQuant8(int layer_idx, int image) const
{
    return synthesizeRaw(layer_idx, true, image);
}

const SynthParams &
ActivationSynthesizer::fixed16Params(int layer_idx) const
{
    return fixed16Params_.at(layer_idx);
}

std::vector<FilterTensor>
synthesizeFilters(const LayerSpec &layer, uint64_t seed,
                  int weight_range)
{
    PRA_CHECK(weight_range > 0 && weight_range <= 32767,
                         "synthesizeFilters: bad weight range");
    util::Xoshiro256 rng(seed ^ util::fnv1a(layer.name));
    std::vector<FilterTensor> filters;
    filters.reserve(layer.numFilters);
    for (int f = 0; f < layer.numFilters; f++) {
        FilterTensor filter(layer.filterX, layer.filterY,
                            layer.inputChannels);
        for (auto &w : filter.flat())
            w = static_cast<int16_t>(
                rng.nextInRange(-weight_range, weight_range));
        filters.push_back(std::move(filter));
    }
    return filters;
}

} // namespace dnn
} // namespace pra
