#include "dnn/layer_spec.h"

#include "dnn/tensor.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::Pool: return "pool";
    }
    util::fatal("layerKindName: bad kind");
}

bool
layerSelected(LayerKind kind, LayerSelect select)
{
    switch (select) {
      case LayerSelect::Conv: return kind == LayerKind::Conv;
      case LayerSelect::Fc: return kind == LayerKind::FullyConnected;
      case LayerSelect::All: return true;
    }
    util::fatal("layerSelected: bad select");
}

LayerSpec
LayerSpec::fullyConnected(std::string name, int inputs, int outputs,
                          int precision, int weight_precision)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.kind = LayerKind::FullyConnected;
    spec.inputX = 1;
    spec.inputY = 1;
    spec.inputChannels = inputs;
    spec.filterX = 1;
    spec.filterY = 1;
    spec.numFilters = outputs;
    spec.stride = 1;
    spec.pad = 0;
    spec.profiledPrecision = precision;
    spec.profiledWeightPrecision = weight_precision;
    return spec;
}

LayerSpec
LayerSpec::pool(std::string name, int in_x, int in_y, int channels,
                int window, int stride, PoolOp op, int pad,
                bool ceil_mode)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.kind = LayerKind::Pool;
    spec.inputX = in_x;
    spec.inputY = in_y;
    spec.inputChannels = channels;
    spec.filterX = window;
    spec.filterY = window;
    spec.numFilters = channels; // Depth-preserving.
    spec.stride = stride;
    spec.pad = pad;
    spec.poolOp = op;
    spec.poolCeil = ceil_mode;
    spec.profiledPrecision = 16; // Unused: pools are never priced.
    return spec;
}

namespace {

/** Shared output-extent rule for one axis; see LayerSpec::outX(). */
int
outExtent(int input, int pad, int filter, int stride, bool ceil_mode)
{
    int span = input + 2 * pad - filter;
    if (ceil_mode) {
        int out = (span + stride - 1) / stride + 1;
        // Caffe's clamp: the last window must start inside the input
        // (plus left padding) or it would cover no elements at all.
        if ((out - 1) * stride >= input + pad)
            out--;
        return out;
    }
    return span / stride + 1;
}

} // namespace

int
LayerSpec::outX() const
{
    return outExtent(inputX, pad, filterX, stride,
                     kind == LayerKind::Pool && poolCeil);
}

int
LayerSpec::outY() const
{
    return outExtent(inputY, pad, filterY, stride,
                     kind == LayerKind::Pool && poolCeil);
}

int64_t
LayerSpec::windows() const
{
    return static_cast<int64_t>(outX()) * outY();
}

int64_t
LayerSpec::synapsesPerFilter() const
{
    return static_cast<int64_t>(filterX) * filterY * inputChannels;
}

int64_t
LayerSpec::synapses() const
{
    return synapsesPerFilter() * numFilters;
}

int64_t
LayerSpec::products() const
{
    return windows() * numFilters * synapsesPerFilter();
}

int64_t
LayerSpec::bricksPerWindow() const
{
    int64_t channel_bricks = (inputChannels + kBrickSize - 1) / kBrickSize;
    return static_cast<int64_t>(filterX) * filterY * channel_bricks;
}

int64_t
LayerSpec::inputNeurons() const
{
    return static_cast<int64_t>(inputX) * inputY * inputChannels;
}

int64_t
LayerSpec::outputNeurons() const
{
    return windows() * numFilters;
}

fixedpoint::PrecisionWindow
LayerSpec::precisionWindow(int anchor_lsb) const
{
    fixedpoint::PrecisionWindow window;
    window.lsb = anchor_lsb;
    window.msb = std::min(15, anchor_lsb + profiledPrecision - 1);
    return window;
}

bool
LayerSpec::valid() const
{
    if (inputX <= 0 || inputY <= 0 || inputChannels <= 0)
        return false;
    if (filterX <= 0 || filterY <= 0 || numFilters <= 0)
        return false;
    if (stride <= 0 || pad < 0)
        return false;
    // The filter must fit the padded input, checked per axis
    // symmetrically. Given a fit, outX()/outY() floor semantics
    // guarantee at least one window per axis; a stride that does not
    // tile the padded input exactly is legal (the trailing positions
    // are dropped — or, for ceil-mode pools, clamped — see outX()).
    if (filterX > inputX + 2 * pad || filterY > inputY + 2 * pad)
        return false;
    if (profiledPrecision < 1 || profiledPrecision > 16)
        return false;
    if (profiledWeightPrecision < 1 || profiledWeightPrecision > 16)
        return false;
    for (int producer : producers)
        if (producer < 0)
            return false;
    if (kind == LayerKind::FullyConnected) {
        // Only the canonical lowered form (see fullyConnected()) is
        // valid: one window over a 1x1xI column.
        if (inputX != 1 || inputY != 1 || filterX != 1 || filterY != 1)
            return false;
        if (stride != 1 || pad != 0)
            return false;
    }
    if (kind == LayerKind::Pool) {
        // Pooling preserves depth; padding at least the window wide
        // would let a floor-mode window land entirely in padding
        // (Caffe enforces pad < kernel the same way).
        if (numFilters != inputChannels)
            return false;
        if (pad >= filterX || pad >= filterY)
            return false;
    }
    return true;
}

} // namespace dnn
} // namespace pra
