#include "dnn/model_zoo.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace pra {
namespace dnn {

namespace {

/** Shorthand builder for one conv layer spec. */
LayerSpec
conv(std::string name, int in_x, int in_y, int channels, int f_x, int f_y,
     int filters, int stride, int pad, int precision)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.inputX = in_x;
    spec.inputY = in_y;
    spec.inputChannels = channels;
    spec.filterX = f_x;
    spec.filterY = f_y;
    spec.numFilters = filters;
    spec.stride = stride;
    spec.pad = pad;
    spec.profiledPrecision = precision;
    util::checkInvariant(spec.valid(),
                         "model_zoo: malformed layer " + spec.name);
    return spec;
}

/**
 * Shorthand builder for one fully-connected layer in its canonical
 * 1x1xI lowered form. The paper's Table II profiles conv layers only;
 * the FC precisions here are the companion profiled values in the
 * same style (DNNsim-class simulators carry per-layer InnerProduct
 * precisions the same way).
 */
LayerSpec
fc(std::string name, int inputs, int outputs, int precision)
{
    LayerSpec spec =
        LayerSpec::fullyConnected(std::move(name), inputs, outputs,
                                  precision);
    util::checkInvariant(spec.valid(),
                         "model_zoo: malformed layer " + spec.name);
    return spec;
}

/**
 * Stamp each layer's ordinal (position in the full network), then
 * drop the layers the selection excludes (order is preserved).
 * Ordinals keep synthesized streams selection-invariant — see
 * LayerSpec::ordinal.
 */
Network
applySelect(Network net, LayerSelect select)
{
    for (size_t i = 0; i < net.layers.size(); i++)
        net.layers[i].ordinal = static_cast<int>(i);
    if (select == LayerSelect::All)
        return net;
    std::vector<LayerSpec> kept;
    kept.reserve(net.layers.size());
    for (auto &layer : net.layers)
        if (layerSelected(layer.kind, select))
            kept.push_back(std::move(layer));
    net.layers = std::move(kept);
    return net;
}

/**
 * Append the six convolutions of one GoogLeNet inception module.
 * All convs of a module share the module's Table II precision group.
 */
void
addInception(std::vector<LayerSpec> &layers, const std::string &name,
             int size, int channels, int n1x1, int n3x3red, int n3x3,
             int n5x5red, int n5x5, int pool_proj, int precision)
{
    layers.push_back(conv(name + "/1x1", size, size, channels,
                          1, 1, n1x1, 1, 0, precision));
    layers.push_back(conv(name + "/3x3_reduce", size, size, channels,
                          1, 1, n3x3red, 1, 0, precision));
    layers.push_back(conv(name + "/3x3", size, size, n3x3red,
                          3, 3, n3x3, 1, 1, precision));
    layers.push_back(conv(name + "/5x5_reduce", size, size, channels,
                          1, 1, n5x5red, 1, 0, precision));
    layers.push_back(conv(name + "/5x5", size, size, n5x5red,
                          5, 5, n5x5, 1, 2, precision));
    layers.push_back(conv(name + "/pool_proj", size, size, channels,
                          1, 1, pool_proj, 1, 0, precision));
}

} // namespace

Network
makeAlexNet(LayerSelect select)
{
    Network net;
    net.name = "AlexNet";
    // Table I / Table V calibration targets.
    net.targets = {0.078, 0.181, 0.314, 0.443, 0.23};
    // Table II precision profile: 9-8-5-5-7.
    net.layers = {
        conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0, 9),
        conv("conv2", 27, 27, 96, 5, 5, 256, 1, 2, 8),
        conv("conv3", 13, 13, 256, 3, 3, 384, 1, 1, 5),
        conv("conv4", 13, 13, 384, 3, 3, 384, 1, 1, 5),
        conv("conv5", 13, 13, 384, 3, 3, 256, 1, 1, 7),
        // FC tail: fc6 consumes the 6x6x256 pool5 output.
        fc("fc6", 6 * 6 * 256, 4096, 10),
        fc("fc7", 4096, 4096, 9),
        fc("fc8", 4096, 1000, 9),
    };
    return applySelect(std::move(net), select);
}

Network
makeNiN(LayerSelect select)
{
    // NiN has no FC tail at all: cccp8's 1000 feature maps feed a
    // global average pooling layer directly (its "fully-connected"
    // role is played by the cccp 1x1 convolutions above). Under an
    // Fc selection it therefore contributes no layers.
    Network net;
    net.name = "NiN";
    net.targets = {0.104, 0.221, 0.271, 0.374, 0.10};
    // Table II: 8-8-8-9-7-8-8-9-9-8-8-8.
    net.layers = {
        conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0, 8),
        conv("cccp1", 55, 55, 96, 1, 1, 96, 1, 0, 8),
        conv("cccp2", 55, 55, 96, 1, 1, 96, 1, 0, 8),
        conv("conv2", 27, 27, 96, 5, 5, 256, 1, 2, 9),
        conv("cccp3", 27, 27, 256, 1, 1, 256, 1, 0, 7),
        conv("cccp4", 27, 27, 256, 1, 1, 256, 1, 0, 8),
        conv("conv3", 13, 13, 256, 3, 3, 384, 1, 1, 8),
        conv("cccp5", 13, 13, 384, 1, 1, 384, 1, 0, 9),
        conv("cccp6", 13, 13, 384, 1, 1, 384, 1, 0, 9),
        conv("conv4", 6, 6, 384, 3, 3, 1024, 1, 1, 8),
        conv("cccp7", 6, 6, 1024, 1, 1, 1024, 1, 0, 8),
        conv("cccp8", 6, 6, 1024, 1, 1, 1000, 1, 0, 8),
    };
    return applySelect(std::move(net), select);
}

Network
makeGoogLeNet(LayerSelect select)
{
    // GoogLeNet ends in global average pooling; its only inner
    // product (loss3/classifier, 1024 -> 1000) is outside the
    // paper's Table II precision groups, so the zoo omits it and
    // an Fc selection contributes no layers.
    Network net;
    net.name = "GoogLeNet";
    net.targets = {0.064, 0.190, 0.268, 0.426, 0.18};
    // Table II groups: 10-8-10-9-8-10-9-8-9-10-7 for
    // conv1, conv2 block, inception 3a,3b,4a,4b,4c,4d,4e,5a,5b.
    auto &layers = net.layers;
    layers.push_back(conv("conv1/7x7_s2", 224, 224, 3,
                          7, 7, 64, 2, 3, 10));
    layers.push_back(conv("conv2/3x3_reduce", 56, 56, 64,
                          1, 1, 64, 1, 0, 8));
    layers.push_back(conv("conv2/3x3", 56, 56, 64,
                          3, 3, 192, 1, 1, 8));
    addInception(layers, "inception_3a", 28, 192,
                 64, 96, 128, 16, 32, 32, 10);
    addInception(layers, "inception_3b", 28, 256,
                 128, 128, 192, 32, 96, 64, 9);
    addInception(layers, "inception_4a", 14, 480,
                 192, 96, 208, 16, 48, 64, 8);
    addInception(layers, "inception_4b", 14, 512,
                 160, 112, 224, 24, 64, 64, 10);
    addInception(layers, "inception_4c", 14, 512,
                 128, 128, 256, 24, 64, 64, 9);
    addInception(layers, "inception_4d", 14, 512,
                 112, 144, 288, 32, 64, 64, 8);
    addInception(layers, "inception_4e", 14, 528,
                 256, 160, 320, 32, 128, 128, 9);
    addInception(layers, "inception_5a", 7, 832,
                 256, 160, 320, 32, 128, 128, 10);
    addInception(layers, "inception_5b", 7, 832,
                 384, 192, 384, 48, 128, 128, 7);
    return applySelect(std::move(net), select);
}

Network
makeVggM(LayerSelect select)
{
    Network net;
    net.name = "VGG_M";
    net.targets = {0.051, 0.165, 0.384, 0.474, 0.22};
    // Table II: 7-7-7-8-7.
    net.layers = {
        conv("conv1", 224, 224, 3, 7, 7, 96, 2, 0, 7),
        conv("conv2", 54, 54, 96, 5, 5, 256, 2, 1, 7),
        conv("conv3", 13, 13, 256, 3, 3, 512, 1, 1, 7),
        conv("conv4", 13, 13, 512, 3, 3, 512, 1, 1, 8),
        conv("conv5", 13, 13, 512, 3, 3, 512, 1, 1, 7),
        // FC tail (Chatfield et al.): full6/7/8 off the 6x6x512 pool5.
        fc("fc6", 6 * 6 * 512, 4096, 10),
        fc("fc7", 4096, 4096, 9),
        fc("fc8", 4096, 1000, 9),
    };
    return applySelect(std::move(net), select);
}

Network
makeVggS(LayerSelect select)
{
    Network net;
    net.name = "VGG_S";
    net.targets = {0.057, 0.167, 0.343, 0.460, 0.21};
    // Table II: 7-8-9-7-9.
    net.layers = {
        conv("conv1", 224, 224, 3, 7, 7, 96, 2, 0, 7),
        conv("conv2", 36, 36, 96, 5, 5, 256, 1, 1, 8),
        conv("conv3", 17, 17, 256, 3, 3, 512, 1, 1, 9),
        conv("conv4", 17, 17, 512, 3, 3, 512, 1, 1, 7),
        conv("conv5", 17, 17, 512, 3, 3, 512, 1, 1, 9),
        // FC tail (Chatfield et al.): same shape as VGG-M's.
        fc("fc6", 6 * 6 * 512, 4096, 10),
        fc("fc7", 4096, 4096, 9),
        fc("fc8", 4096, 1000, 9),
    };
    return applySelect(std::move(net), select);
}

Network
makeVgg19(LayerSelect select)
{
    Network net;
    net.name = "VGG_19";
    net.targets = {0.127, 0.242, 0.165, 0.291, 0.19};
    // Table II: 12-12-12-11-12-10-11-11-13-12-13-13-13-13-13-13.
    const int prec[16] = {12, 12, 12, 11, 12, 10, 11, 11,
                          13, 12, 13, 13, 13, 13, 13, 13};
    struct Stage { int size; int in; int out; int count; };
    const Stage stages[5] = {
        {224, 3, 64, 2},
        {112, 64, 128, 2},
        {56, 128, 256, 4},
        {28, 256, 512, 4},
        {14, 512, 512, 4},
    };
    int idx = 0;
    for (int s = 0; s < 5; s++) {
        int channels = stages[s].in;
        for (int c = 0; c < stages[s].count; c++) {
            net.layers.push_back(conv(
                "conv" + std::to_string(s + 1) + "_" +
                    std::to_string(c + 1),
                stages[s].size, stages[s].size, channels,
                3, 3, stages[s].out, 1, 1, prec[idx++]));
            channels = stages[s].out;
        }
    }
    util::checkInvariant(idx == 16, "VGG19 precision list mismatch");
    // FC tail (Simonyan & Zisserman): fc6 off the 7x7x512 pool5.
    net.layers.push_back(fc("fc6", 7 * 7 * 512, 4096, 11));
    net.layers.push_back(fc("fc7", 4096, 4096, 10));
    net.layers.push_back(fc("fc8", 4096, 1000, 10));
    return applySelect(std::move(net), select);
}

std::vector<Network>
makeAllNetworks(LayerSelect select)
{
    std::vector<Network> all = {makeAlexNet(select), makeNiN(select),
                                makeGoogLeNet(select), makeVggM(select),
                                makeVggS(select), makeVgg19(select)};
    // A selection can leave a network with nothing to contribute
    // (NiN and GoogLeNet have no FC layers): skip it rather than
    // hand callers an empty workload mislabeled as that network.
    std::vector<Network> selected;
    selected.reserve(all.size());
    for (auto &net : all)
        if (!net.layers.empty())
            selected.push_back(std::move(net));
    return selected;
}

std::vector<std::string>
networkNames()
{
    return {"alexnet", "nin", "googlenet", "vggm", "vggs", "vgg19"};
}

Network
makeNetworkByName(const std::string &name, LayerSelect select)
{
    std::string key;
    for (char ch : name)
        if (ch != '_' && ch != '-' && ch != ' ')
            key += static_cast<char>(std::tolower(ch));
    Network net;
    if (key == "alexnet")
        net = makeAlexNet(select);
    else if (key == "nin")
        net = makeNiN(select);
    else if (key == "googlenet" || key == "google")
        net = makeGoogLeNet(select);
    else if (key == "vggm")
        net = makeVggM(select);
    else if (key == "vggs")
        net = makeVggS(select);
    else if (key == "vgg19")
        net = makeVgg19(select);
    else if (key == "tiny")
        net = makeTinyNetwork(select);
    else
        util::fatal("unknown network '" + name + "'");
    // An explicit request for a network the selection empties out
    // must fail loudly, not run a zero-layer workload.
    if (net.layers.empty())
        util::fatal("network '" + net.name +
                    "' has no layers under the requested --layers "
                    "selection (it ends in global pooling, not an FC "
                    "tail)");
    return net;
}

LayerSelect
parseLayerSelect(const std::string &text)
{
    if (text == "conv")
        return LayerSelect::Conv;
    if (text == "fc")
        return LayerSelect::Fc;
    if (text == "all")
        return LayerSelect::All;
    util::fatal("--layers must be conv, fc or all (got '" + text +
                "')");
}

Network
makeTinyNetwork(LayerSelect select)
{
    Network net;
    net.name = "Tiny";
    net.targets = {0.08, 0.18, 0.31, 0.44, 0.19};
    net.layers = {
        conv("conv1", 12, 12, 8, 3, 3, 24, 1, 1, 8),
        conv("conv2", 12, 12, 24, 3, 3, 32, 1, 0, 7),
        // Tiny fc tail off conv2's 10x10x32 output, for --layers
        // smoke coverage.
        fc("fc1", 10 * 10 * 32, 16, 7),
    };
    return applySelect(std::move(net), select);
}

} // namespace dnn
} // namespace pra
