#include "dnn/model_zoo.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace dnn {

namespace {

/**
 * Shorthand builder for one conv layer spec. @p wprec is the
 * companion profiled *weight* precision (DNNsim-style per-layer
 * weight profiles; only weight-aware engines read it): front layers
 * need a wider magnitude window than the mid-network 8-bit norm.
 */
LayerSpec
conv(std::string name, int in_x, int in_y, int channels, int f_x, int f_y,
     int filters, int stride, int pad, int precision, int wprec = 8)
{
    LayerSpec spec;
    spec.name = std::move(name);
    spec.inputX = in_x;
    spec.inputY = in_y;
    spec.inputChannels = channels;
    spec.filterX = f_x;
    spec.filterY = f_y;
    spec.numFilters = filters;
    spec.stride = stride;
    spec.pad = pad;
    spec.profiledPrecision = precision;
    spec.profiledWeightPrecision = wprec;
    PRA_CHECK(spec.valid(),
                         "model_zoo: malformed layer " + spec.name);
    return spec;
}

/**
 * Shorthand builder for one fully-connected layer in its canonical
 * 1x1xI lowered form. The paper's Table II profiles conv layers only;
 * the FC precisions here are the companion profiled values in the
 * same style (DNNsim-class simulators carry per-layer InnerProduct
 * precisions the same way).
 */
LayerSpec
fc(std::string name, int inputs, int outputs, int precision,
   int wprec = 8)
{
    LayerSpec spec =
        LayerSpec::fullyConnected(std::move(name), inputs, outputs,
                                  precision, wprec);
    PRA_CHECK(spec.valid(),
                         "model_zoo: malformed layer " + spec.name);
    return spec;
}

/**
 * Shorthand builder for one pooling layer (square window). Pools are
 * structural — never priced — so they carry no Table II precision;
 * they exist so the propagated-activation pipeline can bridge the
 * published shapes between priced layers. @p ceil_mode selects
 * Caffe-style ceil output rounding where the published shapes need it
 * (the networks mix conventions; see LayerSpec::poolCeil).
 */
LayerSpec
pool(std::string name, int in_x, int in_y, int channels, int window,
     int stride, PoolOp op = PoolOp::Max, int pad = 0,
     bool ceil_mode = false)
{
    LayerSpec spec = LayerSpec::pool(std::move(name), in_x, in_y,
                                     channels, window, stride, op, pad,
                                     ceil_mode);
    PRA_CHECK(spec.valid(),
                         "model_zoo: malformed layer " + spec.name);
    return spec;
}

/**
 * Stamp each priced layer's ordinal (its position among the priced
 * layers of the full network — pools don't count, so inserting a
 * structural pool never reshuffles the streams of priced layers),
 * then drop the layers the selection excludes (order is preserved).
 * Filtering invalidates producer indices, so non-All selections clear
 * them; synthetic streams never read producers anyway. Ordinals keep
 * synthesized streams selection-invariant — see LayerSpec::ordinal.
 */
Network
applySelect(Network net, LayerSelect select)
{
    int ordinal = 0;
    for (auto &layer : net.layers)
        layer.ordinal = layer.priced() ? ordinal++ : -1;
    if (select == LayerSelect::All)
        return net;
    std::vector<LayerSpec> kept;
    kept.reserve(net.layers.size());
    for (auto &layer : net.layers)
        if (layerSelected(layer.kind, select)) {
            layer.producers.clear();
            kept.push_back(std::move(layer));
        }
    net.layers = std::move(kept);
    return net;
}

/**
 * Append @p spec with an explicit producer list (empty = previous
 * layer) and return its index in the full layer list — the handle
 * later layers use to declare who they consume.
 */
int
addLayer(std::vector<LayerSpec> &layers, LayerSpec spec,
         std::vector<int> producers = {})
{
    spec.producers = std::move(producers);
    layers.push_back(std::move(spec));
    return static_cast<int>(layers.size()) - 1;
}

/**
 * Append one GoogLeNet inception module: six convolutions (the
 * paper's Table II groups them under one precision) plus the
 * module-internal 3x3/1 max pool feeding the pool-projection branch.
 * @p input is the producer set of the module input (the previous
 * pool, or the previous module's four branch outputs, which
 * concatenate channel-wise). Returns the four branch outputs in
 * concatenation order: 1x1, 3x3, 5x5, pool_proj.
 */
std::vector<int>
addInception(std::vector<LayerSpec> &layers, const std::string &name,
             std::vector<int> input, int size, int channels, int n1x1,
             int n3x3red, int n3x3, int n5x5red, int n5x5,
             int pool_proj, int precision, int wprec)
{
    int b1 = addLayer(layers,
                      conv(name + "/1x1", size, size, channels,
                           1, 1, n1x1, 1, 0, precision, wprec),
                      input);
    int r3 = addLayer(layers,
                      conv(name + "/3x3_reduce", size, size, channels,
                           1, 1, n3x3red, 1, 0, precision, wprec),
                      input);
    int b3 = addLayer(layers,
                      conv(name + "/3x3", size, size, n3x3red,
                           3, 3, n3x3, 1, 1, precision, wprec),
                      {r3});
    int r5 = addLayer(layers,
                      conv(name + "/5x5_reduce", size, size, channels,
                           1, 1, n5x5red, 1, 0, precision, wprec),
                      input);
    int b5 = addLayer(layers,
                      conv(name + "/5x5", size, size, n5x5red,
                           5, 5, n5x5, 1, 2, precision, wprec),
                      {r5});
    int pp = addLayer(layers,
                      pool(name + "/pool", size, size, channels, 3, 1,
                           PoolOp::Max, 1),
                      input);
    int bp = addLayer(layers,
                      conv(name + "/pool_proj", size, size, channels,
                           1, 1, pool_proj, 1, 0, precision, wprec),
                      {pp});
    return {b1, b3, b5, bp};
}

} // namespace

Network
makeAlexNet(LayerSelect select)
{
    Network net;
    net.name = "AlexNet";
    // Table I / Table V calibration targets.
    net.targets = {0.078, 0.181, 0.314, 0.443, 0.23};
    // Table II precision profile: 9-8-5-5-7. Pools bridge the
    // published shapes (pool5: 13x13x256 -> the 6x6x256 fc6 input).
    net.layers = {
        conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0, 9, 10),
        pool("pool1", 55, 55, 96, 3, 2),
        conv("conv2", 27, 27, 96, 5, 5, 256, 1, 2, 8),
        pool("pool2", 27, 27, 256, 3, 2),
        conv("conv3", 13, 13, 256, 3, 3, 384, 1, 1, 5),
        conv("conv4", 13, 13, 384, 3, 3, 384, 1, 1, 5),
        conv("conv5", 13, 13, 384, 3, 3, 256, 1, 1, 7),
        pool("pool5", 13, 13, 256, 3, 2),
        // FC tail: fc6 consumes the 6x6x256 pool5 output.
        fc("fc6", 6 * 6 * 256, 4096, 10, 9),
        fc("fc7", 4096, 4096, 9, 9),
        fc("fc8", 4096, 1000, 9, 10),
    };
    return applySelect(std::move(net), select);
}

Network
makeNiN(LayerSelect select)
{
    // NiN has no FC tail at all: cccp8's 1000 feature maps feed a
    // global average pooling layer directly (its "fully-connected"
    // role is played by the cccp 1x1 convolutions above). Under an
    // Fc selection it therefore contributes no layers.
    Network net;
    net.name = "NiN";
    net.targets = {0.104, 0.221, 0.271, 0.374, 0.10};
    // Table II: 8-8-8-9-7-8-8-9-9-8-8-8.
    net.layers = {
        conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0, 8, 10),
        conv("cccp1", 55, 55, 96, 1, 1, 96, 1, 0, 8),
        conv("cccp2", 55, 55, 96, 1, 1, 96, 1, 0, 8),
        pool("pool1", 55, 55, 96, 3, 2),
        conv("conv2", 27, 27, 96, 5, 5, 256, 1, 2, 9, 9),
        conv("cccp3", 27, 27, 256, 1, 1, 256, 1, 0, 7),
        conv("cccp4", 27, 27, 256, 1, 1, 256, 1, 0, 8),
        pool("pool2", 27, 27, 256, 3, 2),
        conv("conv3", 13, 13, 256, 3, 3, 384, 1, 1, 8),
        conv("cccp5", 13, 13, 384, 1, 1, 384, 1, 0, 9),
        conv("cccp6", 13, 13, 384, 1, 1, 384, 1, 0, 9),
        pool("pool3", 13, 13, 384, 3, 2),
        conv("conv4", 6, 6, 384, 3, 3, 1024, 1, 1, 8),
        conv("cccp7", 6, 6, 1024, 1, 1, 1024, 1, 0, 8),
        conv("cccp8", 6, 6, 1024, 1, 1, 1000, 1, 0, 8),
        // Global average pooling stands in for the FC tail.
        pool("pool4", 6, 6, 1000, 6, 1, PoolOp::Avg),
    };
    return applySelect(std::move(net), select);
}

Network
makeGoogLeNet(LayerSelect select)
{
    // GoogLeNet ends in global average pooling; its only inner
    // product (loss3/classifier, 1024 -> 1000) is outside the
    // paper's Table II precision groups, so the zoo omits it and
    // an Fc selection contributes no layers. The inception modules
    // branch: each consumes its predecessor's four concatenated
    // branch outputs, expressed through explicit producer lists.
    Network net;
    net.name = "GoogLeNet";
    net.targets = {0.064, 0.190, 0.268, 0.426, 0.18};
    // Table II groups: 10-8-10-9-8-10-9-8-9-10-7 for
    // conv1, conv2 block, inception 3a,3b,4a,4b,4c,4d,4e,5a,5b.
    auto &layers = net.layers;
    addLayer(layers, conv("conv1/7x7_s2", 224, 224, 3,
                          7, 7, 64, 2, 3, 10, 10));
    int p1 = addLayer(layers, pool("pool1/3x3_s2", 112, 112, 64, 3, 2,
                                   PoolOp::Max, 0, true));
    int c2r = addLayer(layers, conv("conv2/3x3_reduce", 56, 56, 64,
                                    1, 1, 64, 1, 0, 8, 9),
                       {p1});
    int c2 = addLayer(layers, conv("conv2/3x3", 56, 56, 64,
                                   3, 3, 192, 1, 1, 8, 9),
                      {c2r});
    int p2 = addLayer(layers, pool("pool2/3x3_s2", 56, 56, 192, 3, 2,
                                   PoolOp::Max, 0, true),
                      {c2});
    auto m3a = addInception(layers, "inception_3a", {p2}, 28, 192,
                            64, 96, 128, 16, 32, 32, 10, 9);
    auto m3b = addInception(layers, "inception_3b", m3a, 28, 256,
                            128, 128, 192, 32, 96, 64, 9, 8);
    int p3 = addLayer(layers, pool("pool3/3x3_s2", 28, 28, 480, 3, 2,
                                   PoolOp::Max, 0, true),
                      m3b);
    auto m4a = addInception(layers, "inception_4a", {p3}, 14, 480,
                            192, 96, 208, 16, 48, 64, 8, 8);
    auto m4b = addInception(layers, "inception_4b", m4a, 14, 512,
                            160, 112, 224, 24, 64, 64, 10, 8);
    auto m4c = addInception(layers, "inception_4c", m4b, 14, 512,
                            128, 128, 256, 24, 64, 64, 9, 8);
    auto m4d = addInception(layers, "inception_4d", m4c, 14, 512,
                            112, 144, 288, 32, 64, 64, 8, 8);
    auto m4e = addInception(layers, "inception_4e", m4d, 14, 528,
                            256, 160, 320, 32, 128, 128, 9, 8);
    int p4 = addLayer(layers, pool("pool4/3x3_s2", 14, 14, 832, 3, 2,
                                   PoolOp::Max, 0, true),
                      m4e);
    auto m5a = addInception(layers, "inception_5a", {p4}, 7, 832,
                            256, 160, 320, 32, 128, 128, 10, 9);
    auto m5b = addInception(layers, "inception_5b", m5a, 7, 832,
                            384, 192, 384, 48, 128, 128, 7, 9);
    // Global average pooling closes the network (no FC tail).
    addLayer(layers, pool("pool5/7x7_s1", 7, 7, 1024, 7, 1,
                          PoolOp::Avg),
             m5b);
    return applySelect(std::move(net), select);
}

Network
makeVggM(LayerSelect select)
{
    Network net;
    net.name = "VGG_M";
    net.targets = {0.051, 0.165, 0.384, 0.474, 0.22};
    // Table II: 7-7-7-8-7. Pool shapes follow Chatfield et al.:
    // pool2 needs ceil rounding (26 -> 13), pool1/pool5 floor.
    net.layers = {
        conv("conv1", 224, 224, 3, 7, 7, 96, 2, 0, 7, 9),
        pool("pool1", 109, 109, 96, 3, 2),
        conv("conv2", 54, 54, 96, 5, 5, 256, 2, 1, 7),
        pool("pool2", 26, 26, 256, 3, 2, PoolOp::Max, 0, true),
        conv("conv3", 13, 13, 256, 3, 3, 512, 1, 1, 7),
        conv("conv4", 13, 13, 512, 3, 3, 512, 1, 1, 8),
        conv("conv5", 13, 13, 512, 3, 3, 512, 1, 1, 7),
        pool("pool5", 13, 13, 512, 3, 2),
        // FC tail (Chatfield et al.): full6/7/8 off the 6x6x512 pool5.
        fc("fc6", 6 * 6 * 512, 4096, 10, 9),
        fc("fc7", 4096, 4096, 9, 9),
        fc("fc8", 4096, 1000, 9, 10),
    };
    return applySelect(std::move(net), select);
}

Network
makeVggS(LayerSelect select)
{
    Network net;
    net.name = "VGG_S";
    net.targets = {0.057, 0.167, 0.343, 0.460, 0.21};
    // Table II: 7-8-9-7-9. VGG-S pools: 3x3/3 front (floor), 2x2/2
    // middle, 3x3/3 tail (ceil: 17 -> 6), per Chatfield et al.
    net.layers = {
        conv("conv1", 224, 224, 3, 7, 7, 96, 2, 0, 7, 9),
        pool("pool1", 109, 109, 96, 3, 3),
        conv("conv2", 36, 36, 96, 5, 5, 256, 1, 1, 8),
        pool("pool2", 34, 34, 256, 2, 2),
        conv("conv3", 17, 17, 256, 3, 3, 512, 1, 1, 9),
        conv("conv4", 17, 17, 512, 3, 3, 512, 1, 1, 7),
        conv("conv5", 17, 17, 512, 3, 3, 512, 1, 1, 9),
        pool("pool5", 17, 17, 512, 3, 3, PoolOp::Max, 0, true),
        // FC tail (Chatfield et al.): same shape as VGG-M's.
        fc("fc6", 6 * 6 * 512, 4096, 10, 9),
        fc("fc7", 4096, 4096, 9, 9),
        fc("fc8", 4096, 1000, 9, 10),
    };
    return applySelect(std::move(net), select);
}

Network
makeVgg19(LayerSelect select)
{
    Network net;
    net.name = "VGG_19";
    net.targets = {0.127, 0.242, 0.165, 0.291, 0.19};
    // Table II: 12-12-12-11-12-10-11-11-13-12-13-13-13-13-13-13.
    const int prec[16] = {12, 12, 12, 11, 12, 10, 11, 11,
                          13, 12, 13, 13, 13, 13, 13, 13};
    struct Stage { int size; int in; int out; int count; int wprec; };
    const Stage stages[5] = {
        {224, 3, 64, 2, 9},
        {112, 64, 128, 2, 8},
        {56, 128, 256, 4, 8},
        {28, 256, 512, 4, 8},
        {14, 512, 512, 4, 8},
    };
    int idx = 0;
    for (int s = 0; s < 5; s++) {
        int channels = stages[s].in;
        for (int c = 0; c < stages[s].count; c++) {
            net.layers.push_back(conv(
                "conv" + std::to_string(s + 1) + "_" +
                    std::to_string(c + 1),
                stages[s].size, stages[s].size, channels,
                3, 3, stages[s].out, 1, 1, prec[idx++],
                stages[s].wprec));
            channels = stages[s].out;
        }
        // Every stage ends in a 2x2/2 max pool (all divisions exact).
        net.layers.push_back(pool("pool" + std::to_string(s + 1),
                                  stages[s].size, stages[s].size,
                                  stages[s].out, 2, 2));
    }
    PRA_CHECK(idx == 16, "VGG19 precision list mismatch");
    // FC tail (Simonyan & Zisserman): fc6 off the 7x7x512 pool5.
    net.layers.push_back(fc("fc6", 7 * 7 * 512, 4096, 11, 10));
    net.layers.push_back(fc("fc7", 4096, 4096, 10, 10));
    net.layers.push_back(fc("fc8", 4096, 1000, 10, 11));
    return applySelect(std::move(net), select);
}

std::vector<Network>
makeAllNetworks(LayerSelect select)
{
    std::vector<Network> all = {makeAlexNet(select), makeNiN(select),
                                makeGoogLeNet(select), makeVggM(select),
                                makeVggS(select), makeVgg19(select)};
    // A selection can leave a network with nothing to contribute
    // (NiN and GoogLeNet have no FC layers): skip it rather than
    // hand callers an empty workload mislabeled as that network.
    std::vector<Network> selected;
    selected.reserve(all.size());
    for (auto &net : all)
        if (!net.layers.empty())
            selected.push_back(std::move(net));
    return selected;
}

std::vector<std::string>
networkNames()
{
    return {"alexnet", "nin", "googlenet", "vggm", "vggs", "vgg19"};
}

Network
makeNetworkByName(const std::string &name, LayerSelect select)
{
    std::string key;
    for (char ch : name)
        if (ch != '_' && ch != '-' && ch != ' ')
            key += static_cast<char>(std::tolower(ch));
    Network net;
    if (key == "alexnet")
        net = makeAlexNet(select);
    else if (key == "nin")
        net = makeNiN(select);
    else if (key == "googlenet" || key == "google")
        net = makeGoogLeNet(select);
    else if (key == "vggm")
        net = makeVggM(select);
    else if (key == "vggs")
        net = makeVggS(select);
    else if (key == "vgg19")
        net = makeVgg19(select);
    else if (key == "tiny")
        net = makeTinyNetwork(select);
    else
        util::fatal("unknown network '" + name + "'");
    // An explicit request for a network the selection empties out
    // must fail loudly, not run a zero-layer workload.
    if (net.layers.empty())
        util::fatal("network '" + net.name +
                    "' has no layers under the requested --layers "
                    "selection (it ends in global pooling, not an FC "
                    "tail)");
    return net;
}

LayerSelect
parseLayerSelect(const std::string &text)
{
    if (text == "conv")
        return LayerSelect::Conv;
    if (text == "fc")
        return LayerSelect::Fc;
    if (text == "all")
        return LayerSelect::All;
    util::fatal("--layers must be conv, fc or all (got '" + text +
                "')");
}

Network
makeTinyNetwork(LayerSelect select)
{
    Network net;
    net.name = "Tiny";
    net.targets = {0.08, 0.18, 0.31, 0.44, 0.19};
    net.layers = {
        conv("conv1", 12, 12, 8, 3, 3, 24, 1, 1, 8),
        conv("conv2", 12, 12, 24, 3, 3, 32, 1, 0, 7),
        // A 2x2/2 pool bridges conv2's 10x10x32 output into the tiny
        // fc tail, so smoke-sized propagated runs cross a real pool.
        pool("pool1", 10, 10, 32, 2, 2),
        fc("fc1", 5 * 5 * 32, 16, 7),
    };
    return applySelect(std::move(net), select);
}

} // namespace dnn
} // namespace pra
