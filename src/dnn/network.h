/**
 * @file
 * A network: the ordered layers the accelerators run — convolutional
 * and fully-connected, each a LayerSpec with a kind — plus the
 * published per-network neuron-stream statistics used to calibrate
 * the synthetic activation generator (see DESIGN.md §3).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer_spec.h"

namespace pra {
namespace dnn {

/**
 * Per-network neuron bit statistics from the paper, used as
 * calibration targets for synthetic activations.
 */
struct BitStatsTargets
{
    /** Table I, 16-bit fixed point: set-bit fraction over all neurons. */
    double all16 = 0.10;
    /** Table I, 16-bit fixed point: set-bit fraction over non-zero. */
    double nz16 = 0.20;
    /** Table I, 8-bit quantized: over all neurons. */
    double all8 = 0.30;
    /** Table I, 8-bit quantized: over non-zero neurons. */
    double nz8 = 0.42;
    /**
     * Table V: fraction of PRA's speedup due to software-provided
     * precisions; calibrates how much essential-bit content the
     * per-layer trimming removes.
     */
    double softwareBenefit = 0.19;

    /** Implied zero-neuron fraction of the 16-bit stream. */
    double zeroFraction16() const { return 1.0 - all16 / nz16; }
    /** Implied zero-neuron fraction of the 8-bit stream. */
    double zeroFraction8() const { return 1.0 - all8 / nz8; }
};

/** A named network: layers in execution order. */
struct Network
{
    std::string name;
    std::vector<LayerSpec> layers;
    BitStatsTargets targets;

    /**
     * Total multiply-accumulates over the *priced* layers (pool
     * layers bridge shapes; their reductions are not MACs).
     */
    int64_t totalProducts() const;

    /** Number of layers of @p kind. */
    int countLayers(LayerKind kind) const;

    /**
     * True when every layer's input shape matches the output of its
     * producers: each layer consumes the previous layer's output (or
     * the channel-concatenation of its explicit producers), with
     * fully-connected layers flattening the producer output into
     * their 1 x 1 x I column. Layer 0 must have no producers (it
     * consumes the image). On failure, @p why (when non-null)
     * receives a one-line description of the first mismatch.
     *
     * Synthetic-stream workloads don't need this (each layer's
     * stream is synthesized independently), so filtered selections —
     * e.g. the conv-only paper workload, whose conv2 consumes a
     * pooled conv1 output that is not in the list — legitimately
     * fail it. Propagation, however, is impossible without it:
     * propagateChain() requires it, and valid() enforces it for
     * pipeline-shaped networks (any pool layer or explicit producer
     * present), where a shape break is a construction bug.
     */
    bool chainConsistent(std::string *why = nullptr) const;

    /**
     * Order-sensitive hash of everything that shapes this network's
     * synthesized workloads: the layer list (names, kinds, geometry,
     * ordinals) and the calibration targets. Two selections of the
     * same network differ here, as do same-named networks with
     * different targets, so caches keyed by network name fold this
     * in to keep "same name, different workload" entries apart.
     */
    uint64_t workloadFingerprint() const;

    /**
     * True when every layer spec is well formed — and, for
     * pipeline-shaped networks (any pool layer or explicit producer
     * list present), when the layers chain shape-consistently (see
     * chainConsistent()). Hand-built single-layer or filtered
     * networks carry neither pools nor producers, so the chain check
     * does not apply to them.
     */
    bool valid() const;
};

} // namespace dnn
} // namespace pra

