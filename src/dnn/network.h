/**
 * @file
 * A network: the ordered layers the accelerators run — convolutional
 * and fully-connected, each a LayerSpec with a kind — plus the
 * published per-network neuron-stream statistics used to calibrate
 * the synthetic activation generator (see DESIGN.md §3).
 */

#ifndef PRA_DNN_NETWORK_H
#define PRA_DNN_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer_spec.h"

namespace pra {
namespace dnn {

/**
 * Per-network neuron bit statistics from the paper, used as
 * calibration targets for synthetic activations.
 */
struct BitStatsTargets
{
    /** Table I, 16-bit fixed point: set-bit fraction over all neurons. */
    double all16 = 0.10;
    /** Table I, 16-bit fixed point: set-bit fraction over non-zero. */
    double nz16 = 0.20;
    /** Table I, 8-bit quantized: over all neurons. */
    double all8 = 0.30;
    /** Table I, 8-bit quantized: over non-zero neurons. */
    double nz8 = 0.42;
    /**
     * Table V: fraction of PRA's speedup due to software-provided
     * precisions; calibrates how much essential-bit content the
     * per-layer trimming removes.
     */
    double softwareBenefit = 0.19;

    /** Implied zero-neuron fraction of the 16-bit stream. */
    double zeroFraction16() const { return 1.0 - all16 / nz16; }
    /** Implied zero-neuron fraction of the 8-bit stream. */
    double zeroFraction8() const { return 1.0 - all8 / nz8; }
};

/** A named network: layers in execution order. */
struct Network
{
    std::string name;
    std::vector<LayerSpec> layers;
    BitStatsTargets targets;

    /** Total multiply-accumulates over all layers. */
    int64_t totalProducts() const;

    /** Number of layers of @p kind. */
    int countLayers(LayerKind kind) const;

    /**
     * Order-sensitive hash of everything that shapes this network's
     * synthesized workloads: the layer list (names, kinds, geometry,
     * ordinals) and the calibration targets. Two selections of the
     * same network differ here, as do same-named networks with
     * different targets, so caches keyed by network name fold this
     * in to keep "same name, different workload" entries apart.
     */
    uint64_t workloadFingerprint() const;

    /** True when every layer spec is well formed. */
    bool valid() const;
};

} // namespace dnn
} // namespace pra

#endif // PRA_DNN_NETWORK_H
