/**
 * @file
 * Synthetic neuron-stream generation, calibrated to the paper.
 *
 * The paper measures its networks on real ImageNet activations; those
 * traces are not available offline, but every quantity the paper
 * reports is a function of the layer geometry (exact, from the model
 * zoo) and of the *bit statistics* of the neuron stream. This module
 * synthesizes neuron values whose bit statistics match the paper's own
 * published measurements:
 *
 *  - the zero-neuron fraction and the essential-bit content of
 *    non-zero neurons match Table I per network and representation;
 *  - the essential-bit content removed by per-layer precision
 *    trimming matches the software-guidance benefit of Table V.
 *
 * Mechanics for the 16-bit fixed-point stream: a neuron is zero with
 * the ReLU zero probability; otherwise its *core* value (a discretized
 * exponential — the shape of quantized rectified activations) occupies
 * the layer's profiled precision window, and with some probability a
 * few low-order *suffix noise* bits are set below the window. Software
 * trimming (Section V-F) masks exactly those noise bits. The 8-bit
 * quantized stream draws codes from a separately calibrated
 * discretized exponential.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dnn/network.h"
#include "dnn/tensor.h"
#include "util/random.h"

namespace pra {
namespace dnn {

/**
 * Maximum number of suffix-noise bit positions below the precision
 * window (clamped per layer so the window fits in 16 bits). The
 * window of a layer with precision p keeps bits
 * [anchor, anchor + p - 1] with anchor = min(kNoiseSuffixBits, 16-p).
 */
inline constexpr int kNoiseSuffixBits = 4;

/**
 * The synthesis anchor of @p layer's precision window — the single
 * definition every consumer (calibration, trimming, term counting,
 * propagation/requantization) must share: if the copies diverged,
 * trimmed streams would silently stop matching the calibrated
 * window.
 */
inline int
synthesisAnchor(const LayerSpec &layer)
{
    return kNoiseSuffixBits < 16 - layer.profiledPrecision
               ? kNoiseSuffixBits
               : 16 - layer.profiledPrecision;
}

/**
 * A discrete distribution over [1, maxValue] with P(v) proportional to
 * exp(-lambda * v / maxValue); lambda == 0 degenerates to uniform.
 * Scale-normalizing the exponent keeps lambda comparable across
 * layers with different precisions.
 */
class DiscreteExponential
{
  public:
    DiscreteExponential(double lambda, uint32_t max_value);

    /** Draw one value in [1, maxValue]. */
    uint32_t sample(util::Xoshiro256 &rng) const;

    /** Exact expected popcount under the distribution. */
    double expectedPopcount() const { return expectedPopcount_; }

    /** Exact expected value under the distribution. */
    double expectedValue() const { return expectedValue_; }

    uint32_t maxValue() const { return maxValue_; }
    double lambda() const { return lambda_; }

  private:
    double lambda_;
    uint32_t maxValue_;
    std::vector<double> cdf_;
    double expectedPopcount_ = 0.0;
    double expectedValue_ = 0.0;
};

/**
 * Find the lambda for which DiscreteExponential(lambda, max_value) has
 * expected popcount @p target_popcount. Targets outside the reachable
 * range [1, E(uniform)] are clamped (with a warning).
 */
double calibrateLambda(uint32_t max_value, double target_popcount);

/**
 * Calibrated per-layer synthesis parameters.
 *
 * Non-zero core values are a two-component mixture mirroring the
 * heavy-tailed shape of real rectified activations: a *light*
 * discretized-exponential component (small values, 1-2 essential
 * bits) and a *dense* component whose MSB sits at the top of the
 * precision window with uniformly random lower bits (~1 + (p-1)/2
 * essential bits). The mixture weight is calibrated so the marginal
 * essential-bit content matches Table I; the tail is what gives
 * bricks realistic worst-lane (synchronization-relevant) statistics.
 */
struct SynthParams
{
    double zeroFraction = 0.5;   ///< P(neuron == 0).
    double lambda = 1.0;         ///< Light-component rate.
    double denseFraction = 0.0;  ///< P(dense component | non-zero).
    int precisionBits = 8;       ///< p: width of the core window.
    int anchorLsb = 0;           ///< Window lsb (suffix bits below).
    /**
     * Per-bit probability of a suffix-noise bit on dense-component
     * neurons. Large activations carry the bulk of the
     * sub-precision noise the profiling discards, which is what
     * makes trimming shorten the critical (max) lanes.
     */
    double noiseDense = 0.0;
    /** Per-bit suffix-noise probability on light-component neurons. */
    double noiseLight = 0.0;
};

/**
 * Target essential-bit count of the light mixture component; a global
 * shape constant (the dense fraction absorbs per-network calibration).
 */
inline constexpr double kLightComponentPopcount = 1.3;

/**
 * Zero fraction of the first layer's input (the image): images are
 * dense — only a sliver of pixels is exactly zero. The override
 * applies only when the network's first layer is convolutional; a
 * front-trimmed FC-only network starts from pooled ReLU outputs, not
 * the image.
 */
inline constexpr double kImageZeroFraction = 0.02;

/**
 * Calibrate the 16-bit fixed-point stream of one layer against the
 * network's Table I / Table V targets.
 */
SynthParams calibrateFixed16(const LayerSpec &layer,
                             const BitStatsTargets &targets);

/** Calibrate the 8-bit quantized code stream (network-wide). */
SynthParams calibrateQuant8(const BitStatsTargets &targets);

/**
 * Per-image stream-seed salt for batched workloads. Image 0 is the
 * historical single-image stream (salt 0, so every committed golden
 * is byte-identical); images 1.. derive well-mixed distinct salts, so
 * a batch of B images prices B genuinely different activation
 * streams of the same calibrated distribution.
 */
inline constexpr uint64_t
imageStreamSalt(int image)
{
    if (image == 0)
        return 0;
    return util::fnv1aMix(
        util::fnv1aMix(util::kFnv1aOffset, 0xba7c'0f00'd5'ee'd0'01ull),
        static_cast<uint64_t>(image));
}

/**
 * Deterministic activation generator for a network. Layer tensors are
 * reproducible: the stream for (network, layer, representation,
 * batch image) only depends on the seed.
 */
class ActivationSynthesizer
{
  public:
    explicit ActivationSynthesizer(const Network &network,
                                   uint64_t seed = 0x5eed);

    const Network &network() const { return network_; }

    /** The workload seed streams derive from (cache-key component). */
    uint64_t seed() const { return seed_; }

    /**
     * Synthesize the raw 16-bit fixed-point input stream of layer
     * @p layer_idx (untrimmed: suffix noise present). @p image
     * selects the batch image (imageStreamSalt): image 0 is the
     * historical stream, every other index an independent draw from
     * the same calibrated distribution.
     */
    NeuronTensor synthesizeFixed16(int layer_idx, int image = 0) const;

    /**
     * Same stream after software trimming: each neuron ANDed with the
     * layer's precision mask. Pairs element-for-element with
     * synthesizeFixed16() so trimmed/untrimmed comparisons (Table V)
     * see the same underlying neurons.
     */
    NeuronTensor synthesizeFixed16Trimmed(int layer_idx,
                                          int image = 0) const;

    /** Synthesize the 8-bit quantized code stream (codes in 0..255). */
    NeuronTensor synthesizeQuant8(int layer_idx, int image = 0) const;

    const SynthParams &fixed16Params(int layer_idx) const;
    const SynthParams &quant8Params() const { return quant8Params_; }

  private:
    const Network network_;
    uint64_t seed_;
    std::vector<SynthParams> fixed16Params_;
    SynthParams quant8Params_;

    NeuronTensor synthesizeRaw(int layer_idx, bool quantized,
                               int image) const;
};

/**
 * Deterministic random filters for functional testing: @p count
 * filters of the layer's geometry with weights uniform in
 * [-weight_range, weight_range].
 */
std::vector<FilterTensor> synthesizeFilters(const LayerSpec &layer,
                                            uint64_t seed = 0xf117,
                                            int weight_range = 255);

} // namespace dnn
} // namespace pra

