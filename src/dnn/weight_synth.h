/**
 * @file
 * Deterministic weight-code synthesis — the weight-side counterpart
 * of activation_synth.h.
 *
 * Weight-aware engines (Laconic's both-operand term counts, the
 * weight-side planes of sim/operand_planes.h) consume per-weight
 * magnitude codes inside each layer's profiled weight-precision
 * window (LayerSpec::profiledWeightPrecision, from the model zoo).
 * Real trained weights are not available offline, so this module
 * synthesizes codes whose bit statistics follow the same discretized-
 * exponential shape the activation synthesizer calibrates: trained
 * weight magnitudes are Laplacian-ish, so most codes carry only a few
 * essential bits (kWeightPopcountTarget), with a small exactly-zero
 * fraction (kWeightZeroFraction) from pruned/underflowed weights.
 *
 * Two sources, mirroring ActivationMode:
 *
 *  - Synthetic (synthesizeWeightCodes): counter-seeded per
 *    (layer name, weight precision, filter) from the fixed
 *    kWeightStreamSeed — a pure function of the layer, with no
 *    network or run-seed context. This is what makes the tensor and
 *    workload overloads of weight-aware engines bit-identical: both
 *    can rederive the same codes from the LayerSpec alone.
 *
 *  - Propagated (PropagatedWeightCodes): the exact
 *    synthesizeFilters(layer, seed ^ kPropagationFilterSalt) weights
 *    the reference forward pass (dnn/propagate.h) convolves,
 *    requantized by magnitude into the profiled weight window —
 *    streamed one filter at a time so peak memory is one filter.
 */

#pragma once

#include <cstdint>
#include <span>

#include "dnn/layer_spec.h"
#include "util/random.h"

namespace pra {
namespace dnn {

/**
 * Fixed seed of the synthetic weight streams. Deliberately not a
 * function of the run's --seed: a layer's weights model one trained
 * network, shared by every run, image, and engine that prices it
 * (the activation seed only varies the *input* streams).
 */
inline constexpr uint64_t kWeightStreamSeed = 0x3157'ee00'5eed'cafeull;

/** Fraction of exactly-zero synthetic weights (pruned/underflow). */
inline constexpr double kWeightZeroFraction = 0.05;

/**
 * Target essential-bit count of non-zero synthetic weight codes —
 * the Laplacian-shape analogue of kLightComponentPopcount.
 */
inline constexpr double kWeightPopcountTarget = 2.2;

/**
 * Fill @p out (length layer.synapsesPerFilter(), FilterTensor flat
 * order (fy * Fx + fx) * I + c) with the synthetic magnitude codes of
 * filter @p filter. Codes lie in [0, 2^wp) for
 * wp = layer.profiledWeightPrecision; the draw is a pure function of
 * (layer.name, wp, filter).
 */
void synthesizeWeightCodes(const LayerSpec &layer, int filter,
                           std::span<uint16_t> out);

/**
 * Streaming view of the propagated reference weights as magnitude
 * codes: |w| of each synthesizeFilters(layer, synth_seed ^
 * kPropagationFilterSalt) weight, scaled so the layer's max |w| maps
 * to the top of the profiled weight window (code
 * (1 << wp) - 1). Construction replays the filter RNG once to find
 * that max; filterCodes() then replays it again filter by filter, so
 * filters must be requested in order 0..numFilters-1 exactly once.
 */
class PropagatedWeightCodes
{
  public:
    PropagatedWeightCodes(const LayerSpec &layer, uint64_t synth_seed);

    /** The layer-wide max weight magnitude the scale anchors to. */
    int maxMagnitude() const { return maxMag_; }

    /**
     * Fill @p out (length layer.synapsesPerFilter(), FilterTensor
     * flat order) with filter @p filter's requantized codes.
     * @p filter must advance sequentially from 0.
     */
    void filterCodes(int filter, std::span<uint16_t> out);

  private:
    LayerSpec layer_;
    util::Xoshiro256 rng_;
    int nextFilter_ = 0;
    int maxMag_ = 0;
};

} // namespace dnn
} // namespace pra
