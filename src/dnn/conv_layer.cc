#include "dnn/conv_layer.h"

#include "dnn/tensor.h"

namespace pra {
namespace dnn {

int
ConvLayerSpec::outX() const
{
    return (inputX + 2 * pad - filterX) / stride + 1;
}

int
ConvLayerSpec::outY() const
{
    return (inputY + 2 * pad - filterY) / stride + 1;
}

int64_t
ConvLayerSpec::windows() const
{
    return static_cast<int64_t>(outX()) * outY();
}

int64_t
ConvLayerSpec::synapsesPerFilter() const
{
    return static_cast<int64_t>(filterX) * filterY * inputChannels;
}

int64_t
ConvLayerSpec::products() const
{
    return windows() * numFilters * synapsesPerFilter();
}

int64_t
ConvLayerSpec::bricksPerWindow() const
{
    int64_t channel_bricks = (inputChannels + kBrickSize - 1) / kBrickSize;
    return static_cast<int64_t>(filterX) * filterY * channel_bricks;
}

int64_t
ConvLayerSpec::inputNeurons() const
{
    return static_cast<int64_t>(inputX) * inputY * inputChannels;
}

fixedpoint::PrecisionWindow
ConvLayerSpec::precisionWindow(int anchor_lsb) const
{
    fixedpoint::PrecisionWindow window;
    window.lsb = anchor_lsb;
    window.msb = std::min(15, anchor_lsb + profiledPrecision - 1);
    return window;
}

bool
ConvLayerSpec::valid() const
{
    if (inputX <= 0 || inputY <= 0 || inputChannels <= 0)
        return false;
    if (filterX <= 0 || filterY <= 0 || numFilters <= 0)
        return false;
    if (stride <= 0 || pad < 0)
        return false;
    if (filterX > inputX + 2 * pad || filterY > inputY + 2 * pad)
        return false;
    if ((inputX + 2 * pad - filterX) % stride != 0 &&
        outX() <= 0)
        return false;
    if (profiledPrecision < 1 || profiledPrecision > 16)
        return false;
    return outX() > 0 && outY() > 0;
}

} // namespace dnn
} // namespace pra
