#include "dnn/weight_synth.h"

#include <array>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "dnn/activation_synth.h"
#include "dnn/propagate.h"
#include "util/check.h"

namespace pra {
namespace dnn {

namespace {

/** synthesizeFilters()'s default weight range; the propagated codes
 * must replay exactly the weights the forward pass convolved (the
 * weight-synth test pins this against a direct materialization). */
constexpr int kReferenceWeightRange = 255;

/**
 * The calibrated synthetic weight-code distribution for one profiled
 * weight precision, built once per process (thread-safe, lazy — so a
 * precision nobody prices never pays calibration or warns).
 */
const DiscreteExponential &
weightDistribution(int wp)
{
    PRA_CHECK(wp >= 1 && wp <= 16,
              "weightDistribution: precision out of range");
    static std::array<std::once_flag, 17> once;
    static std::array<std::optional<DiscreteExponential>, 17> cache;
    std::call_once(once[wp], [wp] {
        const uint32_t max_code = (1u << wp) - 1;
        cache[wp].emplace(
            calibrateLambda(max_code, kWeightPopcountTarget),
            max_code);
    });
    return *cache[wp];
}

/** The RNG seed synthesizeFilters() derives for @p layer. */
uint64_t
referenceFilterSeed(const LayerSpec &layer, uint64_t synth_seed)
{
    return (synth_seed ^ kPropagationFilterSalt) ^
           util::fnv1a(layer.name);
}

} // namespace

void
synthesizeWeightCodes(const LayerSpec &layer, int filter,
                      std::span<uint16_t> out)
{
    PRA_CHECK(layer.priced(),
              "synthesizeWeightCodes: pool layers carry no weights");
    PRA_CHECK(filter >= 0 && filter < layer.numFilters,
              "synthesizeWeightCodes: filter out of range");
    PRA_CHECK(static_cast<int64_t>(out.size()) ==
                  layer.synapsesPerFilter(),
              "synthesizeWeightCodes: wrong code-buffer length");
    const DiscreteExponential &dist =
        weightDistribution(layer.profiledWeightPrecision);
    // Counter-seeded per (layer, precision, filter): any filter's
    // codes are reproducible without generating its predecessors.
    uint64_t h = util::fnv1a(layer.name, kWeightStreamSeed);
    h = util::fnv1aMix(
        h, static_cast<uint64_t>(layer.profiledWeightPrecision));
    h = util::fnv1aMix(h, static_cast<uint64_t>(filter));
    util::Xoshiro256 rng(h);
    for (uint16_t &code : out) {
        if (rng.nextBool(kWeightZeroFraction)) {
            code = 0;
            continue;
        }
        code = static_cast<uint16_t>(dist.sample(rng));
    }
}

PropagatedWeightCodes::PropagatedWeightCodes(const LayerSpec &layer,
                                             uint64_t synth_seed)
    : layer_(layer), rng_(referenceFilterSeed(layer, synth_seed))
{
    PRA_CHECK(layer_.priced(),
              "PropagatedWeightCodes: pool layers carry no weights");
    // Pass 1: replay the whole weight stream once to find the layer
    // max magnitude — the anchor that maps |w| onto the profiled
    // weight window. Pass 2 (filterCodes) replays it again filter by
    // filter, so peak memory stays one filter.
    util::Xoshiro256 scan(referenceFilterSeed(layer_, synth_seed));
    const int64_t total =
        layer_.synapsesPerFilter() * layer_.numFilters;
    int max_mag = 0;
    for (int64_t i = 0; i < total; i++) {
        int v = static_cast<int>(scan.nextInRange(
            -kReferenceWeightRange, kReferenceWeightRange));
        max_mag = std::max(max_mag, std::abs(v));
    }
    maxMag_ = max_mag;
}

void
PropagatedWeightCodes::filterCodes(int filter, std::span<uint16_t> out)
{
    PRA_CHECK(filter == nextFilter_,
              "PropagatedWeightCodes: filters must stream in order");
    PRA_CHECK(static_cast<int64_t>(out.size()) ==
                  layer_.synapsesPerFilter(),
              "PropagatedWeightCodes: wrong code-buffer length");
    nextFilter_++;
    const uint32_t max_code =
        (1u << layer_.profiledWeightPrecision) - 1;
    const double scale =
        maxMag_ > 0 ? static_cast<double>(max_code) / maxMag_ : 0.0;
    for (uint16_t &code : out) {
        int v = static_cast<int>(rng_.nextInRange(
            -kReferenceWeightRange, kReferenceWeightRange));
        code = static_cast<uint16_t>(
            std::llround(std::abs(v) * scale));
    }
}

} // namespace dnn
} // namespace pra
