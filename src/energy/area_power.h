/**
 * @file
 * Area and power model (paper Section VI-B2, VI-C2, VI-D;
 * Tables III and IV).
 *
 * The paper obtains area and power from Synopsys Design Compiler
 * synthesis on TSMC 65 nm plus CACTI/Destiny for the memories. That
 * flow is not reproducible offline, so this module is calibrated to
 * the paper's published component totals (see DESIGN.md §3):
 *
 *  - the published per-design unit areas and chip powers are the
 *    model's anchor points;
 *  - the memory area (NM + SB + buffers) is derived from the
 *    published numbers as chipArea - 16 * unitArea, constant
 *    ~65.2 mm^2 across designs — a strong internal consistency check;
 *  - column-sync SSRs add a fitted ~0.047 mm^2 per register per unit,
 *    matching Table IV to within rounding;
 *  - chip power splits into a constant memory share plus 16 unit
 *    shares, with the memory share a documented calibration choice.
 *
 * Energy efficiency (Figure 11) combines these powers with the cycle
 * counts *our* simulator measures: eff = E_base / E_new =
 * speedup * P_base / P_new.
 */

#pragma once

#include <string>

namespace pra {
namespace energy {

/** Area/power summary of one design point. */
struct AreaPower
{
    std::string design;
    double unitArea = 0.0;  ///< One tile's logic, mm^2 (excl. SB/NB).
    double chipArea = 0.0;  ///< 16 units + all memory blocks, mm^2.
    double chipPower = 0.0; ///< Total chip power, W.
};

/** Memory blocks' (NM + SB + NBin/NBout) area in mm^2 (~65.2). */
double memoryArea();

/**
 * Fraction of DaDN's chip power attributed to the memory blocks;
 * a calibration constant documented in DESIGN.md.
 */
double memoryPowerShare();

/** Memory blocks' power in W (constant across designs). */
double memoryPower();

/** DaDianNao baseline. */
AreaPower dadnAreaPower();

/** Stripes. */
AreaPower stripesAreaPower();

/**
 * Pragmatic with pallet synchronization and first-stage shifter
 * width @p first_stage_bits (0..4; 4 = single-stage PRA).
 */
AreaPower pragmaticPalletAreaPower(int first_stage_bits);

/**
 * Pragmatic-2b with per-column synchronization and @p ssr_count
 * synapse set registers (anchored at the published 1/4/16 points,
 * linear in between/beyond).
 */
AreaPower pragmaticColumnAreaPower(int first_stage_bits, int ssr_count);

/** Fitted incremental unit area of one SSR, mm^2. */
double ssrUnitArea();

/**
 * Relative energy efficiency of a design against a baseline:
 * (P_base * C_base) / (P_new * C_new) = speedup * P_base / P_new.
 */
double energyEfficiency(double speedup, double base_power,
                        double new_power);

} // namespace energy
} // namespace pra

