/**
 * @file
 * Bottom-up datapath area decomposition.
 *
 * A first-principles estimate of each design's unit (tile logic)
 * area from gate-level primitives: full-adder bits, AND gates, 2:1
 * mux bits (shifter stages) and register bits, with a global
 * routing/control overhead factor normalized so that the DaDianNao
 * unit lands on its published 1.55 mm^2.
 *
 * This model is *secondary*: the benches report the published-anchor
 * model of area_power.h, while this decomposition documents where the
 * area goes and lets the ablation bench explore unpublished design
 * points (e.g. wider bricks). Tests assert it tracks the published
 * per-design ratios to within a generous tolerance — it is an
 * estimate, not a synthesis flow.
 */

#pragma once

namespace pra {
namespace energy {

/** Gate-level primitive areas in um^2 (65 nm, routed). */
struct PrimitiveCosts
{
    double faBit = 10.0;   ///< Full-adder bit including routing.
    double andBit = 1.5;   ///< AND gate per bit.
    double muxBit = 4.0;   ///< 2:1 mux bit (one shifter stage bit).
    double regBit = 6.0;   ///< Flip-flop bit.
    /** Global routing/control overhead multiplier. */
    double overhead = 1.48;
};

/** Adder-tree width after the first level for @p input_bits inputs. */
int pipTreeWidth(int first_stage_bits);

/** One 16x16 bit-parallel multiplier, um^2. */
double multiplier16Area(const PrimitiveCosts &costs = {});

/** One 16-input adder tree of @p width bits, um^2. */
double adderTreeArea(int inputs, int width,
                     const PrimitiveCosts &costs = {});

/** One Stripes serial inner-product unit (16 lanes), um^2. */
double stripesSipArea(const PrimitiveCosts &costs = {});

/**
 * One Pragmatic inner-product unit with first-stage shifters of
 * @p first_stage_bits bits (Figures 6 and 7a), um^2.
 */
double pragmaticPipArea(int first_stage_bits,
                        const PrimitiveCosts &costs = {});

/** One synapse set register (256 synapses x 16 bits), um^2. */
double ssrComponentArea(const PrimitiveCosts &costs = {});

/** DaDianNao unit (256 multipliers + 16 trees + pipeline), mm^2. */
double dadnUnitAreaEstimate(const PrimitiveCosts &costs = {});

/** Stripes unit (256 SIPs), mm^2. */
double stripesUnitAreaEstimate(const PrimitiveCosts &costs = {});

/** Pragmatic unit (256 PIPs + column control), mm^2. */
double pragmaticUnitAreaEstimate(int first_stage_bits,
                                 const PrimitiveCosts &costs = {});

} // namespace energy
} // namespace pra

