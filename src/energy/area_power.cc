#include "energy/area_power.h"

#include <array>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace energy {

namespace {

/**
 * Published Table III anchors (pallet synchronization):
 * unit area [mm^2] and chip power [W] for DDN, STR and PRA 0b..4b.
 */
struct Anchor
{
    const char *name;
    double unitArea;
    double chipPower;
};

constexpr Anchor kDadn = {"DaDN", 1.55, 18.8};
constexpr Anchor kStripes = {"Stripes", 3.05, 30.2};
constexpr std::array<Anchor, 5> kPragmaticPallet = {{
    {"PRA-0b", 3.11, 31.4},
    {"PRA-1b", 3.16, 34.5},
    {"PRA-2b", 3.54, 38.2},
    {"PRA-3b", 4.41, 43.8},
    {"PRA-4b", 5.75, 51.6},
}};

/**
 * Published Table IV anchors (column synchronization, PRA-2b):
 * SSR count -> (unit area, chip power).
 */
constexpr std::array<std::pair<int, Anchor>, 3> kPragmaticColumn = {{
    {1, {"PRA-2b-1R", 3.58, 38.8}},
    {4, {"PRA-2b-4R", 3.73, 40.8}},
    {16, {"PRA-2b-16R", 4.33, 49.1}},
}};

constexpr double kMemoryArea = 65.2;     // Derived: chip - 16*unit.
constexpr double kMemoryPowerShare = 0.45; // Calibration choice.
constexpr int kUnits = 16;

AreaPower
fromAnchor(const Anchor &anchor)
{
    AreaPower ap;
    ap.design = anchor.name;
    ap.unitArea = anchor.unitArea;
    ap.chipArea = kUnits * anchor.unitArea + kMemoryArea;
    ap.chipPower = anchor.chipPower;
    return ap;
}

} // namespace

double
memoryArea()
{
    return kMemoryArea;
}

double
memoryPowerShare()
{
    return kMemoryPowerShare;
}

double
memoryPower()
{
    return kMemoryPowerShare * kDadn.chipPower;
}

AreaPower
dadnAreaPower()
{
    return fromAnchor(kDadn);
}

AreaPower
stripesAreaPower()
{
    return fromAnchor(kStripes);
}

AreaPower
pragmaticPalletAreaPower(int first_stage_bits)
{
    PRA_CHECK(first_stage_bits >= 0 && first_stage_bits <= 4,
                         "pragmaticPalletAreaPower: bad L");
    return fromAnchor(kPragmaticPallet[first_stage_bits]);
}

double
ssrUnitArea()
{
    // Fitted from Table IV: (4.33 - 3.58) / (16 - 1) mm^2 per SSR.
    return (kPragmaticColumn[2].second.unitArea -
            kPragmaticColumn[0].second.unitArea) /
           (kPragmaticColumn[2].first - kPragmaticColumn[0].first);
}

AreaPower
pragmaticColumnAreaPower(int first_stage_bits, int ssr_count)
{
    PRA_CHECK(first_stage_bits >= 0 && first_stage_bits <= 4,
                         "pragmaticColumnAreaPower: bad L");
    PRA_CHECK(ssr_count >= 1,
                         "pragmaticColumnAreaPower: need >= 1 SSR");

    // Exact published anchors for the evaluated PRA-2b points.
    if (first_stage_bits == 2) {
        for (const auto &[count, anchor] : kPragmaticColumn)
            if (count == ssr_count)
                return fromAnchor(anchor);
    }

    // Otherwise compose: pallet-sync datapath + per-column control
    // overhead + linear SSR area, with power interpolated the same
    // way Table IV relates to Table III for PRA-2b.
    AreaPower base = pragmaticPalletAreaPower(first_stage_bits);
    const Anchor &ref_pallet = kPragmaticPallet[2];
    const Anchor &ref_1r = kPragmaticColumn[0].second;
    double control_area = ref_1r.unitArea - ref_pallet.unitArea -
                          ssrUnitArea(); // 1R includes one SSR.
    double power_per_ssr =
        (kPragmaticColumn[2].second.chipPower - ref_1r.chipPower) /
        (kPragmaticColumn[2].first - kPragmaticColumn[0].first);
    double control_power = ref_1r.chipPower - ref_pallet.chipPower -
                           power_per_ssr;

    AreaPower ap;
    ap.design = "PRA-" + std::to_string(first_stage_bits) + "b-" +
                std::to_string(ssr_count) + "R";
    ap.unitArea = base.unitArea + control_area +
                  ssrUnitArea() * ssr_count;
    ap.chipArea = kUnits * ap.unitArea + kMemoryArea;
    ap.chipPower = base.chipPower + control_power +
                   power_per_ssr * ssr_count;
    return ap;
}

double
energyEfficiency(double speedup, double base_power, double new_power)
{
    PRA_CHECK(speedup > 0.0 && base_power > 0.0 &&
                             new_power > 0.0,
                         "energyEfficiency: non-positive inputs");
    return speedup * base_power / new_power;
}

} // namespace energy
} // namespace pra
