/**
 * @file
 * Per-access memory energy, fed by the memory model's byte counts.
 *
 * The area/power model (energy/area_power.h) anchors *compute* power
 * to the paper's published totals; this module adds the data-movement
 * side the paper never priced: every byte the memory model counts
 * (sim/memory/memory_model.h) costs a per-byte energy at its level
 * of the hierarchy. The default costs are 65 nm-class literature
 * values (scratchpad SRAM ~0.1 pJ/byte-class, eDRAM global buffer
 * ~1 pJ/byte-class, off-chip DRAM tens of pJ/byte) — calibration
 * choices documented in docs/ARCHITECTURE.md, not synthesis results.
 *
 * Sign of health: off-chip bytes dominate layer energy whenever a
 * layer spills the global buffer (the FC tails), which is exactly
 * the effect the ROADMAP's memory item asked the repo to expose.
 */

#pragma once

#include "sim/layer_result.h"

namespace pra {
namespace energy {

/** Per-byte access energies in pJ (65 nm-class defaults). */
struct MemoryAccessCosts
{
    /** Global buffer (NM-class eDRAM/SRAM), per byte moved. */
    double gbPerByte = 1.2;
    /**
     * Scratchpad (NBin/SB-class SRAM), per byte moved. Every
     * global-buffer byte is also written into and read out of a
     * scratchpad, so this is charged twice per on-chip byte.
     */
    double spadPerByte = 0.12;
    /** Off-chip DRAM channel, per byte moved. */
    double dramPerByte = 20.0;
};

/** Energy breakdown of one layer's (or network's) data movement. */
struct MemoryEnergy
{
    double globalBufferPJ = 0.0;
    double scratchpadPJ = 0.0;
    double dramPJ = 0.0;

    double totalPJ() const
    {
        return globalBufferPJ + scratchpadPJ + dramPJ;
    }
};

/**
 * Energy of moving @p on_chip_bytes through the global buffer and
 * scratchpads plus @p off_chip_bytes across the DRAM channel.
 */
MemoryEnergy memoryAccessEnergy(double on_chip_bytes,
                                double off_chip_bytes,
                                const MemoryAccessCosts &costs = {});

/**
 * Energy of one finished layer result; the result must carry live
 * memory columns (LayerResult::memoryModeled — panic otherwise).
 */
MemoryEnergy layerMemoryEnergy(const sim::LayerResult &result,
                               const MemoryAccessCosts &costs = {});

/** Sum of layerMemoryEnergy over a network result's layers. */
MemoryEnergy networkMemoryEnergy(const sim::NetworkResult &result,
                                 const MemoryAccessCosts &costs = {});

} // namespace energy
} // namespace pra

