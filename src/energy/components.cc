#include "energy/components.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace energy {

namespace {

constexpr int kLanes = 16;   // Neuron/synapse lanes per IP unit.
constexpr int kIpUnits = 256; // Inner-product units per tile.

} // namespace

int
pipTreeWidth(int first_stage_bits)
{
    // Section V-D: terms of 16 + 2^L - 1 bits only.
    return 16 + (1 << first_stage_bits) - 1;
}

double
multiplier16Area(const PrimitiveCosts &costs)
{
    // 16x16 partial-product array with carry-save reduction; the 1.4
    // factor covers the Booth/encoding and final carry-propagate row.
    return 16.0 * 16.0 * costs.faBit * 1.4;
}

double
adderTreeArea(int inputs, int width, const PrimitiveCosts &costs)
{
    PRA_CHECK(inputs >= 2 && width > 0,
                         "adderTreeArea: bad shape");
    // inputs-1 adders; widths grow one bit per level, approximated by
    // width + 2 average.
    return (inputs - 1) * (width + 2.0) * costs.faBit;
}

double
stripesSipArea(const PrimitiveCosts &costs)
{
    double and_gates = kLanes * 16.0 * costs.andBit;
    double tree = adderTreeArea(kLanes, 16, costs);
    double accumulator = 32.0 * costs.faBit + 32.0 * costs.regBit +
                         32.0 * costs.muxBit; // add + reg + shift mux.
    double synapse_regs = kLanes * 16.0 * costs.regBit;
    return and_gates + tree + accumulator + synapse_regs;
}

double
pragmaticPipArea(int first_stage_bits, const PrimitiveCosts &costs)
{
    PRA_CHECK(first_stage_bits >= 0 && first_stage_bits <= 4,
                         "pragmaticPipArea: bad L");
    int w = pipTreeWidth(first_stage_bits);
    double stage1 = kLanes * first_stage_bits * w * costs.muxBit;
    double and_gates = kLanes * 16.0 * costs.andBit;
    double neg = kLanes * w * costs.andBit; // 2's-complement negate.
    double tree = adderTreeArea(kLanes, w, costs);
    double stage2 = first_stage_bits < 4
                        ? 4.0 * (w + 19.0) * costs.muxBit
                        : 0.0; // Single-stage design has no stage 2.
    double accumulator = 32.0 * costs.faBit + 32.0 * costs.regBit;
    double synapse_regs = kLanes * 16.0 * costs.regBit;
    return stage1 + and_gates + neg + tree + stage2 + accumulator +
           synapse_regs;
}

double
ssrComponentArea(const PrimitiveCosts &costs)
{
    // 16 synapse bricks of 16 x 16-bit synapses plus the 4-bit
    // consumed-columns down counter (Section V-E).
    return (kIpUnits * 16.0 + 4.0) * costs.regBit;
}

double
dadnUnitAreaEstimate(const PrimitiveCosts &costs)
{
    double mults = kIpUnits * multiplier16Area(costs);
    double trees = kLanes * adderTreeArea(17, 32, costs);
    double pipeline = (kIpUnits * 16.0 + 2.0 * kLanes * 16.0) *
                      costs.regBit;
    return (mults + trees + pipeline) * costs.overhead / 1e6;
}

double
stripesUnitAreaEstimate(const PrimitiveCosts &costs)
{
    return kIpUnits * stripesSipArea(costs) * costs.overhead / 1e6;
}

double
pragmaticUnitAreaEstimate(int first_stage_bits,
                          const PrimitiveCosts &costs)
{
    double pips = kIpUnits * pragmaticPipArea(first_stage_bits, costs);
    // Per-column control: 16 oneffset comparators/min logic.
    double control = kLanes * (kLanes * 4.0 * costs.faBit +
                               kLanes * 4.0 * costs.regBit);
    return (pips + control) * costs.overhead / 1e6;
}

} // namespace energy
} // namespace pra
