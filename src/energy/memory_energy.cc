#include "energy/memory_energy.h"

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace energy {

MemoryEnergy
memoryAccessEnergy(double on_chip_bytes, double off_chip_bytes,
                   const MemoryAccessCosts &costs)
{
    PRA_CHECK(on_chip_bytes >= 0.0 && off_chip_bytes >= 0.0,
                         "memoryAccessEnergy: negative byte count");
    MemoryEnergy e;
    e.globalBufferPJ = on_chip_bytes * costs.gbPerByte;
    // Each on-chip byte is written into and later read out of a
    // scratchpad half (double buffering moves it exactly twice).
    e.scratchpadPJ = on_chip_bytes * 2.0 * costs.spadPerByte;
    e.dramPJ = off_chip_bytes * costs.dramPerByte;
    return e;
}

MemoryEnergy
layerMemoryEnergy(const sim::LayerResult &result,
                  const MemoryAccessCosts &costs)
{
    PRA_CHECK(result.memoryModeled,
                         "layerMemoryEnergy: result has no memory "
                         "columns (run with --memory enabled)");
    return memoryAccessEnergy(result.onChipBytes, result.offChipBytes,
                              costs);
}

MemoryEnergy
networkMemoryEnergy(const sim::NetworkResult &result,
                    const MemoryAccessCosts &costs)
{
    MemoryEnergy total;
    for (const auto &layer : result.layers) {
        MemoryEnergy e = layerMemoryEnergy(layer, costs);
        total.globalBufferPJ += e.globalBufferPJ;
        total.scratchpadPJ += e.scratchpadPJ;
        total.dramPJ += e.dramPJ;
    }
    return total;
}

} // namespace energy
} // namespace pra
