/**
 * @file
 * Dynamic-Stripes (DS) cycle model: Stripes' bit-serial datapath with
 * the per-layer profiled precision replaced by *runtime* per-group
 * precision detection (DNNsim's DynamicStripes: PRECISION_GRANULARITY,
 * COLUMN_REGISTERS, LEADING_BIT, and the Diffy spatial-difference
 * front end).
 *
 * Execution follows the shared pass/pallet/synapse-set tiling
 * (sim/tiling.h). Per synapse set, the windows of a pallet are carved
 * into groups of `groupColumns` adjacent columns; each group's
 * detector ORs the 16 lanes of every member column's neuron brick
 * (exactly the orMask plane of sim/operand_planes.h) and streams the
 * group for fixedpoint::dynamicPrecision(mask, leadingBit) cycles —
 * the span between the group's leading and trailing set bits, or
 * everything under the leading bit when only that is detected.
 *
 * Synchronization across groups:
 *  - columnRegisters == 0: lockstep — every group waits for the
 *    pallet's slowest group each set (a per-set SB read floor of one
 *    cycle applies, as in the Pragmatic tile model);
 *  - columnRegisters == R >= 1: each group run-ahead buffers up to R
 *    sets; group g may start set s only once the pallet's slowest
 *    group has finished set s - R (the register that would hold
 *    set s is recycled from it).
 *
 * Variants:
 *  - leadingBit: detect only the group's leading bit (trailing zeros
 *    still stream);
 *  - diffy: the detector sees the spatial x-difference stream
 *    |a(x, y, c) - a(x-1, y, c)| (x == 0 columns keep their raw
 *    value), shrinking magnitudes in smooth feature maps;
 *  - layerWide: degenerate static configuration — one group spanning
 *    the whole layer. With leadingBit off this is *exactly* Stripes
 *    at the profiled precision (the validation-twin identity the
 *    tests pin); with leadingBit on, the precision widens to the top
 *    of the synthesis window (profiled precision + anchor — the
 *    layer-wide worst case a leading-bit-only detector latches).
 *    Value-independent, so the engine adapter declares no input
 *    stream; diffy and column registers don't apply.
 *
 * Effectual terms count the streamed bit-slices: per set and column,
 * (group precision) x (real channel lanes of the brick), times the
 * filter count — the DS analogue of Stripes' products() x precision.
 */

#pragma once

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"
#include "util/thread_pool.h"

namespace pra {
namespace models {

/** Dynamic-Stripes variant knobs (see file comment). */
struct DynamicStripesConfig
{
    /** Static layer-wide precision (the Stripes twin); the runtime
     * knobs below don't apply (diffy/columnRegisters rejected). */
    bool layerWide = false;
    /** Columns per runtime precision group; must divide the
     * machine's windowsPerPallet. */
    int groupColumns = 16;
    /** Per-group run-ahead registers (0 = lockstep pallet sync). */
    int columnRegisters = 0;
    /** Detect only the leading bit (trailing zeros still stream). */
    bool leadingBit = false;
    /** Detect over the spatial-difference stream (Diffy front end). */
    bool diffy = false;
};

/**
 * Price one layer from its input tensor (tensor path: every brick
 * mask rederived through the shared summarizeBrick reduction).
 */
sim::LayerResult
simulateLayerDynamicStripes(const dnn::LayerSpec &layer,
                            const dnn::NeuronTensor &input,
                            const sim::AccelConfig &accel,
                            const DynamicStripesConfig &config,
                            const sim::SampleSpec &sample);

/**
 * Same result from a shared workload (plane path: brick masks served
 * from the workload's orMask plane when the machine's lanes match
 * kBrickSize). Bit-identical to the tensor overload.
 */
sim::LayerResult
simulateLayerDynamicStripes(const dnn::LayerSpec &layer,
                            const sim::LayerWorkload &workload,
                            const sim::AccelConfig &accel,
                            const DynamicStripesConfig &config,
                            const sim::SampleSpec &sample,
                            const util::InnerExecutor &exec);

} // namespace models
} // namespace pra
