/**
 * @file
 * Engine-registry adapter for Dynamic-Stripes (kind "dynamic_stripes").
 *
 * Knobs:
 *   granularity=N|layer
 *                columns per runtime precision-detection group
 *                (default 16); must be a positive divisor of the
 *                machine's windowsPerPallet. "layer" selects the
 *                static layer-wide configuration — exactly Stripes at
 *                the profiled precision — which is value-independent
 *                and rejects diffy and column registers.
 *   column-regs=N
 *                per-group run-ahead registers (default 0 = lockstep).
 *   leading-bit=0|1
 *                detect only the group's leading bit (default 0).
 *   diffy=0|1    detect over the spatial-difference stream (default 0).
 */

#pragma once

#include "models/dynamic_stripes/dynamic_stripes.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** Dynamic-Stripes behind the uniform Engine interface. */
class DynamicStripesEngine : public sim::Engine
{
  public:
    explicit DynamicStripesEngine(const sim::EngineKnobs &knobs);

    std::string kind() const override { return "dynamic_stripes"; }
    std::string name() const override;
    sim::InputStream inputStream() const override;

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const sim::LayerWorkload &workload,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample,
                  const util::InnerExecutor &exec) const override;

  private:
    DynamicStripesConfig config_;
};

} // namespace models
} // namespace pra
