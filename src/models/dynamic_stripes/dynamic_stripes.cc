#include "models/dynamic_stripes/dynamic_stripes.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include "dnn/activation_synth.h"
#include "fixedpoint/fixed_point.h"
#include "models/pragmatic/brick_cost.h"
#include "models/stripes/stripes.h"
#include "sim/operand_planes.h"
#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

/** Exact per-block accumulators (combine in block order). */
struct DsPartial
{
    int64_t processCycles = 0;
    int64_t terms = 0;
};

/**
 * The Diffy front end: each column's detector input is the absolute
 * spatial x-difference against the previous column (x == 0 keeps the
 * raw value). Magnitude codes, so the difference is taken on the
 * integer values.
 */
dnn::NeuronTensor
diffyTransform(const dnn::NeuronTensor &input)
{
    dnn::NeuronTensor out(input.sizeX(), input.sizeY(), input.sizeI());
    for (int y = 0; y < input.sizeY(); y++)
        for (int x = 0; x < input.sizeX(); x++)
            for (int i = 0; i < input.sizeI(); i++) {
                int v = input.at(x, y, i);
                if (x > 0)
                    v -= input.at(x - 1, y, i);
                out.at(x, y, i) = static_cast<uint16_t>(std::abs(v));
            }
    return out;
}

/**
 * Per-brick detector masks: the shared orMask plane when one
 * applies, else the same reduction over a zero-copy brick view
 * (bit-identical by construction — summarizeBrick is the single
 * reduction both paths share).
 */
class MaskSource
{
  public:
    MaskSource(const sim::LayerTiling &tiling,
               const dnn::NeuronTensor &src,
               const sim::BrickPlanes *planes)
        : tiling_(tiling), src_(src), planes_(planes)
    {
    }

    uint16_t
    mask(const sim::WindowCoord &w, const sim::SynapseSetCoord &s) const
    {
        if (planes_) {
            const dnn::LayerSpec &layer = tiling_.layer();
            int x = w.x * layer.stride - layer.pad + s.fx;
            int y = w.y * layer.stride - layer.pad + s.fy;
            if (x < 0 || x >= layer.inputX || y < 0 ||
                y >= layer.inputY)
                return 0;
            return planes_->orMask[planes_->index(
                x, y, s.brickI / dnn::kBrickSize)];
        }
        return sim::summarizeBrick(tiling_.gatherBrickView(src_, w, s))
            .orMask;
    }

  private:
    const sim::LayerTiling &tiling_;
    const dnn::NeuronTensor &src_;
    const sim::BrickPlanes *planes_;
};

/**
 * The static layer-wide configuration: exactly Stripes at the
 * profiled precision, or — leading-bit-only detection — at the top
 * of the synthesis window (see the header comment).
 */
sim::LayerResult
layerWideResult(const dnn::LayerSpec &layer,
                const sim::AccelConfig &accel,
                const DynamicStripesConfig &config)
{
    int precision = layer.profiledPrecision;
    if (config.leadingBit)
        precision = std::min(16, dnn::synthesisAnchor(layer) +
                                     layer.profiledPrecision);
    return StripesModel(accel).layerResult(layer, precision);
}

sim::LayerResult
simulateImpl(const dnn::LayerSpec &layer,
             const dnn::NeuronTensor &input,
             const sim::LayerWorkload *workload,
             const sim::AccelConfig &accel,
             const DynamicStripesConfig &config,
             const sim::SampleSpec &sample,
             const util::InnerExecutor &exec)
{
    if (config.layerWide)
        return layerWideResult(layer, accel, config);

    const int wpp = accel.windowsPerPallet;
    const int gc = config.groupColumns;
    if (gc < 1 || wpp % gc != 0)
        util::fatal("dynamic_stripes: granularity must be a positive "
                    "divisor of windowsPerPallet (" +
                    std::to_string(wpp) + "); got " +
                    std::to_string(gc));
    const int regs = config.columnRegisters;
    PRA_CHECK(regs >= 0, "dynamic_stripes: negative column registers");

    sim::LayerTiling tiling(layer, accel);
    sim::SamplePlan plan = sim::planSample(tiling.numPallets(), sample);
    PRA_CHECK(!plan.indices.empty(),
              "dynamic_stripes: layer has no pallets");
    const int64_t num_sets = tiling.numSynapseSets();

    // The detector input: the raw stream, or its Diffy difference.
    // Diffy masks summarize a *different* tensor than the shared
    // workload planes, so the plane path rebuilds them locally.
    const dnn::NeuronTensor *src = &input;
    dnn::NeuronTensor diffed;
    std::optional<sim::BrickPlanes> local_planes;
    const sim::LayerWorkload *plane_source = workload;
    if (config.diffy) {
        diffed = diffyTransform(input);
        src = &diffed;
        plane_source = nullptr;
    }
    BrickCostContext ctx(tiling, *src, plane_source,
                         kMaxFirstStageBits);
    const sim::BrickPlanes *planes = ctx.planes();
    if (config.diffy && accel.neuronLanes == dnn::kBrickSize) {
        local_planes = sim::buildBrickPlanes(diffed);
        planes = &*local_planes;
    }
    MaskSource masks(tiling, *src, planes);
    const std::vector<sim::SynapseSetCoord> &set_coords =
        ctx.setCoords();

    const int64_t num_units = static_cast<int64_t>(plan.indices.size());
    const int blocks = exec.blockCount(num_units);
    std::vector<DsPartial> partials(
        static_cast<size_t>(std::max(blocks, 1)));

    // Pallets are independent (the run-ahead window resets at a
    // pallet boundary), so contiguous pallet blocks accumulate exact
    // partials that combine to the serial result.
    exec.forEachBlock(blocks, [&](int block) {
        auto [lo, hi] = util::InnerExecutor::blockRange(num_units,
                                                        blocks, block);
        DsPartial acc;
        std::vector<sim::WindowCoord> col_coords(
            static_cast<size_t>(wpp));
        std::vector<int> group_prec(static_cast<size_t>(wpp / gc));
        std::vector<int64_t> finish(group_prec.size());
        std::vector<int64_t> ring(static_cast<size_t>(
            std::max(regs, 1)));
        for (int64_t pi = lo; pi < hi; pi++) {
            int64_t pallet = plan.indices[static_cast<size_t>(pi)];
            const int active = tiling.windowsInPallet(pallet);
            for (int c = 0; c < active; c++)
                col_coords[static_cast<size_t>(c)] = tiling.windowCoord(
                    tiling.windowIndex(pallet, c));
            // Groups past the active prefix have no columns (only the
            // layer's last pallet is partial) and never gate anyone.
            const int groups = (active + gc - 1) / gc;
            std::fill(finish.begin(), finish.end(), int64_t{0});
            std::fill(ring.begin(), ring.end(), int64_t{0});
            int64_t pallet_done = 0;
            for (int64_t s = 0; s < num_sets; s++) {
                const sim::SynapseSetCoord &sc =
                    set_coords[static_cast<size_t>(s)];
                const int real_lanes =
                    std::min(accel.neuronLanes,
                             layer.inputChannels - sc.brickI);
                for (int g = 0; g < groups; g++) {
                    const int first = g * gc;
                    const int last = std::min(first + gc, active);
                    uint16_t m = 0;
                    for (int c = first; c < last; c++)
                        m |= masks.mask(
                            col_coords[static_cast<size_t>(c)], sc);
                    const int p = fixedpoint::dynamicPrecision(
                        m, config.leadingBit);
                    group_prec[static_cast<size_t>(g)] = p;
                    // Every member column streams the group's
                    // precision over the brick's real lanes.
                    acc.terms += static_cast<int64_t>(p) * real_lanes *
                                 (last - first);
                }
                if (regs == 0) {
                    // Lockstep: the pallet advances at its slowest
                    // group; even an all-zero step holds the
                    // pipeline for the SB read cycle.
                    int step = 0;
                    for (int g = 0; g < groups; g++)
                        step = std::max(
                            step, group_prec[static_cast<size_t>(g)]);
                    acc.processCycles += std::max(1, step);
                } else {
                    // Run-ahead: group g may start set s once the
                    // slowest group finished set s - regs (its
                    // register frees up then).
                    int64_t gate =
                        s >= regs
                            ? ring[static_cast<size_t>(s % regs)]
                            : 0;
                    int64_t slowest = 0;
                    for (int g = 0; g < groups; g++) {
                        size_t gi = static_cast<size_t>(g);
                        finish[gi] =
                            std::max(finish[gi], gate) +
                            std::max(1, group_prec[gi]);
                        slowest = std::max(slowest, finish[gi]);
                    }
                    ring[static_cast<size_t>(s % regs)] = slowest;
                    pallet_done = slowest;
                }
            }
            if (regs > 0)
                acc.processCycles += pallet_done;
        }
        partials[static_cast<size_t>(block)] = acc;
    });

    DsPartial total;
    for (const DsPartial &partial : partials) {
        total.processCycles += partial.processCycles;
        total.terms += partial.terms;
    }

    sim::LayerResult result;
    result.layerName = layer.name;
    result.engineName = "DynamicStripes";
    result.sampleScale = plan.scale;
    double passes = static_cast<double>(tiling.passes());
    result.cycles = passes * plan.scale *
                    static_cast<double>(total.processCycles);
    result.effectualTerms = plan.scale *
                            static_cast<double>(total.terms) *
                            layer.numFilters;
    // One SB read per pallet step, as in every pallet-synced model.
    result.sbReadSteps = passes *
                         static_cast<double>(tiling.numPallets()) *
                         static_cast<double>(num_sets);
    return result;
}

} // namespace

sim::LayerResult
simulateLayerDynamicStripes(const dnn::LayerSpec &layer,
                            const dnn::NeuronTensor &input,
                            const sim::AccelConfig &accel,
                            const DynamicStripesConfig &config,
                            const sim::SampleSpec &sample)
{
    return simulateImpl(layer, input, nullptr, accel, config, sample,
                        util::InnerExecutor());
}

sim::LayerResult
simulateLayerDynamicStripes(const dnn::LayerSpec &layer,
                            const sim::LayerWorkload &workload,
                            const sim::AccelConfig &accel,
                            const DynamicStripesConfig &config,
                            const sim::SampleSpec &sample,
                            const util::InnerExecutor &exec)
{
    return simulateImpl(layer, workload.tensor(), &workload, accel,
                        config, sample, exec);
}

} // namespace models
} // namespace pra
