#include "models/dynamic_stripes/dynamic_stripes_engine.h"

#include "util/logging.h"

namespace pra {
namespace models {

DynamicStripesEngine::DynamicStripesEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs(
        "dynamic_stripes", knobs,
        {"granularity", "column-regs", "leading-bit", "diffy"});
    std::string granularity =
        sim::knobString(knobs, "granularity", "16");
    if (granularity == "layer") {
        config_.layerWide = true;
    } else {
        // Divisibility against windowsPerPallet is a property of the
        // machine, checked when a layer is priced; positivity is a
        // property of the flag and fails here.
        config_.groupColumns =
            static_cast<int>(sim::knobInt(knobs, "granularity", 16));
        if (config_.groupColumns < 1)
            util::fatal("dynamic_stripes: granularity must be a "
                        "positive column count or \"layer\"");
    }
    config_.columnRegisters =
        static_cast<int>(sim::knobInt(knobs, "column-regs", 0));
    if (config_.columnRegisters < 0)
        util::fatal("dynamic_stripes: column-regs must be >= 0");
    config_.leadingBit = sim::knobBool(knobs, "leading-bit", false);
    config_.diffy = sim::knobBool(knobs, "diffy", false);
    if (config_.layerWide && config_.diffy)
        util::fatal("dynamic_stripes: diffy needs runtime detection; "
                    "it cannot combine with granularity=layer");
    if (config_.layerWide && config_.columnRegisters > 0)
        util::fatal("dynamic_stripes: column-regs buffer runtime "
                    "groups; they cannot combine with "
                    "granularity=layer");
}

std::string
DynamicStripesEngine::name() const
{
    std::string n = config_.layerWide
                        ? "DS-layer"
                        : "DS-g" + std::to_string(config_.groupColumns);
    if (config_.columnRegisters > 0)
        n += "-r" + std::to_string(config_.columnRegisters);
    if (config_.leadingBit)
        n += "-lb";
    if (config_.diffy)
        n += "-diffy";
    return n;
}

sim::InputStream
DynamicStripesEngine::inputStream() const
{
    // The layer-wide configuration is static (profiled precisions);
    // every runtime configuration reads the trimmed value stream its
    // detectors would see.
    return config_.layerWide ? sim::InputStream::None
                             : sim::InputStream::Fixed16Trimmed;
}

sim::LayerResult
DynamicStripesEngine::simulateLayer(const dnn::LayerSpec &layer,
                                    const dnn::NeuronTensor &input,
                                    const sim::AccelConfig &accel,
                                    const sim::SampleSpec &sample) const
{
    sim::LayerResult result =
        simulateLayerDynamicStripes(layer, input, accel, config_, sample);
    result.engineName = name();
    return result;
}

sim::LayerResult
DynamicStripesEngine::simulateLayer(const dnn::LayerSpec &layer,
                                    const sim::LayerWorkload &workload,
                                    const sim::AccelConfig &accel,
                                    const sim::SampleSpec &sample,
                                    const util::InnerExecutor &exec) const
{
    sim::LayerResult result = simulateLayerDynamicStripes(
        layer, workload, accel, config_, sample, exec);
    result.engineName = name();
    return result;
}

} // namespace models
} // namespace pra
