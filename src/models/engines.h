/**
 * @file
 * The built-in engine registry: every cycle/term model in src/models
 * registered behind the sim::Engine interface.
 *
 * Kinds (see each adapter header for knobs):
 *   dadn           bit-parallel DaDianNao baseline
 *   stripes        bit-serial Stripes baseline
 *   pragmatic      Pragmatic, pallet synchronization
 *   pragmatic-col  Pragmatic, per-column synchronization (SSRs)
 *   terms          analytic term-count model (work, not cycles)
 */

#pragma once

#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** Register the five built-in engine kinds into @p registry. */
void registerBuiltinEngines(sim::EngineRegistry &registry);

/** The shared, immutable registry of built-in engines. */
const sim::EngineRegistry &builtinEngines();

/**
 * The paper's headline design points as a default sweep grid:
 * DaDN, Stripes, PRA-0b..4b (pallet) and PRA-2b-1R (column).
 */
std::vector<sim::EngineSelection> paperEngineGrid();

} // namespace models
} // namespace pra

