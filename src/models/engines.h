/**
 * @file
 * The built-in engine registry: every cycle/term model in src/models
 * registered behind the sim::Engine interface.
 *
 * Kinds (see each adapter header for knobs):
 *   dadn             bit-parallel DaDianNao baseline
 *   stripes          bit-serial Stripes baseline
 *   dynamic_stripes  Stripes with runtime per-group precision
 *   pragmatic        Pragmatic, pallet synchronization
 *   pragmatic-col    Pragmatic, per-column synchronization (SSRs)
 *   laconic          both-operand essential-bit term serialization
 *   terms            analytic term-count model (work, not cycles)
 */

#pragma once

#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** Register the built-in engine kinds into @p registry. */
void registerBuiltinEngines(sim::EngineRegistry &registry);

/** The shared, immutable registry of built-in engines. */
const sim::EngineRegistry &builtinEngines();

/**
 * The paper's headline design points as a default sweep grid:
 * DaDN, Stripes, PRA-0b..4b (pallet) and PRA-2b-1R (column).
 */
std::vector<sim::EngineSelection> paperEngineGrid();

/**
 * The historical five-kind grid "--engines=all" expands to: dadn,
 * pragmatic, pragmatic-col, stripes, terms with default knobs, in
 * registry (sorted) order. Deliberately frozen: the committed smoke
 * goldens and the CI row counts pin this expansion, so newly
 * registered kinds (dynamic_stripes, laconic) must NOT grow it —
 * select them explicitly instead.
 */
std::vector<sim::EngineSelection> coreEngineGrid();

} // namespace models
} // namespace pra

