#include "models/laconic/laconic_engine.h"

namespace pra {
namespace models {

LaconicEngine::LaconicEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs("laconic", knobs, {});
}

sim::LayerResult
LaconicEngine::simulateLayer(const dnn::LayerSpec &layer,
                             const dnn::NeuronTensor &input,
                             const sim::AccelConfig &accel,
                             const sim::SampleSpec &sample) const
{
    sim::LayerResult result =
        simulateLayerLaconic(layer, input, accel, sample);
    result.engineName = name();
    return result;
}

sim::LayerResult
LaconicEngine::simulateLayer(const dnn::LayerSpec &layer,
                             const sim::LayerWorkload &workload,
                             const sim::AccelConfig &accel,
                             const sim::SampleSpec &sample,
                             const util::InnerExecutor &exec) const
{
    sim::LayerResult result =
        simulateLayerLaconic(layer, workload, accel, sample, exec);
    result.engineName = name();
    return result;
}

} // namespace models
} // namespace pra
