/**
 * @file
 * Engine-registry adapter for Laconic (kind "laconic").
 *
 * No knobs: Laconic's datapath is fully determined by the machine
 * geometry and the two operand streams — the trimmed neuron values
 * and the per-layer profiled-precision weight codes served by the
 * shared weight-side planes.
 */

#pragma once

#include "models/laconic/laconic.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** Laconic behind the uniform Engine interface. */
class LaconicEngine : public sim::Engine
{
  public:
    explicit LaconicEngine(const sim::EngineKnobs &knobs);

    std::string kind() const override { return "laconic"; }
    std::string name() const override { return "Laconic"; }
    sim::InputStream inputStream() const override
    {
        return sim::InputStream::Fixed16Trimmed;
    }

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const sim::LayerWorkload &workload,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample,
                  const util::InnerExecutor &exec) const override;
};

} // namespace models
} // namespace pra
