/**
 * @file
 * Laconic cycle model: term-serial computation over the essential
 * bits of *both* operands (Sharify et al., "Laconic Deep Learning
 * Computing" — the both-operand endpoint of the oneffset family this
 * repo grows from Pragmatic).
 *
 * A Laconic PE decomposes a product into oneffset pairs: a neuron
 * with A set bits times a synapse with W set bits takes A x W
 * single-bit term cycles. Execution follows the shared
 * pass/pallet/synapse-set tiling: per synapse set, every (column,
 * lane, filter) unit multiplies its neuron brick lane against its
 * synapse lane, and the pallet advances when its slowest unit
 * finishes:
 *
 *   step(pallet, set) = max over columns, lanes of
 *       actPop(col, lane) x wgtMaxPop(set, lane)
 *
 * with the one-cycle SB-read floor every pallet-synced model shares.
 * wgtMaxPop is the per-(set, lane) maximum over *all* filters, so a
 * multi-pass layer prices every pass at the worst-case pass — a
 * deliberate (documented) upper-bound approximation that keeps the
 * weight planes pass-independent; effectual terms stay exact, since
 * wgtSumPop sums every filter's popcount:
 *
 *   terms += actPop(col, lane) x wgtSumPop(set, lane)
 *
 * summed over one pass (the sum already covers every filter, hence
 * every pass). Weight popcounts come from the shared weight-side
 * planes (sim/operand_planes.h): the deterministic synthetic codes,
 * or the requantized reference weights under --activations=propagated.
 */

#pragma once

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"
#include "util/thread_pool.h"

namespace pra {
namespace models {

/**
 * Price one layer from its input tensor (every neuron-brick lane
 * popcount rederived from a zero-copy brick view).
 */
sim::LayerResult
simulateLayerLaconic(const dnn::LayerSpec &layer,
                     const dnn::NeuronTensor &input,
                     const sim::AccelConfig &accel,
                     const sim::SampleSpec &sample);

/**
 * Same result from a shared workload (lane popcounts served from the
 * workload's per-lane plane when the machine's lanes match
 * kBrickSize). Bit-identical to the tensor overload.
 */
sim::LayerResult
simulateLayerLaconic(const dnn::LayerSpec &layer,
                     const sim::LayerWorkload &workload,
                     const sim::AccelConfig &accel,
                     const sim::SampleSpec &sample,
                     const util::InnerExecutor &exec);

} // namespace models
} // namespace pra
