#include "models/laconic/laconic.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "models/pragmatic/brick_cost.h"
#include "sim/operand_planes.h"
#include "sim/tiling.h"
#include "util/check.h"

namespace pra {
namespace models {

namespace {

/** Exact per-block accumulators (combine in block order). */
struct LaconicPartial
{
    int64_t processCycles = 0;
    int64_t terms = 0;
};

/**
 * Per-lane neuron popcounts of one brick: the shared per-lane plane
 * when one applies, else popcounts over a zero-copy brick view.
 * Fills @p out with the brick's real lanes and returns their count
 * (0 for a padding brick).
 */
class LanePopSource
{
  public:
    LanePopSource(const sim::LayerTiling &tiling,
                  const dnn::NeuronTensor &src,
                  const sim::LanePopPlanes *planes)
        : tiling_(tiling), src_(src), planes_(planes)
    {
    }

    int
    pops(const sim::WindowCoord &w, const sim::SynapseSetCoord &s,
         int real_lanes, uint8_t *out) const
    {
        if (planes_) {
            const dnn::LayerSpec &layer = tiling_.layer();
            int x = w.x * layer.stride - layer.pad + s.fx;
            int y = w.y * layer.stride - layer.pad + s.fy;
            if (x < 0 || x >= layer.inputX || y < 0 ||
                y >= layer.inputY)
                return 0;
            size_t base = planes_->index(
                x, y, s.brickI / dnn::kBrickSize, 0);
            std::copy_n(planes_->pop.data() + base,
                        static_cast<size_t>(real_lanes), out);
            return real_lanes;
        }
        auto view = tiling_.gatherBrickView(src_, w, s);
        for (size_t l = 0; l < view.size(); l++)
            out[l] = static_cast<uint8_t>(std::popcount(view[l]));
        return static_cast<int>(view.size());
    }

  private:
    const sim::LayerTiling &tiling_;
    const dnn::NeuronTensor &src_;
    const sim::LanePopPlanes *planes_;
};

sim::LayerResult
simulateImpl(const dnn::LayerSpec &layer,
             const dnn::NeuronTensor &input,
             const sim::LayerWorkload *workload,
             const sim::AccelConfig &accel,
             const sim::SampleSpec &sample,
             const util::InnerExecutor &exec)
{
    sim::LayerTiling tiling(layer, accel);
    sim::SamplePlan plan = sim::planSample(tiling.numPallets(), sample);
    PRA_CHECK(!plan.indices.empty(), "laconic: layer has no pallets");
    const int64_t num_sets = tiling.numSynapseSets();
    const int wpp = accel.windowsPerPallet;

    // Skipping the intermediate widths (bits = max) keeps the context
    // from touching the memoized cycle planes Laconic never reads.
    BrickCostContext ctx(tiling, input, workload, kMaxFirstStageBits);
    const std::vector<sim::SynapseSetCoord> &set_coords =
        ctx.setCoords();
    // Weight planes are lazy and unsynchronized: resolve them here,
    // before the pallet loop fans out across inner threads.
    const sim::WeightBrickPlanes &wgt = ctx.weightPlanes();
    const sim::LanePopPlanes *act_planes =
        workload && accel.neuronLanes == dnn::kBrickSize
            ? &workload->lanePopPlanes()
            : nullptr;
    LanePopSource acts(tiling, input, act_planes);

    const int64_t num_units = static_cast<int64_t>(plan.indices.size());
    const int blocks = exec.blockCount(num_units);
    std::vector<LaconicPartial> partials(
        static_cast<size_t>(std::max(blocks, 1)));

    exec.forEachBlock(blocks, [&](int block) {
        auto [lo, hi] = util::InnerExecutor::blockRange(num_units,
                                                        blocks, block);
        LaconicPartial acc;
        std::vector<sim::WindowCoord> col_coords(
            static_cast<size_t>(wpp));
        std::vector<uint8_t> pops(
            static_cast<size_t>(accel.neuronLanes));
        for (int64_t pi = lo; pi < hi; pi++) {
            int64_t pallet = plan.indices[static_cast<size_t>(pi)];
            const int active = tiling.windowsInPallet(pallet);
            for (int c = 0; c < active; c++)
                col_coords[static_cast<size_t>(c)] = tiling.windowCoord(
                    tiling.windowIndex(pallet, c));
            for (int64_t s = 0; s < num_sets; s++) {
                const sim::SynapseSetCoord &sc =
                    set_coords[static_cast<size_t>(s)];
                const int real_lanes =
                    std::min(accel.neuronLanes,
                             layer.inputChannels - sc.brickI);
                const size_t widx = wgt.index(s, 0);
                int64_t step = 0;
                for (int c = 0; c < active; c++) {
                    int n = acts.pops(
                        col_coords[static_cast<size_t>(c)], sc,
                        real_lanes, pops.data());
                    for (int l = 0; l < n; l++) {
                        const int64_t a = pops[static_cast<size_t>(l)];
                        if (a == 0)
                            continue;
                        const size_t wl =
                            widx + static_cast<size_t>(l);
                        step = std::max(step, a * wgt.maxPop[wl]);
                        acc.terms += a * wgt.sumPop[wl];
                    }
                }
                // The one-cycle SB-read floor every pallet-synced
                // model shares.
                acc.processCycles += std::max<int64_t>(1, step);
            }
        }
        partials[static_cast<size_t>(block)] = acc;
    });

    LaconicPartial total;
    for (const LaconicPartial &partial : partials) {
        total.processCycles += partial.processCycles;
        total.terms += partial.terms;
    }

    sim::LayerResult result;
    result.layerName = layer.name;
    result.engineName = "Laconic";
    result.sampleScale = plan.scale;
    double passes = static_cast<double>(tiling.passes());
    result.cycles = passes * plan.scale *
                    static_cast<double>(total.processCycles);
    // wgtSumPop already sums every filter (hence every pass), so the
    // term total takes no passes or numFilters factor.
    result.effectualTerms =
        plan.scale * static_cast<double>(total.terms);
    result.sbReadSteps = passes *
                         static_cast<double>(tiling.numPallets()) *
                         static_cast<double>(num_sets);
    return result;
}

} // namespace

sim::LayerResult
simulateLayerLaconic(const dnn::LayerSpec &layer,
                     const dnn::NeuronTensor &input,
                     const sim::AccelConfig &accel,
                     const sim::SampleSpec &sample)
{
    return simulateImpl(layer, input, nullptr, accel, sample,
                        util::InnerExecutor());
}

sim::LayerResult
simulateLayerLaconic(const dnn::LayerSpec &layer,
                     const sim::LayerWorkload &workload,
                     const sim::AccelConfig &accel,
                     const sim::SampleSpec &sample,
                     const util::InnerExecutor &exec)
{
    return simulateImpl(layer, workload.tensor(), &workload, accel,
                        sample, exec);
}

} // namespace models
} // namespace pra
