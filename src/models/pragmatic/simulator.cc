#include "models/pragmatic/simulator.h"

#include <algorithm>

#include "fixedpoint/fixed_point.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

std::string
PragmaticConfig::label() const
{
    // Built with repeated appends: the a + b + c temporary chain
    // trips GCC 12's -Wrestrict false positive (PR 105651).
    std::string name = "PRA-";
    name += std::to_string(firstStageBits);
    name += 'b';
    if (sync == SyncScheme::PerColumn) {
        if (ssrCount <= 0) {
            name += "-idealR";
        } else {
            name += '-';
            name += std::to_string(ssrCount);
            name += 'R';
        }
    }
    if (representation == Representation::Quant8)
        name += "-q8";
    if (!softwareTrim && representation == Representation::Fixed16)
        name += "-notrim";
    return name;
}

PragmaticSimulator::PragmaticSimulator(const sim::AccelConfig &accel)
    : accel_(accel)
{
    PRA_CHECK(accel_.valid(),
                         "PragmaticSimulator: invalid config");
}

sim::LayerResult
PragmaticSimulator::runLayer(const dnn::LayerSpec &layer,
                             const dnn::NeuronTensor &input,
                             const PragmaticConfig &config,
                             const sim::SampleSpec &sample) const
{
    sim::LayerResult result;
    if (config.sync == SyncScheme::Pallet) {
        PragmaticTileConfig tile;
        tile.firstStageBits = config.firstStageBits;
        tile.modelNmStalls = config.modelNmStalls;
        result = simulateLayerPalletSync(layer, input, accel_, tile,
                                         sample);
    } else {
        ColumnSyncConfig column;
        column.firstStageBits = config.firstStageBits;
        column.ssrCount = config.ssrCount;
        column.modelNmStalls = config.modelNmStalls;
        result = simulateLayerColumnSync(layer, input, accel_, column,
                                         sample);
    }
    result.engineName = config.label();
    return result;
}

sim::NetworkResult
PragmaticSimulator::run(const dnn::Network &network,
                        const PragmaticConfig &config,
                        const SimOptions &options) const
{
    dnn::ActivationSynthesizer synth(network, options.seed);
    sim::NetworkResult result;
    result.networkName = network.name;
    result.engineName = config.label();
    for (size_t i = 0; i < network.layers.size(); i++) {
        if (!network.layers[i].priced())
            continue; // Structural pools are never priced.
        dnn::NeuronTensor input;
        switch (config.representation) {
          case Representation::Fixed16:
            input = config.softwareTrim
                        ? synth.synthesizeFixed16Trimmed(
                              static_cast<int>(i))
                        : synth.synthesizeFixed16(static_cast<int>(i));
            break;
          case Representation::Quant8:
            input = synth.synthesizeQuant8(static_cast<int>(i));
            break;
        }
        result.layers.push_back(runLayer(network.layers[i], input,
                                         config, options.sample));
    }
    return result;
}

std::vector<int>
quantizedPrecisions(const dnn::ActivationSynthesizer &synth)
{
    std::vector<int> precisions;
    const auto &layers = synth.network().layers;
    precisions.reserve(layers.size());
    for (size_t i = 0; i < layers.size(); i++) {
        if (!layers[i].priced()) {
            // Keep the list aligned with the layer indices; pool
            // slots are never read (pools are not priced).
            precisions.push_back(0);
            continue;
        }
        dnn::NeuronTensor codes =
            synth.synthesizeQuant8(static_cast<int>(i));
        uint16_t max_code = 0;
        for (uint16_t c : codes.flat())
            max_code = std::max(max_code, c);
        precisions.push_back(
            std::max(1, fixedpoint::significantBits(max_code)));
    }
    return precisions;
}

} // namespace models
} // namespace pra
