/**
 * @file
 * Pragmatic tile with pallet-level neuron lane synchronization
 * (paper Sections V-A3, V-A4, V-B).
 *
 * Under pallet synchronization all 16 PIP columns advance to the next
 * synapse set together: a set costs the maximum schedule length over
 * the pallet's 16 bricks (clamped to at least the one cycle the SB
 * read takes). NM fetch of the next step overlaps with processing of
 * the current one; the residue shows up as stall cycles
 * (Section V-A4).
 *
 * The workload-view overload consumes the precomputed per-brick
 * planes (term counts and L=0/L=4 schedule lengths) and can split the
 * sampled pallets into blocks across an InnerExecutor. Pallets are
 * mutually independent (the NM overlap window resets at a pallet
 * boundary) and every per-block accumulator is an exact integer, so
 * block partials combined in block order are bit-identical to the
 * serial path for any block count.
 */

#pragma once

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"
#include "util/thread_pool.h"

namespace pra {
namespace models {

/** Parameters of a Pragmatic tile's datapath. */
struct PragmaticTileConfig
{
    int firstStageBits = 2;   ///< L: first-stage shifter width.
    bool modelNmStalls = true; ///< Model dispatcher/NM fetch overlap.
};

/**
 * Simulate one layer under pallet synchronization.
 *
 * @param layer  layer geometry.
 * @param input  the layer's input neuron patterns (16-bit fixed point
 *               or 8-bit quantized codes; timing sees only bits).
 * @param accel  machine configuration.
 * @param tile   datapath configuration.
 * @param sample pallet sampling policy.
 */
sim::LayerResult
simulateLayerPalletSync(const dnn::LayerSpec &layer,
                        const dnn::NeuronTensor &input,
                        const sim::AccelConfig &accel,
                        const PragmaticTileConfig &tile,
                        const sim::SampleSpec &sample);

/**
 * Workload-view variant: same result, served from the shared planes
 * where possible and split across @p exec (see the file comment).
 */
sim::LayerResult
simulateLayerPalletSync(const dnn::LayerSpec &layer,
                        const sim::LayerWorkload &workload,
                        const sim::AccelConfig &accel,
                        const PragmaticTileConfig &tile,
                        const sim::SampleSpec &sample,
                        const util::InnerExecutor &exec);

} // namespace models
} // namespace pra

