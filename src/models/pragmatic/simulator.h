/**
 * @file
 * Top-level Pragmatic simulation driver.
 *
 * Binds together the workload substrate (synthetic activations per
 * DESIGN.md §3), the representation (16-bit fixed point or 8-bit
 * quantized), the software precision trimming of Section V-F, and the
 * synchronization engines, producing per-layer and per-network cycle
 * results comparable against the DaDN and Stripes baselines.
 */

#pragma once

#include <string>
#include <vector>

#include "dnn/activation_synth.h"
#include "dnn/network.h"
#include "models/pragmatic/column_sync.h"
#include "models/pragmatic/tile.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"

namespace pra {
namespace models {

/** Neuron storage representation (paper Sections VI-B vs VI-F). */
enum class Representation { Fixed16, Quant8 };

/** Neuron lane synchronization scheme (Sections V-A4 vs V-E). */
enum class SyncScheme { Pallet, PerColumn };

/** A full Pragmatic design point. */
struct PragmaticConfig
{
    int firstStageBits = 2;      ///< L (0..4); 4 == single-stage.
    SyncScheme sync = SyncScheme::Pallet;
    int ssrCount = 1;            ///< Per-column SSRs; 0 = ideal.
    bool softwareTrim = true;    ///< Section V-F precision masking.
    Representation representation = Representation::Fixed16;
    bool modelNmStalls = true;

    /** Short label, e.g. "PRA-2b" or "PRA-2b-1R". */
    std::string label() const;
};

/** Simulation options common to all engines. */
struct SimOptions
{
    /** Pallet sampling cap per layer (0 = exhaustive). */
    sim::SampleSpec sample{512};
    /** Workload seed for the activation synthesizer. */
    uint64_t seed = 0x5eed;
};

/** Top-level driver. */
class PragmaticSimulator
{
  public:
    explicit PragmaticSimulator(const sim::AccelConfig &accel = {});

    /**
     * Simulate one layer given explicit input neuron patterns.
     * Dispatches to the pallet-sync or per-column engine.
     */
    sim::LayerResult runLayer(const dnn::LayerSpec &layer,
                              const dnn::NeuronTensor &input,
                              const PragmaticConfig &config,
                              const sim::SampleSpec &sample) const;

    /**
     * Simulate a whole network on synthetic activations; the
     * representation and trimming choices select the neuron stream.
     */
    sim::NetworkResult run(const dnn::Network &network,
                           const PragmaticConfig &config,
                           const SimOptions &options = {}) const;

    const sim::AccelConfig &accel() const { return accel_; }

  private:
    sim::AccelConfig accel_;
};

/**
 * Per-layer serial precisions for Stripes on the 8-bit quantized
 * stream: the bits needed by each layer's largest activation code
 * (the quantized analogue of profiled precision).
 */
std::vector<int>
quantizedPrecisions(const dnn::ActivationSynthesizer &synth);

} // namespace models
} // namespace pra

