#include "models/pragmatic/schedule.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

void
checkArgs(std::span<const uint16_t> neurons, int first_stage_bits)
{
    PRA_CHECK(neurons.size() <= 16,
                         "brick schedule: more than 16 lanes");
    PRA_CHECK(first_stage_bits >= 0 &&
                             first_stage_bits <= kMaxFirstStageBits,
                         "brick schedule: bad first-stage width");
}

} // namespace

int
brickScheduleCycles(std::span<const uint16_t> neurons,
                    int first_stage_bits)
{
    checkArgs(neurons, first_stage_bits);
    // Pending set-bits per lane; a lane is done when its word is 0.
    uint16_t pending[16] = {};
    uint32_t remaining = 0;
    for (size_t lane = 0; lane < neurons.size(); lane++) {
        pending[lane] = neurons[lane];
        remaining |= neurons[lane];
    }
    if (remaining == 0)
        return 0;

    const int reach = 1 << first_stage_bits;
    int cycles = 0;
    while (true) {
        // The column control compares pending oneffsets and picks the
        // minimum; OR-ing pending words finds the global minimum set
        // bit in O(1).
        uint16_t any = 0;
        for (size_t lane = 0; lane < neurons.size(); lane++)
            any |= pending[lane];
        if (any == 0)
            break;
        int min_offset = std::countr_zero(any);
        cycles++;
        // Every lane whose next oneffset is within the first-stage
        // reach consumes it this cycle.
        for (size_t lane = 0; lane < neurons.size(); lane++) {
            uint16_t w = pending[lane];
            if (w == 0)
                continue;
            int k = std::countr_zero(w);
            if (k - min_offset < reach)
                pending[lane] = static_cast<uint16_t>(w & (w - 1));
        }
    }
    PRA_CHECK(cycles <= 16,
                         "brick schedule exceeded 16 cycles");
    return cycles;
}

void
scheduleCyclesRow(std::span<const uint16_t> row, int columns,
                  int channels, int first_stage_bits,
                  std::span<uint8_t> out)
{
    PRA_CHECK(columns > 0 && channels > 0,
                         "schedule row: empty row");
    PRA_CHECK(first_stage_bits >= 0 &&
                             first_stage_bits <= kMaxFirstStageBits,
                         "schedule row: bad first-stage width");
    PRA_CHECK(row.size() == static_cast<size_t>(columns) *
                                           channels,
                         "schedule row: row extent mismatch");
    const int bricks = (channels + 15) / 16;
    PRA_CHECK(out.size() == static_cast<size_t>(columns) *
                                           bricks,
                         "schedule row: output extent mismatch");

    // Bits reachable above the second-stage minimum: positions
    // [min, min + 2^L) — as a mask, kReach ones shifted up by min.
    const uint32_t reach_ones = (1u << (1 << first_stage_bits)) - 1;
    size_t pos = 0;
    for (int column = 0; column < columns; column++) {
        const uint16_t *lane = row.data() +
                               static_cast<size_t>(column) * channels;
        for (int base = 0; base < channels; base += 16) {
            const int lanes = std::min(16, channels - base);
            // Fixed 16-lane working set; missing lanes stay zero and
            // never fire, matching the zero padding of gatherBrick().
            uint16_t pending[16] = {};
            uint32_t any = 0;
            for (int i = 0; i < lanes; i++) {
                pending[i] = lane[base + i];
                any |= pending[i];
            }
            int cycles = 0;
            while (any != 0) {
                // The second stage drives the global minimum offset;
                // a lane consumes its lowest pending oneffset iff it
                // lies inside the first-stage window. w & -w isolates
                // that bit and the masked subtract clears it only
                // when in reach — no per-lane branch.
                const uint32_t window = reach_ones
                                        << std::countr_zero(any);
                cycles++;
                any = 0;
                for (int i = 0; i < 16; i++) {
                    uint32_t w = pending[i];
                    uint32_t fire = (w & (0u - w)) & window;
                    w -= fire;
                    pending[i] = static_cast<uint16_t>(w);
                    any |= w;
                }
            }
            PRA_CHECK(cycles <= 16,
                                 "schedule row exceeded 16 cycles");
            out[pos++] = static_cast<uint8_t>(cycles);
        }
    }
}

ScheduleTrace
brickScheduleTrace(std::span<const uint16_t> neurons,
                   int first_stage_bits)
{
    checkArgs(neurons, first_stage_bits);
    ScheduleTrace trace;
    uint16_t pending[16] = {};
    for (size_t lane = 0; lane < neurons.size(); lane++)
        pending[lane] = neurons[lane];

    const int reach = 1 << first_stage_bits;
    while (true) {
        uint16_t any = 0;
        for (size_t lane = 0; lane < neurons.size(); lane++)
            any |= pending[lane];
        if (any == 0)
            break;
        int min_offset = std::countr_zero(any);

        ScheduleCycle cycle;
        cycle.secondStageShift = static_cast<uint8_t>(min_offset);
        for (size_t lane = 0; lane < neurons.size(); lane++) {
            uint16_t w = pending[lane];
            if (w == 0)
                continue;
            int k = std::countr_zero(w);
            int diff = k - min_offset;
            if (diff < reach) {
                pending[lane] = static_cast<uint16_t>(w & (w - 1));
                cycle.firedLanes |= static_cast<uint16_t>(1u << lane);
                cycle.firstStageShift[lane] = static_cast<uint8_t>(diff);
            }
        }
        PRA_CHECK(cycle.firedLanes != 0,
                             "schedule cycle fired no lanes");
        trace.cycles.push_back(cycle);
        PRA_CHECK(trace.cycles.size() <= 16,
                             "schedule trace exceeded 16 cycles");
    }
    return trace;
}

} // namespace models
} // namespace pra
