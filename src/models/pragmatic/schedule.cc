#include "models/pragmatic/schedule.h"

#include <bit>

#include "util/logging.h"

namespace pra {
namespace models {

namespace {

void
checkArgs(std::span<const uint16_t> neurons, int first_stage_bits)
{
    util::checkInvariant(neurons.size() <= 16,
                         "brick schedule: more than 16 lanes");
    util::checkInvariant(first_stage_bits >= 0 &&
                             first_stage_bits <= kMaxFirstStageBits,
                         "brick schedule: bad first-stage width");
}

} // namespace

int
brickScheduleCycles(std::span<const uint16_t> neurons,
                    int first_stage_bits)
{
    checkArgs(neurons, first_stage_bits);
    // Pending set-bits per lane; a lane is done when its word is 0.
    uint16_t pending[16] = {};
    uint32_t remaining = 0;
    for (size_t lane = 0; lane < neurons.size(); lane++) {
        pending[lane] = neurons[lane];
        remaining |= neurons[lane];
    }
    if (remaining == 0)
        return 0;

    const int reach = 1 << first_stage_bits;
    int cycles = 0;
    while (true) {
        // The column control compares pending oneffsets and picks the
        // minimum; OR-ing pending words finds the global minimum set
        // bit in O(1).
        uint16_t any = 0;
        for (size_t lane = 0; lane < neurons.size(); lane++)
            any |= pending[lane];
        if (any == 0)
            break;
        int min_offset = std::countr_zero(any);
        cycles++;
        // Every lane whose next oneffset is within the first-stage
        // reach consumes it this cycle.
        for (size_t lane = 0; lane < neurons.size(); lane++) {
            uint16_t w = pending[lane];
            if (w == 0)
                continue;
            int k = std::countr_zero(w);
            if (k - min_offset < reach)
                pending[lane] = static_cast<uint16_t>(w & (w - 1));
        }
    }
    util::checkInvariant(cycles <= 16,
                         "brick schedule exceeded 16 cycles");
    return cycles;
}

ScheduleTrace
brickScheduleTrace(std::span<const uint16_t> neurons,
                   int first_stage_bits)
{
    checkArgs(neurons, first_stage_bits);
    ScheduleTrace trace;
    uint16_t pending[16] = {};
    for (size_t lane = 0; lane < neurons.size(); lane++)
        pending[lane] = neurons[lane];

    const int reach = 1 << first_stage_bits;
    while (true) {
        uint16_t any = 0;
        for (size_t lane = 0; lane < neurons.size(); lane++)
            any |= pending[lane];
        if (any == 0)
            break;
        int min_offset = std::countr_zero(any);

        ScheduleCycle cycle;
        cycle.secondStageShift = static_cast<uint8_t>(min_offset);
        for (size_t lane = 0; lane < neurons.size(); lane++) {
            uint16_t w = pending[lane];
            if (w == 0)
                continue;
            int k = std::countr_zero(w);
            int diff = k - min_offset;
            if (diff < reach) {
                pending[lane] = static_cast<uint16_t>(w & (w - 1));
                cycle.firedLanes |= static_cast<uint16_t>(1u << lane);
                cycle.firstStageShift[lane] = static_cast<uint8_t>(diff);
            }
        }
        util::checkInvariant(cycle.firedLanes != 0,
                             "schedule cycle fired no lanes");
        trace.cycles.push_back(cycle);
        util::checkInvariant(trace.cycles.size() <= 16,
                             "schedule trace exceeded 16 cycles");
    }
    return trace;
}

} // namespace models
} // namespace pra
