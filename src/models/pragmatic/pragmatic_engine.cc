#include "models/pragmatic/pragmatic_engine.h"

#include "util/logging.h"

namespace pra {
namespace models {

namespace {

std::string
kindOf(SyncScheme sync)
{
    return sync == SyncScheme::PerColumn ? "pragmatic-col"
                                         : "pragmatic";
}

} // namespace

PragmaticEngine::PragmaticEngine(SyncScheme sync,
                                 const sim::EngineKnobs &knobs)
{
    std::vector<std::string> allowed = {"bits", "trim", "repr",
                                        "nmstalls"};
    if (sync == SyncScheme::PerColumn)
        allowed.push_back("ssr");
    sim::requireKnownKnobs(kindOf(sync), knobs, allowed);

    config_.sync = sync;
    config_.firstStageBits =
        static_cast<int>(sim::knobInt(knobs, "bits", 2));
    if (config_.firstStageBits < 0 || config_.firstStageBits > 4)
        util::fatal("pragmatic: bits must be in 0..4");
    config_.softwareTrim = sim::knobBool(knobs, "trim", true);
    config_.modelNmStalls = sim::knobBool(knobs, "nmstalls", true);
    std::string repr = sim::knobString(knobs, "repr", "fixed16");
    if (repr == "fixed16")
        config_.representation = Representation::Fixed16;
    else if (repr == "quant8")
        config_.representation = Representation::Quant8;
    else
        util::fatal("pragmatic: repr must be fixed16 or quant8");
    if (sync == SyncScheme::PerColumn) {
        config_.ssrCount =
            static_cast<int>(sim::knobInt(knobs, "ssr", 1));
        if (config_.ssrCount < 0)
            util::fatal("pragmatic-col: ssr must be >= 0");
    }
}

std::string
PragmaticEngine::kind() const
{
    return kindOf(config_.sync);
}

sim::InputStream
PragmaticEngine::inputStream() const
{
    if (config_.representation == Representation::Quant8)
        return sim::InputStream::Quant8;
    return config_.softwareTrim ? sim::InputStream::Fixed16Trimmed
                                : sim::InputStream::Fixed16Raw;
}

sim::LayerResult
PragmaticEngine::simulateLayer(const dnn::LayerSpec &layer,
                               const dnn::NeuronTensor &input,
                               const sim::AccelConfig &accel,
                               const sim::SampleSpec &sample) const
{
    return PragmaticSimulator(accel).runLayer(layer, input, config_,
                                              sample);
}

sim::LayerResult
PragmaticEngine::simulateLayer(const dnn::LayerSpec &layer,
                               const sim::LayerWorkload &workload,
                               const sim::AccelConfig &accel,
                               const sim::SampleSpec &sample,
                               const util::InnerExecutor &exec) const
{
    sim::LayerResult result;
    if (config_.sync == SyncScheme::Pallet) {
        PragmaticTileConfig tile;
        tile.firstStageBits = config_.firstStageBits;
        tile.modelNmStalls = config_.modelNmStalls;
        result = simulateLayerPalletSync(layer, workload, accel, tile,
                                         sample, exec);
    } else {
        ColumnSyncConfig column;
        column.firstStageBits = config_.firstStageBits;
        column.ssrCount = config_.ssrCount;
        column.modelNmStalls = config_.modelNmStalls;
        result = simulateLayerColumnSync(layer, workload, accel, column,
                                         sample);
    }
    result.engineName = config_.label();
    return result;
}

} // namespace models
} // namespace pra
