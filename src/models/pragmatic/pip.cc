#include "models/pragmatic/pip.h"

#include <cstdlib>

#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

PragmaticInnerProduct::PragmaticInnerProduct(int first_stage_bits)
    : firstStageBits_(first_stage_bits)
{
    PRA_CHECK(first_stage_bits >= 0 &&
                             first_stage_bits <= kMaxFirstStageBits,
                         "PIP: bad first-stage width");
}

int
PragmaticInnerProduct::firstStageOutputBits() const
{
    return 16 + (1 << firstStageBits_) - 1;
}

PipBrickResult
PragmaticInnerProduct::processBrick(
    std::span<const int16_t> synapses,
    std::span<const uint16_t> neurons) const
{
    PRA_CHECK(synapses.size() == neurons.size(),
                         "PIP: lane count mismatch");
    PRA_CHECK(neurons.size() <= 16, "PIP: too many lanes");

    ScheduleTrace trace = brickScheduleTrace(neurons, firstStageBits_);

    // Magnitude bound for a first-stage shifter output.
    const int64_t stage1_limit = int64_t{1}
                                 << (firstStageOutputBits() - 1);

    PipBrickResult result;
    for (const ScheduleCycle &cycle : trace.cycles) {
        // Adder tree over the 16 first-stage outputs (stalled lanes
        // contribute the null term their AND gate injects).
        int64_t lane_terms[16] = {};
        for (size_t lane = 0; lane < neurons.size(); lane++) {
            if (!(cycle.firedLanes >> lane & 1))
                continue;
            int shift = cycle.firstStageShift[lane];
            PRA_CHECK(shift < (1 << firstStageBits_),
                                 "PIP: first-stage shift out of reach");
            int64_t shifted = static_cast<int64_t>(synapses[lane])
                              << shift;
            PRA_CHECK(std::llabs(shifted) <= stage1_limit,
                                 "PIP: first-stage width violated");
            lane_terms[lane] = shifted;
        }
        size_t width = 16;
        while (width > 1) {
            for (size_t i = 0; i < width / 2; i++)
                lane_terms[i] = lane_terms[2 * i] + lane_terms[2 * i + 1];
            width /= 2;
        }
        // Second-stage shift of the reduced sum, then accumulate.
        result.partialSum += lane_terms[0] << cycle.secondStageShift;
        result.cycles++;
    }

    PRA_CHECK(result.cycles ==
                             brickScheduleCycles(neurons,
                                                 firstStageBits_),
                         "PIP: cycle count diverged from schedule");
    return result;
}

} // namespace models
} // namespace pra
