#include "models/pragmatic/column_sync.h"

#include <algorithm>
#include <vector>

#include "models/pragmatic/brick_cost.h"
#include "sim/nm_model.h"
#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

/** Rolling record of per-set copy-completion times for the SSR pool. */
class SsrPool
{
  public:
    explicit SsrPool(int capacity) : capacity_(capacity) {}

    /**
     * Earliest time the SB may read global set @p g: the pool must
     * have a slot free, i.e. set g - capacity must have been copied
     * by every column. Infinite pools (capacity 0) never block.
     */
    int64_t
    readAllowedAt(int64_t g) const
    {
        if (capacity_ <= 0)
            return 0;
        int64_t victim = g - capacity_;
        if (victim < 0)
            return 0;
        size_t idx = static_cast<size_t>(victim % capacity_);
        return allCopied_[idx];
    }

    /** Record that set @p g was copied by all columns at @p time. */
    void
    recordAllCopied(int64_t g, int64_t time)
    {
        if (capacity_ <= 0)
            return;
        size_t idx = static_cast<size_t>(g % capacity_);
        if (allCopied_.size() <= idx)
            allCopied_.resize(capacity_, 0);
        allCopied_[idx] = time;
    }

  private:
    int capacity_;
    std::vector<int64_t> allCopied_;
};

sim::LayerResult
simulateColumnSyncImpl(const dnn::LayerSpec &layer,
                       const dnn::NeuronTensor &input,
                       const sim::LayerWorkload *workload,
                       const sim::AccelConfig &accel,
                       const ColumnSyncConfig &config,
                       const sim::SampleSpec &sample)
{
    sim::LayerTiling tiling(layer, accel);
    sim::SamplePlan plan = sim::planSample(tiling.numPallets(), sample);
    PRA_CHECK(!plan.indices.empty(),
                         "column sync: layer has no pallets");

    const int columns = accel.windowsPerPallet;
    const int64_t num_sets = tiling.numSynapseSets();
    BrickCostContext ctx(tiling, input, workload,
                         config.firstStageBits);
    const BrickCostModel &costs = ctx.costs();
    const std::vector<sim::SynapseSetCoord> &set_coords =
        ctx.setCoords();

    // Per-column clocks: when the column finished its previous set.
    std::vector<int64_t> col_time(columns, 0);
    // Per-column schedule cost of the set being placed.
    std::vector<int> set_cost(columns, 0);
    // Window coordinates of the current pallet's active columns.
    std::vector<sim::WindowCoord> col_coords(
        static_cast<size_t>(columns));

    SsrPool ssrs(config.ideal() ? 0 : config.ssrCount);
    int64_t last_read_done = 0;

    // Dispatcher pallet double-buffering state.
    int64_t fetch_done_prev = 0;     // NM fetch completion, pallet k-1.
    int64_t pallet_finish_m2 = 0;    // All columns drained pallet k-2.
    int64_t pallet_finish_m1 = 0;    // All columns drained pallet k-1.

    int64_t terms = 0;
    int64_t stall_reference = 0; // Sum of raw schedule costs (no sync).

    for (size_t pi = 0; pi < plan.indices.size(); pi++) {
        int64_t pallet = plan.indices[pi];

        // Window coordinates are set-independent; resolve the
        // pallet's active columns once (the contiguous prefix — only
        // the layer's last pallet is partial).
        const int active = tiling.windowsInPallet(pallet);
        for (int c = 0; c < active; c++)
            col_coords[static_cast<size_t>(c)] =
                tiling.windowCoord(tiling.windowIndex(pallet, c));

        int64_t neurons_ready = 0;
        if (config.modelNmStalls) {
            // Fetch latency for this pallet: its worst per-set row
            // spread (fetches of consecutive sets are pipelined).
            int64_t fetch = 1;
            for (int64_t s = 0; s < num_sets;
                 s += std::max<int64_t>(1, num_sets / 4)) {
                fetch = std::max<int64_t>(
                    fetch, sim::nmFetchCycles(tiling, pallet, s));
            }
            int64_t fetch_start =
                std::max(fetch_done_prev, pallet_finish_m2);
            neurons_ready = fetch_start + fetch;
            fetch_done_prev = neurons_ready;
            pallet_finish_m2 = pallet_finish_m1;
        }

        int64_t pallet_finish = 0;
        for (int64_t s = 0; s < num_sets; s++) {
            int64_t g = static_cast<int64_t>(pi) * num_sets + s;

            // Resolve this set's schedule cost for every column.
            for (int c = 0; c < columns; c++) {
                if (c >= active) {
                    set_cost[c] = 1; // Idle column tracks the stream.
                    continue;
                }
                BrickCostModel::Cost cost = costs.brick(
                    col_coords[static_cast<size_t>(c)],
                    set_coords[static_cast<size_t>(s)]);
                set_cost[c] = std::max(1, cost.cycles);
                terms += cost.terms;
                stall_reference += set_cost[c];
            }

            // SB read: single port, and an SSR slot must be free.
            int64_t read_done = std::max(last_read_done + 1,
                                         ssrs.readAllowedAt(g) + 1);
            last_read_done = read_done;

            // Columns copy the set when they reach it, then process.
            int64_t all_copied = 0;
            for (int c = 0; c < columns; c++) {
                int64_t start = std::max({col_time[c], read_done,
                                          neurons_ready});
                all_copied = std::max(all_copied, start);
                col_time[c] = start + set_cost[c];
            }
            ssrs.recordAllCopied(g, all_copied);
            if (s + 1 == num_sets)
                pallet_finish = *std::max_element(col_time.begin(),
                                                  col_time.end());
        }
        pallet_finish_m1 = pallet_finish;
    }

    int64_t stream_finish = *std::max_element(col_time.begin(),
                                              col_time.end());

    sim::LayerResult result;
    result.layerName = layer.name;
    result.engineName = config.ideal() ? "PRA-perCol-ideal"
                                       : "PRA-perCol";
    result.sampleScale = plan.scale;
    double passes = static_cast<double>(tiling.passes());
    result.cycles = passes * plan.scale *
                    static_cast<double>(stream_finish);
    // Stall accounting: time beyond the busiest column's raw work.
    double busiest = static_cast<double>(stall_reference) /
                     std::max(1, columns);
    result.nmStallCycles = std::max(
        0.0, passes * plan.scale *
                 (static_cast<double>(stream_finish) - busiest));
    result.effectualTerms = plan.scale * static_cast<double>(terms) *
                            layer.numFilters;
    // Section V-E guarantees SB is read the same number of times as
    // under pallet synchronization (SSRs absorb the repeats).
    result.sbReadSteps = passes *
                         static_cast<double>(tiling.numPallets()) *
                         static_cast<double>(num_sets);
    return result;
}

} // namespace

sim::LayerResult
simulateLayerColumnSync(const dnn::LayerSpec &layer,
                        const dnn::NeuronTensor &input,
                        const sim::AccelConfig &accel,
                        const ColumnSyncConfig &config,
                        const sim::SampleSpec &sample)
{
    return simulateColumnSyncImpl(layer, input, nullptr, accel, config,
                                  sample);
}

sim::LayerResult
simulateLayerColumnSync(const dnn::LayerSpec &layer,
                        const sim::LayerWorkload &workload,
                        const sim::AccelConfig &accel,
                        const ColumnSyncConfig &config,
                        const sim::SampleSpec &sample)
{
    return simulateColumnSyncImpl(layer, workload.tensor(), &workload,
                                  accel, config, sample);
}

} // namespace models
} // namespace pra
