/**
 * @file
 * Per-brick schedule-cycle and term-count resolution shared by the
 * pallet- and column-sync engines.
 *
 * Both engines fundamentally consume, per (window, synapse set), the
 * brick's PIP schedule length and its effectual-term (set-bit) count.
 * When the workload's packed brick planes apply (brick size == the
 * machine's neuron lanes), the term count is a single plane lookup
 * and the schedule length resolves from tables for *every*
 * first-stage width:
 *
 *   cycles(L=0) == orPop   (distinct oneffset positions),
 *   cycles(L=4) == maxPop  (busiest lane), and
 *   cycles(L=1..3)         from the workload's memoized cycle plane
 *                          (exact brickScheduleCycles per brick,
 *                          built once per (workload, L) by the
 *                          batched scheduleCyclesRow kernel)
 *
 * so brick() is a pure table lookup on the hot path. When the cycle
 * planes are force-disabled (sim::setCyclePlanesEnabled) the
 * intermediate widths fall back to the orPop == maxPop monotonicity
 * short-circuit and, only where the bounds disagree, the cycle-by-
 * cycle schedule on a zero-copy view of the input tensor — the
 * identities and the monotonicity are asserted by the schedule test
 * suite, and both paths are bit-identical by construction.
 *
 * BrickCostContext is the per-layer setup both engines previously
 * duplicated: it builds the cost model (resolving plane eligibility
 * and the memoized cycle plane once per layer) and materializes the
 * pallet-independent synapse-set coordinates.
 */

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "dnn/tensor.h"
#include "models/pragmatic/schedule.h"
#include "sim/tiling.h"
#include "sim/workload_cache.h"

namespace pra {
namespace models {

/** Resolves brick costs for one layer stream (see file comment). */
class BrickCostModel
{
  public:
    /** Schedule cycles and term count of one brick; {0, 0} = padding. */
    struct Cost
    {
        int cycles = 0;
        int32_t terms = 0;
    };

    /**
     * @param tiling  the layer's tiling (outlives the model).
     * @param input   the stream tensor (outlives the model).
     * @param planes  packed brick planes of @p input, or nullptr to
     *                resolve every brick from the tensor; only valid
     *                when the machine's neuronLanes == kBrickSize.
     * @param cycles  the memoized schedule-cycle plane for
     *                @p first_stage_bits (same indexing as
     *                @p planes), or nullptr to fall back to the
     *                bounds short-circuit + serial schedule; only
     *                meaningful alongside @p planes for L in 1..3.
     * @param first_stage_bits  L, the PIP first-stage shifter width.
     */
    BrickCostModel(const sim::LayerTiling &tiling,
                   const dnn::NeuronTensor &input,
                   const sim::BrickPlanes *planes,
                   const uint8_t *cycles, int first_stage_bits)
        : tiling_(tiling), input_(input), planes_(planes),
          cycles_(cycles), bits_(first_stage_bits)
    {
    }

    Cost
    brick(const sim::WindowCoord &w, const sim::SynapseSetCoord &s) const
    {
        if (planes_) {
            const dnn::LayerSpec &layer = tiling_.layer();
            int x = w.x * layer.stride - layer.pad + s.fx;
            int y = w.y * layer.stride - layer.pad + s.fy;
            if (x < 0 || x >= layer.inputX || y < 0 || y >= layer.inputY)
                return {};
            size_t idx =
                planes_->index(x, y, s.brickI / dnn::kBrickSize);
            Cost cost;
            cost.terms = planes_->pop[idx];
            int max_pop = planes_->maxPop[idx];
            if (bits_ == 0)
                cost.cycles = planes_->orPop[idx];
            else if (bits_ >= kMaxFirstStageBits)
                cost.cycles = max_pop;
            else if (cycles_)
                cost.cycles = cycles_[idx];
            else if (planes_->orPop[idx] == max_pop)
                cost.cycles = max_pop;
            else
                cost.cycles = brickScheduleCycles(
                    tiling_.gatherBrickView(input_, w, s), bits_);
            return cost;
        }
        auto view = tiling_.gatherBrickView(input_, w, s);
        Cost cost;
        cost.terms = sim::summarizeBrick(view).pop;
        cost.cycles = brickScheduleCycles(view, bits_);
        return cost;
    }

  private:
    const sim::LayerTiling &tiling_;
    const dnn::NeuronTensor &input_;
    const sim::BrickPlanes *planes_;
    const uint8_t *cycles_;
    int bits_;
};

/**
 * The per-layer setup shared by the pallet- and column-sync engines:
 * resolves plane eligibility and the memoized cycle plane once,
 * builds the BrickCostModel, and materializes the pallet-independent
 * synapse-set coordinates (setCoord is pure index arithmetic, but
 * both engines visit every set once per pallet — resolve them once
 * per layer instead).
 *
 * @p workload may be nullptr (tensor path: every brick resolved from
 * @p input); when given, its tensor must be @p input. The context
 * must not outlive the tiling, input, or workload it was built from.
 */
class BrickCostContext
{
  public:
    BrickCostContext(const sim::LayerTiling &tiling,
                     const dnn::NeuronTensor &input,
                     const sim::LayerWorkload *workload,
                     int first_stage_bits)
        : tiling_(tiling), workload_(workload),
          costs_(tiling, input, resolvePlanes(tiling, workload),
                 resolveCycles(tiling, workload, first_stage_bits),
                 first_stage_bits)
    {
        const int64_t num_sets = tiling.numSynapseSets();
        setCoords_.reserve(static_cast<size_t>(num_sets));
        for (int64_t s = 0; s < num_sets; s++)
            setCoords_.push_back(tiling.setCoord(s));
    }

    const BrickCostModel &costs() const { return costs_; }

    /** Coordinate of set s, for all s in [0, numSynapseSets). */
    const std::vector<sim::SynapseSetCoord> &setCoords() const
    {
        return setCoords_;
    }

    /**
     * The shared activation planes this context resolved, or nullptr
     * on the tensor path / a reshaped machine — exposed so
     * two-operand engines reduce over exactly the plane object the
     * cost model reads (e.g. Dynamic-Stripes' per-group orMask).
     */
    const sim::BrickPlanes *planes() const
    {
        return resolvePlanes(tiling_, workload_);
    }

    /**
     * The weight-side planes of this layer: the workload's lazily
     * built shared planes when they apply (kBrickSize lanes), else a
     * context-local synthetic build matching the machine's lane
     * count (a reshaped machine prices the synthetic weight streams
     * even under --activations=propagated — the shared requantized
     * planes assume brick-width lanes). Resolved on first call and
     * never touched by
     * activation-only engines, so they pay nothing. Not
     * synchronized: resolve it once before fanning work out across
     * inner threads.
     */
    const sim::WeightBrickPlanes &
    weightPlanes() const
    {
        if (!weightPlanes_) {
            if (workload_ &&
                tiling_.config().neuronLanes == dnn::kBrickSize) {
                weightPlanes_ =
                    &workload_->weightPlanes(tiling_.layer());
            } else {
                localWeights_ = sim::syntheticWeightPlanes(
                    tiling_.layer(), tiling_.config().neuronLanes);
                weightPlanes_ = &localWeights_;
            }
        }
        return *weightPlanes_;
    }

  private:
    static const sim::BrickPlanes *
    resolvePlanes(const sim::LayerTiling &tiling,
                  const sim::LayerWorkload *workload)
    {
        // The packed planes summarize kBrickSize-channel bricks; a
        // reshaped machine gathers narrower bricks straight from the
        // tensor instead.
        if (!workload ||
            tiling.config().neuronLanes != dnn::kBrickSize)
            return nullptr;
        return &workload->brickPlanes();
    }

    static const uint8_t *
    resolveCycles(const sim::LayerTiling &tiling,
                  const sim::LayerWorkload *workload,
                  int first_stage_bits)
    {
        if (!resolvePlanes(tiling, workload) || first_stage_bits < 1 ||
            first_stage_bits >= kMaxFirstStageBits ||
            !sim::cyclePlanesEnabled())
            return nullptr;
        return workload->cyclePlane(first_stage_bits).data();
    }

    const sim::LayerTiling &tiling_;
    const sim::LayerWorkload *workload_;
    BrickCostModel costs_;
    std::vector<sim::SynapseSetCoord> setCoords_;
    mutable const sim::WeightBrickPlanes *weightPlanes_ = nullptr;
    mutable sim::WeightBrickPlanes localWeights_;
};

} // namespace models
} // namespace pra

