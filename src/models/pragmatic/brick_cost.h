/**
 * @file
 * Per-brick schedule-cycle and term-count resolution shared by the
 * pallet- and column-sync engines.
 *
 * Both engines fundamentally consume, per (window, synapse set), the
 * brick's PIP schedule length and its effectual-term (set-bit) count.
 * When the workload's packed brick planes apply (brick size == the
 * machine's neuron lanes), the term count is a single plane lookup
 * and the schedule length short-circuits through the exact plane
 * identities:
 *
 *   cycles(L=0) == orPop   (distinct oneffset positions),
 *   cycles(L=4) == maxPop  (busiest lane), and
 *   orPop == maxPop  =>  cycles(L) == maxPop for every L
 *
 * (monotonicity of the schedule in L; asserted by the schedule test
 * suite). Only bricks where the bounds disagree run the cycle-by-
 * cycle schedule, on a zero-copy view of the input tensor.
 */

#ifndef PRA_MODELS_PRAGMATIC_BRICK_COST_H
#define PRA_MODELS_PRAGMATIC_BRICK_COST_H

#include <bit>
#include <cstdint>

#include "dnn/tensor.h"
#include "models/pragmatic/schedule.h"
#include "sim/tiling.h"
#include "sim/workload_cache.h"

namespace pra {
namespace models {

/** Resolves brick costs for one layer stream (see file comment). */
class BrickCostModel
{
  public:
    /** Schedule cycles and term count of one brick; {0, 0} = padding. */
    struct Cost
    {
        int cycles = 0;
        int32_t terms = 0;
    };

    /**
     * @param tiling  the layer's tiling (outlives the model).
     * @param input   the stream tensor (outlives the model).
     * @param planes  packed brick planes of @p input, or nullptr to
     *                resolve every brick from the tensor; only valid
     *                when the machine's neuronLanes == kBrickSize.
     * @param first_stage_bits  L, the PIP first-stage shifter width.
     */
    BrickCostModel(const sim::LayerTiling &tiling,
                   const dnn::NeuronTensor &input,
                   const sim::BrickPlanes *planes, int first_stage_bits)
        : tiling_(tiling), input_(input), planes_(planes),
          bits_(first_stage_bits)
    {
    }

    Cost
    brick(const sim::WindowCoord &w, const sim::SynapseSetCoord &s) const
    {
        if (planes_) {
            const dnn::LayerSpec &layer = tiling_.layer();
            int x = w.x * layer.stride - layer.pad + s.fx;
            int y = w.y * layer.stride - layer.pad + s.fy;
            if (x < 0 || x >= layer.inputX || y < 0 || y >= layer.inputY)
                return {};
            size_t idx =
                planes_->index(x, y, s.brickI / dnn::kBrickSize);
            Cost cost;
            cost.terms = planes_->pop[idx];
            int max_pop = planes_->maxPop[idx];
            if (bits_ == 0)
                cost.cycles = planes_->orPop[idx];
            else if (bits_ >= kMaxFirstStageBits ||
                     planes_->orPop[idx] == max_pop)
                cost.cycles = max_pop;
            else
                cost.cycles = brickScheduleCycles(
                    tiling_.gatherBrickView(input_, w, s), bits_);
            return cost;
        }
        auto view = tiling_.gatherBrickView(input_, w, s);
        Cost cost;
        for (uint16_t n : view)
            cost.terms += std::popcount(n);
        cost.cycles = brickScheduleCycles(view, bits_);
        return cost;
    }

  private:
    const sim::LayerTiling &tiling_;
    const dnn::NeuronTensor &input_;
    const sim::BrickPlanes *planes_;
    int bits_;
};

} // namespace models
} // namespace pra

#endif // PRA_MODELS_PRAGMATIC_BRICK_COST_H
