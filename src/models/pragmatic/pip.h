/**
 * @file
 * Pragmatic Inner-Product unit — functional model
 * (paper Section V-B1, Figures 6 and 7a).
 *
 * A PIP combines 16 synapses (one brick from its filter row, held in
 * the synapse register SR) with the oneffsets of the 16 neurons of
 * its column's current brick. Each cycle:
 *
 *   1. the column control provides the second-stage shift C and, per
 *      lane, either a first-stage shift (k - C < 2^L) or a stall;
 *   2. each firing lane shifts its synapse by the first-stage amount;
 *      stalled lanes' AND gates inject a null (zero) term;
 *   3. the adder tree reduces the 16 first-stage outputs;
 *   4. the tree output is shifted by C (second stage) and accumulated.
 *
 * The model asserts the hardware width constraints: first-stage
 * outputs fit 16 + 2^L - 1 bits, and the accumulated partial sum must
 * equal the exact dot product when the brick drains — the property
 * the tests sweep.
 */

#pragma once

#include <cstdint>
#include <span>

#include "models/pragmatic/schedule.h"

namespace pra {
namespace models {

/** Result of functionally draining one brick through a PIP. */
struct PipBrickResult
{
    int64_t partialSum = 0; ///< Accumulated output contribution.
    int cycles = 0;         ///< Cycles consumed (== schedule cycles).
};

/** Functional PIP datapath. */
class PragmaticInnerProduct
{
  public:
    /**
     * @param first_stage_bits the design parameter L (0..4).
     */
    explicit PragmaticInnerProduct(int first_stage_bits);

    /**
     * Drain one brick: synapses[lane] pairs with neurons[lane].
     * Panics if a width constraint is violated — that would be a
     * hardware design bug, not a data condition.
     */
    PipBrickResult processBrick(std::span<const int16_t> synapses,
                                std::span<const uint16_t> neurons) const;

    int firstStageBits() const { return firstStageBits_; }

    /**
     * Width in bits of a first-stage (per-synapse) shifter output:
     * 16 + 2^L - 1 (Section V-D). The single-stage design (L == 4)
     * needs the full 31 bits.
     */
    int firstStageOutputBits() const;

  private:
    int firstStageBits_;
};

} // namespace models
} // namespace pra

