#include "models/pragmatic/tile.h"

#include <algorithm>
#include <bit>

#include "models/pragmatic/schedule.h"
#include "sim/nm_model.h"
#include "sim/tiling.h"
#include "util/logging.h"

namespace pra {
namespace models {

sim::LayerResult
simulateLayerPalletSync(const dnn::ConvLayerSpec &layer,
                        const dnn::NeuronTensor &input,
                        const sim::AccelConfig &accel,
                        const PragmaticTileConfig &tile,
                        const sim::SampleSpec &sample)
{
    sim::LayerTiling tiling(layer, accel);
    sim::SamplePlan plan = sim::planSample(tiling.numPallets(), sample);
    util::checkInvariant(!plan.indices.empty(),
                         "pallet sync: layer has no pallets");

    const int64_t num_sets = tiling.numSynapseSets();
    int64_t process_cycles = 0;
    int64_t stall_cycles = 0;
    double pop_sum = 0.0;
    sim::NmOverlapTracker nm;

    for (int64_t pallet : plan.indices) {
        // Fetch of step (p, s+1) overlaps processing of (p, s); the
        // previous step's processing time hides the current fetch.
        int64_t prev_process = 0;
        for (int64_t s = 0; s < num_sets; s++) {
            int max_cycles = 0;
            for (int c = 0; c < accel.windowsPerPallet; c++) {
                int64_t w = tiling.windowIndex(pallet, c);
                if (w < 0)
                    continue;
                auto brick = tiling.gatherBrick(
                    input, tiling.windowCoord(w), tiling.setCoord(s));
                int t = brickScheduleCycles(brick, tile.firstStageBits);
                max_cycles = std::max(max_cycles, t);
                for (uint16_t n : brick)
                    pop_sum += std::popcount(n);
            }
            // Even an all-zero pallet step holds the pipeline for the
            // SB read cycle.
            int64_t set_cycles = std::max(1, max_cycles);
            if (tile.modelNmStalls) {
                int64_t fetch = sim::nmFetchCycles(tiling, pallet, s);
                stall_cycles += nm.step(prev_process, fetch);
            }
            process_cycles += set_cycles;
            prev_process = set_cycles;
        }
    }

    sim::LayerResult result;
    result.layerName = layer.name;
    result.engineName = "PRA-pallet";
    result.sampleScale = plan.scale;
    double passes = static_cast<double>(tiling.passes());
    result.cycles = passes * plan.scale *
                    static_cast<double>(process_cycles + stall_cycles);
    result.nmStallCycles = passes * plan.scale *
                           static_cast<double>(stall_cycles);
    result.effectualTerms = plan.scale * pop_sum * layer.numFilters;
    // One SB read per pallet step: the same count DaDN performs
    // (Section V-E's "accessed the same number of times" baseline).
    result.sbReadSteps = passes * static_cast<double>(tiling.numPallets()) *
                         static_cast<double>(num_sets);
    return result;
}

} // namespace models
} // namespace pra
