#include "models/pragmatic/tile.h"

#include <algorithm>
#include <vector>

#include "models/pragmatic/brick_cost.h"
#include "sim/nm_model.h"
#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

/**
 * Exact per-block accumulators: every field is an integer (term
 * counts sum set bits), so partials combined in block order equal
 * the serial accumulation bit for bit.
 */
struct PalletPartial
{
    int64_t processCycles = 0;
    int64_t stallCycles = 0;
    int64_t terms = 0;
};

sim::LayerResult
simulateImpl(const dnn::LayerSpec &layer,
             const dnn::NeuronTensor &input,
             const sim::LayerWorkload *workload,
             const sim::AccelConfig &accel,
             const PragmaticTileConfig &tile,
             const sim::SampleSpec &sample,
             const util::InnerExecutor &exec)
{
    sim::LayerTiling tiling(layer, accel);
    sim::SamplePlan plan = sim::planSample(tiling.numPallets(), sample);
    PRA_CHECK(!plan.indices.empty(),
                         "pallet sync: layer has no pallets");

    const int64_t num_sets = tiling.numSynapseSets();
    BrickCostContext ctx(tiling, input, workload,
                         tile.firstStageBits);
    const BrickCostModel &costs = ctx.costs();
    const std::vector<sim::SynapseSetCoord> &set_coords =
        ctx.setCoords();

    const int64_t num_units = static_cast<int64_t>(plan.indices.size());
    const int blocks = exec.blockCount(num_units);
    std::vector<PalletPartial> partials(
        static_cast<size_t>(std::max(blocks, 1)));

    // Pallets are independent: the fetch/process overlap window resets
    // at a pallet boundary, so contiguous pallet blocks accumulate
    // exact partials that combine to the serial result.
    exec.forEachBlock(blocks, [&](int block) {
        auto [lo, hi] = util::InnerExecutor::blockRange(num_units,
                                                        blocks, block);
        PalletPartial acc;
        sim::NmOverlapTracker nm;
        std::vector<sim::WindowCoord> col_coords(
            static_cast<size_t>(accel.windowsPerPallet));
        for (int64_t pi = lo; pi < hi; pi++) {
            int64_t pallet = plan.indices[static_cast<size_t>(pi)];
            // Window coordinates are set-independent; resolve the
            // pallet's active columns once (they are the contiguous
            // prefix — only the layer's last pallet is partial).
            const int active = tiling.windowsInPallet(pallet);
            for (int c = 0; c < active; c++)
                col_coords[static_cast<size_t>(c)] = tiling.windowCoord(
                    tiling.windowIndex(pallet, c));
            // Fetch of step (p, s+1) overlaps processing of (p, s);
            // the previous step's processing time hides the current
            // fetch.
            int64_t prev_process = 0;
            for (int64_t s = 0; s < num_sets; s++) {
                int max_cycles = 0;
                for (int c = 0; c < active; c++) {
                    BrickCostModel::Cost cost = costs.brick(
                        col_coords[static_cast<size_t>(c)],
                        set_coords[static_cast<size_t>(s)]);
                    max_cycles = std::max(max_cycles, cost.cycles);
                    acc.terms += cost.terms;
                }
                // Even an all-zero pallet step holds the pipeline for
                // the SB read cycle.
                int64_t set_cycles = std::max(1, max_cycles);
                if (tile.modelNmStalls) {
                    int64_t fetch =
                        sim::nmFetchCycles(tiling, pallet, s);
                    acc.stallCycles += nm.step(prev_process, fetch);
                }
                acc.processCycles += set_cycles;
                prev_process = set_cycles;
            }
        }
        partials[static_cast<size_t>(block)] = acc;
    });

    PalletPartial total;
    for (const PalletPartial &partial : partials) {
        total.processCycles += partial.processCycles;
        total.stallCycles += partial.stallCycles;
        total.terms += partial.terms;
    }

    sim::LayerResult result;
    result.layerName = layer.name;
    result.engineName = "PRA-pallet";
    result.sampleScale = plan.scale;
    double passes = static_cast<double>(tiling.passes());
    result.cycles = passes * plan.scale *
                    static_cast<double>(total.processCycles +
                                        total.stallCycles);
    result.nmStallCycles = passes * plan.scale *
                           static_cast<double>(total.stallCycles);
    result.effectualTerms = plan.scale *
                            static_cast<double>(total.terms) *
                            layer.numFilters;
    // One SB read per pallet step: the same count DaDN performs
    // (Section V-E's "accessed the same number of times" baseline).
    result.sbReadSteps = passes * static_cast<double>(tiling.numPallets()) *
                         static_cast<double>(num_sets);
    return result;
}

} // namespace

sim::LayerResult
simulateLayerPalletSync(const dnn::LayerSpec &layer,
                        const dnn::NeuronTensor &input,
                        const sim::AccelConfig &accel,
                        const PragmaticTileConfig &tile,
                        const sim::SampleSpec &sample)
{
    return simulateImpl(layer, input, nullptr, accel, tile, sample,
                        util::InnerExecutor());
}

sim::LayerResult
simulateLayerPalletSync(const dnn::LayerSpec &layer,
                        const sim::LayerWorkload &workload,
                        const sim::AccelConfig &accel,
                        const PragmaticTileConfig &tile,
                        const sim::SampleSpec &sample,
                        const util::InnerExecutor &exec)
{
    return simulateImpl(layer, workload.tensor(), &workload, accel,
                        tile, sample, exec);
}

} // namespace models
} // namespace pra
