/**
 * @file
 * Per-column neuron lane synchronization with synapse set registers
 * (paper Section V-E, Figure 8).
 *
 * Each PIP column advances through the synapse-set stream
 * independently, bounded by three structural constraints:
 *
 *  1. one SB read per cycle (single port, one shared bus);
 *  2. a pool of x synapse set registers (SSRs): a set read from SB
 *     stays in an SSR until *all* columns have copied it into their
 *     PIP synapse registers, so the lead column can run at most x
 *     sets ahead of the slowest column (x == 0 models the ideal,
 *     infinite-register design, "perCol-ideal");
 *  3. the dispatcher double-buffers pallets: a column may only enter
 *     pallet p once its neuron bricks arrived from NM, and the fetch
 *     of pallet p cannot complete before every column drained pallet
 *     p - 2 (Section V-E: "a two pallet buffer in the dispatcher is
 *     all that is needed").
 *
 * The implementation is an event-ordered sweep over global set
 * indices: all times needed for set g are known once sets < g are
 * placed, so no event queue is required.
 */

#pragma once

#include "dnn/layer_spec.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"

namespace pra {
namespace models {

/** Parameters of the per-column synchronization engine. */
struct ColumnSyncConfig
{
    int firstStageBits = 2;  ///< L: first-stage shifter width.
    int ssrCount = 1;        ///< Synapse set registers; 0 = infinite.
    bool modelNmStalls = true; ///< Model the dispatcher pallet fetch.

    bool ideal() const { return ssrCount <= 0; }
};

/** Simulate one layer under per-column synchronization. */
sim::LayerResult
simulateLayerColumnSync(const dnn::LayerSpec &layer,
                        const dnn::NeuronTensor &input,
                        const sim::AccelConfig &accel,
                        const ColumnSyncConfig &config,
                        const sim::SampleSpec &sample);

/**
 * Workload-view variant: identical result, resolving brick costs
 * through the precomputed planes where possible. Column sync carries
 * SSR/dispatcher state across the whole pallet stream, so it does
 * not block-split (no InnerExecutor parameter).
 */
sim::LayerResult
simulateLayerColumnSync(const dnn::LayerSpec &layer,
                        const sim::LayerWorkload &workload,
                        const sim::AccelConfig &accel,
                        const ColumnSyncConfig &config,
                        const sim::SampleSpec &sample);

} // namespace models
} // namespace pra

