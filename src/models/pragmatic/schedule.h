/**
 * @file
 * The per-brick oneffset schedule with 2-stage shifting
 * (paper Sections V-A, V-D, Figure 7b).
 *
 * A PIP column processes the 16 neurons of a brick one oneffset per
 * neuron per cycle. With 2-stage shifting the per-synapse (first
 * stage) shifters are only L bits wide; each cycle the shared column
 * control picks the minimum pending oneffset C, drives the second-
 * stage shifter with C, and every lane whose pending oneffset k
 * satisfies k - C < 2^L fires its first-stage shifter with k - C.
 * Lanes with k - C >= 2^L stall (their AND gate injects a null term).
 * L == 4 can express any difference (0..15), which is the single-
 * stage PRA of Section V-A/B; L == 0 fires only lanes whose offset
 * equals the minimum.
 *
 * The number of cycles this policy takes to drain a brick is the
 * fundamental timing quantity of the Pragmatic performance model.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pra {
namespace models {

/** Largest supported first-stage shifter width (single-stage PRA). */
inline constexpr int kMaxFirstStageBits = 4;

/**
 * Cycles for a PIP column to drain a brick of neuron patterns with
 * first-stage shifters of @p first_stage_bits bits. An all-zero brick
 * takes 0 cycles (callers clamp to the 1-cycle set minimum).
 *
 * Guarantees (tested as properties):
 *  - result <= 16 for any input (never slower than DaDN's 16 cycles
 *    per brick-set across a pallet, paper Section V-A3);
 *  - first_stage_bits == 4 gives max(popcount) over the brick;
 *  - first_stage_bits == 0 gives the number of distinct set-bit
 *    positions across the brick;
 *  - monotonically non-increasing in first_stage_bits.
 */
int brickScheduleCycles(std::span<const uint16_t> neurons,
                        int first_stage_bits);

/**
 * Batched schedule kernel: cycles for every brick of one channel-major
 * row of neurons in a single call.
 *
 * @p row is @p columns consecutive (x) positions of @p channels
 * contiguous channel values each — exactly one y-row of a
 * NeuronTensor — and each position carves into ceil(channels / 16)
 * bricks (the last one partial when channels is not a multiple of 16;
 * missing lanes count as zero, as gathers pad them). @p out receives
 * columns * ceil(channels / 16) cycle counts in (x, brick) order.
 *
 * Exactly equivalent to brickScheduleCycles() per brick — the drain
 * loop is the same policy expressed branchlessly over a fixed 16-lane
 * array (a lane fires iff its lowest pending oneffset falls inside
 * the reach window above the global minimum) — but without the
 * per-brick span setup, so plane builders can walk a whole tensor at
 * memory speed. Property-tested against the serial kernel.
 */
void scheduleCyclesRow(std::span<const uint16_t> row, int columns,
                       int channels, int first_stage_bits,
                       std::span<uint8_t> out);

/** One cycle of a schedule trace (for validation and visualization). */
struct ScheduleCycle
{
    uint8_t secondStageShift = 0; ///< C: the common stage-2 offset.
    uint16_t firedLanes = 0;      ///< Bitmask of lanes that consumed.
    /** First-stage shift amount per lane; only fired lanes are valid. */
    uint8_t firstStageShift[16] = {};
};

/** Full cycle-by-cycle schedule of one brick. */
struct ScheduleTrace
{
    std::vector<ScheduleCycle> cycles;

    int numCycles() const { return static_cast<int>(cycles.size()); }
};

/**
 * Detailed trace of the schedule brickScheduleCycles() counts; the
 * functional PIP replays this trace and tests assert the two agree.
 */
ScheduleTrace brickScheduleTrace(std::span<const uint16_t> neurons,
                                 int first_stage_bits);

} // namespace models
} // namespace pra

