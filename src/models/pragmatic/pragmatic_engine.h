/**
 * @file
 * Engine-registry adapters for Pragmatic (kinds "pragmatic" and
 * "pragmatic-col").
 *
 * "pragmatic" is the pallet-synchronized design of Sections V-A4/V-B;
 * "pragmatic-col" the per-column design of Section V-E. Knobs:
 *   bits=L      first-stage shifter width, 0..4      (default 2)
 *   trim=0|1    Section V-F software trimming        (default 1)
 *   repr=fixed16|quant8  neuron representation       (default fixed16)
 *   nmstalls=0|1  model dispatcher/NM fetch overlap  (default 1)
 *   ssr=N       ("pragmatic-col" only) synapse set registers;
 *               0 models the infinite-register ideal (default 1)
 */

#pragma once

#include "models/pragmatic/simulator.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** Pragmatic (either sync scheme) behind the Engine interface. */
class PragmaticEngine : public sim::Engine
{
  public:
    /** @p sync selects which registry kind the knobs configure. */
    PragmaticEngine(SyncScheme sync, const sim::EngineKnobs &knobs);

    std::string kind() const override;
    std::string name() const override { return config_.label(); }
    sim::InputStream inputStream() const override;

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;

    /**
     * Workload fast path: consumes the shared brick planes and (for
     * pallet sync, whose pallets are independent) splits the layer
     * across @p exec. Bit-identical to the tensor overload.
     */
    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const sim::LayerWorkload &workload,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample,
                  const util::InnerExecutor &exec) const override;

    const PragmaticConfig &config() const { return config_; }

  private:
    PragmaticConfig config_;
};

} // namespace models
} // namespace pra

