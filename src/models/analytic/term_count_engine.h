/**
 * @file
 * Engine-registry adapter for the analytic term-count model (kind
 * "terms").
 *
 * The analytic model measures *work* (single-bit terms, the paper's
 * Figure 2 metric), not timed cycles; the adapter reports the selected
 * series' term count in both the cycles and effectualTerms fields, so
 * ratios between two "terms" engines reproduce the paper's relative
 * work-reduction numbers (e.g. terms:series=dadn over
 * terms:series=pra-red).
 *
 * Knobs:
 *   series=dadn|zn|cvn|stripes|pra|pra-red   (default pra-red)
 *     dadn     16 terms per product (bit-parallel baseline)
 *     zn       ideal zero-neuron skipping
 *     cvn      Cnvlutin (no skipping in the first layer)
 *     stripes  p terms per product at profiled precision p
 *     pra      essential bits of the raw neurons
 *     pra-red  essential bits after Section V-F trimming
 */

#pragma once

#include "models/analytic/term_count.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** The analytic term-count model behind the Engine interface. */
class TermCountEngine : public sim::Engine
{
  public:
    enum class Series { Dadn, Zn, Cvn, Stripes, PraRaw, PraTrimmed };

    explicit TermCountEngine(const sim::EngineKnobs &knobs);

    std::string kind() const override { return "terms"; }
    std::string name() const override;

    sim::InputStream inputStream() const override
    {
        return sim::InputStream::Fixed16Raw;
    }

    /**
     * Term counts of one layer. The trimmed stream is derived from
     * @p input by the layer's precision-window mask — bit-identical
     * to ActivationSynthesizer::synthesizeFixed16Trimmed(). The
     * first-layer CVN rule needs network context, so this treats the
     * layer as non-first; runNetwork() applies the rule.
     */
    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;

    /**
     * Layer loop honoring the first-layer CVN rule, consuming the
     * source's cached raw *and* trimmed views (and their term
     * planes) instead of re-deriving the trimmed stream.
     */
    sim::NetworkResult
    runNetwork(const dnn::Network &network,
               const sim::WorkloadSource &source,
               const sim::AccelConfig &accel,
               const sim::SampleSpec &sample,
               const util::InnerExecutor &exec) const override;

    using sim::Engine::runNetwork;

    Series series() const { return series_; }

  private:
    Series series_ = Series::PraTrimmed;

    sim::LayerResult layerTerms(const dnn::LayerSpec &layer,
                                const dnn::NeuronTensor &raw,
                                bool is_first_layer,
                                const sim::SampleSpec &sample) const;

    sim::LayerResult resultFromCounts(const dnn::LayerSpec &layer,
                                      const LayerTermCounts &counts) const;
};

} // namespace models
} // namespace pra

