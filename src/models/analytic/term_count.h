/**
 * @file
 * Analytic term-count models (paper Section II, Figures 2 and 3).
 *
 * The paper motivates Pragmatic by counting the *terms* (single-bit
 * multiplicand/multiplicator products, equivalently additions) each
 * compute approach performs for the convolutional layers:
 *
 *  - DaDN:     16 terms per product (bit-parallel, value-blind);
 *  - ZN:       ideal engine skipping every zero-valued neuron;
 *  - CVN:      Cnvlutin — skips zero neurons in all but the first
 *              layer (whose input is not ReLU output);
 *  - STR:      p terms per product for a layer of precision p;
 *  - PRA-fp16: one term per essential (set) bit of the raw neuron;
 *  - PRA-red:  one term per essential bit after software trimming.
 *
 * For the 8-bit quantized stream the baseline is 8 terms per product;
 * the ideal zero-skip engine and PRA are counted the same way.
 */

#pragma once

#include "dnn/activation_synth.h"
#include "dnn/layer_spec.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "sim/sampling.h"
#include "sim/workload_cache.h"

namespace pra {
namespace models {

/** Absolute term counts for one layer (sampled and scaled). */
struct LayerTermCounts
{
    double dadn = 0.0;
    double zn = 0.0;
    double cvn = 0.0;
    double stripes = 0.0;
    double praRaw = 0.0;     ///< PRA-fp16: essential bits, untrimmed.
    double praTrimmed = 0.0; ///< PRA-red: essential bits after trim.
};

/**
 * Count terms for one 16-bit fixed-point layer.
 *
 * @param layer    geometry and profiled precision.
 * @param raw      untrimmed input neurons.
 * @param trimmed  the same neurons after Section V-F masking.
 * @param is_first_layer CVN cannot skip zeros in the first layer.
 * @param sample   window sampling policy (unit = window).
 */
LayerTermCounts
countLayerTerms16(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &raw,
                  const dnn::NeuronTensor &trimmed,
                  bool is_first_layer, const sim::SampleSpec &sample);

/**
 * Workload-view variant: identical counts, accumulated brick-at-a-
 * time from the precomputed per-brick term planes instead of element
 * by element.
 */
LayerTermCounts
countLayerTerms16(const dnn::LayerSpec &layer,
                  const sim::LayerWorkload &raw,
                  const sim::LayerWorkload &trimmed,
                  bool is_first_layer, const sim::SampleSpec &sample);

/** Relative (to DaDN) term counts for one network, 16-bit stream. */
struct NetworkTerms16
{
    double zn = 0.0;
    double cvn = 0.0;
    double stripes = 0.0;
    double praFp16 = 0.0;
    double praRed = 0.0;
};

/** Compute Figure 2's series for one network. */
NetworkTerms16 countNetworkTerms16(const dnn::Network &network,
                                   const dnn::ActivationSynthesizer &synth,
                                   const sim::SampleSpec &sample);

/** Relative (to the 8-bit baseline) term counts, quantized stream. */
struct NetworkTerms8
{
    double zeroSkip = 0.0; ///< Ideal engine skipping zero codes.
    double pra = 0.0;      ///< Essential bits of the 8-bit codes.
};

/** Compute Figure 3's series for one network. */
NetworkTerms8 countNetworkTerms8(const dnn::Network &network,
                                 const dnn::ActivationSynthesizer &synth,
                                 const sim::SampleSpec &sample);

} // namespace models
} // namespace pra

