#include "models/analytic/term_count_engine.h"

#include <algorithm>

#include "dnn/activation_synth.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

const char *
seriesLabel(TermCountEngine::Series series)
{
    switch (series) {
      case TermCountEngine::Series::Dadn: return "dadn";
      case TermCountEngine::Series::Zn: return "zn";
      case TermCountEngine::Series::Cvn: return "cvn";
      case TermCountEngine::Series::Stripes: return "stripes";
      case TermCountEngine::Series::PraRaw: return "pra";
      case TermCountEngine::Series::PraTrimmed: return "pra-red";
    }
    util::fatal("seriesLabel: bad series");
}

double
selectSeries(const LayerTermCounts &counts,
             TermCountEngine::Series series)
{
    switch (series) {
      case TermCountEngine::Series::Dadn: return counts.dadn;
      case TermCountEngine::Series::Zn: return counts.zn;
      case TermCountEngine::Series::Cvn: return counts.cvn;
      case TermCountEngine::Series::Stripes: return counts.stripes;
      case TermCountEngine::Series::PraRaw: return counts.praRaw;
      case TermCountEngine::Series::PraTrimmed:
        return counts.praTrimmed;
    }
    util::fatal("selectSeries: bad series");
}

/**
 * Re-derive the trimmed stream from the raw one: AND with the layer's
 * precision-window mask at the synthesis anchor (the same formula
 * calibrateFixed16 uses), matching synthesizeFixed16Trimmed().
 */
dnn::NeuronTensor
trimStream(const dnn::LayerSpec &layer,
           const dnn::NeuronTensor &raw)
{
    uint16_t mask =
        layer.precisionWindow(dnn::synthesisAnchor(layer)).mask();
    dnn::NeuronTensor trimmed = raw;
    for (auto &value : trimmed.flat())
        value = static_cast<uint16_t>(value & mask);
    return trimmed;
}

} // namespace

TermCountEngine::TermCountEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs("terms", knobs, {"series"});
    std::string series = sim::knobString(knobs, "series", "pra-red");
    if (series == "dadn")
        series_ = Series::Dadn;
    else if (series == "zn")
        series_ = Series::Zn;
    else if (series == "cvn")
        series_ = Series::Cvn;
    else if (series == "stripes")
        series_ = Series::Stripes;
    else if (series == "pra")
        series_ = Series::PraRaw;
    else if (series == "pra-red")
        series_ = Series::PraTrimmed;
    else
        util::fatal("terms: unknown series '" + series + "'");
}

std::string
TermCountEngine::name() const
{
    return std::string("terms-") + seriesLabel(series_);
}

sim::LayerResult
TermCountEngine::resultFromCounts(const dnn::LayerSpec &layer,
                                  const LayerTermCounts &counts) const
{
    sim::LayerResult lr;
    lr.layerName = layer.name;
    lr.engineName = name();
    lr.cycles = selectSeries(counts, series_);
    lr.effectualTerms = lr.cycles;
    return lr;
}

sim::LayerResult
TermCountEngine::layerTerms(const dnn::LayerSpec &layer,
                            const dnn::NeuronTensor &raw,
                            bool is_first_layer,
                            const sim::SampleSpec &sample) const
{
    return resultFromCounts(
        layer, countLayerTerms16(layer, raw, trimStream(layer, raw),
                                 is_first_layer, sample));
}

sim::LayerResult
TermCountEngine::simulateLayer(const dnn::LayerSpec &layer,
                               const dnn::NeuronTensor &input,
                               const sim::AccelConfig &accel,
                               const sim::SampleSpec &sample) const
{
    (void)accel; // Term counts are machine-shape independent.
    return layerTerms(layer, input, false, sample);
}

sim::NetworkResult
TermCountEngine::runNetwork(const dnn::Network &network,
                            const sim::WorkloadSource &source,
                            const sim::AccelConfig &accel,
                            const sim::SampleSpec &sample,
                            const util::InnerExecutor &exec) const
{
    (void)accel;
    (void)exec; // Term counting is already brick-granular and cheap.
    sim::NetworkResult result;
    result.networkName = network.name;
    result.engineName = name();
    result.layers.reserve(network.layers.size());
    for (size_t i = 0; i < network.layers.size(); i++) {
        // Pool layers are structural; nothing to count.
        if (!network.layers[i].priced())
            continue;
        // The trimmed view is the synthesizer's own trimmed stream —
        // bit-identical to masking the raw one (see layerTerms) and
        // shared with every other consumer through the cache.
        std::shared_ptr<const sim::LayerWorkload> raw = source.layer(
            static_cast<int>(i), sim::InputStream::Fixed16Raw);
        std::shared_ptr<const sim::LayerWorkload> trimmed =
            source.layer(static_cast<int>(i),
                         sim::InputStream::Fixed16Trimmed);
        // The first-layer rule (CVN cannot skip the dense image
        // input, Section II-B) only applies when the network starts
        // at its convolutional front; an FC-selected network's first
        // layer consumes pooled ReLU outputs.
        bool first_layer =
            i == 0 && network.layers[i].kind == dnn::LayerKind::Conv;
        result.layers.push_back(resultFromCounts(
            network.layers[i],
            countLayerTerms16(network.layers[i], *raw, *trimmed,
                              first_layer, sample)));
    }
    return result;
}

} // namespace models
} // namespace pra
