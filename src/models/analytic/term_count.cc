#include "models/analytic/term_count.h"

#include <bit>

#include "fixedpoint/fixed_point.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

namespace {

/** Per-window accumulation of value statistics. */
struct WindowStats
{
    int64_t elements = 0;
    int64_t nonZero = 0;
    int64_t popRaw = 0;
    int64_t popTrimmed = 0;
};

/**
 * Accumulate the stats of the window at output position (wx, wy):
 * each of its Fx*Fy*I input neurons is used once per filter.
 */
WindowStats
windowStats(const dnn::LayerSpec &layer, const dnn::NeuronTensor &raw,
            const dnn::NeuronTensor *trimmed, int wx, int wy)
{
    WindowStats stats;
    int base_x = wx * layer.stride - layer.pad;
    int base_y = wy * layer.stride - layer.pad;
    for (int fy = 0; fy < layer.filterY; fy++) {
        int y = base_y + fy;
        for (int fx = 0; fx < layer.filterX; fx++) {
            int x = base_x + fx;
            bool padding = x < 0 || x >= layer.inputX || y < 0 ||
                           y >= layer.inputY;
            for (int i = 0; i < layer.inputChannels; i++) {
                stats.elements++;
                if (padding)
                    continue;
                uint16_t v = raw.at(x, y, i);
                if (v == 0)
                    continue;
                stats.nonZero++;
                stats.popRaw += std::popcount(v);
                if (trimmed)
                    stats.popTrimmed +=
                        std::popcount(trimmed->at(x, y, i));
            }
        }
    }
    return stats;
}

/**
 * The same accumulation as windowStats, but summing whole bricks from
 * the precomputed planes (identical integers, ~kBrickSize fewer
 * iterations).
 */
WindowStats
planeWindowStats(const dnn::LayerSpec &layer,
                 const sim::BrickPlanes &raw,
                 const sim::BrickPlanes &trimmed, int wx, int wy)
{
    WindowStats stats;
    int base_x = wx * layer.stride - layer.pad;
    int base_y = wy * layer.stride - layer.pad;
    for (int fy = 0; fy < layer.filterY; fy++) {
        int y = base_y + fy;
        for (int fx = 0; fx < layer.filterX; fx++) {
            int x = base_x + fx;
            stats.elements += layer.inputChannels;
            if (x < 0 || x >= layer.inputX || y < 0 ||
                y >= layer.inputY)
                continue;
            size_t idx = raw.index(x, y, 0);
            for (int b = 0; b < raw.bricksPerColumn; b++) {
                stats.nonZero += raw.nonZero[idx + b];
                stats.popRaw += raw.pop[idx + b];
                stats.popTrimmed += trimmed.pop[idx + b];
            }
        }
    }
    return stats;
}

/** Fold one window's stats into the layer counts. */
void
addWindowCounts(LayerTermCounts &counts, const dnn::LayerSpec &layer,
                const WindowStats &stats, bool is_first_layer)
{
    double filters = static_cast<double>(layer.numFilters);
    counts.dadn += 16.0 * stats.elements * filters;
    counts.zn += 16.0 * stats.nonZero * filters;
    counts.cvn += 16.0 *
                  (is_first_layer ? stats.elements : stats.nonZero) *
                  filters;
    counts.stripes += static_cast<double>(layer.profiledPrecision) *
                      stats.elements * filters;
    counts.praRaw += static_cast<double>(stats.popRaw) * filters;
    counts.praTrimmed += static_cast<double>(stats.popTrimmed) *
                         filters;
}

void
scaleCounts(LayerTermCounts &counts, double scale)
{
    counts.dadn *= scale;
    counts.zn *= scale;
    counts.cvn *= scale;
    counts.stripes *= scale;
    counts.praRaw *= scale;
    counts.praTrimmed *= scale;
}

} // namespace

LayerTermCounts
countLayerTerms16(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &raw,
                  const dnn::NeuronTensor &trimmed,
                  bool is_first_layer, const sim::SampleSpec &sample)
{
    sim::SamplePlan plan = sim::planSample(layer.windows(), sample);
    PRA_CHECK(!plan.indices.empty(),
                         "countLayerTerms16: no windows");

    LayerTermCounts counts;
    for (int64_t w : plan.indices) {
        int wx = static_cast<int>(w % layer.outX());
        int wy = static_cast<int>(w / layer.outX());
        WindowStats stats = windowStats(layer, raw, &trimmed, wx, wy);
        addWindowCounts(counts, layer, stats, is_first_layer);
    }
    scaleCounts(counts, plan.scale);
    return counts;
}

LayerTermCounts
countLayerTerms16(const dnn::LayerSpec &layer,
                  const sim::LayerWorkload &raw,
                  const sim::LayerWorkload &trimmed,
                  bool is_first_layer, const sim::SampleSpec &sample)
{
    sim::SamplePlan plan = sim::planSample(layer.windows(), sample);
    PRA_CHECK(!plan.indices.empty(),
                         "countLayerTerms16: no windows");

    const sim::BrickPlanes &raw_planes = raw.brickPlanes();
    const sim::BrickPlanes &trimmed_planes = trimmed.brickPlanes();
    LayerTermCounts counts;
    for (int64_t w : plan.indices) {
        int wx = static_cast<int>(w % layer.outX());
        int wy = static_cast<int>(w / layer.outX());
        WindowStats stats = planeWindowStats(layer, raw_planes,
                                             trimmed_planes, wx, wy);
        addWindowCounts(counts, layer, stats, is_first_layer);
    }
    scaleCounts(counts, plan.scale);
    return counts;
}

NetworkTerms16
countNetworkTerms16(const dnn::Network &network,
                    const dnn::ActivationSynthesizer &synth,
                    const sim::SampleSpec &sample)
{
    LayerTermCounts totals;
    for (size_t i = 0; i < network.layers.size(); i++) {
        if (!network.layers[i].priced())
            continue; // Structural pools contribute no terms.
        dnn::NeuronTensor raw =
            synth.synthesizeFixed16(static_cast<int>(i));
        dnn::NeuronTensor trimmed =
            synth.synthesizeFixed16Trimmed(static_cast<int>(i));
        LayerTermCounts c = countLayerTerms16(network.layers[i], raw,
                                              trimmed, i == 0, sample);
        totals.dadn += c.dadn;
        totals.zn += c.zn;
        totals.cvn += c.cvn;
        totals.stripes += c.stripes;
        totals.praRaw += c.praRaw;
        totals.praTrimmed += c.praTrimmed;
    }
    PRA_CHECK(totals.dadn > 0.0,
                         "countNetworkTerms16: zero baseline");
    NetworkTerms16 rel;
    rel.zn = totals.zn / totals.dadn;
    rel.cvn = totals.cvn / totals.dadn;
    rel.stripes = totals.stripes / totals.dadn;
    rel.praFp16 = totals.praRaw / totals.dadn;
    rel.praRed = totals.praTrimmed / totals.dadn;
    return rel;
}

NetworkTerms8
countNetworkTerms8(const dnn::Network &network,
                   const dnn::ActivationSynthesizer &synth,
                   const sim::SampleSpec &sample)
{
    double baseline = 0.0;
    double zero_skip = 0.0;
    double pra = 0.0;
    for (size_t i = 0; i < network.layers.size(); i++) {
        const auto &layer = network.layers[i];
        if (!layer.priced())
            continue; // Structural pools contribute no terms.
        dnn::NeuronTensor codes =
            synth.synthesizeQuant8(static_cast<int>(i));
        sim::SamplePlan plan = sim::planSample(layer.windows(), sample);
        double filters = static_cast<double>(layer.numFilters);
        for (int64_t w : plan.indices) {
            int wx = static_cast<int>(w % layer.outX());
            int wy = static_cast<int>(w / layer.outX());
            WindowStats stats =
                windowStats(layer, codes, nullptr, wx, wy);
            baseline += plan.scale * 8.0 * stats.elements * filters;
            zero_skip += plan.scale * 8.0 * stats.nonZero * filters;
            pra += plan.scale * static_cast<double>(stats.popRaw) *
                   filters;
        }
    }
    PRA_CHECK(baseline > 0.0,
                         "countNetworkTerms8: zero baseline");
    NetworkTerms8 rel;
    rel.zeroSkip = zero_skip / baseline;
    rel.pra = pra / baseline;
    return rel;
}

} // namespace models
} // namespace pra
