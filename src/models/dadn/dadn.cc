#include "models/dadn/dadn.h"

#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

DadnModel::DadnModel(const sim::AccelConfig &config)
    : config_(config)
{
    PRA_CHECK(config_.valid(), "DadnModel: invalid config");
}

double
DadnModel::layerCycles(const dnn::LayerSpec &layer) const
{
    sim::LayerTiling tiling(layer, config_);
    // One cycle per (window, synapse set); windows are processed one
    // brick per cycle, bit-parallel.
    return static_cast<double>(tiling.passes()) *
           static_cast<double>(layer.windows()) *
           static_cast<double>(tiling.numSynapseSets());
}

sim::LayerResult
DadnModel::layerResult(const dnn::LayerSpec &layer) const
{
    sim::LayerResult lr;
    lr.layerName = layer.name;
    lr.engineName = "DaDN";
    lr.cycles = layerCycles(layer);
    // Every term is processed, effectual or not; count the
    // effectual ones as 16 per product upper bound is handled by
    // the analytic module. Here: products * 16 terms processed.
    lr.effectualTerms = static_cast<double>(layer.products()) * 16.0;
    lr.sbReadSteps = lr.cycles;
    return lr;
}

sim::NetworkResult
DadnModel::run(const dnn::Network &network) const
{
    sim::NetworkResult result;
    result.networkName = network.name;
    result.engineName = "DaDN";
    for (const auto &layer : network.layers) {
        if (!layer.priced())
            continue; // Structural pools cost no NFU cycles.
        result.layers.push_back(layerResult(layer));
    }
    return result;
}

int64_t
DadnModel::nfuBrickDot(std::span<const uint16_t> neurons,
                       std::span<const int16_t> synapses)
{
    PRA_CHECK(neurons.size() == synapses.size(),
                         "nfuBrickDot: lane count mismatch");
    // Lane multipliers.
    int64_t products[dnn::kBrickSize] = {};
    PRA_CHECK(neurons.size() <= dnn::kBrickSize,
                         "nfuBrickDot: too many lanes");
    for (size_t lane = 0; lane < neurons.size(); lane++) {
        products[lane] = static_cast<int64_t>(synapses[lane]) *
                         static_cast<int64_t>(neurons[lane]);
    }
    // Adder tree: pairwise reduction as in hardware.
    size_t width = dnn::kBrickSize;
    while (width > 1) {
        for (size_t i = 0; i < width / 2; i++)
            products[i] = products[2 * i] + products[2 * i + 1];
        width /= 2;
    }
    return products[0];
}

int64_t
DadnModel::computeWindow(const dnn::LayerSpec &layer,
                         const dnn::NeuronTensor &input,
                         const dnn::FilterTensor &filter,
                         int window_x, int window_y) const
{
    sim::LayerTiling tiling(layer, config_);
    sim::WindowCoord w{window_x, window_y};
    int64_t acc = 0;
    for (int64_t s = 0; s < tiling.numSynapseSets(); s++) {
        sim::SynapseSetCoord coord = tiling.setCoord(s);
        auto neurons = tiling.gatherBrick(input, w, coord);
        int16_t synapses[dnn::kBrickSize] = {};
        int lanes = std::min(config_.neuronLanes,
                             layer.inputChannels - coord.brickI);
        for (int lane = 0; lane < lanes; lane++)
            synapses[lane] = filter.at(coord.fx, coord.fy,
                                       coord.brickI + lane);
        acc += nfuBrickDot(std::span<const uint16_t>(neurons),
                           std::span<const int16_t>(synapses,
                                                    dnn::kBrickSize));
    }
    return acc;
}

} // namespace models
} // namespace pra
