#include "models/dadn/dadn_engine.h"

namespace pra {
namespace models {

DadnEngine::DadnEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs("dadn", knobs, {});
}

sim::LayerResult
DadnEngine::simulateLayer(const dnn::LayerSpec &layer,
                          const dnn::NeuronTensor &input,
                          const sim::AccelConfig &accel,
                          const sim::SampleSpec &sample) const
{
    (void)input;
    (void)sample; // DaDN cycle counts are exact; nothing to sample.
    return DadnModel(accel).layerResult(layer);
}

} // namespace models
} // namespace pra
