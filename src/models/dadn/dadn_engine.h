/**
 * @file
 * Engine-registry adapter for the DaDianNao baseline (kind "dadn").
 *
 * DaDN is value-independent, so the adapter takes no knobs and
 * requests no neuron stream.
 */

#pragma once

#include "models/dadn/dadn.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** The DaDN baseline behind the uniform Engine interface. */
class DadnEngine : public sim::Engine
{
  public:
    explicit DadnEngine(const sim::EngineKnobs &knobs);

    std::string kind() const override { return "dadn"; }
    std::string name() const override { return "DaDN"; }

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;
};

} // namespace models
} // namespace pra

