/**
 * @file
 * DaDianNao (DaDN) baseline model (paper Section IV-B).
 *
 * DaDN is the bit-parallel reference design: each cycle a tile reads
 * one 16-neuron brick and 16 synapse bricks and computes 256 products.
 * Its execution time is value-independent: one cycle per
 * (window, synapse set) pair per filter pass, so
 *   cycles = passes * windows * bricksPerWindow.
 *
 * The functional half models the NFU datapath (per-lane multipliers
 * feeding a 16-input adder tree per filter) and must match the golden
 * reference convolution exactly.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dnn/layer_spec.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"

namespace pra {
namespace models {

/** Cycle-count and functional model of the DaDN accelerator. */
class DadnModel
{
  public:
    explicit DadnModel(const sim::AccelConfig &config = {});

    /**
     * Cycles for one conv layer. DaDN performance does not depend on
     * neuron values, only geometry.
     */
    double layerCycles(const dnn::LayerSpec &layer) const;

    /** Full per-layer result (cycles, terms, SB reads) for one layer. */
    sim::LayerResult layerResult(const dnn::LayerSpec &layer) const;

    /** Per-layer results for a whole network. */
    sim::NetworkResult run(const dnn::Network &network) const;

    /**
     * Functional NFU step: multiply a neuron brick against one
     * filter's synapse brick and reduce through the adder tree;
     * returns the partial sum contribution.
     */
    static int64_t nfuBrickDot(std::span<const uint16_t> neurons,
                               std::span<const int16_t> synapses);

    /**
     * Functional model of a full window: iterates the layer's synapse
     * sets exactly as the hardware schedule does and accumulates
     * nfuBrickDot() partial sums; equals the reference window dot.
     */
    int64_t computeWindow(const dnn::LayerSpec &layer,
                          const dnn::NeuronTensor &input,
                          const dnn::FilterTensor &filter,
                          int window_x, int window_y) const;

    const sim::AccelConfig &config() const { return config_; }

  private:
    sim::AccelConfig config_;
};

} // namespace models
} // namespace pra

