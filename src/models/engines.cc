#include "models/engines.h"

#include "models/analytic/term_count_engine.h"
#include "models/dadn/dadn_engine.h"
#include "models/dynamic_stripes/dynamic_stripes_engine.h"
#include "models/laconic/laconic_engine.h"
#include "models/pragmatic/pragmatic_engine.h"
#include "models/stripes/stripes_engine.h"

namespace pra {
namespace models {

void
registerBuiltinEngines(sim::EngineRegistry &registry)
{
    registry.registerEngine(
        "dadn", "bit-parallel DaDianNao baseline (no knobs)",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<DadnEngine>(knobs);
        });
    registry.registerEngine(
        "stripes",
        "bit-serial Stripes baseline [precision=0..16 "
        "repr=fixed16|quant8]",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<StripesEngine>(knobs);
        });
    registry.registerEngine(
        "dynamic_stripes",
        "runtime per-group precision Stripes [granularity=N|layer "
        "column-regs=N leading-bit=0|1 diffy=0|1]",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<DynamicStripesEngine>(knobs);
        });
    registry.registerEngine(
        "laconic",
        "both-operand essential-bit term serialization (no knobs)",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<LaconicEngine>(knobs);
        });
    registry.registerEngine(
        "pragmatic",
        "Pragmatic, pallet sync [bits=0..4 trim=0|1 "
        "repr=fixed16|quant8 nmstalls=0|1]",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<PragmaticEngine>(SyncScheme::Pallet,
                                                     knobs);
        });
    registry.registerEngine(
        "pragmatic-col",
        "Pragmatic, per-column sync [ssr=N plus pragmatic knobs]",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<PragmaticEngine>(
                SyncScheme::PerColumn, knobs);
        });
    registry.registerEngine(
        "terms",
        "analytic term counts [series=dadn|zn|cvn|stripes|pra|pra-red]",
        [](const sim::EngineKnobs &knobs) {
            return std::make_unique<TermCountEngine>(knobs);
        });
}

const sim::EngineRegistry &
builtinEngines()
{
    static const sim::EngineRegistry registry = [] {
        sim::EngineRegistry r;
        registerBuiltinEngines(r);
        return r;
    }();
    return registry;
}

std::vector<sim::EngineSelection>
paperEngineGrid()
{
    std::vector<sim::EngineSelection> grid;
    grid.push_back({"dadn", {}});
    grid.push_back({"stripes", {}});
    for (int l = 0; l <= 4; l++)
        grid.push_back({"pragmatic", {{"bits", std::to_string(l)}}});
    grid.push_back({"pragmatic-col", {{"bits", "2"}, {"ssr", "1"}}});
    return grid;
}

std::vector<sim::EngineSelection>
coreEngineGrid()
{
    // Frozen expansion of "--engines=all" (see the header comment):
    // the five kinds that existed when the smoke goldens were
    // committed, default knobs, sorted order.
    return {{"dadn", {}},
            {"pragmatic", {}},
            {"pragmatic-col", {}},
            {"stripes", {}},
            {"terms", {}}};
}

} // namespace models
} // namespace pra
