/**
 * @file
 * Engine-registry adapter for the Stripes baseline (kind "stripes").
 *
 * Knobs:
 *   precision=N  fixed serial precision for every layer (1..16);
 *                0 (default) uses each layer's profiled precision.
 *   repr=fixed16|quant8
 *                fixed16 (default): value-independent, per-layer
 *                profiled (or overridden) precisions. quant8: the
 *                paper's Figure 12 configuration — Stripes runs the
 *                8-bit code stream at the per-layer precision its
 *                largest code actually needs, so the engine consumes
 *                the Quant8 input stream (synthetic or propagated)
 *                and derives the precision from it. Incompatible
 *                with a precision override.
 */

#pragma once

#include "models/stripes/stripes.h"
#include "sim/engine.h"
#include "sim/engine_registry.h"

namespace pra {
namespace models {

/** The Stripes baseline behind the uniform Engine interface. */
class StripesEngine : public sim::Engine
{
  public:
    explicit StripesEngine(const sim::EngineKnobs &knobs);

    std::string kind() const override { return "stripes"; }
    std::string name() const override;
    sim::InputStream inputStream() const override;

    sim::LayerResult
    simulateLayer(const dnn::LayerSpec &layer,
                  const dnn::NeuronTensor &input,
                  const sim::AccelConfig &accel,
                  const sim::SampleSpec &sample) const override;

  private:
    int precisionOverride_ = 0; ///< 0 = per-layer profiled precision.
    bool quant8_ = false;       ///< Price the 8-bit code stream.
};

} // namespace models
} // namespace pra

