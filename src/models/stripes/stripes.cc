#include "models/stripes/stripes.h"

#include "sim/tiling.h"
#include "util/check.h"
#include "util/logging.h"

namespace pra {
namespace models {

StripesModel::StripesModel(const sim::AccelConfig &config)
    : config_(config)
{
    PRA_CHECK(config_.valid(), "StripesModel: invalid config");
}

double
StripesModel::layerCycles(const dnn::LayerSpec &layer,
                          int precision) const
{
    PRA_CHECK(precision >= 1 && precision <= 16,
                         "StripesModel: precision out of range");
    sim::LayerTiling tiling(layer, config_);
    // Each synapse set costs `precision` serial cycles for the whole
    // pallet of 16 windows.
    return static_cast<double>(tiling.passes()) *
           static_cast<double>(tiling.numPallets()) *
           static_cast<double>(tiling.numSynapseSets()) *
           static_cast<double>(precision);
}

sim::NetworkResult
StripesModel::run(const dnn::Network &network) const
{
    std::vector<int> precisions;
    precisions.reserve(network.layers.size());
    for (const auto &layer : network.layers)
        precisions.push_back(layer.profiledPrecision);
    return run(network, precisions);
}

sim::NetworkResult
StripesModel::run(const dnn::Network &network,
                  std::span<const int> precisions) const
{
    PRA_CHECK(precisions.size() == network.layers.size(),
                         "StripesModel: precision list mismatch");
    sim::NetworkResult result;
    result.networkName = network.name;
    result.engineName = "Stripes";
    for (size_t i = 0; i < network.layers.size(); i++) {
        // Structural pool layers are never priced; their slot in the
        // precision list is ignored.
        if (!network.layers[i].priced())
            continue;
        result.layers.push_back(
            layerResult(network.layers[i], precisions[i]));
    }
    return result;
}

sim::LayerResult
StripesModel::layerResult(const dnn::LayerSpec &layer,
                          int precision) const
{
    sim::LayerResult lr;
    lr.layerName = layer.name;
    lr.engineName = "Stripes";
    lr.cycles = layerCycles(layer, precision);
    lr.effectualTerms = static_cast<double>(layer.products()) *
                        precision;
    lr.sbReadSteps = static_cast<double>(layer.windows()) *
                     sim::LayerTiling(layer, config_)
                         .numSynapseSets() /
                     config_.windowsPerPallet;
    return lr;
}

int64_t
StripesModel::serialMultiply(int16_t synapse, uint16_t neuron,
                             int precision, int window_lsb)
{
    PRA_CHECK(precision >= 1 && precision <= 16,
                         "serialMultiply: precision out of range");
    PRA_CHECK(window_lsb >= 0 && window_lsb < 16,
                         "serialMultiply: bad window lsb");
    int64_t acc = 0;
    // One neuron bit per cycle, LSB of the window first; the AND
    // gates either pass the synapse into the adder or inject zero,
    // and the accumulator applies the growing shift.
    for (int cycle = 0; cycle < precision; cycle++) {
        int bit_pos = window_lsb + cycle;
        if (bit_pos > 15)
            break;
        bool bit = (neuron >> bit_pos) & 1;
        int64_t term = bit ? static_cast<int64_t>(synapse) : 0;
        acc += term << bit_pos;
    }
    return acc;
}

} // namespace models
} // namespace pra
