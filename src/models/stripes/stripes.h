/**
 * @file
 * Stripes (STR) baseline model (paper Section I and [4]).
 *
 * Stripes processes neurons bit-serially over the layer's profiled
 * precision p while processing 16 windows in parallel, so a synapse
 * set costs p cycles for a whole pallet instead of DaDN's 16 cycles
 * (one per window): ideal speedup 16/p. Stripes is value-independent
 * beyond the per-layer precision.
 *
 * The functional half models the serial-parallel multiplier: one
 * neuron bit ANDed with the full synapse per cycle, accumulated with a
 * growing shift — exactly the paper's Figure 4b datapath.
 */

#pragma once

#include <cstdint>
#include <span>

#include "dnn/layer_spec.h"
#include "dnn/network.h"
#include "dnn/tensor.h"
#include "fixedpoint/precision.h"
#include "sim/accel_config.h"
#include "sim/layer_result.h"

namespace pra {
namespace models {

/** Cycle-count and functional model of the Stripes accelerator. */
class StripesModel
{
  public:
    explicit StripesModel(const sim::AccelConfig &config = {});

    /**
     * Cycles for one layer given its serial precision @p precision
     * (defaults to the layer's profiled precision).
     */
    double layerCycles(const dnn::LayerSpec &layer,
                       int precision) const;

    /**
     * Full per-layer result (cycles, terms, SB reads) for one layer
     * at serial precision @p precision.
     */
    sim::LayerResult layerResult(const dnn::LayerSpec &layer,
                                 int precision) const;

    /** Run a network with its profiled per-layer precisions. */
    sim::NetworkResult run(const dnn::Network &network) const;

    /**
     * Run a network with explicit per-layer precisions (used by the
     * 8-bit quantized evaluation where precision is the bits needed
     * for the layer's largest code).
     */
    sim::NetworkResult run(const dnn::Network &network,
                           std::span<const int> precisions) const;

    /**
     * Functional serial-parallel multiply: process the @p precision
     * bits of @p neuron's precision window (starting at
     * @p window_lsb), one bit per cycle, against the full synapse.
     * Equals synapse * neuron when the neuron fits its window.
     */
    static int64_t serialMultiply(int16_t synapse, uint16_t neuron,
                                  int precision, int window_lsb = 0);

    const sim::AccelConfig &config() const { return config_; }

  private:
    sim::AccelConfig config_;
};

} // namespace models
} // namespace pra

