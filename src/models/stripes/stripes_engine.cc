#include "models/stripes/stripes_engine.h"

#include <algorithm>

#include "fixedpoint/fixed_point.h"
#include "util/logging.h"

namespace pra {
namespace models {

StripesEngine::StripesEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs("stripes", knobs, {"precision", "repr"});
    precisionOverride_ =
        static_cast<int>(sim::knobInt(knobs, "precision", 0));
    if (precisionOverride_ < 0 || precisionOverride_ > 16)
        util::fatal("stripes: precision must be in 0..16");
    std::string repr = sim::knobString(knobs, "repr", "fixed16");
    if (repr == "quant8")
        quant8_ = true;
    else if (repr != "fixed16")
        util::fatal("stripes: repr must be fixed16 or quant8");
    if (quant8_ && precisionOverride_ != 0)
        util::fatal("stripes: repr=quant8 derives per-layer "
                    "precisions from the code stream; a fixed "
                    "precision override contradicts it");
}

std::string
StripesEngine::name() const
{
    if (quant8_)
        return "Stripes-q8";
    if (precisionOverride_ == 0)
        return "Stripes";
    return "Stripes-p" + std::to_string(precisionOverride_);
}

sim::InputStream
StripesEngine::inputStream() const
{
    // Only the quantized variant is value-dependent: it reads the
    // code stream to find the precision each layer actually needs.
    return quant8_ ? sim::InputStream::Quant8 : sim::InputStream::None;
}

sim::LayerResult
StripesEngine::simulateLayer(const dnn::LayerSpec &layer,
                             const dnn::NeuronTensor &input,
                             const sim::AccelConfig &accel,
                             const sim::SampleSpec &sample) const
{
    (void)sample; // Stripes cycle counts are exact; nothing to sample.
    int precision;
    if (quant8_) {
        // The bits needed by the layer's largest activation code —
        // the quantized analogue of profiled precision (Figure 12).
        uint16_t max_code = 0;
        for (uint16_t code : input.flat())
            max_code = std::max(max_code, code);
        precision = std::max(1, fixedpoint::significantBits(max_code));
    } else {
        precision = precisionOverride_ == 0 ? layer.profiledPrecision
                                            : precisionOverride_;
    }
    sim::LayerResult lr =
        StripesModel(accel).layerResult(layer, precision);
    lr.engineName = name();
    return lr;
}

} // namespace models
} // namespace pra
