#include "models/stripes/stripes_engine.h"

#include "util/logging.h"

namespace pra {
namespace models {

StripesEngine::StripesEngine(const sim::EngineKnobs &knobs)
{
    sim::requireKnownKnobs("stripes", knobs, {"precision"});
    precisionOverride_ =
        static_cast<int>(sim::knobInt(knobs, "precision", 0));
    if (precisionOverride_ < 0 || precisionOverride_ > 16)
        util::fatal("stripes: precision must be in 0..16");
}

std::string
StripesEngine::name() const
{
    if (precisionOverride_ == 0)
        return "Stripes";
    return "Stripes-p" + std::to_string(precisionOverride_);
}

sim::LayerResult
StripesEngine::simulateLayer(const dnn::LayerSpec &layer,
                             const dnn::NeuronTensor &input,
                             const sim::AccelConfig &accel,
                             const sim::SampleSpec &sample) const
{
    (void)input;
    (void)sample; // Stripes cycle counts are exact; nothing to sample.
    int precision = precisionOverride_ == 0 ? layer.profiledPrecision
                                            : precisionOverride_;
    sim::LayerResult lr =
        StripesModel(accel).layerResult(layer, precision);
    lr.engineName = name();
    return lr;
}

} // namespace models
} // namespace pra
