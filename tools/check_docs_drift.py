#!/usr/bin/env python3
"""Fail when a CLI flag exists in the binaries but not in the README.

Every tool and bench declares its accepted flags explicitly:

  - ``args.checkUnknown({"flag", ...})`` calls in ``tools/*.cc``,
    ``bench/*.cc`` and ``examples/*.cpp``;
  - the ``known = {...}`` base list and ``known.push_back("...")``
    additions in ``bench/common.h``.

This script extracts that set and asserts each flag appears as
``--flag`` in README.md's "CLI flag reference" table, so the table
cannot silently rot when someone adds a flag.

The same mechanism covers the engine registry: every kind registered
in ``src/models/engines.cc`` (``registerEngine("kind", ...)``) must
appear as a ``| `kind` |`` row of README.md's engine table, and every
such row must name a registered kind — stale rows fail too.

It also dead-link-checks the documentation: every relative markdown
link in README.md, docs/ARCHITECTURE.md, and CHANGES.md must resolve
to an existing file (links are rooted at the linking file's own
directory, falling back to the repo root for CHANGES.md-style
repo-rooted links). Run from anywhere:

    python3 tools/check_docs_drift.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# (glob roots, pattern) pairs that declare flags.
SOURCE_GLOBS = [
    ("tools", "*.cc"),
    ("bench", "*.cc"),
    ("bench", "*.h"),
    ("examples", "*.cpp"),
]

CHECK_UNKNOWN_RE = re.compile(
    r"checkUnknown\s*\(\s*\{(?P<body>[^}]*)\}", re.DOTALL
)
KNOWN_LIST_RE = re.compile(
    r"std::vector<std::string>\s+known\s*=\s*\{(?P<body>[^}]*)\}",
    re.DOTALL,
)
PUSH_BACK_RE = re.compile(r'known\.push_back\("(?P<flag>[a-z0-9-]+)"\)')
STRING_RE = re.compile(r'"([a-z0-9-]+)"')


def declared_flags():
    """Map of flag -> sorted list of files declaring it."""
    flags = {}

    def add(flag, source):
        flags.setdefault(flag, set()).add(source)

    for root, pattern in SOURCE_GLOBS:
        for path in sorted((REPO / root).glob(pattern)):
            text = path.read_text(encoding="utf-8")
            rel = path.relative_to(REPO).as_posix()
            bodies = [
                m.group("body")
                for m in CHECK_UNKNOWN_RE.finditer(text)
            ]
            bodies += [
                m.group("body") for m in KNOWN_LIST_RE.finditer(text)
            ]
            for body in bodies:
                for flag in STRING_RE.findall(body):
                    add(flag, rel)
            for m in PUSH_BACK_RE.finditer(text):
                add(m.group("flag"), rel)
    return flags


REGISTER_ENGINE_RE = re.compile(r'registerEngine\(\s*"([a-z0-9_-]+)"')

# The README section holding the engine table, up to the next
# same-level heading.
ENGINE_SECTION_RE = re.compile(
    r"^## Engines\n(?P<body>.*?)(?=^## )", re.MULTILINE | re.DOTALL
)

# Engine-table rows: a table line whose first cell is a backticked
# kind, e.g. "| `stripes` | ... |".
ENGINE_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_-]*)`\s*\|",
                           re.MULTILINE)


def registered_engine_kinds():
    """Engine kinds registered in src/models/engines.cc."""
    text = (REPO / "src/models/engines.cc").read_text(encoding="utf-8")
    return set(REGISTER_ENGINE_RE.findall(text))


def engine_table_drift(readme):
    """(missing_rows, stale_rows) between the registry and README."""
    kinds = registered_engine_kinds()
    section = ENGINE_SECTION_RE.search(readme)
    rows = (
        set(ENGINE_ROW_RE.findall(section.group("body")))
        if section
        else set()
    )
    return sorted(kinds - rows), sorted(rows - kinds)


# Markdown files whose relative links must resolve.
LINKED_DOCS = ["README.md", "docs/ARCHITECTURE.md", "CHANGES.md"]

# [text](target) pairs, excluding images' leading "!" is harmless.
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def dead_links():
    """(doc, target) pairs whose relative link resolves to nothing."""
    dead = []
    for doc in LINKED_DOCS:
        path = REPO / doc
        if not path.exists():
            dead.append((doc, "<the document itself is missing>"))
            continue
        for target in MD_LINK_RE.findall(path.read_text(encoding="utf-8")):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):
                continue  # http:, https:, mailto: ...
            rel = target.split("#", 1)[0]
            if not rel:
                continue  # pure in-page anchor
            candidates = [path.parent / rel, REPO / rel]
            if not any(c.exists() for c in candidates):
                dead.append((doc, target))
    return dead


def main():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    flags = declared_flags()
    if not flags:
        print(
            "check_docs_drift: found no declared flags — the "
            "extraction patterns have rotted",
            file=sys.stderr,
        )
        return 1

    missing = {
        flag: sources
        for flag, sources in flags.items()
        if f"--{flag}" not in readme
    }
    if missing:
        print(
            "check_docs_drift: flags declared in the binaries but "
            "absent from README.md:",
            file=sys.stderr,
        )
        for flag in sorted(missing):
            srcs = ", ".join(sorted(missing[flag]))
            print(f"  --{flag}  (declared in {srcs})", file=sys.stderr)
        print(
            "add each to the 'CLI flag reference' table in README.md",
            file=sys.stderr,
        )
        return 1

    missing_rows, stale_rows = engine_table_drift(readme)
    if missing_rows or stale_rows:
        if missing_rows:
            print(
                "check_docs_drift: engine kinds registered in "
                "src/models/engines.cc but missing from README.md's "
                "'Engines' table:",
                file=sys.stderr,
            )
            for kind in missing_rows:
                print(f"  | `{kind}` | ...", file=sys.stderr)
        if stale_rows:
            print(
                "check_docs_drift: stale README.md engine-table rows "
                "naming no registered kind:",
                file=sys.stderr,
            )
            for kind in stale_rows:
                print(f"  | `{kind}` | ...", file=sys.stderr)
        return 1

    dead = dead_links()
    if dead:
        print(
            "check_docs_drift: dead relative links (target file does "
            "not exist):",
            file=sys.stderr,
        )
        for doc, target in dead:
            print(f"  {doc}: ({target})", file=sys.stderr)
        return 1

    print(
        f"check_docs_drift: OK — {len(flags)} flags and "
        f"{len(registered_engine_kinds())} engine kinds all "
        f"documented in README.md; relative links in "
        f"{', '.join(LINKED_DOCS)} all resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
