/**
 * @file
 * pra_sweep: run the (network x engine x config) grid in one shot.
 *
 *   pra_sweep [--networks all|a,b] [--engines paper|all|spec,spec]
 *             [--layers conv|fc|all] [--activations synthetic|propagated]
 *             [--memory off|ideal|preset] [--batch B] [--shard i/N]
 *             [--threads N]
 *             [--inner-threads N] [--cache on|off] [--planes on|off]
 *             [--units N | --full] [--seed S]
 *             [--csv FILE] [--per-layer] [--smoke] [--list-engines]
 *             [--list-memory]
 *
 * An engine spec is "kind[:key=value]*", e.g. "pragmatic:bits=2" or
 * "pragmatic-col:bits=2:ssr=1"; see --list-engines for kinds and
 * knobs. "--engines paper" (default) runs the paper's headline design
 * points; "--engines all" runs one default instance of every
 * registered kind. Results stream as CSV to --csv (default stdout),
 * with a speedup-vs-DaDN summary table on stderr when DaDN is in the
 * grid.
 *
 * "--layers" selects which layer kinds each network contributes:
 * "conv" (default, the paper's conv-only workload — output is
 * byte-identical to the historical conv-only tool), "fc" (the
 * fully-connected tails alone) or "all".
 *
 * "--activations" selects the workload class: "synthetic" (default,
 * independent calibrated per-layer streams — output byte-identical
 * to the committed goldens) or "propagated" (each layer's input is
 * the previous layer's actual output through the reference forward
 * pass, ReLU, pooling, and requantization; see dnn/propagate.h).
 * Propagated mode prices the full pipeline, so it implies
 * --layers=all; any other explicit --layers value is rejected.
 *
 * "--memory" selects the memory-hierarchy design point (global
 * buffer, double-buffered scratchpads, DRAM — see
 * sim/memory/memory_config.h and --list-memory). "off" (default)
 * keeps results compute-only and byte-identical to the committed
 * goldens; any other preset adds the on-chip/off-chip traffic,
 * stall-cycle, and system-cycle columns to the CSV and an off-chip /
 * memory-energy summary to stderr. "ideal" counts traffic at
 * infinite bandwidth: zero stalls, compute columns exactly equal to
 * an "off" run.
 *
 * "--batch B" prices a batch of B images per cell instead of one:
 * each engine runs B per-image streams (image 0 is the historical
 * one) and reports per-batch totals plus the batch/cycles_per_image
 * CSV columns; with --memory enabled, filter traffic amortizes over
 * the batch while ifmap/ofmap traffic scales with it. "--batch 1"
 * (default) is byte-identical to the historical single-image sweep.
 *
 * "--shard i/N" prices only shard i of the grid-order cell list
 * (0 <= i < N, contiguous balanced split). Concatenating the CSV
 * bodies of shards 0..N-1 (headers dropped after the first)
 * reproduces the unsharded output byte for byte, so a big sweep can
 * fan out across jobs. The speedup summary needs the whole grid and
 * is skipped when sharded.
 *
 * "--cache off" rebuilds every cell's workload from scratch instead
 * of sharing one synthesis per (network, stream, seed) — only useful
 * to bound the cache's memory or to verify equivalence.
 * "--planes off" stops serving intermediate-L (1..3) schedule
 * lengths from the memoized per-workload cycle planes and falls back
 * to the bounds short-circuit plus the serial per-brick schedule;
 * the planes are an exact memoization, so output is byte-identical
 * either way (a sweep test and CI assert this) — the switch exists
 * for A/B timing and equivalence checks.
 * "--inner-threads N" caps the pallet-block subtasks a cell may fan
 * out (0 = automatic: split only when the grid has fewer cells than
 * threads). Output is bit-identical for any --threads or
 * --inner-threads value and with the cache on or off.
 */

#include <cstdio>
#include <iostream>

#include "dnn/model_zoo.h"
#include "energy/memory_energy.h"
#include "models/engines.h"
#include "sim/memory/memory_config.h"
#include "sim/sweep.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace pra;

namespace {

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> items;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string item =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!item.empty())
            items.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

std::vector<dnn::Network>
parseNetworks(const std::string &list, dnn::LayerSelect select)
{
    if (list == "all")
        return dnn::makeAllNetworks(select);
    std::vector<dnn::Network> networks;
    for (const auto &name : splitList(list))
        networks.push_back(dnn::makeNetworkByName(name, select));
    if (networks.empty())
        util::fatal("no networks selected");
    return networks;
}

std::vector<sim::EngineSelection>
parseEngines(const std::string &list)
{
    if (list == "paper")
        return models::paperEngineGrid();
    // "all" is the frozen historical five-kind grid, not every
    // registered kind — the smoke goldens pin its expansion.
    if (list == "all")
        return models::coreEngineGrid();
    std::vector<sim::EngineSelection> grid;
    for (const auto &spec : splitList(list))
        grid.push_back(sim::parseEngineSpec(spec));
    if (grid.empty())
        util::fatal("no engines selected");
    return grid;
}

/** Speedup-vs-DaDN table on stderr (skipped when DaDN absent). */
void
printSummary(const std::vector<dnn::Network> &networks,
             const std::vector<sim::NetworkResult> &results,
             size_t num_engines)
{
    bool have_dadn = false;
    for (size_t e = 0; e < num_engines; e++)
        if (results[e].engineName == "DaDN")
            have_dadn = true;
    if (!have_dadn)
        return;

    std::vector<std::string> header = {"network"};
    for (size_t e = 0; e < num_engines; e++)
        header.push_back(results[e].engineName);
    util::TextTable table(header);
    for (size_t n = 0; n < networks.size(); n++) {
        const auto &base =
            sim::findResult(results, networks[n].name, "DaDN");
        std::vector<std::string> row = {networks[n].name};
        for (size_t e = 0; e < num_engines; e++) {
            const auto &cell = results[n * num_engines + e];
            // The analytic terms engines report work, not cycles; a
            // cycle ratio against them would be meaningless.
            if (cell.engineName.rfind("terms-", 0) == 0)
                row.push_back("-");
            else
                row.push_back(
                    util::formatDouble(cell.speedupOver(base)));
        }
        table.addRow(row);
    }
    std::fprintf(stderr, "speedup over DaDN:\n%s\n",
                 table.render().c_str());
}

/**
 * Memory summary on stderr (only with --memory enabled): per cell,
 * off-chip megabytes, the stall share of system cycles, how many
 * layers are bandwidth-bound, and the data-movement energy.
 */
void
printMemorySummary(const std::vector<sim::NetworkResult> &results,
                   const std::string &preset)
{
    util::TextTable table({"network", "engine", "off-chip MB",
                           "stall %", "bw-bound layers", "mem mJ"});
    for (const auto &result : results) {
        int bw_bound = 0;
        for (const auto &layer : result.layers)
            bw_bound += layer.bandwidthBound ? 1 : 0;
        double stall_share = 100.0 * result.totalMemStalls() /
                             result.totalSystemCycles();
        energy::MemoryEnergy energy =
            energy::networkMemoryEnergy(result);
        table.addRow({result.networkName, result.engineName,
                      util::formatDouble(result.totalOffChipBytes() /
                                         (1024.0 * 1024.0)),
                      util::formatDouble(stall_share),
                      std::to_string(bw_bound),
                      util::formatDouble(energy.totalPJ() * 1e-9)});
    }
    std::fprintf(stderr, "memory hierarchy (--memory=%s):\n%s\n",
                 preset.c_str(), table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(argc, argv);
    args.checkUnknown({"networks", "engines", "layers", "activations",
                       "memory", "batch", "shard", "threads",
                       "inner-threads", "cache", "planes", "units",
                       "full", "seed", "csv", "per-layer", "smoke",
                       "list-engines", "list-memory"});
    sim::setCyclePlanesEnabled(args.getBool("planes", true));

    if (args.getBool("list-engines")) {
        const auto &registry = models::builtinEngines();
        for (const auto &kind : registry.kinds())
            std::printf("%-14s %s\n", kind.c_str(),
                        registry.help(kind).c_str());
        return 0;
    }
    if (args.getBool("list-memory")) {
        for (const auto &name : sim::memoryPresetNames())
            std::printf("%-8s %s\n", name.c_str(),
                        sim::memoryPresetHelp(name).c_str());
        return 0;
    }

    bool smoke = args.getBool("smoke");
    sim::ActivationMode activations = sim::parseActivationMode(
        args.getString("activations", "synthetic"));
    dnn::LayerSelect select;
    if (activations == sim::ActivationMode::Propagated) {
        // Propagation runs the whole pipeline; a filtered selection
        // cannot chain (conv2 would miss pool1, fc6 the conv trunk).
        if (args.has("layers") && args.getString("layers") != "all")
            util::fatal("--activations=propagated propagates the "
                        "full layer pipeline; --layers must be 'all' "
                        "(or omitted)");
        select = dnn::LayerSelect::All;
    } else {
        select = dnn::parseLayerSelect(args.getString("layers",
                                                      "conv"));
    }
    std::vector<dnn::Network> networks = parseNetworks(
        args.getString("networks", smoke ? "tiny" : "all"), select);
    std::vector<sim::EngineSelection> engines =
        parseEngines(args.getString("engines", "paper"));

    sim::SweepOptions options;
    options.threads = static_cast<int>(
        args.getInt("threads", util::ThreadPool::hardwareThreads()));
    options.innerThreads =
        static_cast<int>(args.getInt("inner-threads", 0));
    options.cache = args.getBool("cache", true);
    options.activations = activations;
    options.accel.memory =
        sim::parseMemoryPreset(args.getString("memory", "off"));
    int64_t default_units = smoke ? 4 : 64;
    // A sampling cap of zero would silently mean "simulate
    // everything" (the --full semantics); a user asking for zero or
    // negative units gets an error, not the opposite of the request.
    int64_t units = args.getInt("units", default_units);
    if (args.has("units") && units <= 0)
        util::fatal("--units must be a positive sampling cap (got " +
                    std::to_string(units) +
                    "); use --full for an exhaustive run");
    options.sample.maxUnits = args.getBool("full") ? 0 : units;
    int64_t seed = args.getInt("seed", 0x5eed);
    if (seed < 0)
        util::fatal("--seed must be non-negative (got " +
                    std::to_string(seed) + ")");
    options.seed = static_cast<uint64_t>(seed);
    int64_t batch = args.getInt("batch", 1);
    if (batch <= 0)
        util::fatal("--batch must be a positive image count (got " +
                    std::to_string(batch) + ")");
    options.batch = static_cast<int>(batch);
    if (args.has("shard")) {
        std::string shard = args.getString("shard");
        size_t slash = shard.find('/');
        size_t parsed_i = 0;
        size_t parsed_n = 0;
        long long i = -1;
        long long n = -1;
        if (slash != std::string::npos && slash > 0 &&
            slash + 1 < shard.size()) {
            try {
                i = std::stoll(shard.substr(0, slash), &parsed_i);
                n = std::stoll(shard.substr(slash + 1), &parsed_n);
            } catch (...) {
                i = n = -1;
            }
        }
        if (i < 0 || n <= 0 || i >= n || parsed_i != slash ||
            parsed_n != shard.size() - slash - 1)
            util::fatal("--shard must be i/N with 0 <= i < N (got '" +
                        shard + "')");
        options.shardIndex = static_cast<int>(i);
        options.shardCount = static_cast<int>(n);
    }

    std::vector<sim::NetworkResult> results = sim::runSweep(
        networks, engines, models::builtinEngines(), options);

    std::string csv_path = args.getString("csv", "");
    bool per_layer = args.getBool("per-layer");
    if (csv_path.empty()) {
        sim::writeSweepCsv(std::cout, results, per_layer);
    } else {
        util::writeFileAtomic(csv_path, [&](std::ostream &out) {
            sim::writeSweepCsv(out, results, per_layer);
        });
        std::fprintf(stderr, "wrote %zu cells to %s\n",
                     results.size(), csv_path.c_str());
    }
    // The speedup table indexes the full grid (and needs its DaDN
    // baseline cells); a shard holds only a slice of it.
    if (options.shardCount == 1)
        printSummary(networks, results, engines.size());
    if (options.accel.memory.enabled)
        printMemorySummary(results, options.accel.memory.preset);
    return 0;
}
