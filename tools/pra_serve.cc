/**
 * @file
 * pra_serve: batched-serving capacity planning on the simulated
 * accelerator fleet.
 *
 *   pra_serve [--networks all|a,b] [--engines paper|all|spec,spec]
 *             [--layers conv|fc|all]
 *             [--activations synthetic|propagated]
 *             [--memory off|ideal|preset]
 *             [--traffic R1,R2,...] [--arrival poisson|uniform]
 *             [--instances N] [--max-batch B] [--timeout CYCLES]
 *             [--requests N] [--threads N] [--inner-threads N]
 *             [--cache on|off] [--planes on|off]
 *             [--units N | --full] [--seed S] [--csv FILE] [--smoke]
 *             [--mtbf CYCLES] [--mttr CYCLES]
 *             [--fault-dist exponential|fixed] [--fault-seed S]
 *             [--queue-cap N] [--retries N] [--backoff CYCLES]
 *             [--degrade-watermark N]
 *             [--list-engines] [--list-memory]
 *
 * For every (network, engine) cell pra_serve builds the batch cost
 * curve — the system cycles of batches of 1..--max-batch images,
 * priced by the same engines and (optionally) memory hierarchy the
 * sweep uses — then plays an event-driven fleet simulation against
 * each offered --traffic rate: --instances identical accelerators,
 * seeded --arrival request arrivals, and the max-batch + timeout
 * dispatch rule of src/sim/serving/batching.h. Reports stream as
 * CSV: p50/p95/p99 and mean latency (cycles), completed images/s and
 * utilization at the nominal 1 GHz clock, mean batch size, and the
 * trace makespan.
 *
 * "--traffic" lists offered loads in images per second (at 1 GHz);
 * one CSV row per (network, engine, rate). "--timeout" bounds, in
 * simulated cycles, how long a dispatcher holds the oldest waiting
 * request hoping to fill a batch (0 = dispatch greedily as soon as
 * an instance frees up). "--requests" sets the trace length.
 *
 * "--mtbf" enables deterministic fail-stop fault injection (mean
 * up-time in cycles; "--mttr" is the mean repair time, default
 * mtbf/10). A failing instance kills its in-flight batch; the killed
 * requests retry up to "--retries" times with "--backoff"-scaled
 * exponential backoff before counting as permanent failures.
 * "--queue-cap" bounds the dispatch queue (arrivals beyond it shed);
 * "--degrade-watermark" switches the dispatcher to half batches and
 * greedy launches above that queue occupancy. Any of these adds the
 * degraded-serving CSV columns (availability, goodput vs the offered
 * column, retry/shed/kill counts, fault-conditioned p99); without
 * them the CSV shape is byte-identical to the historical goldens.
 * "--csv" writes through a temporary + rename, so a failed run never
 * tears a previously written file.
 *
 * Determinism matches the sweep: cost curves are bit-identical
 * across --threads/--inner-threads/--cache, arrivals are
 * counter-based in (seed, index), and the event loop is serial — so
 * the serving CSV is byte-identical for any thread count, with the
 * cache on or off (CI asserts this), faulted or not: fault schedules
 * are counter-based pure functions of (--fault-seed, instance,
 * event index).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "dnn/model_zoo.h"
#include "models/engines.h"
#include "sim/memory/memory_config.h"
#include "sim/serving/serving_sim.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/thread_pool.h"

using namespace pra;

namespace {

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> items;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string item =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!item.empty())
            items.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

std::vector<dnn::Network>
parseNetworks(const std::string &list, dnn::LayerSelect select)
{
    if (list == "all")
        return dnn::makeAllNetworks(select);
    std::vector<dnn::Network> networks;
    for (const auto &name : splitList(list))
        networks.push_back(dnn::makeNetworkByName(name, select));
    if (networks.empty())
        util::fatal("no networks selected");
    return networks;
}

std::vector<sim::EngineSelection>
parseEngines(const std::string &list)
{
    if (list == "paper")
        return models::paperEngineGrid();
    // "all" is the frozen historical five-kind grid, not every
    // registered kind — the smoke goldens pin its expansion.
    if (list == "all")
        return models::coreEngineGrid();
    std::vector<sim::EngineSelection> grid;
    for (const auto &spec : splitList(list))
        grid.push_back(sim::parseEngineSpec(spec));
    if (grid.empty())
        util::fatal("no engines selected");
    return grid;
}

/** Parse --traffic: comma-separated positive rates (images/s). */
std::vector<double>
parseTraffic(const std::string &list)
{
    std::vector<double> rates;
    for (const auto &item : splitList(list)) {
        double rate = 0.0;
        size_t parsed = 0;
        try {
            rate = std::stod(item, &parsed);
        } catch (...) {
            parsed = 0;
        }
        if (parsed != item.size() || !(rate > 0.0) ||
            rate > sim::kCyclesPerSecond)
            util::fatal("--traffic rates must be positive images/s "
                        "up to 1e9 (got '" + item + "')");
        rates.push_back(rate);
    }
    if (rates.empty())
        util::fatal("--traffic lists no rates");
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(argc, argv);
    args.checkUnknown({"networks", "engines", "layers", "activations",
                       "memory", "traffic", "arrival", "instances",
                       "max-batch", "timeout", "requests", "threads",
                       "inner-threads", "cache", "planes", "units",
                       "full", "seed", "csv", "smoke", "list-engines",
                       "list-memory", "mtbf", "mttr", "fault-dist",
                       "fault-seed", "queue-cap", "retries",
                       "backoff", "degrade-watermark"});
    sim::setCyclePlanesEnabled(args.getBool("planes", true));

    if (args.getBool("list-engines")) {
        const auto &registry = models::builtinEngines();
        for (const auto &kind : registry.kinds())
            std::printf("%-14s %s\n", kind.c_str(),
                        registry.help(kind).c_str());
        return 0;
    }
    if (args.getBool("list-memory")) {
        for (const auto &name : sim::memoryPresetNames())
            std::printf("%-8s %s\n", name.c_str(),
                        sim::memoryPresetHelp(name).c_str());
        return 0;
    }

    bool smoke = args.getBool("smoke");
    sim::ActivationMode activations = sim::parseActivationMode(
        args.getString("activations", "synthetic"));
    dnn::LayerSelect select;
    if (activations == sim::ActivationMode::Propagated) {
        if (args.has("layers") && args.getString("layers") != "all")
            util::fatal("--activations=propagated propagates the "
                        "full layer pipeline; --layers must be 'all' "
                        "(or omitted)");
        select = dnn::LayerSelect::All;
    } else {
        select = dnn::parseLayerSelect(args.getString("layers",
                                                      "conv"));
    }
    std::vector<dnn::Network> networks = parseNetworks(
        args.getString("networks", smoke ? "tiny" : "all"), select);
    std::vector<sim::EngineSelection> engines =
        parseEngines(args.getString("engines", "paper"));

    sim::ServingSweepOptions options;
    options.threads = static_cast<int>(
        args.getInt("threads", util::ThreadPool::hardwareThreads()));
    options.innerThreads =
        static_cast<int>(args.getInt("inner-threads", 0));
    options.cache = args.getBool("cache", true);
    options.activations = activations;
    options.accel.memory =
        sim::parseMemoryPreset(args.getString("memory", "off"));
    int64_t default_units = smoke ? 4 : 64;
    int64_t units = args.getInt("units", default_units);
    if (args.has("units") && units <= 0)
        util::fatal("--units must be a positive sampling cap (got " +
                    std::to_string(units) +
                    "); use --full for an exhaustive run");
    options.sample.maxUnits = args.getBool("full") ? 0 : units;
    int64_t seed = args.getInt("seed", 0x5eed);
    if (seed < 0)
        util::fatal("--seed must be non-negative (got " +
                    std::to_string(seed) + ")");
    options.seed = static_cast<uint64_t>(seed);
    options.serving.arrival.seed = options.seed;

    // Degenerate serving parameters get loud rejections, not silent
    // empty simulations.
    options.offeredPerSecond = parseTraffic(
        args.getString("traffic", smoke ? "1000,100000" : "10000"));
    options.serving.arrival.kind = sim::parseArrivalKind(
        args.getString("arrival", "poisson"));
    int64_t instances = args.getInt("instances", 1);
    if (instances <= 0)
        util::fatal("--instances must be a positive fleet size "
                    "(got " + std::to_string(instances) + ")");
    options.serving.instances = static_cast<int>(instances);
    int64_t max_batch = args.getInt("max-batch", 8);
    if (max_batch <= 0)
        util::fatal("--max-batch must be a positive batch cap (got " +
                    std::to_string(max_batch) + ")");
    options.serving.policy.maxBatch = static_cast<int>(max_batch);
    int64_t timeout = args.getInt("timeout", 1000000);
    if (timeout < 0)
        util::fatal("--timeout must be a non-negative cycle count "
                    "(got " + std::to_string(timeout) + ")");
    options.serving.policy.timeoutCycles =
        static_cast<uint64_t>(timeout);
    int64_t requests = args.getInt("requests", smoke ? 64 : 512);
    if (requests <= 0)
        util::fatal("--requests must be a positive trace length "
                    "(got " + std::to_string(requests) + ")");
    options.serving.requests = static_cast<int>(requests);

    // --- Fault-injection / degraded-serving layer. Degenerate
    // --- values are loud, fatal rejections (CI pins them): an
    // --- explicit --mtbf=0 almost certainly meant "faults off", but
    // --- silently honoring it would mask a typo'd sweep axis.
    if (args.has("mtbf")) {
        int64_t mtbf = args.getInt("mtbf", 0);
        if (mtbf <= 0)
            util::fatal("--mtbf must be a positive mean up-time in "
                        "cycles (got " + std::to_string(mtbf) +
                        "); omit the flag to disable faults");
        options.serving.faults.mtbfCycles =
            static_cast<uint64_t>(mtbf);
    }
    int64_t mttr = args.getInt(
        "mttr", static_cast<int64_t>(std::max<uint64_t>(
                    1, options.serving.faults.mtbfCycles / 10)));
    if (mttr <= 0)
        util::fatal("--mttr must be a positive mean repair time in "
                    "cycles (got " + std::to_string(mttr) + ")");
    options.serving.faults.mttrCycles = static_cast<uint64_t>(mttr);
    options.serving.faults.kind = sim::parseFaultKind(
        args.getString("fault-dist", "exponential"));
    int64_t fault_seed = args.getInt("fault-seed", seed);
    if (fault_seed < 0)
        util::fatal("--fault-seed must be non-negative (got " +
                    std::to_string(fault_seed) + ")");
    options.serving.faults.seed = static_cast<uint64_t>(fault_seed);
    if (args.has("queue-cap")) {
        int64_t cap = args.getInt("queue-cap", 0);
        if (cap <= 0)
            util::fatal("--queue-cap must be a positive queue bound "
                        "(got " + std::to_string(cap) +
                        "); omit the flag for an unbounded queue");
        options.serving.queueCap = static_cast<int>(cap);
    }
    if (args.has("degrade-watermark")) {
        int64_t mark = args.getInt("degrade-watermark", 0);
        if (mark <= 0)
            util::fatal("--degrade-watermark must be a positive "
                        "queue occupancy (got " +
                        std::to_string(mark) +
                        "); omit the flag to disable degradation");
        options.serving.degradeWatermark = static_cast<int>(mark);
    }
    int64_t retries = args.getInt("retries", 3);
    if (retries < 0)
        util::fatal("--retries must be a non-negative retry budget "
                    "(got " + std::to_string(retries) + ")");
    options.serving.retry.maxRetries = static_cast<int>(retries);
    int64_t backoff = args.getInt("backoff", 1000);
    if (backoff < 0)
        util::fatal("--backoff must be a non-negative cycle count "
                    "(got " + std::to_string(backoff) + ")");
    options.serving.retry.backoffBaseCycles =
        static_cast<uint64_t>(backoff);

    std::vector<sim::ServingReport> reports = sim::runServingSweep(
        networks, engines, models::builtinEngines(), options);

    std::string csv_path = args.getString("csv", "");
    if (csv_path.empty()) {
        sim::writeServingCsv(std::cout, reports);
    } else {
        util::writeFileAtomic(csv_path, [&](std::ostream &out) {
            sim::writeServingCsv(out, reports);
        });
        std::fprintf(stderr, "wrote %zu serving rows to %s\n",
                     reports.size(), csv_path.c_str());
    }
    return 0;
}
